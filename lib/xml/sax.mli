(** A small, dependency-free streaming XML parser.

    Supports the features the corpora in the paper need: elements with
    attributes, character data, comments, CDATA sections, processing
    instructions, DOCTYPE declarations (skipped, including an internal
    subset), the five predefined entities and numeric character references.
    Namespaces are not interpreted: a qualified name is treated as an opaque
    label, which is how the paper treats element names too. *)

exception Malformed of { position : int; message : string }
(** Raised on ill-formed input. [position] is a byte offset. *)

exception Limit of { position : int; message : string }
(** Raised when a {!limits} resource guard fires. Distinct from {!Malformed}
    because the input may be well-formed — it is merely too big for the
    configured envelope. *)

(** {1 Resource guards}

    Hostile or accidental pathological inputs (a million nested elements, a
    gigabyte attribute) are rejected during the scan, before they can
    exhaust memory or blow the stack in downstream consumers that recurse
    over document structure. *)

type limits = {
  max_depth : int;  (** maximum open-element nesting depth *)
  max_attribute_length : int;  (** decoded bytes per attribute value *)
  max_text_length : int;  (** decoded bytes per text node *)
  max_entity_length : int;  (** bytes between ['&'] and [';'] *)
  max_input_bytes : int;  (** whole-document size, checked up front *)
}

val default_limits : limits
(** 1M depth, 1 MiB attributes, 16 MiB text nodes, 16-byte entities,
    1 GiB input — far above anything the paper's corpora produce. *)

val fold :
  ?obs:Obs.t -> ?limits:limits -> string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** [fold input ~init ~f] parses [input] and folds [f] over its events.
    Checks well-formedness (tag balance, single root). When [obs] is given,
    publishes [sax.events], [sax.elements], [sax.text_nodes] and
    [sax.max_depth] counters after the parse. [limits] defaults to
    {!default_limits}.
    @raise Malformed on bad input.
    @raise Limit when a resource guard fires. *)

type error = { position : int; message : string; kind : [ `Malformed | `Limit ] }

val fold_result :
  ?obs:Obs.t ->
  ?limits:limits ->
  string ->
  init:'a ->
  f:('a -> Event.t -> 'a) ->
  ('a, error) result
(** Like {!fold} but returns parse failures as values. Exceptions raised by
    [f] itself still propagate. *)

val iter : ?obs:Obs.t -> ?limits:limits -> string -> f:(Event.t -> unit) -> unit

val events : string -> Event.t list
(** All events of [input], in document order. Convenience for tests. *)
