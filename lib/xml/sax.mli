(** A small, dependency-free streaming XML parser.

    Supports the features the corpora in the paper need: elements with
    attributes, character data, comments, CDATA sections, processing
    instructions, DOCTYPE declarations (skipped, including an internal
    subset), the five predefined entities and numeric character references.
    Namespaces are not interpreted: a qualified name is treated as an opaque
    label, which is how the paper treats element names too. *)

exception Malformed of { position : int; message : string }
(** Raised on ill-formed input. [position] is a byte offset. *)

val fold : ?obs:Obs.t -> string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** [fold input ~init ~f] parses [input] and folds [f] over its events.
    Checks well-formedness (tag balance, single root). When [obs] is given,
    publishes [sax.events], [sax.elements], [sax.text_nodes] and
    [sax.max_depth] counters after the parse.
    @raise Malformed on bad input. *)

val iter : ?obs:Obs.t -> string -> f:(Event.t -> unit) -> unit

val events : string -> Event.t list
(** All events of [input], in document order. Convenience for tests. *)
