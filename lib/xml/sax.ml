exception Malformed of { position : int; message : string }
exception Limit of { position : int; message : string }

let fail pos fmt =
  Format.kasprintf (fun message -> raise (Malformed { position = pos; message })) fmt

let fail_limit pos fmt =
  Format.kasprintf (fun message -> raise (Limit { position = pos; message })) fmt

(* Resource guards, enforced during the scan so a hostile input is rejected
   before it can exhaust memory or blow the stack downstream. The defaults
   are far above anything the paper's corpora produce. *)
type limits = {
  max_depth : int;
  max_attribute_length : int;
  max_text_length : int;
  max_entity_length : int;
  max_input_bytes : int;
}

let default_limits =
  { max_depth = 1_000_000;
    max_attribute_length = 1 lsl 20;  (* 1 MiB *)
    max_text_length = 1 lsl 24;  (* 16 MiB per text node *)
    max_entity_length = 16;
    max_input_bytes = 1 lsl 30 (* 1 GiB *) }

(* The parser is a single left-to-right scan holding only the open-tag stack,
   so it runs in space proportional to document depth, not size. *)
type 'a state = {
  input : string;
  len : int;
  limits : limits;
  mutable pos : int;
  mutable stack : string list;  (* open elements, innermost first *)
  mutable acc : 'a;
  mutable seen_root : bool;
  f : 'a -> Event.t -> 'a;
  buf : Buffer.t;  (* scratch for text/attribute decoding *)
  (* Parse statistics, published to an Obs context when one is supplied;
     plain field bumps so the cost without one is negligible. *)
  mutable n_events : int;
  mutable n_elements : int;
  mutable n_text : int;
  mutable depth : int;
  mutable max_depth : int;
}

let peek st = if st.pos < st.len then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while st.pos < st.len && is_space st.input.[st.pos] do advance st done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name st =
  let start = st.pos in
  (match peek st with
   | Some c when is_name_start c -> advance st
   | Some c -> fail st.pos "expected a name, found %C" c
   | None -> fail st.pos "expected a name, found end of input");
  while st.pos < st.len && is_name_char st.input.[st.pos] do advance st done;
  String.sub st.input start (st.pos - start)

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st.pos "expected %C, found %C" c c'
  | None -> fail st.pos "expected %C, found end of input" c

(* Decode an entity reference starting after '&'; appends to [st.buf]. *)
let read_entity st =
  let start = st.pos in
  let rec semi i =
    if i >= st.len then fail start "unterminated entity reference"
    else if st.input.[i] = ';' then i
    else if i - start > st.limits.max_entity_length then
      fail_limit start "entity reference longer than %d bytes"
        st.limits.max_entity_length
    else semi (i + 1)
  in
  let stop = semi st.pos in
  let body = String.sub st.input st.pos (stop - st.pos) in
  st.pos <- stop + 1;
  let add_codepoint cp =
    (* UTF-8 encode; XML corpora here are ASCII-heavy but be correct. *)
    if cp < 0 then fail start "negative character reference"
    else if cp < 0x80 then Buffer.add_char st.buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char st.buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char st.buf (Char.chr (0x80 lor (cp land 0x3F)))
    end else if cp >= 0xD800 && cp <= 0xDFFF then
      (* Surrogate codepoints are not Unicode scalar values; encoding them
         would emit invalid UTF-8 (CESU-8-style). XML 1.0 forbids them. *)
      fail start "surrogate character reference U+%04X" cp
    else if cp < 0x10000 then begin
      Buffer.add_char st.buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char st.buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char st.buf (Char.chr (0x80 lor (cp land 0x3F)))
    end else if cp <= 0x10FFFF then begin
      Buffer.add_char st.buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char st.buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char st.buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char st.buf (Char.chr (0x80 lor (cp land 0x3F)))
    end else fail start "character reference out of range"
  in
  match body with
  | "amp" -> Buffer.add_char st.buf '&'
  | "lt" -> Buffer.add_char st.buf '<'
  | "gt" -> Buffer.add_char st.buf '>'
  | "quot" -> Buffer.add_char st.buf '"'
  | "apos" -> Buffer.add_char st.buf '\''
  | _ ->
    if String.length body > 1 && body.[0] = '#' then
      let num = String.sub body 1 (String.length body - 1) in
      let cp =
        try
          if String.length num > 1 && (num.[0] = 'x' || num.[0] = 'X') then
            int_of_string ("0x" ^ String.sub num 1 (String.length num - 1))
          else int_of_string num
        with Failure _ -> fail start "bad character reference &%s;" body
      in
      add_codepoint cp
    else fail start "unknown entity &%s;" body

let read_attribute_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st; q
    | Some c -> fail st.pos "expected quoted attribute value, found %C" c
    | None -> fail st.pos "expected quoted attribute value, found end of input"
  in
  Buffer.clear st.buf;
  let rec loop () =
    if Buffer.length st.buf > st.limits.max_attribute_length then
      fail_limit st.pos "attribute value longer than %d bytes"
        st.limits.max_attribute_length;
    match peek st with
    | None -> fail st.pos "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' -> advance st; read_entity st; loop ()
    | Some '<' -> fail st.pos "'<' in attribute value"
    | Some c -> advance st; Buffer.add_char st.buf c; loop ()
  in
  loop ();
  let value = Buffer.contents st.buf in
  Buffer.clear st.buf;
  value

let read_attributes st =
  let rec loop acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
      let name = read_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = read_attribute_value st in
      loop ((name, value) :: acc)
    | _ -> List.rev acc
  in
  loop []

let emit st evt =
  st.n_events <- st.n_events + 1;
  (match evt with
   | Event.Start_element _ ->
     st.n_elements <- st.n_elements + 1;
     st.depth <- st.depth + 1;
     if st.depth > st.limits.max_depth then
       fail_limit st.pos "element depth exceeds %d" st.limits.max_depth;
     if st.depth > st.max_depth then st.max_depth <- st.depth
   | Event.End_element _ -> st.depth <- st.depth - 1
   | Event.Text _ -> st.n_text <- st.n_text + 1);
  st.acc <- st.f st.acc evt

let flush_text st =
  if Buffer.length st.buf > 0 then begin
    (* Whitespace-only runs between elements are not reported: the cardinality
       corpora are element-structured and the paper ignores text nodes. *)
    let s = Buffer.contents st.buf in
    Buffer.clear st.buf;
    let all_space = ref true in
    String.iter (fun c -> if not (is_space c) then all_space := false) s;
    if not !all_space then emit st (Text s)
  end

let skip_until st pattern =
  (* Advance past the next occurrence of [pattern]. *)
  let plen = String.length pattern in
  let rec search i =
    if i + plen > st.len then fail st.pos "unterminated construct (missing %S)" pattern
    else if String.sub st.input i plen = pattern then st.pos <- i + plen
    else search (i + 1)
  in
  search st.pos

let read_doctype st =
  (* st.pos is just after "<!DOCTYPE". The internal subset may contain '>' so
     track '[' ... ']' nesting. *)
  let rec loop depth =
    match peek st with
    | None -> fail st.pos "unterminated DOCTYPE"
    | Some '[' -> advance st; loop (depth + 1)
    | Some ']' -> advance st; loop (depth - 1)
    | Some '>' when depth = 0 -> advance st
    | Some ('"' | '\'' as q) ->
      advance st;
      let rec quoted () =
        match peek st with
        | None -> fail st.pos "unterminated literal in DOCTYPE"
        | Some c when c = q -> advance st
        | Some _ -> advance st; quoted ()
      in
      quoted (); loop depth
    | Some _ -> advance st; loop depth
  in
  loop 0

let read_cdata st =
  (* st.pos is just after "<![CDATA[". *)
  let start = st.pos in
  let rec search i =
    if i + 3 > st.len then fail start "unterminated CDATA section"
    else if st.input.[i] = ']' && st.input.[i + 1] = ']' && st.input.[i + 2] = '>'
    then begin
      Buffer.add_substring st.buf st.input start (i - start);
      if Buffer.length st.buf > st.limits.max_text_length then
        fail_limit start "text node longer than %d bytes" st.limits.max_text_length;
      st.pos <- i + 3
    end
    else search (i + 1)
  in
  search st.pos

let starts_with st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.input st.pos n = s

let rec parse_markup st =
  (* st.pos is at '<'. *)
  advance st;
  match peek st with
  | Some '!' ->
    advance st;
    if starts_with st "--" then begin
      st.pos <- st.pos + 2;
      skip_until st "-->"
    end
    else if starts_with st "[CDATA[" then begin
      st.pos <- st.pos + 7;
      flush_text st;  (* CDATA joins adjacent text; keep it a separate event *)
      Buffer.clear st.buf;
      read_cdata st;
      flush_text_always st
    end
    else if starts_with st "DOCTYPE" then begin
      st.pos <- st.pos + 7;
      read_doctype st
    end
    else fail st.pos "unrecognized markup declaration"
  | Some '?' ->
    advance st;
    skip_until st "?>"
  | Some '/' ->
    advance st;
    let name = read_name st in
    skip_space st;
    expect st '>';
    (match st.stack with
     | top :: rest when top = name ->
       st.stack <- rest;
       emit st (End_element name)
     | top :: _ -> fail st.pos "mismatched closing tag </%s> (open: <%s>)" name top
     | [] -> fail st.pos "closing tag </%s> with no open element" name)
  | Some c when is_name_start c ->
    if st.stack = [] && st.seen_root then
      fail st.pos "content after the root element";
    let name = read_name st in
    let atts = read_attributes st in
    skip_space st;
    (match peek st with
     | Some '/' ->
       advance st;
       expect st '>';
       st.seen_root <- true;
       emit st (Start_element (name, atts));
       emit st (End_element name)
     | Some '>' ->
       advance st;
       st.seen_root <- true;
       st.stack <- name :: st.stack;
       emit st (Start_element (name, atts))
     | Some c -> fail st.pos "expected '>' or '/>', found %C" c
     | None -> fail st.pos "unterminated start tag <%s" name)
  | Some c -> fail st.pos "unexpected character %C after '<'" c
  | None -> fail st.pos "dangling '<' at end of input"

and flush_text_always st =
  if Buffer.length st.buf > 0 then begin
    let s = Buffer.contents st.buf in
    Buffer.clear st.buf;
    emit st (Text s)
  end

let fold ?obs ?(limits = default_limits) input ~init ~f =
  if String.length input > limits.max_input_bytes then
    fail_limit 0 "input is %d bytes, limit is %d" (String.length input)
      limits.max_input_bytes;
  let st =
    { input; len = String.length input; limits; pos = 0; stack = []; acc = init;
      seen_root = false; f; buf = Buffer.create 256; n_events = 0;
      n_elements = 0; n_text = 0; depth = 0; max_depth = 0 }
  in
  let rec loop () =
    match peek st with
    | None ->
      flush_text st;
      if st.stack <> [] then
        fail st.pos "end of input with unclosed element <%s>" (List.hd st.stack);
      if not st.seen_root then fail st.pos "no root element"
    | Some '<' ->
      flush_text st;
      parse_markup st;
      loop ()
    | Some '&' when st.stack <> [] ->
      advance st; read_entity st; loop ()
    | Some c ->
      if st.stack = [] then begin
        if not (is_space c) then fail st.pos "text outside the root element";
        advance st
      end else begin
        if Buffer.length st.buf >= st.limits.max_text_length then
          fail_limit st.pos "text node longer than %d bytes"
            st.limits.max_text_length;
        Buffer.add_char st.buf c;
        advance st
      end;
      loop ()
  in
  loop ();
  Obs.add_to ?obs "sax.events" st.n_events;
  Obs.add_to ?obs "sax.elements" st.n_elements;
  Obs.add_to ?obs "sax.text_nodes" st.n_text;
  Obs.max_to ?obs "sax.max_depth" st.max_depth;
  st.acc

type error = { position : int; message : string; kind : [ `Malformed | `Limit ] }

let fold_result ?obs ?limits input ~init ~f =
  match fold ?obs ?limits input ~init ~f with
  | acc -> Ok acc
  | exception Malformed { position; message } ->
    Error { position; message; kind = `Malformed }
  | exception Limit { position; message } ->
    Error { position; message; kind = `Limit }

let iter ?obs ?limits input ~f = fold ?obs ?limits input ~init:() ~f:(fun () e -> f e)

let events input = List.rev (fold input ~init:[] ~f:(fun acc e -> e :: acc))
