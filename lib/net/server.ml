(* Single-domain TCP front end. One select loop owns the listener and every
   connection; sockets are non-blocking and each connection carries its own
   read/write buffers, so a slow or hostile client can stall only itself.
   Request payloads route through Serve.handle_request — the same verb
   table the stdin transport uses — so the two transports cannot drift. *)

type config = {
  host : string;
  port : int;
  max_connections : int;
  idle_timeout_s : float option;
  max_frame_bytes : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_connections = 64;
    idle_timeout_s = Some 60.0;
    max_frame_bytes = Frame.default_max_payload;
  }

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  wbuf : Buffer.t;  (* encoded response frames awaiting the socket *)
  mutable woff : int;  (* bytes of [wbuf] already written *)
  mutable last_activity : float;
  mutable greeted : bool;  (* HELLO accepted; requests allowed *)
  mutable closing : bool;  (* drain [wbuf], then close *)
  mutable close_deadline : float;  (* give up draining after this *)
  server : Engine.Serve.server;
  extra : string -> string -> string option;
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  config : config;
  stop_flag : bool Atomic.t;
  mutable conns : conn list;
  accepted : int Atomic.t;
  refused : int Atomic.t;
  served : int Atomic.t;
}

(* How long a closing connection gets to drain its final ERR/response
   bytes before being dropped, and the select granularity (which bounds
   how quickly [stop] is noticed). *)
let drain_grace_s = 2.0
let select_interval_s = 0.05

let err kind fmt =
  Format.kasprintf
    (fun m -> Printf.sprintf "ERR %s %s" (Core.Error.kind_name kind) m)
    fmt

(* A peer that disappears mid-write must surface as EPIPE (handled per
   connection), not kill the process: both endpoints of this transport
   ignore SIGPIPE. *)
let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let create config =
  match
    ignore_sigpipe ();
    let addr = Unix.inet_addr_of_string config.host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, config.port));
       Unix.listen fd 128;
       Unix.set_nonblock fd
     with e ->
       Unix.close fd;
       raise e);
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> config.port
    in
    {
      listen_fd = fd;
      bound_port;
      config;
      stop_flag = Atomic.make false;
      conns = [];
      accepted = Atomic.make 0;
      refused = Atomic.make 0;
      served = Atomic.make 0;
    }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Core.Error.make Core.Error.Io_error
         (Printf.sprintf "cannot listen on %s:%d: %s" config.host config.port
            (Unix.error_message e)))
  | exception Failure _ ->
    Error
      (Core.Error.make Core.Error.Io_error
         (Printf.sprintf "invalid bind address %S" config.host))

let port t = t.bound_port
let stop t = Atomic.set t.stop_flag true
let connections_accepted t = Atomic.get t.accepted
let connections_refused t = Atomic.get t.refused
let frames_served t = Atomic.get t.served

let enqueue t conn payload =
  Frame.encode conn.wbuf payload;
  Atomic.incr t.served

let begin_close conn now =
  if not conn.closing then begin
    conn.closing <- true;
    conn.close_deadline <- now +. drain_grace_s
  end

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

(* One request frame -> one response payload. The frame's own lines feed
   BATCH/PROFILE payload pulls; anything left after the request answered is
   a client framing bug and is named rather than silently dropped. *)
let respond ?max_batch conn payload =
  let lines = ref (String.split_on_char '\n' payload) in
  let read_line () =
    match !lines with
    | [] -> None
    | l :: tl ->
      lines := tl;
      Some l
  in
  let rec first_request () =
    match read_line () with
    | None -> None
    | Some l when String.trim l = "" -> first_request ()
    | Some l -> Some l
  in
  match first_request () with
  | None -> err Core.Error.Malformed_query "empty request frame"
  | Some req ->
    let response =
      Engine.Serve.handle_request ?max_batch ~extra:conn.extra conn.server
        ~read_line req
    in
    let leftover =
      List.length (List.filter (fun l -> String.trim l <> "") !lines)
    in
    if leftover > 0 then
      err Core.Error.Malformed_query
        "frame carries %d line(s) after the request (one request per frame)"
        leftover
    else
      (match response with
       | Some r -> r
       | None -> err Core.Error.Internal "request line vanished")

(* Drain every complete frame out of the connection's read buffer. Framing
   violations (oversized length field, CRC failure) poison the byte stream
   — there is no resync point — so they answer once and close. *)
let process_read_buffer ?max_batch ?on_request t conn now =
  let continue = ref true in
  while !continue && not conn.closing do
    match
      Frame.decode ~max_payload:t.config.max_frame_bytes conn.rbuf ~off:0
        ~len:conn.rlen
    with
    | Frame.Need_more -> continue := false
    | Frame.Too_large n ->
      enqueue t conn
        (err Core.Error.Limit_exceeded
           "frame length %d exceeds limit=%d (server --max-frame)" n
           t.config.max_frame_bytes);
      begin_close conn now
    | Frame.Crc_mismatch ->
      enqueue t conn
        (err Core.Error.Malformed_query
           "frame CRC-32 mismatch; closing connection");
      begin_close conn now
    | Frame.Frame { payload; consumed } ->
      let rest = conn.rlen - consumed in
      Bytes.blit conn.rbuf consumed conn.rbuf 0 rest;
      conn.rlen <- rest;
      if not conn.greeted then
        (match Frame.parse_hello payload with
         | Ok _ ->
           conn.greeted <- true;
           enqueue t conn Frame.hello_ok
         | Error msg ->
           enqueue t conn msg;
           begin_close conn now)
      else begin
        enqueue t conn (respond ?max_batch conn payload);
        match on_request with None -> () | Some f -> f ()
      end
  done

let handle_readable ?max_batch ?on_request t conn now =
  (* Grow the read buffer as needed; [decode] rejects oversized length
     fields before the payload accumulates, so residency is bounded by
     max_frame_bytes + one read chunk. *)
  let chunk = 65536 in
  if Bytes.length conn.rbuf - conn.rlen < chunk then begin
    let bigger = Bytes.create ((2 * Bytes.length conn.rbuf) + chunk) in
    Bytes.blit conn.rbuf 0 bigger 0 conn.rlen;
    conn.rbuf <- bigger
  end;
  match Unix.read conn.fd conn.rbuf conn.rlen chunk with
  | 0 -> close_conn t conn (* peer EOF *)
  | n ->
    conn.rlen <- conn.rlen + n;
    conn.last_activity <- now;
    process_read_buffer ?max_batch ?on_request t conn now
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t conn

let pending_bytes conn = Buffer.length conn.wbuf - conn.woff

let handle_writable t conn =
  let n = pending_bytes conn in
  if n > 0 then
    match
      Unix.write_substring conn.fd (Buffer.sub conn.wbuf conn.woff n) 0 n
    with
    | written ->
      conn.woff <- conn.woff + written;
      if conn.woff = Buffer.length conn.wbuf then begin
        Buffer.clear conn.wbuf;
        conn.woff <- 0
      end
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error (_, _, _) -> close_conn t conn

let accept_pending t ~make_session now =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _addr ->
      if List.length t.conns >= t.config.max_connections then begin
        (* Refuse at the door: one best-effort ERR frame naming the cap,
           then close. The fd is still blocking here; a peer that will not
           read a 100-byte frame forfeits its diagnostic. *)
        Atomic.incr t.refused;
        let payload =
          err Core.Error.Overloaded
            "connection count %d exceeds limit=%d (server --max-conns)"
            (List.length t.conns + 1)
            t.config.max_connections
        in
        let framed = Frame.encode_string payload in
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        (try
           ignore
             (Unix.write_substring fd framed 0 (String.length framed))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Atomic.incr t.accepted;
        Unix.set_nonblock fd;
        let server, extra = make_session () in
        t.conns <-
          {
            fd;
            rbuf = Bytes.create 65536;
            rlen = 0;
            wbuf = Buffer.create 4096;
            woff = 0;
            last_activity = now;
            greeted = false;
            closing = false;
            close_deadline = 0.0;
            server;
            extra;
          }
          :: t.conns
      end
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let sweep_timeouts t now =
  match t.config.idle_timeout_s with
  | None -> ()
  | Some limit ->
    List.iter
      (fun conn ->
        if (not conn.closing) && now -. conn.last_activity > limit then begin
          enqueue t conn
            (err Core.Error.Timeout
               "connection idle past limit=%d ms (server --idle-timeout-ms)"
               (int_of_float (limit *. 1000.0)));
          begin_close conn now
        end)
      t.conns

let sweep_closing t now =
  List.iter
    (fun conn ->
      if conn.closing && (pending_bytes conn = 0 || now > conn.close_deadline)
      then close_conn t conn)
    t.conns

let shutdown t =
  (* Best-effort final flush so a drain signal still delivers queued
     responses, then close everything: no leaked fds across restarts. *)
  List.iter
    (fun conn ->
      (try handle_writable t conn with _ -> ());
      try Unix.close conn.fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- [];
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let run ?on_request ?max_batch t ~make_session () =
  Fun.protect ~finally:(fun () -> shutdown t) @@ fun () ->
  while not (Atomic.get t.stop_flag) do
    let reads = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
    let writes =
      List.filter_map
        (fun c -> if pending_bytes c > 0 then Some c.fd else None)
        t.conns
    in
    match Unix.select reads writes [] select_interval_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      let now = Unix.gettimeofday () in
      if List.memq t.listen_fd readable then
        accept_pending t ~make_session now;
      (* Snapshot: handlers mutate [t.conns] as they close peers. *)
      let snapshot = t.conns in
      List.iter
        (fun conn ->
          if List.memq conn.fd writable && List.memq conn t.conns then
            handle_writable t conn)
        snapshot;
      List.iter
        (fun conn ->
          if
            List.memq conn.fd readable
            && List.memq conn t.conns
            && not conn.closing
          then handle_readable ?max_batch ?on_request t conn now)
        snapshot;
      sweep_timeouts t now;
      sweep_closing t now
  done
