(* Blocking framed client. The server end is the non-blocking half of the
   pair; here plain write-all/read-until-frame loops are exactly right —
   one in-flight request at a time, no concurrency. *)

type t = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  mutable greeting : string;
  mutable open_ : bool;
}

let io_error fmt =
  Format.kasprintf
    (fun m -> Error (Core.Error.make Core.Error.Io_error m))
    fmt

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let send t payload =
  match write_all t.fd (Frame.encode_string payload) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    t.open_ <- false;
    io_error "write failed: %s" (Unix.error_message e)

(* Read until one complete frame decodes. The server caps its own frames
   at the request limit's scale; we accept up to the codec default. *)
let recv t =
  let rec loop () =
    match Frame.decode t.rbuf ~off:0 ~len:t.rlen with
    | Frame.Frame { payload; consumed } ->
      let rest = t.rlen - consumed in
      Bytes.blit t.rbuf consumed t.rbuf 0 rest;
      t.rlen <- rest;
      Ok payload
    | Frame.Too_large n -> io_error "server frame length %d over client cap" n
    | Frame.Crc_mismatch -> io_error "server frame failed its CRC-32 check"
    | Frame.Need_more ->
      let chunk = 65536 in
      if Bytes.length t.rbuf - t.rlen < chunk then begin
        let bigger = Bytes.create ((2 * Bytes.length t.rbuf) + chunk) in
        Bytes.blit t.rbuf 0 bigger 0 t.rlen;
        t.rbuf <- bigger
      end;
      (match Unix.read t.fd t.rbuf t.rlen chunk with
       | 0 ->
         t.open_ <- false;
         io_error "server closed the connection mid-frame"
       | n ->
         t.rlen <- t.rlen + n;
         loop ()
       | exception Unix.Unix_error (e, _, _) ->
         t.open_ <- false;
         io_error "read failed: %s" (Unix.error_message e))
  in
  loop ()

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let connect ?(host = "127.0.0.1") ~port () =
  match
    (* A server that closes first must surface as EPIPE on our next write,
       not kill the process. *)
    if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let addr = Unix.inet_addr_of_string host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e ->
       Unix.close fd;
       raise e);
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
    io_error "cannot connect to %s:%d: %s" host port (Unix.error_message e)
  | exception Failure _ -> io_error "invalid host address %S" host
  | fd ->
    let t =
      { fd; rbuf = Bytes.create 65536; rlen = 0; greeting = ""; open_ = true }
    in
    (match send t Frame.hello with
     | Error e ->
       close t;
       Error e
     | Ok () ->
       (match recv t with
        | Error e ->
          close t;
          Error e
        | Ok reply
          when String.length reply >= 2 && String.sub reply 0 2 = "OK" ->
          t.greeting <- reply;
          Ok t
        | Ok refusal ->
          close t;
          Error
            (Core.Error.make Core.Error.Io_error
               (Printf.sprintf "handshake refused: %s" refusal))))

let greeting t = t.greeting

let request t payload =
  if not t.open_ then io_error "connection is closed"
  else
    match send t payload with
    | Error e -> Error e
    | Ok () -> recv t
