(** The TCP edge of [xseed serve]: a single-threaded, non-blocking
    accept/select loop speaking {!Frame}s over loopback or LAN sockets.

    The loop runs on the calling (main) domain and owns every socket; a
    request frame is answered by routing its payload lines through the
    generic {!Engine.Serve} layer — when the session fronts an
    {!Engine.Pool}, the estimate work is thereby fed to the pool's worker
    domains, and when it fronts a {!Engine.Registry} session the registry
    verbs ([USE]/[LOAD]/[TENANTS]) resolve per connection. Each accepted
    connection gets a fresh session from [make_session], so tenant
    selection is per-client state exactly as a connection expects.

    {b Failure model} (DESIGN.md §14). The frame length field is validated
    against [max_frame_bytes] before any allocation; an oversized or
    CRC-failing frame is answered with one [ERR] frame naming the limit in
    the [limit=<n>] form and the connection is closed (a byte stream that
    lied about its framing cannot be resynced). A connection beyond
    [max_connections] is refused the same way ([ERR overloaded …
    limit=<n>]) at accept. A connection idle past [idle_timeout_s] is sent
    [ERR timeout … limit=<n>] and closed. Partial reads and partial writes
    (slow-loris clients) never block the loop: per-connection read/write
    buffers carry the incomplete bytes across select rounds, and a closing
    connection that cannot drain its write buffer within a grace period is
    dropped. The loop itself never raises on client misbehaviour —
    malformed payload text is the {!Engine.Serve} layer's [ERR] line,
    malformed framing is this module's. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 = ephemeral; read the bound port with {!port} *)
  max_connections : int;
  idle_timeout_s : float option;  (** [None] = never time out *)
  max_frame_bytes : int;  (** per-frame payload cap *)
}

val default_config : config
(** loopback, port 0, 64 connections, 60 s idle timeout, 1 MiB frames. *)

type t

val create : config -> (t, Core.Error.t) result
(** Bind and listen (non-blocking). [Error Io_error] when the address is
    unavailable. *)

val port : t -> int
(** The bound port — the OS's pick when the config said 0. *)

val stop : t -> unit
(** Ask {!run} to exit after the current select round. Domain-safe; the
    fault-injection harness calls it from another domain. *)

val run :
  ?on_request:(unit -> unit) ->
  ?max_batch:int ->
  t ->
  make_session:
    (unit -> Engine.Serve.server * (string -> string -> string option)) ->
  unit ->
  unit
(** Serve until {!stop} (or an exception — the CLI's drain signal unwinds
    through here). Every exit path first flushes pending response bytes
    best-effort and closes every connection plus the listener, so a
    SIGTERM drain closes connections cleanly rather than leaking them.
    [make_session] is called once per accepted connection and returns the
    serve vtable plus the extra-verb handler ({!Engine.Serve.run}'s
    [?extra]); [on_request]/[max_batch] as in {!Engine.Serve.run}. *)

val connections_accepted : t -> int
val connections_refused : t -> int
(** Accept-time refusals under the connection cap. *)

val frames_served : t -> int
(** Response frames written (handshakes included). *)
