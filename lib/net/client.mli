(** A tiny blocking client for the framed TCP transport — what
    [xseed client], the tests and the smoke scripts speak.

    {!connect} dials, sends the {!Frame.hello} handshake and checks the
    server's reply; {!request} then maps one request payload to one
    response payload. Multi-line requests (a [BATCH n] with its payload
    lines) go in one payload string, newline-separated, exactly as the
    frame format requires. *)

type t

val connect :
  ?host:string -> port:int -> unit -> (t, Core.Error.t) result
(** Dial [host] (default ["127.0.0.1"]) and perform the HELLO handshake.
    [Error] carries connect failures ([Io_error]) or the server's
    handshake refusal verbatim. *)

val greeting : t -> string
(** The server's handshake payload ([OK xseed <version> protocol <n>]). *)

val request : t -> string -> (string, Core.Error.t) result
(** Send one request payload and wait for the one response payload. The
    response may be multi-line (METRICS, BATCH, RECENT). [Error Io_error]
    when the server closed or the stream was corrupted mid-frame; the
    connection is then unusable. *)

val close : t -> unit
(** Close the socket; idempotent. *)
