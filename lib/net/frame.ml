(* Wire framing for the TCP transport. The codec is pure (bytes in,
   decision out) so the fault-injection harness can hammer it without a
   socket; the server and client share it byte for byte. *)

let header_bytes = 8
let default_max_payload = 1 lsl 20

let put_u32_be buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32_be b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let encode buf payload =
  put_u32_be buf (String.length payload);
  put_u32_be buf (Core.Crc32.digest payload);
  Buffer.add_string buf payload

let encode_string payload =
  let buf = Buffer.create (header_bytes + String.length payload) in
  encode buf payload;
  Buffer.contents buf

type decode_result =
  | Frame of { payload : string; consumed : int }
  | Need_more
  | Too_large of int
  | Crc_mismatch

let decode ?(max_payload = default_max_payload) b ~off ~len =
  if len < header_bytes then Need_more
  else begin
    let plen = get_u32_be b off in
    (* The length field is attacker-controlled: reject before sizing any
       read or allocation by it. *)
    if plen > max_payload then Too_large plen
    else if len < header_bytes + plen then Need_more
    else begin
      let crc = get_u32_be b (off + 4) in
      let payload = Bytes.sub_string b (off + header_bytes) plen in
      if Core.Crc32.digest payload <> crc then Crc_mismatch
      else Frame { payload; consumed = header_bytes + plen }
    end
  end

let hello = Printf.sprintf "HELLO xseed %d" Engine.Serve.protocol_version

let hello_ok =
  Printf.sprintf "OK xseed %s protocol %d" Engine.Serve.version
    Engine.Serve.protocol_version

let parse_hello payload =
  match String.split_on_char ' ' (String.trim payload) with
  | [ "HELLO"; "xseed"; v ] ->
    (match int_of_string_opt v with
     | Some p when p = Engine.Serve.protocol_version -> Ok p
     | Some p ->
       Error
         (Printf.sprintf
            "ERR malformed-query unsupported protocol %d (server speaks %d)" p
            Engine.Serve.protocol_version)
     | None ->
       Error "ERR malformed-query HELLO expects 'HELLO xseed <protocol>'")
  | _ ->
    Error
      "ERR malformed-query expected 'HELLO xseed <protocol>' as the first \
       frame"
