(** The TCP wire format: length-prefixed, checksummed binary frames.

    {v
    +-----------------+------------------+------------------+
    | length (u32 BE) | CRC-32 (u32 BE)  | payload (length) |
    +-----------------+------------------+------------------+
    v}

    [length] counts payload bytes only; the CRC (IEEE 802.3,
    {!Core.Crc32} — the same polynomial as the synopsis v2 format and the
    feedback journal) covers the payload. A frame's payload is serve-
    protocol text: the request line, plus — for [BATCH n]/[PROFILE n] —
    the [n] payload lines, newline-separated, all in one frame. One
    request frame yields exactly one response frame (whose payload may be
    multi-line, e.g. a METRICS scrape).

    {b Handshake.} The first frame a client sends must carry
    [HELLO xseed <protocol>] ({!hello}); the server answers
    [OK xseed <version> protocol <n>] ({!hello_ok}) and only then accepts
    requests. A wrong magic word or unsupported protocol revision is
    answered with one [ERR] frame and the connection is closed — the
    version gate runs before any synopsis is touched. *)

val header_bytes : int
(** 8: the two big-endian u32 fields. *)

val default_max_payload : int
(** 1 MiB. A frame claiming more is refused before its payload is read —
    the length field is attacker-controlled, so it must never size an
    allocation unchecked. *)

val encode : Buffer.t -> string -> unit
(** Append one complete frame ([payload] under header) to the buffer. *)

val encode_string : string -> string
(** One frame as a string (the test/fault-injection spelling). *)

type decode_result =
  | Frame of { payload : string; consumed : int }
      (** a complete, CRC-valid frame; [consumed] bytes were used *)
  | Need_more  (** incomplete header or payload — read more bytes *)
  | Too_large of int
      (** the header claims this payload length, over [max_payload];
          unrecoverable (the stream cannot be resynced) *)
  | Crc_mismatch
      (** the payload is fully present but fails its checksum;
          unrecoverable *)

val decode : ?max_payload:int -> Bytes.t -> off:int -> len:int -> decode_result
(** Decode the first frame of [len] bytes starting at [off]. Never raises
    on arbitrary bytes; [max_payload] defaults to {!default_max_payload}. *)

val hello : string
(** The client's first payload: [HELLO xseed <protocol_version>]. *)

val hello_ok : string
(** The server's handshake reply:
    [OK xseed <version> protocol <protocol_version>]. *)

val parse_hello : string -> (int, string) result
(** The protocol revision out of a [HELLO xseed <n>] payload; [Error]
    carries the one-line diagnostic to send back before closing. *)
