(* A bounded multi-producer multi-consumer queue on a mutex and two
   condition variables — the only blocking structure on the pool's request
   path. The ring never allocates after creation; fairness comes from the
   runtime's condition-variable wakeup order, which is all the pool needs
   (jobs carry their own submission sequence numbers). *)

type 'a t = {
  ring : 'a option array;
  mutable head : int;  (* next pop position *)
  mutable len : int;  (* occupied slots *)
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Work_queue.create: capacity %d < 1" capacity);
  { ring = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create () }

let capacity t = Array.length t.ring

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n

let push t v =
  Mutex.lock t.lock;
  let cap = Array.length t.ring in
  while t.len = cap && not t.closed do
    Condition.wait t.not_full t.lock
  done;
  if t.closed then begin
    Mutex.unlock t.lock;
    false
  end
  else begin
    t.ring.((t.head + t.len) mod cap) <- Some v;
    t.len <- t.len + 1;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock;
    true
  end

let pop t =
  Mutex.lock t.lock;
  while t.len = 0 && not t.closed do
    Condition.wait t.not_empty t.lock
  done;
  if t.len = 0 then begin
    (* closed and drained *)
    Mutex.unlock t.lock;
    None
  end
  else begin
    let v = t.ring.(t.head) in
    t.ring.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.len <- t.len - 1;
    Condition.signal t.not_full;
    Mutex.unlock t.lock;
    v
  end

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock

let closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c
