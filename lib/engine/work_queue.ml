(* A bounded multi-producer multi-consumer queue on a mutex and two
   condition variables — the only blocking structure on the pool's request
   path. The ring never allocates after creation; fairness comes from the
   runtime's condition-variable wakeup order, which is all the pool needs
   (jobs carry their own submission sequence numbers). *)

type stats = {
  pushes : int;
  pops : int;
  push_waits : int;  (* pushes that found the ring full and blocked *)
  pop_waits : int;  (* pops that found the ring empty and blocked *)
  push_wait_s : float;  (* total producer blocking time *)
  pop_wait_s : float;  (* total consumer blocking time *)
  max_occupancy : int;  (* high-water mark of occupied slots *)
}

type 'a t = {
  ring : 'a option array;
  mutable head : int;  (* next pop position *)
  mutable len : int;  (* occupied slots *)
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  (* Contention accounting, all written under [lock]. The clock is only
     read when an operation actually blocks, so the uncontended fast path
     stays a lock/unlock pair. *)
  mutable pushes : int;
  mutable pops : int;
  mutable push_waits : int;
  mutable pop_waits : int;
  mutable push_wait_s : float;
  mutable pop_wait_s : float;
  mutable max_occupancy : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Work_queue.create: capacity %d < 1" capacity);
  { ring = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    pushes = 0;
    pops = 0;
    push_waits = 0;
    pop_waits = 0;
    push_wait_s = 0.0;
    pop_wait_s = 0.0;
    max_occupancy = 0 }

let capacity t = Array.length t.ring

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n

let push t v =
  Mutex.lock t.lock;
  let cap = Array.length t.ring in
  if t.len = cap && not t.closed then begin
    let w0 = Obs.now_mono () in
    t.push_waits <- t.push_waits + 1;
    while t.len = cap && not t.closed do
      Condition.wait t.not_full t.lock
    done;
    t.push_wait_s <- t.push_wait_s +. (Obs.now_mono () -. w0)
  end;
  if t.closed then begin
    Mutex.unlock t.lock;
    false
  end
  else begin
    t.ring.((t.head + t.len) mod cap) <- Some v;
    t.len <- t.len + 1;
    t.pushes <- t.pushes + 1;
    if t.len > t.max_occupancy then t.max_occupancy <- t.len;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock;
    true
  end

(* Non-blocking admission for shed-newest policies: a full ring answers
   [`Full] immediately instead of waiting for a consumer. *)
let try_push t v =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    `Closed
  end
  else if t.len = Array.length t.ring then begin
    Mutex.unlock t.lock;
    `Full
  end
  else begin
    t.ring.((t.head + t.len) mod Array.length t.ring) <- Some v;
    t.len <- t.len + 1;
    t.pushes <- t.pushes + 1;
    if t.len > t.max_occupancy then t.max_occupancy <- t.len;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock;
    `Ok
  end

let pop t =
  Mutex.lock t.lock;
  if t.len = 0 && not t.closed then begin
    let w0 = Obs.now_mono () in
    t.pop_waits <- t.pop_waits + 1;
    while t.len = 0 && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    t.pop_wait_s <- t.pop_wait_s +. (Obs.now_mono () -. w0)
  end;
  if t.len = 0 then begin
    (* closed and drained *)
    Mutex.unlock t.lock;
    None
  end
  else begin
    let v = t.ring.(t.head) in
    t.ring.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.len <- t.len - 1;
    t.pops <- t.pops + 1;
    Condition.signal t.not_full;
    Mutex.unlock t.lock;
    v
  end

let stats t =
  Mutex.lock t.lock;
  let s =
    { pushes = t.pushes;
      pops = t.pops;
      push_waits = t.push_waits;
      pop_waits = t.pop_waits;
      push_wait_s = t.push_wait_s;
      pop_wait_s = t.pop_wait_s;
      max_occupancy = t.max_occupancy }
  in
  Mutex.unlock t.lock;
  s

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock

let closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c
