(* Sharded bounded deques with tail stealing — the only blocking structure
   on the pool's request path. Since PR 10 the unit of transfer is a chunk
   (a contiguous slice of a batch), so operations are rare enough that one
   global mutex covers every deque: its acquire/release pairs order memory
   between producers, owners, and thieves, which the pool relies on both
   for publishing its shared EPT and for handing mutable chunk cursors
   from a victim to a thief. Rings never allocate after creation; fairness
   comes from the runtime's condition-variable wakeup order (chunks carry
   their own submission sequence numbers). *)

type stats = {
  pushes : int;
  pops : int;
  steals : int;  (* pops satisfied from another shard's deque *)
  push_waits : int;  (* pushes that found the deque full and blocked *)
  pop_waits : int;  (* pops that found nothing runnable and blocked *)
  push_wait_s : float;  (* total producer blocking time *)
  pop_wait_s : float;  (* total consumer blocking time *)
  max_occupancy : int;  (* high-water mark of occupied slots, all shards *)
}

(* One ring per shard, owner pops at [head], producers and returned
   split-halves append at the tail, thieves take from the tail. *)
type 'a deque = {
  ring : 'a option array;
  mutable head : int;
  mutable len : int;
}

type 'a t = {
  deques : 'a deque array;
  steal_enabled : bool;
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  (* Contention accounting, all written under [lock]. The clock is only
     read when an operation actually blocks, so the uncontended fast path
     stays a lock/unlock pair. *)
  mutable pushes : int;
  mutable pops : int;
  mutable steals : int;
  mutable push_waits : int;
  mutable pop_waits : int;
  mutable push_wait_s : float;
  mutable pop_wait_s : float;
  mutable max_occupancy : int;
}

let create ?(steal = true) ~shards ~capacity () =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Work_queue.create: shards %d < 1" shards);
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Work_queue.create: capacity %d < 1" capacity);
  { deques =
      Array.init shards (fun _ ->
          { ring = Array.make capacity None; head = 0; len = 0 });
    steal_enabled = steal;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    pushes = 0;
    pops = 0;
    steals = 0;
    push_waits = 0;
    pop_waits = 0;
    push_wait_s = 0.0;
    pop_wait_s = 0.0;
    max_occupancy = 0 }

let shards t = Array.length t.deques
let capacity t = Array.length t.deques.(0).ring

let check_shard t shard =
  if shard < 0 || shard >= Array.length t.deques then
    invalid_arg
      (Printf.sprintf "Work_queue: shard %d out of range [0,%d)" shard
         (Array.length t.deques))

let total_len t = Array.fold_left (fun acc d -> acc + d.len) 0 t.deques

let length t =
  Mutex.lock t.lock;
  let n = total_len t in
  Mutex.unlock t.lock;
  n

let deque_push_tail d v =
  let cap = Array.length d.ring in
  d.ring.((d.head + d.len) mod cap) <- Some v;
  d.len <- d.len + 1

let deque_pop_head d =
  let cap = Array.length d.ring in
  let v = d.ring.(d.head) in
  d.ring.(d.head) <- None;
  d.head <- (d.head + 1) mod cap;
  d.len <- d.len - 1;
  match v with Some v -> v | None -> assert false

let deque_pop_tail d =
  let cap = Array.length d.ring in
  let i = (d.head + d.len - 1) mod cap in
  let v = d.ring.(i) in
  d.ring.(i) <- None;
  d.len <- d.len - 1;
  match v with Some v -> v | None -> assert false

let note_push t =
  t.pushes <- t.pushes + 1;
  let occ = total_len t in
  if occ > t.max_occupancy then t.max_occupancy <- occ

let push t ~shard v =
  check_shard t shard;
  Mutex.lock t.lock;
  let d = t.deques.(shard) in
  let cap = Array.length d.ring in
  if d.len = cap && not t.closed then begin
    let w0 = Obs.now_mono () in
    t.push_waits <- t.push_waits + 1;
    while d.len = cap && not t.closed do
      Condition.wait t.not_full t.lock
    done;
    t.push_wait_s <- t.push_wait_s +. (Obs.now_mono () -. w0)
  end;
  if t.closed then begin
    Mutex.unlock t.lock;
    false
  end
  else begin
    deque_push_tail d v;
    note_push t;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.lock;
    true
  end

(* Non-blocking admission for shed-newest policies: a full deque answers
   [`Full] immediately instead of waiting for a consumer. *)
let try_push t ~shard v =
  check_shard t shard;
  Mutex.lock t.lock;
  let d = t.deques.(shard) in
  if t.closed then begin
    Mutex.unlock t.lock;
    `Closed
  end
  else if d.len = Array.length d.ring then begin
    Mutex.unlock t.lock;
    `Full
  end
  else begin
    deque_push_tail d v;
    note_push t;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.lock;
    `Ok
  end

(* Steal policy, evaluated under the lock: scan the other shards starting
   after the thief, prefer the longest deque (first scanned wins ties).
   A victim with ≥ 2 chunks donates its tail chunk whole; a victim down
   to its last chunk is only relieved of half of it — [split] divides the
   chunk, the keep-half goes back at the victim's tail, the thief takes
   the rest. [split] answering [None] marks the lone chunk unsplittable
   (below the granularity floor), so the victim keeps it: a busy shard is
   never robbed of its only sub-minimal chunk. That rule is what makes
   the deterministic stealing tests possible — a rendezvous chunk routed
   to one shard as a lone length-1 chunk is guaranteed to park exactly
   that shard. *)
let try_steal t ~shard ~split =
  let n = Array.length t.deques in
  let best = ref (-1) in
  let best_len = ref 0 in
  for k = 1 to n - 1 do
    let v = (shard + k) mod n in
    let len = t.deques.(v).len in
    if len > !best_len then begin
      best := v;
      best_len := len
    end
  done;
  if !best < 0 then None
  else
    let d = t.deques.(!best) in
    if d.len >= 2 then begin
      let v = deque_pop_tail d in
      t.steals <- t.steals + 1;
      Some (v, !best)
    end
    else
      let v = deque_pop_tail d in
      match split v with
      | Some (keep, take) ->
          deque_push_tail d keep;
          t.steals <- t.steals + 1;
          Some (take, !best)
      | None ->
          (* Unsplittable lone chunk: put it back untouched. Other shards
             may still have work — scan the rest, longest-first, by
             temporarily hiding this victim. In practice deques hold at
             most a few chunks, so the rescan is cheap. *)
          deque_push_tail d v;
          let found = ref None in
          for k = 1 to n - 1 do
            let w = (shard + k) mod n in
            if w <> !best && !found = None then begin
              let dw = t.deques.(w) in
              if dw.len >= 2 then begin
                let v = deque_pop_tail dw in
                t.steals <- t.steals + 1;
                found := Some (v, w)
              end
              else if dw.len = 1 then begin
                let v = deque_pop_tail dw in
                match split v with
                | Some (keep, take) ->
                    deque_push_tail dw keep;
                    t.steals <- t.steals + 1;
                    found := Some (take, w)
                | None -> deque_push_tail dw v
              end
            end
          done;
          !found

(* Dequeue for worker [shard]: own deque head first (FIFO in submission
   order), otherwise steal from the tail of the busiest other deque.
   [stolen_from] in the result names the victim so the caller can emit a
   steal event. Blocks while nothing is runnable; [None] only when the
   queue is closed and fully drained. *)
let pop t ~shard ~split =
  check_shard t shard;
  Mutex.lock t.lock;
  let d = t.deques.(shard) in
  let take () =
    if d.len > 0 then Some (deque_pop_head d, -1)
    else if t.steal_enabled then
      match try_steal t ~shard ~split with
      | Some (v, victim) -> Some (v, victim)
      | None -> None
    else None
  in
  let rec wait_loop blocked w0 =
    match take () with
    | Some (v, victim) ->
        if blocked then t.pop_wait_s <- t.pop_wait_s +. (Obs.now_mono () -. w0);
        t.pops <- t.pops + 1;
        Condition.broadcast t.not_full;
        (* Draining the last chunk after close must re-wake consumers that
           went back to sleep while it was still reachable, or they would
           miss the closed-and-drained exit and hang the shutdown join. *)
        if t.closed && total_len t = 0 then Condition.broadcast t.not_empty;
        Mutex.unlock t.lock;
        Some (v, if victim < 0 then None else Some victim)
    | None ->
        if t.closed && total_len t = 0 then begin
          if blocked then
            t.pop_wait_s <- t.pop_wait_s +. (Obs.now_mono () -. w0);
          Mutex.unlock t.lock;
          None
        end
        else if t.closed && d.len = 0 && not t.steal_enabled then begin
          (* Closed, own deque drained, stealing off: nothing will ever
             arrive for this shard again. *)
          if blocked then
            t.pop_wait_s <- t.pop_wait_s +. (Obs.now_mono () -. w0);
          Mutex.unlock t.lock;
          None
        end
        else begin
          let blocked, w0 =
            if blocked then (blocked, w0)
            else begin
              t.pop_waits <- t.pop_waits + 1;
              (true, Obs.now_mono ())
            end
          in
          Condition.wait t.not_empty t.lock;
          wait_loop blocked w0
        end
  in
  wait_loop false 0.0

let stats t =
  Mutex.lock t.lock;
  let s =
    { pushes = t.pushes;
      pops = t.pops;
      steals = t.steals;
      push_waits = t.push_waits;
      pop_waits = t.pop_waits;
      push_wait_s = t.push_wait_s;
      pop_wait_s = t.pop_wait_s;
      max_occupancy = t.max_occupancy }
  in
  Mutex.unlock t.lock;
  s

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock

let closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c
