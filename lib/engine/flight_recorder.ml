(* A fixed-size ring of per-query flight records. Recording is a handful of
   field writes plus one array store, so it can sit on the serving hot path;
   the ring overwrites oldest-first and never allocates after creation
   beyond the records themselves. *)

type cache_status = Hit | Miss | Bypass | Timed_out | Shed | Audited

let cache_status_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"
  | Timed_out -> "timeout"
  | Shed -> "shed"
  | Audited -> "audit"

type audit = {
  audit_actual : int;
  audit_qerror : float;
  audit_worst_step : string;
  audit_worst_axis : string;
  audit_contribution : float;
}

type record = {
  seq : int;
  query : string;
  hash : int;
  cache : cache_status;
  estimate : float;
  canonicalize_s : float;
  ept_s : float;
  match_s : float;
  total_s : float;
  ept_nodes : int;
  frontier_peak : int;
  degenerate_clamps : int;
  het_hits : int;
  feedback_round : int;
  tenant : string option;
  audit : audit option;
}

type t = {
  ring : record option array;
  mutable next_seq : int;  (* total records ever written *)
  mutable ring_tenant : string option;
      (* stamped on every record this ring writes; the registry sets it so
         per-tenant flight streams stay attributable after a merge *)
}

let create ?(capacity = 256) () =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Flight_recorder.create: capacity %d < 1" capacity);
  { ring = Array.make capacity None; next_seq = 0; ring_tenant = None }

let set_tenant t name = t.ring_tenant <- Some name

let capacity t = Array.length t.ring
let total t = t.next_seq

(* [?seq] overrides the record's sequence number with an externally issued
   one (the pool's global submission counter), so records scattered across
   per-shard rings can be merged back into submission order; the ring still
   advances by its own write count either way. *)
let record ?seq ?audit t ~query ~hash ~cache ~estimate ~canonicalize_s ~ept_s
    ~match_s ~ept_nodes ~frontier_peak ~degenerate_clamps ~het_hits
    ~feedback_round =
  let r =
    { seq = (match seq with Some s -> s | None -> t.next_seq);
      query; hash; cache; estimate; canonicalize_s; ept_s;
      match_s; total_s = canonicalize_s +. ept_s +. match_s; ept_nodes;
      frontier_peak; degenerate_clamps; het_hits; feedback_round;
      tenant = t.ring_tenant; audit }
  in
  t.ring.(t.next_seq mod Array.length t.ring) <- Some r;
  t.next_seq <- t.next_seq + 1;
  r

(* Newest first. [n] above the live count just returns everything. *)
let recent ?n t =
  let cap = Array.length t.ring in
  let live = if t.next_seq < cap then t.next_seq else cap in
  let want = match n with None -> live | Some n -> max 0 (min n live) in
  let out = ref [] in
  for i = 0 to want - 1 do
    match t.ring.((t.next_seq - 1 - i) mod cap) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  List.rev !out

let to_json (r : record) =
  let open Obs.Json in
  Obj
    ([ ("seq", Int r.seq);
      ("query", String r.query);
      ("hash", String (Printf.sprintf "%08x" (r.hash land 0xffffffff)));
      ("cache", String (cache_status_name r.cache));
      ("estimate", Float r.estimate);
      ( "wall_us",
        Obj
          [ ("total", Float (1e6 *. r.total_s));
            ("canonicalize", Float (1e6 *. r.canonicalize_s));
            ("ept", Float (1e6 *. r.ept_s));
            ("match", Float (1e6 *. r.match_s)) ] );
      ("ept_nodes", Int r.ept_nodes);
      ("frontier_peak", Int r.frontier_peak);
      ("degenerate_clamps", Int r.degenerate_clamps);
      ("het_hits", Int r.het_hits);
      ("feedback_round", Int r.feedback_round) ]
    @ (match r.tenant with
       | None -> []
       | Some name -> [ ("tenant", String name) ])
    @ (match r.audit with
       | None -> []
       | Some a ->
         [ ( "audit",
             Obj
               [ ("actual", Int a.audit_actual);
                 ("qerror", Float a.audit_qerror);
                 ("worst_step", String a.audit_worst_step);
                 ("worst_axis", String a.audit_worst_axis);
                 ("contribution", Float a.audit_contribution) ] ) ]))

let dump_jsonl oc t =
  List.iter
    (fun r ->
      output_string oc (Obs.Json.to_string (to_json r));
      output_char oc '\n')
    (recent t)
