(* The serve line protocol, factored out of the single engine so the same
   verb surface (ESTIMATE/BATCH/FEEDBACK/EXPLAIN/STATS/METRICS/RECENT/DRIFT)
   can front either an Engine.t or a Pool.t: a server is just a record of
   closures, and the protocol layer owns parsing, error rendering, and the
   BATCH framing (which needs to pull extra request lines, hence
   [read_line]). *)

type estimate_reply = { value : float; status : Core.Explain.cache_status }

type stage_percentiles = { p50 : float; p90 : float; p99 : float }

type profile_reply = {
  profiled : int;
  queue_wait_us : stage_percentiles;
  execute_us : stage_percentiles;
  reassemble_us : stage_percentiles;
  timed_out : int;
  shed : int;
  steals : int;
  tenant : string option;
}

(* One source of truth for what VERSION reports; the CLI reuses [version]
   for its own --version string so the two cannot drift. *)
let version = "1.0.0"
let protocol_version = 1

type server = {
  estimate : string -> (estimate_reply, Core.Error.t) result;
  estimate_batch : string list -> (estimate_reply, Core.Error.t) result list;
  feedback :
    string -> actual:int -> (Feedback.outcome, Core.Error.t) result;
  explain : string -> (Core.Explain.report, Core.Error.t) result;
  stats_json : unit -> Obs.Json.t;
  metrics_text : unit -> string;
  recent : int option -> (Flight_recorder.record list, Core.Error.t) result;
  drift_json : unit -> (Obs.Json.t, Core.Error.t) result;
  profile : string list -> (profile_reply, Core.Error.t) result;
  audit : unit -> (Obs.Json.t, Core.Error.t) result;
}

(* Exact rank percentiles over raw samples (PROFILE runs are bounded by
   [max_batch], so sorting a copy is fine); zeros for an empty run — the
   protocol never emits a non-finite number. *)
let percentiles samples =
  let n = Array.length samples in
  if n = 0 then { p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else begin
    let s = Array.copy samples in
    Array.sort Float.compare s;
    let at p =
      let i = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      s.(max 0 (min (n - 1) i))
    in
    { p50 = at 0.5; p90 = at 0.9; p99 = at 0.99 }
  end

(* A BATCH larger than the configured cap is rejected before reading any
   payload lines: the reply buffers one line per query, so the count bounds
   memory. 10k is the default; [xseed serve --max-batch] overrides it, and
   the ERR diagnostic always names the live limit so clients can adapt. *)
let max_batch = 10_000

let sanitize s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let err e =
  let position =
    match Core.Error.position e with
    | Some p -> Printf.sprintf " (at %d)" p
    | None -> ""
  in
  Printf.sprintf "ERR %s %s%s"
    (Core.Error.kind_name (Core.Error.kind e))
    (sanitize (Core.Error.message e))
    position

let malformed fmt =
  Format.kasprintf
    (fun m -> err (Core.Error.make Core.Error.Malformed_query m))
    fmt

let split_verb line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line i (String.length line - i)) )

let chop_trailing_newline s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

let estimate_line = function
  | Ok { value; status } ->
    Printf.sprintf "OK %.2f %s" value (Core.Explain.cache_status_name status)
  | Error e -> err e

(* A BATCH payload line is an ESTIMATE request; the verb itself is optional
   so both "ESTIMATE //a" and a bare "//a" work. *)
let batch_query line =
  let line = String.trim line in
  let verb = "ESTIMATE " in
  let vl = String.length verb in
  if String.length line >= vl && String.sub line 0 vl = verb then
    String.trim (String.sub line vl (String.length line - vl))
  else line

let handle_batch server ~max_batch ~read_line rest =
  match int_of_string_opt rest with
  | None -> malformed "BATCH expects a non-negative integer count"
  | Some n when n < 0 -> malformed "BATCH expects a non-negative integer count"
  | Some n when n > max_batch ->
    malformed "BATCH count %d exceeds limit=%d (server --max-batch)" n
      max_batch
  | Some n ->
    (* Frame first: read exactly [n] payload lines (EOF inside the frame
       becomes a per-slot error), then answer them in submission order. *)
    let slots =
      List.init n (fun _ ->
          match read_line () with
          | Some l -> Ok (batch_query l)
          | None ->
            Result.Error
              (Core.Error.make Core.Error.Io_error
                 "unexpected end of input inside BATCH"))
    in
    let queries = List.filter_map Result.to_option slots in
    let results = ref (server.estimate_batch queries) in
    let lines =
      List.map
        (fun slot ->
          match slot with
          | Result.Error e -> err e
          | Ok _ ->
            (match !results with
             | r :: rest ->
               results := rest;
               estimate_line r
             | [] ->
               err
                 (Core.Error.make Core.Error.Internal
                    "batch reply shorter than batch")))
        slots
    in
    String.concat "\n" (Printf.sprintf "OK %d" n :: lines)

let stage_fields { p50; p90; p99 } =
  Printf.sprintf "p50=%.1f p90=%.1f p99=%.1f" p50 p90 p99

let profile_line = function
  | Error e -> err e
  | Ok p ->
    Printf.sprintf
      "OK %d queue_wait_us %s execute_us %s reassemble_us %s timeout=%d \
       shed=%d steals=%d%s"
      p.profiled
      (stage_fields p.queue_wait_us)
      (stage_fields p.execute_us)
      (stage_fields p.reassemble_us)
      p.timed_out p.shed p.steals
      (match p.tenant with
       | None -> ""
       | Some t -> Printf.sprintf " tenant=%s" t)

(* PROFILE frames like BATCH — [n] further payload lines — but answers with
   a single breakdown line, so a truncated frame is one ERR, not n. *)
let handle_profile server ~max_batch ~read_line rest =
  match int_of_string_opt rest with
  | None -> malformed "PROFILE expects a non-negative integer count"
  | Some n when n < 0 -> malformed "PROFILE expects a non-negative integer count"
  | Some n when n > max_batch ->
    malformed "PROFILE count %d exceeds limit=%d (server --max-batch)" n
      max_batch
  | Some n ->
    let truncated = ref false in
    let queries =
      List.filter_map
        (fun _ ->
          match read_line () with
          | Some l -> Some (batch_query l)
          | None ->
            truncated := true;
            None)
        (List.init n Fun.id)
    in
    if !truncated then
      err
        (Core.Error.make Core.Error.Io_error
           "unexpected end of input inside PROFILE")
    else profile_line (server.profile queries)

let handle_request ?(max_batch = max_batch) ?extra server ~read_line raw =
  let line = String.trim raw in
  if line = "" then None
  else
    Some
      (try
         let verb, rest = split_verb line in
         (* [extra] gets first refusal so a registry session can add verbs
            (USE/LOAD/TENANTS) without the protocol layer knowing them;
            [None] falls through to the core verb table. *)
         match
           match extra with None -> None | Some f -> f verb rest
         with
         | Some response -> response
         | None ->
         match verb with
         | "ESTIMATE" -> estimate_line (server.estimate rest)
         | "BATCH" -> handle_batch server ~max_batch ~read_line rest
         | "PROFILE" -> handle_profile server ~max_batch ~read_line rest
         | "FEEDBACK" ->
           (match String.rindex_opt rest ' ' with
            | None -> malformed "FEEDBACK expects '<xpath> <actual-count>'"
            | Some i ->
              let query = String.trim (String.sub rest 0 i) in
              let count =
                String.sub rest (i + 1) (String.length rest - i - 1)
              in
              (match int_of_string_opt count with
               | Some actual when actual >= 0 && query <> "" ->
                 (match server.feedback query ~actual with
                  | Ok fb ->
                    Printf.sprintf "OK %.3f %s" fb.Feedback.q_error
                      (if fb.Feedback.refined then "refined" else "kept")
                  | Error e -> err e)
               | _ ->
                 malformed
                   "FEEDBACK expects '<xpath> <actual-count>' with a \
                    non-negative integer count"))
         | "EXPLAIN" ->
           (match server.explain rest with
            | Ok r -> "OK " ^ Obs.Json.to_string (Core.Explain.to_json r)
            | Error e -> err e)
         | "STATS" ->
           if rest = "" then "OK " ^ Obs.Json.to_string (server.stats_json ())
           else malformed "STATS takes no argument"
         | "METRICS" ->
           (* The one multi-line response without a header: the payload IS
              the Prometheus exposition, ready to proxy to a scraper. *)
           if rest = "" then chop_trailing_newline (server.metrics_text ())
           else malformed "METRICS takes no argument"
         | "RECENT" ->
           let n =
             if rest = "" then Ok None
             else
               match int_of_string_opt rest with
               | Some n when n >= 0 -> Ok (Some n)
               | _ -> Result.Error ()
           in
           (match n with
            | Result.Error () ->
              malformed "RECENT takes an optional non-negative integer count"
            | Ok n ->
              (match server.recent n with
               | Error e -> err e
               | Ok records ->
                 String.concat "\n"
                   (Printf.sprintf "OK %d" (List.length records)
                   :: List.map
                        (fun fr ->
                          Obs.Json.to_string (Flight_recorder.to_json fr))
                        records)))
         | "DRIFT" ->
           if rest <> "" then malformed "DRIFT takes no argument"
           else
             (match server.drift_json () with
              | Ok j -> "OK " ^ Obs.Json.to_string j
              | Error e -> err e)
         | "AUDIT" ->
           if rest <> "" then malformed "AUDIT takes no argument"
           else
             (match server.audit () with
              | Ok j -> "OK " ^ Obs.Json.to_string j
              | Error e -> err e)
         (* Health-check verbs: both answer without touching a synopsis, so
            load balancers can probe a server whose tenants are all paged
            out (and a registry session with no tenant selected). *)
         | "PING" ->
           if rest = "" then "OK pong" else malformed "PING takes no argument"
         | "VERSION" ->
           if rest = "" then
             Printf.sprintf "OK xseed %s protocol %d" version protocol_version
           else malformed "VERSION takes no argument"
         | _ ->
           malformed
             "unknown command %S (expected ESTIMATE, BATCH, PROFILE, \
              FEEDBACK, EXPLAIN, STATS, METRICS, RECENT, DRIFT, AUDIT, PING \
              or VERSION)"
             verb
       with exn ->
         err
           (match Core.Error.of_exn exn with
            | Some e -> e
            | None -> Core.Error.make Core.Error.Internal (Printexc.to_string exn)))

let run ?on_request ?max_batch ?extra server ic oc =
  let read_line () = try Some (input_line ic) with End_of_file -> None in
  let rec loop () =
    match read_line () with
    | None -> ()
    | Some raw ->
      (match handle_request ?max_batch ?extra server ~read_line raw with
       | Some response ->
         output_string oc response;
         output_char oc '\n';
         flush oc;
         (match on_request with None -> () | Some f -> f ())
       | None -> ());
      loop ()
  in
  loop ()
