(* Accuracy-drift monitor for the serving engine.

   Feedback observations (estimate, actual) enter a sliding q-error window;
   alongside it, per-window estimate-volume and cache-hit counts ride in
   parallel int rings rotated in lockstep with the q-error window, so
   DRIFT summaries and the published gauges all describe the same "last
   slots x per_slot feedback observations" span. Rotation is managed here
   (the Obs.Window is created with an effectively-infinite per_slot and
   rotated explicitly) so the three rings can never drift apart.

   Alerts are edge-triggered on the window's p90 q-error: crossing the
   threshold bumps [engine.drift.alerts] once and emits one Obs event; the
   alert re-arms only after p90 falls back below the threshold. *)

type t = {
  window : Obs.Window.t;  (* q-error over feedback observations *)
  slots : int;
  per_slot : int;
  p90_threshold : float;
  (* Parallel per-slot rings, rotated with [window]. *)
  estimates : int array;  (* ESTIMATE traffic per slot *)
  hits : int array;  (* cache hits within that traffic *)
  mutable idx : int;
  mutable in_slot : int;  (* feedback observations in the current slot *)
  mutable alerting : bool;
  mutable alerts : int;
  mutable shards : shard list;  (* per-worker volume rings, same slotting *)
}

(* A shard is a per-worker pair of volume rings riding the owner's slot
   index. Each worker writes only its own shard (no synchronization on the
   estimate path); [rotate] — reached only from [observe], the single-writer
   feedback path — clears every shard's landing slot together with its own,
   so all volume rings expire in lockstep. The pool guarantees rotation
   never runs concurrently with shard notes by draining in-flight work
   before feedback. *)
and shard = { owner : t; s_estimates : int array; s_hits : int array }

let qerror ~estimate ~actual =
  let e = estimate +. 1.0 and a = float_of_int actual +. 1.0 in
  Float.max (e /. a) (a /. e)

let create ?(slots = 6) ?(per_slot = 64) ?(p90_threshold = 8.0) () =
  if slots < 1 then
    invalid_arg (Printf.sprintf "Drift.create: slots %d < 1" slots);
  if per_slot < 1 then
    invalid_arg (Printf.sprintf "Drift.create: per_slot %d < 1" per_slot);
  if not (p90_threshold >= 1.0) then
    invalid_arg "Drift.create: p90_threshold must be >= 1.0";
  { window = Obs.Window.create ~slots ~per_slot:max_int ();
    slots;
    per_slot;
    p90_threshold;
    estimates = Array.make slots 0;
    hits = Array.make slots 0;
    idx = 0;
    in_slot = 0;
    alerting = false;
    alerts = 0;
    shards = [] }

let register_shard t =
  let s =
    { owner = t;
      s_estimates = Array.make t.slots 0;
      s_hits = Array.make t.slots 0 }
  in
  t.shards <- s :: t.shards;
  s

let rotate t =
  Obs.Window.rotate t.window;
  t.idx <- (t.idx + 1) mod t.slots;
  t.estimates.(t.idx) <- 0;
  t.hits.(t.idx) <- 0;
  List.iter
    (fun s ->
      s.s_estimates.(t.idx) <- 0;
      s.s_hits.(t.idx) <- 0)
    t.shards;
  t.in_slot <- 0

(* Counted against the slot that is current when they happen; expired with
   it when the feedback stream rotates the ring. *)
let note_estimate t ~cache_hit =
  t.estimates.(t.idx) <- t.estimates.(t.idx) + 1;
  if cache_hit then t.hits.(t.idx) <- t.hits.(t.idx) + 1

let note_shard s ~cache_hit =
  let idx = s.owner.idx in
  s.s_estimates.(idx) <- s.s_estimates.(idx) + 1;
  if cache_hit then s.s_hits.(idx) <- s.s_hits.(idx) + 1

let shard_estimates s = Array.fold_left ( + ) 0 s.s_estimates
let shard_hits s = Array.fold_left ( + ) 0 s.s_hits
let window_count t = Obs.Window.count t.window

let window_estimates t =
  Array.fold_left ( + ) 0 t.estimates
  + List.fold_left (fun acc s -> acc + shard_estimates s) 0 t.shards

let window_hits t =
  Array.fold_left ( + ) 0 t.hits
  + List.fold_left (fun acc s -> acc + shard_hits s) 0 t.shards

let hit_rate t =
  let e = window_estimates t in
  if e = 0 then Float.nan else float_of_int (window_hits t) /. float_of_int e

let median t = Obs.Window.percentile t.window 0.5
let p90 t = Obs.Window.percentile t.window 0.9
let max_qerror t = Obs.Window.max t.window
let alerts t = t.alerts
let alerting t = t.alerting
let p90_threshold t = t.p90_threshold

let observe ?obs t ~estimate ~actual =
  if t.in_slot >= t.per_slot then rotate t;
  let q = qerror ~estimate ~actual in
  Obs.Window.observe t.window q;
  t.in_slot <- t.in_slot + 1;
  let p90 = p90 t in
  if t.alerting then begin
    if not (p90 >= t.p90_threshold) then t.alerting <- false
  end
  else if p90 >= t.p90_threshold then begin
    t.alerting <- true;
    t.alerts <- t.alerts + 1;
    Obs.add_to ?obs "engine.drift.alerts" 1;
    Obs.event ?obs "drift_alert"
      ~fields:
        [ ("p90_qerror", Obs.Json.Float p90);
          ("threshold", Obs.Json.Float t.p90_threshold);
          ("window_count", Obs.Json.Int (window_count t)) ]
  end;
  q

(* Republish the window as gauges (and the alert total as a monotone
   counter) into a metrics registry; idempotent, called before a scrape. *)
let publish t obs =
  Obs.set_to ~obs "engine.drift.qerror_p50" (median t);
  Obs.set_to ~obs "engine.drift.qerror_p90" (p90 t);
  Obs.set_to ~obs "engine.drift.qerror_max" (max_qerror t);
  Obs.set_to ~obs "engine.drift.window_observations"
    (float_of_int (window_count t));
  Obs.set_to ~obs "engine.drift.window_estimates"
    (float_of_int (window_estimates t));
  Obs.set_to ~obs "engine.drift.window_hit_rate" (hit_rate t);
  Obs.max_to ~obs "engine.drift.alerts" t.alerts

let to_json t =
  let open Obs.Json in
  Obj
    [ ("window_observations", Int (window_count t));
      ("window_estimates", Int (window_estimates t));
      ("window_hit_rate", Float (hit_rate t));
      ("qerror_p50", Float (median t));
      ("qerror_p90", Float (p90 t));
      ("qerror_max", Float (max_qerror t));
      ("p90_threshold", Float t.p90_threshold);
      ("alerting", Bool t.alerting);
      ("alerts", Int t.alerts) ]
