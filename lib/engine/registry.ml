(* The multi-tenant synopsis registry. One mutex serializes everything —
   registration, page-in/page-out, and the serving calls routed through a
   session — so an eviction can never race a USE into a half-released
   engine. That serialization is the point: the registry is the
   many-documents axis of scaling (millions of users across many corpora),
   while [Pool] remains the many-cores axis for one hot synopsis; the two
   compose at the process level, not inside one registry. *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* A resident tenant: its engine plus everything eviction must release. *)
type resident = {
  engine : Engine_core.t;
  syn_bytes : int;  (* Synopsis.size_in_bytes at page-in, charged to the budget *)
  obs : Obs.t;  (* the tenant's private metric registry *)
  journal : Journal.writer option;
  tenant_server : Serve.server;  (* engine server, journal-wrapped *)
}

type tenant = {
  name : string;
  path : string;
  doc : string option;
      (* the tenant's source document, from the manifest's doc= field;
         shadow auditing is only armed for tenants that declare one *)
  mutable state : resident option;
  mutable last_used : int;  (* registry tick at last touch; LRU order *)
  mutable page_ins : int;
}

type t = {
  mutex : Mutex.t;
  table : (string, tenant) Hashtbl.t;
  mutable tick : int;
  mutable resident_bytes : int;
  mutable evictions : int;
  mutable page_ins_total : int;
  mutable journal_replayed : int;
  memory_budget : int option;
  het_budget : int option;
  qerror_threshold : float;
  cache_capacity : int;
  telemetry : bool;
  drift_p90_threshold : float;
  journal_dir : string option;
  journal_fsync : Journal.fsync;
  audit_rate : float;
  audit_seed : int option;
  audit_feedback : bool;
  scrape : Scrape_meter.t;
  obs : Obs.t;  (* registry-level series; tenant registries live per tenant *)
}

let create ?memory_budget ?het_budget ?(qerror_threshold = 2.0)
    ?(cache_capacity = 1024) ?(telemetry = true) ?(drift_p90_threshold = 8.0)
    ?journal_dir ?(journal_fsync = `Always) ?(audit_rate = 0.0) ?audit_seed
    ?(audit_feedback = false) () =
  (match memory_budget with
   | Some b when b < 1 ->
     invalid_arg (Printf.sprintf "Registry.create: memory_budget %d < 1" b)
   | _ -> ());
  (match het_budget with
   | Some b when b < 1 ->
     invalid_arg (Printf.sprintf "Registry.create: het_budget %d < 1" b)
   | _ -> ());
  if not (Float.is_finite audit_rate) || audit_rate < 0.0 || audit_rate > 1.0
  then invalid_arg "Registry.create: audit_rate must be within [0, 1]";
  { mutex = Mutex.create ();
    table = Hashtbl.create 16;
    tick = 0;
    resident_bytes = 0;
    evictions = 0;
    page_ins_total = 0;
    journal_replayed = 0;
    memory_budget;
    het_budget;
    qerror_threshold;
    cache_capacity;
    telemetry;
    drift_p90_threshold;
    journal_dir;
    journal_fsync;
    audit_rate;
    audit_seed;
    audit_feedback;
    scrape = Scrape_meter.create ();
    obs = Obs.create () }

(* Tenant names travel inside protocol lines (space-separated) and become
   journal file names, so the alphabet is deliberately narrow. *)
let valid_name name =
  name <> "" && name <> "." && name <> ".."
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       name

let bad_name name =
  Core.Error.make Core.Error.Malformed_query
    (Printf.sprintf
       "invalid tenant name %S (allowed: letters, digits, '_', '.', '-')"
       name)

let unknown_tenant name =
  Core.Error.make Core.Error.Malformed_query
    (Printf.sprintf "unknown tenant %S (LOAD <tenant> <path> first)" name)

let no_tenant () =
  Core.Error.make Core.Error.Malformed_query "no tenant selected (USE <tenant>)"

let register_locked ?doc t ~name ~path =
  if not (valid_name name) then Error (bad_name name)
  else if Hashtbl.mem t.table name then
    Error
      (Core.Error.make Core.Error.Malformed_query
         (Printf.sprintf "tenant %S already registered" name))
  else begin
    Hashtbl.replace t.table name
      { name; path; doc; state = None; last_used = 0; page_ins = 0 };
    Ok ()
  end

let register ?doc t ~name ~path =
  with_lock t.mutex (fun () -> register_locked ?doc t ~name ~path)

let read_file path =
  if not (Sys.file_exists path) then
    Error (Core.Error.make Core.Error.Missing_file ("no such file: " ^ path))
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | contents -> Ok contents
    | exception Sys_error msg ->
      Error (Core.Error.make Core.Error.Io_error msg)

let load_manifest t manifest_path =
  match read_file manifest_path with
  | Error e -> Error e
  | Ok contents ->
    let dir = Filename.dirname manifest_path in
    let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
    let lines = String.split_on_char '\n' contents in
    let rec go n lineno = function
      | [] -> Ok n
      | raw :: rest ->
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then go n (lineno + 1) rest
        else begin
          match String.index_opt line ' ' with
          | None ->
            Error
              (Core.Error.make ~position:lineno Core.Error.Malformed_query
                 (Printf.sprintf
                    "manifest %s line %d: expected '<tenant> <path>'"
                    manifest_path lineno))
          | Some i ->
            let name = String.sub line 0 i in
            let rest_of_line =
              String.sub line i (String.length line - i)
            in
            (* An optional trailing " doc=<path>" arms shadow auditing for
               this tenant; everything before it is the synopsis path. *)
            let path, doc =
              let marker = " doc=" in
              let mlen = String.length marker in
              let rec find j =
                if j + mlen > String.length rest_of_line then None
                else if String.sub rest_of_line j mlen = marker then Some j
                else find (j + 1)
              in
              match find 0 with
              | None -> (String.trim rest_of_line, None)
              | Some j ->
                let p = String.trim (String.sub rest_of_line 0 j) in
                let d =
                  String.trim
                    (String.sub rest_of_line (j + mlen)
                       (String.length rest_of_line - j - mlen))
                in
                (p, if d = "" then None else Some d)
            in
            (match
               with_lock t.mutex (fun () ->
                   register_locked
                     ?doc:(Option.map resolve doc)
                     t ~name ~path:(resolve path))
             with
             | Ok () -> go (n + 1) (lineno + 1) rest
             | Error e -> Error e)
        end
    in
    go 0 1 lines

let touch_locked t tenant =
  t.tick <- t.tick + 1;
  tenant.last_used <- t.tick

(* Page-out: flush the journal (the ack contract says every acknowledged
   FEEDBACK is already framed on disk — close makes it durable), drop the
   engine's caches through its epoch/invalidate path, and release the
   synopsis. The tenant record survives so a later USE pages it back in. *)
let evict_locked t tenant =
  match tenant.state with
  | None -> false
  | Some r ->
    (match r.journal with Some w -> Journal.close w | None -> ());
    (match Engine_core.auditor r.engine with
     | Some a -> Auditor.shutdown a
     | None -> ());
    Engine_core.invalidate r.engine;
    tenant.state <- None;
    t.resident_bytes <- t.resident_bytes - r.syn_bytes;
    t.evictions <- t.evictions + 1;
    true

(* Evict least-recently-used residents (never [keep]) until [need] more
   bytes fit under the budget. Caller guarantees [need] alone fits. *)
let make_room_locked t ~keep ~need =
  match t.memory_budget with
  | None -> ()
  | Some budget ->
    while t.resident_bytes + need > budget do
      let victim =
        Hashtbl.fold
          (fun _ tenant acc ->
            if tenant.name = keep || tenant.state = None then acc
            else
              match acc with
              | Some best when best.last_used <= tenant.last_used -> acc
              | _ -> Some tenant)
          t.table None
      in
      match victim with
      | Some v -> ignore (evict_locked t v : bool)
      | None ->
        (* Nothing left to evict; the while condition cannot progress. *)
        raise Exit
    done

let journal_path t tenant =
  Option.map
    (fun dir -> Filename.concat dir (tenant.name ^ ".wal"))
    t.journal_dir

(* Wrap the engine's serve vtable with the per-tenant concerns: journal
   append-before-ack on feedback, the tenant= stamp on PROFILE replies,
   and STATS nesting. METRICS is rewired by the session (it is a
   registry-wide scrape, not a per-tenant one). *)
let tenant_server_of tenant ~journal base =
  let base =
    match journal with None -> base | Some w -> Journal.wrap_server w base
  in
  { base with
    Serve.profile =
      (fun qs ->
        match base.Serve.profile qs with
        | Ok p -> Ok { p with Serve.tenant = Some tenant.name }
        | Error e -> Error e) }

let page_in_locked t tenant =
  match read_file tenant.path with
  | Error e -> Error e
  | Ok contents ->
    (match Core.Synopsis.of_string_result contents with
     | Error e -> Error e
     | Ok syn ->
       let bytes = Core.Synopsis.size_in_bytes syn in
       (match t.memory_budget with
        | Some budget when bytes > budget ->
          Error
            (Core.Error.make Core.Error.Limit_exceeded
               (Printf.sprintf
                  "tenant %S synopsis is %d bytes, over the registry memory \
                   budget limit=%d (server --memory-budget)"
                  tenant.name bytes budget))
        | _ ->
          (match make_room_locked t ~keep:tenant.name ~need:bytes with
           | () -> ()
           | exception Exit -> ());
          (* Per-tenant HET learning budget: cap what feedback may grow. *)
          (match (t.het_budget, Core.Synopsis.het syn) with
           | Some b, Some het -> Core.Het.set_budget het ~bytes:b
           | _ -> ());
          let obs = Obs.create () in
          let estimator =
            Core.Estimator.create
              ~card_threshold:(Core.Synopsis.card_threshold syn)
              ?het:(Core.Synopsis.het syn)
              ?values:(Core.Synopsis.values syn)
              ~obs
              (Core.Synopsis.kernel syn)
          in
          let engine =
            Engine_core.create ~qerror_threshold:t.qerror_threshold
              ~cache_capacity:t.cache_capacity ~telemetry:t.telemetry
              ~drift_p90_threshold:t.drift_p90_threshold ~obs estimator
          in
          (match Engine_core.recorder engine with
           | Some r -> Flight_recorder.set_tenant r tenant.name
           | None -> ());
          (* Shadow auditing arms only for tenants that declared a source
             document, and only when the registry was given a sample rate.
             The auditor dies with the residency: eviction shuts it down,
             a later page-in builds a fresh one. *)
          (match (tenant.doc, t.audit_rate > 0.0) with
           | Some doc, true ->
             Engine_core.set_auditor engine
               (Auditor.create ?seed:t.audit_seed ~feedback:t.audit_feedback
                  ~rate:t.audit_rate
                  (Auditor.Paths { synopsis = tenant.path; doc }))
           | _ -> ());
          let base = Engine_core.server engine in
          let journal_result =
            match journal_path t tenant with
            | None -> Ok None
            | Some path ->
              (match Journal.recover path with
               | Error e -> Error e
               | Ok scan ->
                 (* Replay the journal through the live feedback path: the
                    learned HET/feedback state of the evicted (or crashed)
                    tenant is reproduced before the first request. *)
                 List.iter
                   (fun (e : Journal.entry) ->
                     match
                       base.Serve.feedback e.Journal.query ~actual:e.Journal.actual
                     with
                     | Ok _ | Error _ -> ())
                   scan.Journal.entries;
                 t.journal_replayed <-
                   t.journal_replayed + scan.Journal.frames;
                 (match Journal.open_append ~fsync:t.journal_fsync path with
                  | Ok w -> Ok (Some w)
                  | Error e -> Error e))
          in
          (match journal_result with
           | Error e -> Error e
           | Ok journal ->
             let tenant_server = tenant_server_of tenant ~journal base in
             tenant.state <-
               Some { engine; syn_bytes = bytes; obs; journal; tenant_server };
             tenant.page_ins <- tenant.page_ins + 1;
             t.page_ins_total <- t.page_ins_total + 1;
             t.resident_bytes <- t.resident_bytes + bytes;
             Ok ())))

let find_locked t name =
  match Hashtbl.find_opt t.table name with
  | None -> Error (unknown_tenant name)
  | Some tenant -> Ok tenant

let ensure_resident_locked t tenant =
  match tenant.state with
  | Some _ ->
    touch_locked t tenant;
    Ok `Resident
  | None ->
    (match page_in_locked t tenant with
     | Ok () ->
       touch_locked t tenant;
       Ok `Loaded
     | Error e -> Error e)

let use t name =
  with_lock t.mutex (fun () ->
      match find_locked t name with
      | Error e -> Error e
      | Ok tenant -> ensure_resident_locked t tenant)

let evict t name =
  with_lock t.mutex (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> false
      | Some tenant -> evict_locked t tenant)

let tenants t =
  with_lock t.mutex (fun () ->
      Hashtbl.fold
        (fun name tenant acc ->
          (name, Option.map (fun r -> r.syn_bytes) tenant.state) :: acc)
        t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let registered_count t = with_lock t.mutex (fun () -> Hashtbl.length t.table)

let resident_count t =
  with_lock t.mutex (fun () ->
      Hashtbl.fold
        (fun _ tenant n -> if tenant.state = None then n else n + 1)
        t.table 0)

let resident_bytes t = with_lock t.mutex (fun () -> t.resident_bytes)
let memory_budget t = t.memory_budget
let evictions t = with_lock t.mutex (fun () -> t.evictions)
let page_ins t = with_lock t.mutex (fun () -> t.page_ins_total)
let journal_replayed t = with_lock t.mutex (fun () -> t.journal_replayed)

let engine t name =
  with_lock t.mutex (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some { state = Some r; _ } -> Some r.engine
      | _ -> None)

(* Registry-level series, republished idempotently before every scrape so
   quiet re-scrapes render byte-identical. *)
let publish_locked t =
  let registered = Hashtbl.length t.table in
  let resident =
    Hashtbl.fold
      (fun _ tenant n -> if tenant.state = None then n else n + 1)
      t.table 0
  in
  Obs.gset (Obs.gauge t.obs "registry.tenants.registered")
    (float_of_int registered);
  Obs.gset (Obs.gauge t.obs "registry.tenants.resident") (float_of_int resident);
  Obs.gset (Obs.gauge t.obs "registry.bytes.resident")
    (float_of_int t.resident_bytes);
  Obs.gset (Obs.gauge t.obs "registry.bytes.budget")
    (float_of_int (Option.value t.memory_budget ~default:0));
  Obs.set_max (Obs.counter t.obs "registry.evictions") t.evictions;
  Obs.set_max (Obs.counter t.obs "registry.page_ins") t.page_ins_total;
  Obs.set_max (Obs.counter t.obs "registry.journal.replayed") t.journal_replayed

let metrics_text t =
  with_lock t.mutex (fun () ->
      let t0 = Obs.now_mono () in
      (* The registry tick advances on every serving touch and never on a
         scrape, so it is the meter's served-traffic anchor. *)
      Scrape_meter.publish t.scrape ~obs:t.obs ~served:t.tick;
      publish_locked t;
      let parts =
        Hashtbl.fold
          (fun name tenant acc ->
            match tenant.state with
            | None -> acc
            | Some r ->
              Engine_core.publish_telemetry r.engine;
              ([ ("tenant", name) ], r.obs) :: acc)
          t.table
          [ ([], t.obs) ]
      in
      let text = Obs.prometheus ~prefix:"xseed_" (Obs.merged_labeled parts) in
      Scrape_meter.note t.scrape (Obs.now_mono () -. t0);
      text)

let stats_locked t =
  publish_locked t;
  let tenants =
    Hashtbl.fold
      (fun name tenant acc ->
        ( name,
          match tenant.state with
          | None -> Obs.Json.Null
          | Some r -> Obs.Json.Int r.syn_bytes )
        :: acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Obs.Json.Obj
    [ ("registered", Obs.Json.Int (Hashtbl.length t.table));
      ( "resident",
        Obs.Json.Int
          (List.length (List.filter (fun (_, v) -> v <> Obs.Json.Null) tenants))
      );
      ("resident_bytes", Obs.Json.Int t.resident_bytes);
      ( "memory_budget",
        match t.memory_budget with
        | None -> Obs.Json.Null
        | Some b -> Obs.Json.Int b );
      ("evictions", Obs.Json.Int t.evictions);
      ("page_ins", Obs.Json.Int t.page_ins_total);
      ("journal_replayed", Obs.Json.Int t.journal_replayed);
      ("tenants", Obs.Json.Obj tenants) ]

let stats_json t = with_lock t.mutex (fun () -> stats_locked t)

let close t =
  with_lock t.mutex (fun () ->
      Hashtbl.iter
        (fun _ tenant -> ignore (evict_locked t tenant : bool))
        t.table)

(* ------------------------------------------------------------------ *)
(* Sessions *)

type session = { registry : t; mutable current : string option }

let session registry = { registry; current = None }
let active s = s.current

(* Serve one request against the session's active tenant, holding the
   registry lock for the whole call so eviction cannot race it. The tenant
   may have been paged out since the USE — it silently pages back in. *)
let with_active s f =
  match s.current with
  | None -> Error (no_tenant ())
  | Some name ->
    with_lock s.registry.mutex (fun () ->
        match find_locked s.registry name with
        | Error e -> Error e
        | Ok tenant ->
          (match ensure_resident_locked s.registry tenant with
           | Error e -> Error e
           | Ok (`Resident | `Loaded) ->
             (match tenant.state with
              | Some r -> Ok (f r.tenant_server)
              | None ->
                Error
                  (Core.Error.make Core.Error.Internal
                     "tenant resident state vanished under the lock"))))

let join = function Ok (Ok v) -> Ok v | Ok (Error e) -> Error e | Error e -> Error e

let server s =
  { Serve.estimate =
      (fun q -> join (with_active s (fun srv -> srv.Serve.estimate q)));
    estimate_batch =
      (fun qs ->
        match with_active s (fun srv -> srv.Serve.estimate_batch qs) with
        | Ok results -> results
        | Error e -> List.map (fun _ -> Error e) qs);
    feedback =
      (fun q ~actual ->
        join (with_active s (fun srv -> srv.Serve.feedback q ~actual)));
    explain = (fun q -> join (with_active s (fun srv -> srv.Serve.explain q)));
    stats_json =
      (fun () ->
        (* Tenant-less STATS still answers: the registry object alone. *)
        let registry_stats =
          with_lock s.registry.mutex (fun () -> stats_locked s.registry)
        in
        match with_active s (fun srv -> srv.Serve.stats_json ()) with
        | Ok tenant_stats ->
          Obs.Json.Obj
            [ ( "tenant",
                Obs.Json.String (Option.value s.current ~default:"") );
              ("engine", tenant_stats);
              ("registry", registry_stats) ]
        | Error _ -> Obs.Json.Obj [ ("registry", registry_stats) ]);
    metrics_text = (fun () -> metrics_text s.registry);
    recent = (fun n -> join (with_active s (fun srv -> srv.Serve.recent n)));
    drift_json =
      (fun () -> join (with_active s (fun srv -> srv.Serve.drift_json ())));
    profile =
      (fun qs -> join (with_active s (fun srv -> srv.Serve.profile qs)));
    audit = (fun () -> join (with_active s (fun srv -> srv.Serve.audit ()))) }

let sanitize s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let err e =
  Printf.sprintf "ERR %s %s"
    (Core.Error.kind_name (Core.Error.kind e))
    (sanitize (Core.Error.message e))

let extra s verb rest =
  match verb with
  | "USE" ->
    Some
      (let name = String.trim rest in
       if name = "" || String.contains name ' ' then
         err
           (Core.Error.make Core.Error.Malformed_query
              "USE expects exactly one tenant name")
       else
         match use s.registry name with
         | Ok how ->
           s.current <- Some name;
           Printf.sprintf "OK %s %s" name
             (match how with `Resident -> "resident" | `Loaded -> "loaded")
         | Error e -> err e)
  | "LOAD" ->
    Some
      (match String.index_opt rest ' ' with
       | None ->
         err
           (Core.Error.make Core.Error.Malformed_query
              "LOAD expects '<tenant> <path>'")
       | Some i ->
         let name = String.sub rest 0 i in
         let path = String.trim (String.sub rest i (String.length rest - i)) in
         (match register s.registry ~name ~path with
          | Error e -> err e
          | Ok () ->
            (match use s.registry name with
             | Error e -> err e
             | Ok _ ->
               let bytes =
                 with_lock s.registry.mutex (fun () ->
                     match Hashtbl.find_opt s.registry.table name with
                     | Some { state = Some r; _ } -> r.syn_bytes
                     | _ -> 0)
               in
               Printf.sprintf "OK %s loaded %d" name bytes)))
  | "TENANTS" ->
    Some
      (if String.trim rest <> "" then
         err
           (Core.Error.make Core.Error.Malformed_query
              "TENANTS takes no argument")
       else
         let listing = tenants s.registry in
         String.concat "\n"
           (Printf.sprintf "OK %d" (List.length listing)
           :: List.map
                (fun (name, size) ->
                  match size with
                  | Some bytes -> Printf.sprintf "%s resident %d" name bytes
                  | None -> Printf.sprintf "%s paged-out" name)
                listing))
  | _ -> None
