type t = {
  mutable total : int;  (* renders completed *)
  mutable seconds : float;  (* cumulative render wall time *)
  mutable pub_total : int;  (* values latched at the last gate pass *)
  mutable pub_seconds : float;
  mutable mark : int;  (* [served] at the last gate pass *)
  mutable marked : bool;
}

let create () =
  { total = 0;
    seconds = 0.0;
    pub_total = 0;
    pub_seconds = 0.0;
    mark = 0;
    marked = false }

let note t dur =
  t.total <- t.total + 1;
  t.seconds <- t.seconds +. dur

(* Latch the live accumulators only when traffic has moved since the last
   publication, then emit the latched values (every render — a pool scrape
   rebuilds its registry from scratch, so the series must be re-emitted to
   stay present; identical values keep quiet re-scrapes byte-identical).
   Before any render has completed there is nothing to latch, so the
   series appears only after a traffic -> scrape cycle. *)
let publish t ~obs ~served =
  if (not t.marked) || served <> t.mark then begin
    t.marked <- true;
    t.mark <- served;
    t.pub_total <- t.total;
    t.pub_seconds <- t.seconds
  end;
  if t.pub_total > 0 then begin
    Obs.set_max (Obs.counter obs "scrape.total") t.pub_total;
    Obs.gset (Obs.gauge obs "scrape.duration_seconds") t.pub_seconds
  end
