(* Shadow accuracy auditor. One dedicated audit domain drains a bounded
   sample queue and replays each query against a private estimator plus the
   NoK exact evaluator; everything the serving side touches is either a
   pure function (the sampler), a bounded try-push (the tap), or runs on
   the serving thread itself (drain). *)

type source =
  | Paths of { synopsis : string; doc : string }
  | Loaded of { estimator : Core.Estimator.t; storage : Nok.Storage.t }

type step_report = {
  index : int;
  step : string;
  label : string;
  axis : string;
  clamped : bool;
  estimate : float;
  actual : int;
  qerror : float;
  contribution : float;
}

type audited = {
  query : string;
  hash : int;
  ast : Xpath.Ast.t;
  estimate : float;
  actual : int;
  qerror : float;
  steps : step_report list;
  worst : step_report option;
}

(* ------------------------------------------------------------------ *)
(* Deterministic sampling *)

(* Splitmix64 finalizer over the canonical hash xor a seed-derived stream
   constant: a fixed pseudo-random point in [0, 1) per (seed, hash), so
   sample membership is a pure function of the query — arrival order and
   interleaving cannot move a query in or out of sample. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let unit_point ~seed hash =
  let z =
    mix64
      (Int64.logxor (Int64.of_int hash)
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L))
  in
  (* Top 53 bits -> an exactly representable float in [0, 1). *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let in_sample ~seed ~rate hash =
  if rate <= 0.0 then false
  else if rate >= 1.0 then true
  else unit_point ~seed hash < rate

(* ------------------------------------------------------------------ *)
(* Shared arithmetic: exact percentiles, shadow evaluation *)

let exact_percentile samples p =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let s = Array.copy samples in
    Array.sort Float.compare s;
    let i = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    s.(max 0 (min (n - 1) i))
  end

let max_sample samples =
  Array.fold_left Float.max 0.0 samples

let window_json samples =
  let open Obs.Json in
  Obj
    [ ("count", Int (Array.length samples));
      ("p50", Float (exact_percentile samples 0.5));
      ("p90", Float (exact_percentile samples 0.9));
      ("max", Float (max_sample samples)) ]

let axis_name = function
  | Xpath.Ast.Child -> "child"
  | Xpath.Ast.Descendant -> "descendant"

let label_name (step : Xpath.Ast.step) =
  match step.Xpath.Ast.test with
  | Xpath.Ast.Name l -> l
  | Xpath.Ast.Wildcard -> "*"

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Per-prefix attribution: estimate and exactly evaluate every step prefix
   of the canonical query; a step's contribution is the factor by which it
   grows the running q-error, so the worst step is where accuracy is lost.
   The full query's exact cardinality falls out as the last prefix's. *)
let audit_one ~estimator ~ept ~storage ~estimate ast =
  match
    Core.Error.guard (fun () ->
        let prev_q = ref 1.0 in
        let steps =
          List.mapi
            (fun i (step : Xpath.Ast.step) ->
              let prefix = take (i + 1) ast in
              let outcome =
                match Core.Estimator.estimate_result_on estimator ept prefix with
                | Ok o -> o
                | Error e -> raise (Core.Error.Xseed e)
              in
              let actual =
                try Nok.Eval.cardinality storage prefix with
                | Nok.Eval.Query_too_large ->
                  Core.Error.raisef Core.Error.Malformed_query
                    "query exceeds the NoK evaluator's %d-step limit"
                    Nok.Eval.max_query_size
                | Nok.Eval.Values_not_collected ->
                  Core.Error.raisef Core.Error.Internal
                    "audit storage was built without values; value \
                     predicates cannot be evaluated"
              in
              let q =
                Drift.qerror ~estimate:outcome.Core.Estimator.value ~actual
              in
              let contribution = q /. !prev_q in
              prev_q := q;
              { index = i + 1;
                step = Xpath.Ast.to_string [ step ];
                label = label_name step;
                axis = axis_name step.Xpath.Ast.axis;
                clamped = outcome.Core.Estimator.clamped > 0;
                estimate = outcome.Core.Estimator.value;
                actual;
                qerror = q;
                contribution })
            ast
        in
        let actual =
          match List.rev steps with
          | last :: _ -> last.actual
          | [] ->
            Core.Error.raisef Core.Error.Malformed_query "empty query"
        in
        let worst =
          List.fold_left
            (fun acc s ->
              match acc with
              | Some best when best.contribution >= s.contribution -> acc
              | _ -> Some s)
            None steps
        in
        (actual, steps, worst))
  with
  | Error e -> Error (Core.Error.to_string e)
  | Ok (actual, steps, worst) ->
    let key = Canonical.of_ast ast in
    Ok
      { query = key.Canonical.text;
        hash = key.Canonical.hash;
        ast;
        estimate;
        actual;
        qerror = Drift.qerror ~estimate ~actual;
        steps;
        worst }

let step_json (s : step_report) =
  let open Obs.Json in
  Obj
    [ ("index", Int s.index);
      ("step", String s.step);
      ("label", String s.label);
      ("axis", String s.axis);
      ("clamped", Bool s.clamped);
      ("estimate", Float s.estimate);
      ("actual", Int s.actual);
      ("qerror", Float s.qerror);
      ("contribution", Float s.contribution) ]

let audited_json (a : audited) =
  let open Obs.Json in
  Obj
    [ ("query", String a.query);
      ("hash", String (Printf.sprintf "%08x" (a.hash land 0xffffffff)));
      ("estimate", Float a.estimate);
      ("actual", Int a.actual);
      ("qerror", Float a.qerror);
      ( "worst_step",
        match a.worst with None -> Null | Some s -> step_json s );
      ("steps", List (List.map step_json a.steps)) ]

(* ------------------------------------------------------------------ *)
(* The background auditor *)

type sample_job = {
  j_query : string;
  j_hash : int;
  j_ast : Xpath.Ast.t;
  j_estimate : float;
}

type bucket = {
  b_label : string;
  b_axis : string;
  b_clamped : bool;
  mutable b_count : int;
  mutable b_max_contribution : float;
}

type resources = {
  r_estimator : Core.Estimator.t;
  r_ept : Core.Matcher.ept Lazy.t;
  r_storage : Nok.Storage.t;
}

type t = {
  rate : float;
  seed : int;
  feedback : bool;
  queue_capacity : int;
  ring_capacity : int;
  source : source;
  m : Mutex.t;
  work_cv : Condition.t;  (* a sample arrived, or stop *)
  idle_cv : Condition.t;  (* queue empty and nothing in flight *)
  queue : sample_job Queue.t;  (* under [m] *)
  mutable in_flight : bool;  (* the domain is auditing one sample *)
  mutable stopped : bool;
  mutable results : audited list;  (* completed, newest first, under [m] *)
  results_pending : int Atomic.t;  (* = List.length results *)
  (* Counters and the exact q-error ring, all under [m]. *)
  mutable sampled : int;
  mutable completed : int;
  mutable shed : int;
  mutable errors : int;
  mutable refined : int;
  mutable load_failure : string option;
  ring : float array;
  mutable ring_len : int;
  mutable ring_pos : int;
  buckets : (string * string * bool, bucket) Hashtbl.t;
  mutable domain : unit Domain.t option;
  tracing : (Obs.Trace.t * Obs.Trace.buf * int) option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let read_file path =
  if not (Sys.file_exists path) then
    Error (Core.Error.make Core.Error.Missing_file ("no such file: " ^ path))
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | contents -> Ok contents
    | exception Sys_error msg ->
      Error (Core.Error.make Core.Error.Io_error msg)

(* Private resources, loaded once on the audit domain. The synopsis file is
   re-read rather than sharing the serving estimator, so serving-side HET
   refinement never races a shadow evaluation; the storage collects values
   so value predicates audit exactly. *)
let load_resources source =
  match source with
  | Loaded { estimator; storage } ->
    Ok
      { r_estimator = estimator;
        r_ept = lazy (Core.Estimator.ept estimator);
        r_storage = storage }
  | Paths { synopsis; doc } ->
    (match read_file synopsis with
     | Error e -> Error (Core.Error.to_string e)
     | Ok contents ->
       (match Core.Synopsis.of_string_result contents with
        | Error e -> Error (Core.Error.to_string e)
        | Ok syn ->
          let estimator =
            Core.Estimator.create
              ~card_threshold:(Core.Synopsis.card_threshold syn)
              ?het:(Core.Synopsis.het syn)
              ?values:(Core.Synopsis.values syn)
              (Core.Synopsis.kernel syn)
          in
          (match read_file doc with
           | Error e -> Error (Core.Error.to_string e)
           | Ok xml ->
             (match
                Core.Error.guard (fun () ->
                    Nok.Storage.of_string ~with_values:true xml)
              with
              | Error e -> Error (Core.Error.to_string e)
              | Ok storage ->
                Ok
                  { r_estimator = estimator;
                    r_ept = lazy (Core.Estimator.ept estimator);
                    r_storage = storage }))))

let record_result t outcome =
  with_lock t.m (fun () ->
      t.in_flight <- false;
      (match outcome with
       | Error _msg -> t.errors <- t.errors + 1
       | Ok a ->
         t.completed <- t.completed + 1;
         t.ring.(t.ring_pos) <- a.qerror;
         t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
         if t.ring_len < Array.length t.ring then t.ring_len <- t.ring_len + 1;
         (match a.worst with
          | None -> ()
          | Some w ->
            let key = (w.label, w.axis, w.clamped) in
            let b =
              match Hashtbl.find_opt t.buckets key with
              | Some b -> b
              | None ->
                let b =
                  { b_label = w.label;
                    b_axis = w.axis;
                    b_clamped = w.clamped;
                    b_count = 0;
                    b_max_contribution = 0.0 }
                in
                Hashtbl.replace t.buckets key b;
                b
            in
            b.b_count <- b.b_count + 1;
            if w.contribution > b.b_max_contribution then
              b.b_max_contribution <- w.contribution);
         t.results <- a :: t.results;
         Atomic.incr t.results_pending);
      if Queue.is_empty t.queue then Condition.broadcast t.idle_cv)

(* The audit domain body: load resources once, then serve the queue until
   shutdown. Every failure is data (a counter, a status field) — the domain
   never lets an exception escape into Domain.join. *)
let audit_loop t =
  let resources = ref None in
  let get_resources () =
    match !resources with
    | Some r -> r
    | None ->
      let r = load_resources t.source in
      resources := Some r;
      (match r with
       | Error msg -> with_lock t.m (fun () -> t.load_failure <- Some msg)
       | Ok _ -> ());
      r
  in
  let rec loop () =
    let job =
      with_lock t.m (fun () ->
          while Queue.is_empty t.queue && not t.stopped do
            Condition.wait t.work_cv t.m
          done;
          if Queue.is_empty t.queue then None
          else begin
            let j = Queue.pop t.queue in
            t.in_flight <- true;
            Some j
          end)
    in
    match job with
    | None ->
      (* Stopped with an empty queue: wake any settler and exit. *)
      with_lock t.m (fun () -> Condition.broadcast t.idle_cv)
    | Some job ->
      let outcome =
        match get_resources () with
        | Error msg -> Error msg
        | Ok r ->
          let t0 = Obs.now_mono () in
          let res =
            match
              try
                audit_one ~estimator:r.r_estimator ~ept:r.r_ept
                  ~storage:r.r_storage ~estimate:job.j_estimate job.j_ast
              with exn -> Error (Printexc.to_string exn)
            with
            (* The tap already canonicalized; keep its key verbatim so the
               attribution record joins against the flight ring by hash. *)
            | Ok a -> Ok { a with query = job.j_query; hash = job.j_hash }
            | Error _ as e -> e
          in
          (match t.tracing with
           | None -> ()
           | Some (tr, buf, name) ->
             Obs.Trace.complete buf ~name ~ts:(Obs.Trace.rel tr t0)
               ~dur:(Obs.now_mono () -. t0));
          res
      in
      record_result t outcome;
      loop ()
  in
  loop ()

let create ?(seed = 0x5eed) ?(feedback = false) ?(queue_capacity = 256)
    ?(ring_capacity = 4096) ?trace ~rate source =
  if Float.is_nan rate || rate < 0.0 || rate > 1.0 then
    invalid_arg
      (Printf.sprintf "Auditor.create: rate %g outside [0, 1]" rate);
  if queue_capacity < 1 then
    invalid_arg
      (Printf.sprintf "Auditor.create: queue_capacity %d < 1" queue_capacity);
  if ring_capacity < 1 then
    invalid_arg
      (Printf.sprintf "Auditor.create: ring_capacity %d < 1" ring_capacity);
  let tracing =
    Option.map
      (fun tr ->
        ( tr,
          Obs.Trace.register tr ~tid:4095 ~name:"auditor",
          Obs.Trace.intern tr "audit" ))
      trace
  in
  let t =
    { rate;
      seed;
      feedback;
      queue_capacity;
      ring_capacity;
      source;
      m = Mutex.create ();
      work_cv = Condition.create ();
      idle_cv = Condition.create ();
      queue = Queue.create ();
      in_flight = false;
      stopped = false;
      results = [];
      results_pending = Atomic.make 0;
      sampled = 0;
      completed = 0;
      shed = 0;
      errors = 0;
      refined = 0;
      load_failure = None;
      ring = Array.make ring_capacity 0.0;
      ring_len = 0;
      ring_pos = 0;
      buckets = Hashtbl.create 16;
      domain = None;
      tracing }
  in
  t.domain <- Some (Domain.spawn (fun () -> audit_loop t));
  t

let rate t = t.rate
let feedback_enabled t = t.feedback

let sample t ~query ~hash ~ast ~estimate =
  if in_sample ~seed:t.seed ~rate:t.rate hash then
    with_lock t.m (fun () ->
        if t.stopped then ()
        else begin
          t.sampled <- t.sampled + 1;
          if Queue.length t.queue >= t.queue_capacity then
            (* Backlog shed: silent by design — the client answer is
               already decided, and a shed audit sample must never become
               an ERR. The drop is visible in AUDIT and the scrape. *)
            t.shed <- t.shed + 1
          else begin
            Queue.push
              { j_query = query; j_hash = hash; j_ast = ast;
                j_estimate = estimate }
              t.queue;
            Condition.signal t.work_cv
          end
        end)

let pending t = Atomic.get t.results_pending

let drain t f =
  if Atomic.get t.results_pending > 0 then begin
    let batch =
      with_lock t.m (fun () ->
          let r = t.results in
          t.results <- [];
          Atomic.set t.results_pending 0;
          r)
    in
    List.iter f (List.rev batch)
  end

let note_refined t = with_lock t.m (fun () -> t.refined <- t.refined + 1)

let idle_locked t = Queue.is_empty t.queue && not t.in_flight

let settle ?(timeout_s = 5.0) t =
  let deadline = Obs.now_mono () +. timeout_s in
  let rec wait () =
    let idle =
      with_lock t.m (fun () -> idle_locked t || t.stopped)
    in
    if idle then true
    else if Obs.now_mono () >= deadline then false
    else begin
      (* Condition has no timed wait; the audit backlog drains in
         milliseconds for anything an AUDIT verb should block on, so a
         short poll is simpler than a waiter bookkeeping scheme. *)
      Unix.sleepf 0.002;
      wait ()
    end
  in
  wait ()

let ring_snapshot_locked t =
  Array.init t.ring_len (fun i -> t.ring.(i))

let top_buckets_locked ?(k = 3) t =
  let all = Hashtbl.fold (fun _ b acc -> b :: acc) t.buckets [] in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.b_count a.b_count with
        | 0 ->
          (match Float.compare b.b_max_contribution a.b_max_contribution with
           | 0 ->
             compare
               (a.b_label, a.b_axis, a.b_clamped)
               (b.b_label, b.b_axis, b.b_clamped)
           | c -> c)
        | c -> c)
      all
  in
  take k sorted

let status_json t =
  with_lock t.m (fun () ->
      let open Obs.Json in
      Obj
        [ ("rate", Float t.rate);
          ("sampled", Int t.sampled);
          ("completed", Int t.completed);
          ("shed", Int t.shed);
          ("errors", Int t.errors);
          ("backlog", Int (Queue.length t.queue + if t.in_flight then 1 else 0));
          ("refined", Int t.refined);
          ("window", window_json (ring_snapshot_locked t));
          ( "worst_steps",
            List
              (List.map
                 (fun b ->
                   Obj
                     [ ("label", String b.b_label);
                       ("axis", String b.b_axis);
                       ("clamped", Bool b.b_clamped);
                       ("count", Int b.b_count);
                       ("max_contribution", Float b.b_max_contribution) ])
                 (top_buckets_locked t)) );
          ( "load_error",
            match t.load_failure with None -> Null | Some m -> String m ) ])

let publish t obs =
  with_lock t.m (fun () ->
      Obs.set_max (Obs.counter obs "engine.audit.sampled") t.sampled;
      Obs.set_max (Obs.counter obs "engine.audit.completed") t.completed;
      Obs.set_max (Obs.counter obs "engine.audit.shed") t.shed;
      Obs.set_max (Obs.counter obs "engine.audit.errors") t.errors;
      Obs.set_max (Obs.counter obs "engine.audit.refined") t.refined;
      Obs.gset
        (Obs.gauge obs "engine.audit.backlog")
        (float_of_int (Queue.length t.queue + if t.in_flight then 1 else 0));
      let qs = ring_snapshot_locked t in
      Obs.gset (Obs.gauge obs "engine.audit.qerror_p50")
        (exact_percentile qs 0.5);
      Obs.gset (Obs.gauge obs "engine.audit.qerror_p90")
        (exact_percentile qs 0.9);
      Obs.gset (Obs.gauge obs "engine.audit.qerror_max") (max_sample qs);
      Hashtbl.iter
        (fun _ b ->
          let labels =
            [ ("label", b.b_label);
              ("axis", b.b_axis);
              ("clamp", if b.b_clamped then "true" else "false") ]
          in
          Obs.set_max
            (Obs.counter_with obs "engine.audit.worst_step" labels)
            b.b_count;
          Obs.gset
            (Obs.gauge_with obs "engine.audit.worst_contribution" labels)
            b.b_max_contribution)
        t.buckets)

let shutdown t =
  let d =
    with_lock t.m (fun () ->
        t.stopped <- true;
        Condition.broadcast t.work_cv;
        let d = t.domain in
        t.domain <- None;
        d)
  in
  match d with None -> () | Some d -> Domain.join d
