(* Interned trace-event names, resolved once at create so the request path
   records integer ids only. *)
type trace_names = {
  n_estimate : int;
  n_canonicalize : int;
  n_pipeline : int;
  n_feedback : int;
  n_explain : int;
}

type tracing = {
  tr : Obs.Trace.t;
  tbuf : Obs.Trace.buf;
  names : trace_names;
}

let make_tracing ~tid ~name tr =
  { tr;
    tbuf = Obs.Trace.register tr ~tid ~name;
    names =
      { n_estimate = Obs.Trace.intern tr "estimate";
        n_canonicalize = Obs.Trace.intern tr "canonicalize";
        n_pipeline = Obs.Trace.intern tr "pipeline";
        n_feedback = Obs.Trace.intern tr "feedback";
        n_explain = Obs.Trace.intern tr "explain" } }

type t = {
  estimator : Core.Estimator.t;
  cache : Core.Estimator.outcome Lru_cache.t;
  threshold : float;
  obs : Obs.t option;
  metrics : Obs.t;  (* scrape registry; = obs when one was supplied *)
  recorder : Flight_recorder.t option;
  drift : Drift.t option;
  tracing : tracing option;
  deadline_s : float option;
  mutable timed_out : int;
  mutable on_record : (Flight_recorder.record -> unit) option;
  mutable ept : Core.Matcher.ept option;  (* shared across queries *)
  mutable feedback_seen : int;
  mutable feedback_rounds : int;
  mutable auditor : Auditor.t option;
  scrape : Scrape_meter.t;
}

let create ?(qerror_threshold = 2.0) ?(cache_capacity = 1024)
    ?(telemetry = true) ?(recorder_capacity = 256) ?(drift_slots = 6)
    ?(drift_per_slot = 64) ?(drift_p90_threshold = 8.0) ?obs ?trace ?deadline_s
    estimator =
  if not (Float.is_finite qerror_threshold) || qerror_threshold < 1.0 then
    invalid_arg "Engine.create: qerror_threshold must be finite and >= 1";
  (match deadline_s with
   | Some d when Float.is_nan d ->
     invalid_arg "Engine.create: deadline_s must not be NaN"
   | _ -> ());
  { estimator;
    tracing = Option.map (make_tracing ~tid:1 ~name:"engine") trace;
    deadline_s;
    timed_out = 0;
    cache = Lru_cache.create ~capacity:cache_capacity;
    threshold = qerror_threshold;
    obs;
    metrics = (match obs with Some o -> o | None -> Obs.create ());
    recorder =
      (if telemetry then Some (Flight_recorder.create ~capacity:recorder_capacity ())
       else None);
    drift =
      (if telemetry then
         Some
           (Drift.create ~slots:drift_slots ~per_slot:drift_per_slot
              ~p90_threshold:drift_p90_threshold ())
       else None);
    on_record = None;
    ept = None;
    feedback_seen = 0;
    feedback_rounds = 0;
    auditor = None;
    scrape = Scrape_meter.create () }

let estimator t = t.estimator
let qerror_threshold t = t.threshold
let feedback_rounds t = t.feedback_rounds
let feedback_seen t = t.feedback_seen
let cache_counters t = Lru_cache.counters t.cache
let cache_length t = Lru_cache.length t.cache
let metrics t = t.metrics
let timed_out t = t.timed_out
let recorder t = t.recorder
let drift t = t.drift
let set_on_record t f = t.on_record <- Some f
let set_auditor t a = t.auditor <- Some a
let auditor t = t.auditor

let invalidate t =
  Lru_cache.clear t.cache;
  t.ept <- None

let ept_lazy t =
  lazy
    (match t.ept with
     | Some e -> e
     | None ->
       let e = Core.Estimator.ept t.estimator in
       t.ept <- Some e;
       e)

(* Same memoized EPT, but timing its materialization: [!spent] is the wall
   time the force cost (~0 when the shared EPT already exists). The inner
   force still happens inside the estimator's error guard, so Ept_too_large
   surfaces as Limit_exceeded exactly as before. *)
let ept_lazy_timed t spent =
  let underlying = ept_lazy t in
  lazy
    (let t0 = Obs.now_mono () in
     let e = Lazy.force underlying in
     spent := Obs.now_mono () -. t0;
     e)

let het_hits_snapshot t =
  match Core.Estimator.het t.estimator with
  | None -> None
  | Some h -> Some (Core.Het.counters h)

let het_hits_since t before =
  match (before, Core.Estimator.het t.estimator) with
  | Some before, Some h ->
    let d = Core.Het.diff_counters ~before ~after:(Core.Het.counters h) in
    d.Core.Het.simple_hits + d.Core.Het.branching_hits
  | _ -> 0

type served = {
  key : Canonical.key;
  outcome : Core.Estimator.outcome;
  status : Core.Explain.cache_status;
}

let flight_status = function
  | Core.Explain.Hit -> Flight_recorder.Hit
  | Core.Explain.Miss -> Flight_recorder.Miss
  | Core.Explain.Bypass -> Flight_recorder.Bypass

let record_flight t ~(key : Canonical.key) ~status
    ~(outcome : Core.Estimator.outcome) ~canonicalize_s ~ept_s ~match_s
    ~ept_nodes ~frontier_peak ~het_hits =
  match t.recorder with
  | None -> ()
  | Some rec_ ->
    let r =
      Flight_recorder.record rec_ ~query:key.Canonical.text
        ~hash:key.Canonical.hash ~cache:(flight_status status)
        ~estimate:outcome.Core.Estimator.value ~canonicalize_s ~ept_s ~match_s
        ~ept_nodes ~frontier_peak
        ~degenerate_clamps:outcome.Core.Estimator.clamped ~het_hits
        ~feedback_round:t.feedback_rounds
    in
    (match t.on_record with None -> () | Some f -> f r)

(* A refusal (deadline exceeded) still leaves a flight record — zero
   estimate, zero stage times — so the drop is visible in RECENT and the
   telemetry stream rather than silently missing from both. *)
let record_refusal t ~(key : Canonical.key) ~cache =
  match t.recorder with
  | None -> ()
  | Some rec_ ->
    let r =
      Flight_recorder.record rec_ ~query:key.Canonical.text
        ~hash:key.Canonical.hash ~cache ~estimate:0.0 ~canonicalize_s:0.0
        ~ept_s:0.0 ~match_s:0.0 ~ept_nodes:0 ~frontier_peak:0
        ~degenerate_clamps:0 ~het_hits:0 ~feedback_round:t.feedback_rounds
    in
    (match t.on_record with None -> () | Some f -> f r)

let timeout_error () =
  Core.Error.make Core.Error.Timeout "request deadline exceeded"

(* Fold completed shadow audits back into the serving thread: the audit
   domain only fills a result list, so Drift.observe and the flight ring are
   still touched by one thread only (this one). Called from the start of
   every estimate (cheap atomic check when nothing completed) and by the
   AUDIT verb. *)
let drain_audits t =
  match t.auditor with
  | None -> ()
  | Some a ->
    Auditor.drain a (fun r ->
        (match t.drift with
         | Some d ->
           ignore
             (Drift.observe ?obs:(Some t.metrics) d
                ~estimate:r.Auditor.estimate ~actual:r.Auditor.actual
               : float)
         | None -> ());
        (match t.recorder with
         | None -> ()
         | Some rec_ ->
           let worst_step, worst_axis, contribution =
             match r.Auditor.worst with
             | None -> ("", "", 1.0)
             | Some w ->
               (w.Auditor.step, w.Auditor.axis, w.Auditor.contribution)
           in
           let fr =
             Flight_recorder.record rec_
               ~audit:
                 { Flight_recorder.audit_actual = r.Auditor.actual;
                   audit_qerror = r.Auditor.qerror;
                   audit_worst_step = worst_step;
                   audit_worst_axis = worst_axis;
                   audit_contribution = contribution }
               ~query:r.Auditor.query ~hash:r.Auditor.hash
               ~cache:Flight_recorder.Audited ~estimate:r.Auditor.estimate
               ~canonicalize_s:0.0 ~ept_s:0.0 ~match_s:0.0 ~ept_nodes:0
               ~frontier_peak:0 ~degenerate_clamps:0 ~het_hits:0
               ~feedback_round:t.feedback_rounds
           in
           (match t.on_record with None -> () | Some f -> f fr));
        if Auditor.feedback_enabled a then begin
          let fb =
            Feedback.apply ?ept:t.ept ~threshold:t.threshold t.estimator
              r.Auditor.ast ~estimate:r.Auditor.estimate
              ~actual:r.Auditor.actual
          in
          if fb.Feedback.refined then begin
            t.feedback_rounds <- t.feedback_rounds + 1;
            Auditor.note_refined a;
            invalidate t
          end
        end)

(* The whole request as an X slice plus canonicalize / pipeline sub-slices,
   recorded only when tracing is on — the stamps reuse the stage clocks the
   flight recorder already reads, so single-engine and pool traces line up. *)
let trace_request t ~t0 ~canonicalize_s ~t1 ~miss_s =
  match t.tracing with
  | None -> ()
  | Some tg ->
    let te = Obs.now_mono () in
    Obs.Trace.complete tg.tbuf ~name:tg.names.n_canonicalize
      ~ts:(Obs.Trace.rel tg.tr t0) ~dur:canonicalize_s;
    if miss_s > 0.0 then
      Obs.Trace.complete tg.tbuf ~name:tg.names.n_pipeline
        ~ts:(Obs.Trace.rel tg.tr t1) ~dur:miss_s;
    Obs.Trace.complete tg.tbuf ~name:tg.names.n_estimate
      ~ts:(Obs.Trace.rel tg.tr t0) ~dur:(te -. t0)

let sample_audit t ~(key : Canonical.key) ~cast ~value =
  match t.auditor with
  | None -> ()
  | Some a ->
    Auditor.sample a ~query:key.Canonical.text ~hash:key.Canonical.hash
      ~ast:cast ~estimate:value

let estimate_ast t ast =
  drain_audits t;
  let t0 = Obs.now_mono () in
  let cast = Canonical.canonicalize ast in
  let key = Canonical.of_ast cast in
  let canonicalize_s = Obs.now_mono () -. t0 in
  match Lru_cache.find t.cache key.Canonical.text with
  | Some outcome ->
    (match t.drift with Some d -> Drift.note_estimate d ~cache_hit:true | None -> ());
    record_flight t ~key ~status:Core.Explain.Hit ~outcome ~canonicalize_s
      ~ept_s:0.0 ~match_s:0.0 ~ept_nodes:0 ~frontier_peak:0 ~het_hits:0;
    sample_audit t ~key ~cast ~value:outcome.Core.Estimator.value;
    trace_request t ~t0 ~canonicalize_s ~t1:t0 ~miss_s:0.0;
    Ok { key; outcome; status = Core.Explain.Hit }
  | None
    when (match t.deadline_s with
          | Some d -> Obs.now_mono () -. t0 > d
          | None -> false) ->
    (* Deadline check sits between canonicalize (cheap, already spent) and
       the pipeline (the expensive part we refuse to start). A cache hit
       above never times out: answering it is cheaper than refusing. *)
    t.timed_out <- t.timed_out + 1;
    record_refusal t ~key ~cache:Flight_recorder.Timed_out;
    Error (timeout_error ())
  | None ->
    let ept_spent = ref 0.0 in
    let het_before = het_hits_snapshot t in
    let t1 = Obs.now_mono () in
    (match
       Core.Estimator.estimate_result_stats_on t.estimator
         (ept_lazy_timed t ept_spent)
         cast
     with
     | Ok (outcome, ms) ->
       let miss_s = Obs.now_mono () -. t1 in
       Lru_cache.put t.cache key.Canonical.text outcome;
       (match t.drift with
        | Some d -> Drift.note_estimate d ~cache_hit:false
        | None -> ());
       record_flight t ~key ~status:Core.Explain.Miss ~outcome ~canonicalize_s
         ~ept_s:!ept_spent
         ~match_s:(Float.max 0.0 (miss_s -. !ept_spent))
         ~ept_nodes:ms.Core.Matcher.ept_nodes
         ~frontier_peak:ms.Core.Matcher.frontier_peak
         ~het_hits:(het_hits_since t het_before);
       sample_audit t ~key ~cast ~value:outcome.Core.Estimator.value;
       trace_request t ~t0 ~canonicalize_s ~t1 ~miss_s;
       Ok { key; outcome; status = Core.Explain.Miss }
     | Error e -> Error e)

let parse query =
  match Xpath.Parser.parse_result query with
  | Result.Error { position; message } ->
    Result.Error (Core.Error.make ~position Core.Error.Malformed_query message)
  | Ok path -> Ok path

let estimate t query =
  match parse query with Error e -> Error e | Ok ast -> estimate_ast t ast

let estimate_batch t queries = List.map (estimate t) queries

let trace_verb t name t0 =
  match t.tracing with
  | None -> ()
  | Some tg ->
    let name =
      if name = `Feedback then tg.names.n_feedback else tg.names.n_explain
    in
    Obs.Trace.complete tg.tbuf ~name ~ts:(Obs.Trace.rel tg.tr t0)
      ~dur:(Obs.now_mono () -. t0)

let feedback_ast t ast ~actual =
  let tf0 = Obs.now_mono () in
  Fun.protect
    ~finally:(fun () -> trace_verb t `Feedback tf0)
  @@ fun () ->
  match estimate_ast t ast with
  | Error e -> Error e
  | Ok served ->
    t.feedback_seen <- t.feedback_seen + 1;
    (match t.drift with
     | Some d ->
       ignore
         (Drift.observe ?obs:(Some t.metrics) d
            ~estimate:served.outcome.Core.Estimator.value ~actual
           : float)
     | None -> ());
    let fb =
      Feedback.apply ?ept:t.ept ~threshold:t.threshold t.estimator
        (Canonical.canonicalize ast)
        ~estimate:served.outcome.Core.Estimator.value ~actual
    in
    if fb.Feedback.refined then begin
      t.feedback_rounds <- t.feedback_rounds + 1;
      invalidate t
    end;
    Ok (served, fb)

let feedback t query ~actual =
  match parse query with Error e -> Error e | Ok ast -> feedback_ast t ast ~actual

let explain t query =
  match parse query with
  | Error e -> Error e
  | Ok ast ->
    let t0 = Obs.now_mono () in
    Fun.protect ~finally:(fun () -> trace_verb t `Explain t0) @@ fun () ->
    let cast = Canonical.canonicalize ast in
    let key = Canonical.of_ast cast in
    let canonicalize_s = Obs.now_mono () -. t0 in
    let cached = Lru_cache.mem t.cache key.Canonical.text in
    let het_before = het_hits_snapshot t in
    (match
       Core.Error.guard (fun () ->
           let qt = Xpath.Query_tree.of_path cast in
           if qt.Xpath.Query_tree.size > 62 then
             Core.Error.raisef Core.Error.Malformed_query
               "query tree has %d nodes; the matcher's bitset encoding \
                supports 62"
               qt.Xpath.Query_tree.size;
           match Core.Explain.run ?obs:t.obs t.estimator cast with
           | r -> r
           | exception Core.Matcher.Ept_too_large n ->
             Core.Error.raisef Core.Error.Limit_exceeded
               "EPT exceeded max_ept_nodes while materializing (%d nodes)" n)
     with
     | Ok r ->
       let status = if cached then Core.Explain.Hit else Core.Explain.Miss in
       record_flight t ~key ~status
         ~outcome:
           { Core.Estimator.value = r.Core.Explain.estimate;
             clamped = r.Core.Explain.degenerate_clamps;
             unknown_labels = r.Core.Explain.unknown_labels }
         ~canonicalize_s ~ept_s:r.Core.Explain.ept_seconds
         ~match_s:r.Core.Explain.match_seconds
         ~ept_nodes:r.Core.Explain.ept_nodes
         ~frontier_peak:r.Core.Explain.matcher.Core.Matcher.frontier_peak
         ~het_hits:(het_hits_since t het_before);
       Ok
         { r with
           Core.Explain.cache = status;
           feedback_rounds = t.feedback_rounds }
     | Error e -> Error e)

let stats_json t =
  let open Obs.Json in
  let c = Lru_cache.counters t.cache in
  let het_json =
    match Core.Estimator.het t.estimator with
    | None -> Null
    | Some h ->
      let u = Core.Het.counters h in
      Obj
        [ ("active", Int (Core.Het.active_count h));
          ("total", Int (Core.Het.total_count h));
          ("bytes", Int (Core.Het.size_in_bytes h));
          ("simple_lookups", Int u.Core.Het.simple_lookups);
          ("simple_hits", Int u.Core.Het.simple_hits);
          ("branching_lookups", Int u.Core.Het.branching_lookups);
          ("branching_hits", Int u.Core.Het.branching_hits);
          ("feedback_inserts", Int u.Core.Het.feedback_inserts);
          ("collisions", Int u.Core.Het.collisions) ]
  in
  Obj
    [ ( "cache",
        Obj
          [ ("capacity", Int (Lru_cache.capacity t.cache));
            ("size", Int (Lru_cache.length t.cache));
            ("hits", Int c.Lru_cache.hits);
            ("misses", Int c.Lru_cache.misses);
            ("insertions", Int c.Lru_cache.insertions);
            ("evictions", Int c.Lru_cache.evictions);
            ("invalidations", Int c.Lru_cache.invalidations) ] );
      ( "feedback",
        Obj
          [ ("seen", Int t.feedback_seen);
            ("rounds", Int t.feedback_rounds);
            ("qerror_threshold", Float t.threshold) ] );
      ("het", het_json);
      ("timeouts", Int t.timed_out);
      ("synopsis_bytes", Int (Core.Estimator.size_in_bytes t.estimator)) ]

let publish_counters t =
  Lru_cache.publish_counters ?obs:t.obs t.cache;
  Obs.add_to ?obs:t.obs "engine.feedback.seen" t.feedback_seen;
  Obs.add_to ?obs:t.obs "engine.feedback.rounds" t.feedback_rounds;
  Option.iter
    (Core.Het.publish_counters ?obs:t.obs)
    (Core.Estimator.het t.estimator)

(* Republish every engine-level total into the scrape registry. Counters go
   through set_max so republishing before each scrape is idempotent;
   point-in-time values are gauges. *)
let publish_telemetry t =
  let obs = t.metrics in
  let c = Lru_cache.counters t.cache in
  Obs.max_to ~obs "engine.cache.hits" c.Lru_cache.hits;
  Obs.max_to ~obs "engine.cache.misses" c.Lru_cache.misses;
  Obs.max_to ~obs "engine.cache.insertions" c.Lru_cache.insertions;
  Obs.max_to ~obs "engine.cache.evictions" c.Lru_cache.evictions;
  Obs.max_to ~obs "engine.cache.invalidations" c.Lru_cache.invalidations;
  Obs.set_to ~obs "engine.cache.size" (float_of_int (Lru_cache.length t.cache));
  Obs.set_to ~obs "engine.cache.capacity"
    (float_of_int (Lru_cache.capacity t.cache));
  Obs.max_to ~obs "engine.feedback.seen" t.feedback_seen;
  Obs.max_to ~obs "engine.feedback.rounds" t.feedback_rounds;
  Obs.max_to ~obs "engine.timeouts" t.timed_out;
  Obs.set_to ~obs "engine.synopsis_bytes"
    (float_of_int (Core.Estimator.size_in_bytes t.estimator));
  (match Core.Estimator.het t.estimator with
   | None -> ()
   | Some h ->
     let u = Core.Het.counters h in
     Obs.set_to ~obs "engine.het.active" (float_of_int (Core.Het.active_count h));
     Obs.set_to ~obs "engine.het.total" (float_of_int (Core.Het.total_count h));
     Obs.set_to ~obs "engine.het.bytes" (float_of_int (Core.Het.size_in_bytes h));
     Obs.max_to ~obs "het.simple_lookups" u.Core.Het.simple_lookups;
     Obs.max_to ~obs "het.simple_hits" u.Core.Het.simple_hits;
     Obs.max_to ~obs "het.branching_lookups" u.Core.Het.branching_lookups;
     Obs.max_to ~obs "het.branching_hits" u.Core.Het.branching_hits;
     Obs.max_to ~obs "het.feedback_inserts" u.Core.Het.feedback_inserts;
     Obs.max_to ~obs "het.collisions" u.Core.Het.collisions);
  (match t.recorder with
   | None -> ()
   | Some r ->
     Obs.max_to ~obs "engine.flight.records" (Flight_recorder.total r));
  (match t.auditor with None -> () | Some a -> Auditor.publish a obs);
  Scrape_meter.publish t.scrape ~obs
    ~served:(c.Lru_cache.hits + c.Lru_cache.misses + t.timed_out
             + t.feedback_seen);
  match t.drift with None -> () | Some d -> Drift.publish d obs

let metrics_text t =
  let t0 = Obs.now_mono () in
  publish_telemetry t;
  let text = Obs.prometheus ~prefix:"xseed_" t.metrics in
  Scrape_meter.note t.scrape (Obs.now_mono () -. t0);
  text

let telemetry_disabled () =
  Core.Error.make Core.Error.Internal "telemetry is disabled on this engine"

(* The AUDIT verb waits (bounded) for the audit domain to catch up, folds
   the results in, and reports — so a serve session at --audit-rate 1.0 can
   be diffed float-for-float against the offline `xseed audit` report. *)
let audit_reply t =
  match t.auditor with
  | None ->
    Error
      (Core.Error.make Core.Error.Internal
         "auditing is disabled (serve with --audit-rate and a source \
          document)")
  | Some a ->
    ignore (Auditor.settle ~timeout_s:5.0 a : bool);
    drain_audits t;
    Ok (Auditor.status_json a)

(* PROFILE on a single engine: there is no queue, so queue-wait and
   reassemble are structurally zero; execute is each estimate's measured
   wall time (errors included — the reply is a timing summary). *)
let profile t queries =
  let timed_out = ref 0 in
  let ex =
    List.map
      (fun q ->
        let t0 = Obs.now_mono () in
        (match estimate t q with
         | Error e when Core.Error.kind e = Core.Error.Timeout -> incr timed_out
         | Ok _ | Error _ -> ());
        1e6 *. (Obs.now_mono () -. t0))
      queries
  in
  let zeros = Serve.percentiles [||] in
  Ok
    { Serve.profiled = List.length ex;
      queue_wait_us = zeros;
      execute_us = Serve.percentiles (Array.of_list ex);
      reassemble_us = zeros;
      timed_out = !timed_out;
      shed = 0;
      steals = 0;
      tenant = None }

let server t =
  { Serve.estimate =
      (fun q ->
        match estimate t q with
        | Ok s ->
          Ok
            { Serve.value = s.outcome.Core.Estimator.value;
              status = s.status }
        | Error e -> Error e);
    estimate_batch =
      (fun qs ->
        List.map
          (fun q ->
            match estimate t q with
            | Ok s ->
              Ok
                { Serve.value = s.outcome.Core.Estimator.value;
                  status = s.status }
            | Error e -> Error e)
          qs);
    feedback =
      (fun q ~actual ->
        match feedback t q ~actual with
        | Ok (_, fb) -> Ok fb
        | Error e -> Error e);
    explain = (fun q -> explain t q);
    stats_json = (fun () -> stats_json t);
    metrics_text = (fun () -> metrics_text t);
    recent =
      (fun n ->
        match t.recorder with
        | None -> Error (telemetry_disabled ())
        | Some r -> Ok (Flight_recorder.recent ?n r));
    drift_json =
      (fun () ->
        match t.drift with
        | None -> Error (telemetry_disabled ())
        | Some d -> Ok (Drift.to_json d));
    profile = (fun qs -> profile t qs);
    audit = (fun () -> audit_reply t) }

module Protocol = struct
  let handle_line t raw =
    Serve.handle_request (server t) ~read_line:(fun () -> None) raw

  let run ?on_request ?max_batch t ic oc =
    Serve.run ?on_request ?max_batch (server t) ic oc
end
