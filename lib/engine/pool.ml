(* Multi-domain serving pool.

   One synopsis (kernel + HET + values) and one materialized EPT are shared
   read-only by N worker domains; everything written on the estimate hot
   path is per-shard (LRU cache, flight-recorder ring, Obs registry, drift
   volume ring), so answering an estimate takes no lock beyond the work
   queue's own mutex. Writes to the shared state — HET refinement and the
   EPT rebuild — happen only on the feedback path, which is single-writer:
   it takes the submission lock (stopping new chunks), waits for in-flight
   chunks to drain, mutates, bumps the epoch, and only then lets
   submissions resume. Workers notice the epoch change at their next
   dequeue and drop their own stale cache; the queue mutex's
   acquire/release pairs give the happens-before edge that makes the new
   EPT pointer and HET contents visible to them.

   Since PR 10 the unit of dispatch is a chunk: BATCH n is split into
   contiguous per-shard slices (DESIGN.md §16), one queue operation per
   chunk. Replies are written lock-free into the batch's preallocated
   submission-order result array; the only latch is one idempotent
   completion per chunk, published to the submitter by the batch mutex.
   Idle shards steal chunks from the tail of busy shards' deques
   (half-splitting a victim's last divisible chunk), so a straggler no
   longer serializes the batch. *)

(* Interned trace-event names, resolved once at create so worker hot loops
   record integer ids only. *)
type trace_names = {
  n_execute : int;
  n_canonicalize : int;
  n_pipeline : int;
  n_queue_wait : int;
  n_batch_submit : int;
  n_batch_gather : int;
  n_chunk_dispatch : int;
  n_steal : int;
  n_feedback : int;
  n_explain : int;
  n_query : int;  (* flow arrow: submit -> execute -> reassemble *)
  n_gc_minor_words : int;
  n_gc_major_words : int;
}

(* The coordinator buffer is written by whichever client thread is
   submitting, gathering, or running feedback/explain, so unlike the
   per-shard buffers it needs its own lock. Lock order: [coord_lock] is
   only ever taken innermost (inside [submit_lock] or alone). *)
type tracing = {
  tr : Obs.Trace.t;
  coord : Obs.Trace.buf;
  coord_lock : Mutex.t;
  names : trace_names;
}

(* Shard-hot mutable state, isolated per shard in its own record and
   padded well past a cache line (the pads push the block to 17 words =
   136 bytes on 64-bit) so two shards' hot words never share a line —
   without the pads, adjacent shards' [busy_s]/[epoch_seen] writes false-
   share and the 4-worker path spends its time in cache-coherence
   traffic instead of estimates. *)
type hot = {
  mutable epoch_seen : int;
  mutable busy_s : float;  (* dequeue-to-result time, accumulated *)
  mutable last_served_at : float;  (* monotonic finish instant; 0 = never *)
  mutable steals : int;  (* chunks this shard stole from another's deque *)
  mutable affinity_hits : int;
      (* affinity-routed chunks this shard served as the preferred shard *)
  mutable current : chunk option;
      (* the chunk being executed, set between dequeue and completion so
         the supervisor can answer its unserved slots if the worker body
         dies mid-chunk *)
  mutable pad0 : int;
  mutable pad1 : int;
  mutable pad2 : int;
  mutable pad3 : int;
  mutable pad4 : int;
  mutable pad5 : int;
  mutable pad6 : int;
  mutable pad7 : int;
  mutable pad8 : int;
  mutable pad9 : int;
}
[@@warning "-69"]

and shard = {
  id : int;
  estimator : Core.Estimator.t;
      (* shares the base estimator's kernel/HET/values, owns its registry *)
  obs : Obs.t;
  cache : Core.Estimator.outcome Lru_cache.t;
  recorder : Flight_recorder.t option;
  drift_shard : Drift.shard option;
  tbuf : Obs.Trace.buf option;  (* written only by this shard's domain *)
  hot : hot;  (* all per-shard mutable scalars live here, padded *)
  queue_wait_us : Obs.histogram;  (* in [obs]; merges pool-wide by key *)
  gc_minor_words : Obs.counter;
  gc_major_words : Obs.counter;
  gc_minor_collections : Obs.counter;
  gc_major_collections : Obs.counter;
}

(* A submitted batch: [remaining] counts unanswered slots; each chunk
   decrements it exactly once (by its slot count) when it completes, and
   the submitter waits on the condition until it reaches zero. The batch
   mutex also publishes the workers' lock-free result-array writes to the
   submitter. *)
and batch = {
  mutable remaining : int;
  batch_lock : Mutex.t;
  batch_done : Condition.t;
}

(* A contiguous slice [c_base, c_hi) of one batch, the unit of dispatch.
   All chunks of a batch share the query/result/stamp arrays; slot [i]
   carries global sequence number [c_seq_base + i]. While a chunk sits in
   a deque nobody owns it, so the work queue's global mutex is what makes
   a steal-split (mutating [c_hi] and minting a sibling) safe. Once
   popped, only the serving worker touches [c_cursor]. *)
and chunk = {
  c_queries : string array;
  c_results : (Serve.estimate_reply, Core.Error.t) result option array;
  c_deq : float array;  (* per-slot execution-start stamps (0 = never) *)
  c_fin : float array;  (* per-slot finish stamps (0 = never) *)
  c_seq_base : int;  (* global seq of batch slot 0 *)
  c_parent : batch;
  c_enqueued_at : float;  (* deadline + queue-wait baseline, mono clock *)
  c_shard : int;  (* planned shard (≠ server when stolen) *)
  c_affinity : bool;  (* routed by client affinity *)
  c_span : bool;
      (* true when the submitter opened a queue-wait span + query flow for
         this chunk; split offspring carry false (no span to close) *)
  c_base : int;  (* first slot this record owns *)
  mutable c_hi : int;  (* exclusive; reduced on the victim by a split *)
  mutable c_cursor : int;  (* next slot to serve *)
  mutable c_done : bool;  (* under [c_parent.batch_lock]: idempotent latch *)
}

type t = {
  base : Core.Estimator.t;
  threshold : float;
  shards : shard array;
  queue : chunk Work_queue.t;
  chunk_target : int;  (* preferred slots per chunk *)
  mutable domains : unit Domain.t array;
  epoch : int Atomic.t;
  inflight : int Atomic.t;  (* chunks queued or executing *)
  deadline_s : float option;  (* per-request budget from enqueue, mono clock *)
  shed_policy : [ `Block | `Shed_newest ];
  shed_total : int Atomic.t;
  timeout_total : int Atomic.t;
  worker_restarts : int Atomic.t;
  chaos : (string -> bool) option;
      (* test-only fault hook, called on the worker domain right before a
         query executes; returning true kills the worker body there *)
  quarantine_lock : Mutex.t;
  crash_counts : (string, int) Hashtbl.t;  (* under quarantine_lock *)
  quarantined_queries : (string, unit) Hashtbl.t;  (* under quarantine_lock *)
  quarantine_active : bool Atomic.t;
      (* fast-path flag so the serve hot loop skips the quarantine
         hashtable (and its lock) entirely until a first crash repeats *)
  drain_lock : Mutex.t;
  drain_cond : Condition.t;
  submit_lock : Mutex.t;  (* serializes submissions against feedback *)
  mutable ept : (Core.Matcher.ept, Core.Error.t) result;
  mutable next_seq : int;  (* under submit_lock *)
  drift : Drift.t option;  (* q-error window + coordinator volume ring *)
  recorder : Flight_recorder.t option;  (* coordinator ring: feedback/explain *)
  record_lock : Mutex.t;
  mutable on_record : (Flight_recorder.record -> unit) option;
  mutable feedback_seen : int;
  mutable feedback_rounds : int;
  mutable stopped : bool;
  telemetry : bool;
  created_at : float;  (* monotonic; busy fractions divide by uptime *)
  coord_obs : Obs.t;  (* persistent coordinator registry (batch sizes) *)
  batch_chunk : Obs.histogram;  (* in [coord_obs] *)
  tracing : tracing option;
  auditor : Auditor.t option;
      (* shadow auditor; workers call its thread-safe [sample], results are
         folded back only under [submit_lock] with the workers drained *)
  scrape : Scrape_meter.t;
}

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let materialize_ept estimator =
  Core.Error.guard (fun () ->
      try Core.Estimator.ept estimator
      with Core.Matcher.Ept_too_large n ->
        Core.Error.raisef Core.Error.Limit_exceeded
          "EPT exceeded max_ept_nodes while materializing (%d nodes)" n)

let parse query =
  match Xpath.Parser.parse_result query with
  | Result.Error { position; message } ->
    Result.Error (Core.Error.make ~position Core.Error.Malformed_query message)
  | Ok path -> Ok path

(* The chunk plan, a pure function so the partition laws are directly
   QCheck-able (test_pool). [n] slots are cut into
   min n (max workers (ceil n/chunk_target)) contiguous chunks — at least
   one per worker for parallelism, near [chunk_target] slots each so the
   dispatch cost amortizes, never more chunks than slots. Sizes differ by
   at most one (long chunks first); chunk [i] goes to shard [i mod
   workers], or every chunk to [preferred] under affinity routing (thieves
   rebalance if the preferred shard falls behind). *)
let plan_chunks ~n ~workers ~chunk_target ?preferred () =
  if n <= 0 then [||]
  else begin
    let target = max 1 chunk_target in
    let count = min n (max workers ((n + target - 1) / target)) in
    let base = n / count and rem = n mod count in
    Array.init count (fun i ->
        let lo = (i * base) + min i rem in
        let hi = lo + base + (if i < rem then 1 else 0) in
        let shard =
          match preferred with Some p -> p | None -> i mod workers
        in
        (lo, hi, shard))
  end

let emit_record t recorder ~seq ~(key : Canonical.key) ~status
    ~(outcome : Core.Estimator.outcome) ~canonicalize_s ~ept_s ~match_s
    ~ept_nodes ~frontier_peak ~het_hits =
  match recorder with
  | None -> ()
  | Some rec_ ->
    let r =
      Flight_recorder.record ~seq rec_ ~query:key.Canonical.text
        ~hash:key.Canonical.hash ~cache:status
        ~estimate:outcome.Core.Estimator.value ~canonicalize_s ~ept_s ~match_s
        ~ept_nodes ~frontier_peak
        ~degenerate_clamps:outcome.Core.Estimator.clamped ~het_hits
        ~feedback_round:t.feedback_rounds
    in
    (match t.on_record with
     | None -> ()
     | Some f -> with_lock t.record_lock (fun () -> f r))

let timeout_error () =
  Core.Error.make Core.Error.Timeout "request deadline exceeded"

(* Limit refusals name the live limit in the uniform limit=<n> form (the
   same convention as the BATCH cap and the TCP frame/connection caps) so
   clients can parse their budget out of any ERR. *)
let overloaded_error ~capacity () =
  Core.Error.make Core.Error.Overloaded
    (Printf.sprintf
       "admission queue full limit=%d (server --queue-capacity); request \
        shed (policy shed-newest)"
       capacity)

(* A refusal (deadline exceeded, load shed) still leaves a flight record —
   zero estimate, zero stage times — so drops are visible in RECENT and the
   telemetry stream. Timeouts land on the refusing shard's ring; sheds on
   the coordinator's (the refusal happens under [submit_lock]). *)
let emit_refusal t recorder ~seq ~query ~hash ~cache =
  match recorder with
  | None -> ()
  | Some rec_ ->
    let r =
      Flight_recorder.record ~seq rec_ ~query ~hash ~cache ~estimate:0.0
        ~canonicalize_s:0.0 ~ept_s:0.0 ~match_s:0.0 ~ept_nodes:0
        ~frontier_peak:0 ~degenerate_clamps:0 ~het_hits:0
        ~feedback_round:t.feedback_rounds
    in
    (match t.on_record with
     | None -> ()
     | Some f -> with_lock t.record_lock (fun () -> f r))

let past_deadline t ~enqueued_at ~now =
  match t.deadline_s with None -> false | Some d -> now -. enqueued_at > d

(* Crash bookkeeping: a query whose execution has killed a worker twice is
   quarantined — subsequent submissions are answered [ERR internal] before
   executing, so one poisonous input cannot grind the pool through endless
   restarts. *)
let note_crash t query =
  with_lock t.quarantine_lock (fun () ->
      let n =
        (match Hashtbl.find_opt t.crash_counts query with
         | Some n -> n
         | None -> 0)
        + 1
      in
      Hashtbl.replace t.crash_counts query n;
      if n >= 2 && not (Hashtbl.mem t.quarantined_queries query) then begin
        Hashtbl.replace t.quarantined_queries query ();
        Atomic.set t.quarantine_active true
      end)

let is_quarantined t query =
  Atomic.get t.quarantine_active
  && with_lock t.quarantine_lock (fun () ->
         Hashtbl.mem t.quarantined_queries query)

let quarantined_count t =
  if not (Atomic.get t.quarantine_active) then 0
  else
    with_lock t.quarantine_lock (fun () ->
        Hashtbl.length t.quarantined_queries)

let quarantined_error () =
  Core.Error.make Core.Error.Internal
    "query quarantined: its execution crashed a worker twice"

let het_counters t =
  Option.map Core.Het.counters (Core.Estimator.het t.base)

(* HET counters are shared across domains and bumped racily, so the
   per-query delta is best-effort under concurrency (exact whenever requests
   are sequential); clamp so a racing reader never records a negative. *)
let het_hits_since t before =
  match (before, Core.Estimator.het t.base) with
  | Some before, Some h ->
    let d = Core.Het.diff_counters ~before ~after:(Core.Het.counters h) in
    max 0 (d.Core.Het.simple_hits + d.Core.Het.branching_hits)
  | _ -> 0

(* The estimate hot path, run on a worker domain against its own shard.
   Mirrors Engine_core.estimate_ast step for step so pool estimates are
   bit-identical to single-engine ones over the same synopsis. *)
(* Stage sub-slices on the serving shard's track, inside the worker's
   [execute] slice. No-ops unless the pool is tracing. *)
let trace_stage t shard ~name ~t0 ~dur =
  match (t.tracing, shard.tbuf) with
  | Some tg, Some tb ->
    let name =
      if name = `Canonicalize then tg.names.n_canonicalize
      else tg.names.n_pipeline
    in
    Obs.Trace.complete tb ~name ~ts:(Obs.Trace.rel tg.tr t0) ~dur
  | _ -> ()

let serve_query t shard ~seq ~enqueued_at query =
  match parse query with
  | Error e -> Error e
  | Ok ast ->
    let t0 = Obs.now_mono () in
    let cast = Canonical.canonicalize ast in
    let key = Canonical.of_ast cast in
    let canonicalize_s = Obs.now_mono () -. t0 in
    trace_stage t shard ~name:`Canonicalize ~t0 ~dur:canonicalize_s;
    (match Lru_cache.find shard.cache key.Canonical.text with
     | Some outcome ->
       (match shard.drift_shard with
        | Some s -> Drift.note_shard s ~cache_hit:true
        | None -> ());
       emit_record t shard.recorder ~seq ~key ~status:Flight_recorder.Hit
         ~outcome ~canonicalize_s ~ept_s:0.0 ~match_s:0.0 ~ept_nodes:0
         ~frontier_peak:0 ~het_hits:0;
       (match t.auditor with
        | Some a ->
          Auditor.sample a ~query:key.Canonical.text ~hash:key.Canonical.hash
            ~ast:cast ~estimate:outcome.Core.Estimator.value
        | None -> ());
       Ok
         { Serve.value = outcome.Core.Estimator.value;
           status = Core.Explain.Hit }
     | None
       when past_deadline t ~enqueued_at ~now:(Obs.now_mono ()) ->
       (* Second deadline checkpoint, between canonicalize (cheap, already
          spent) and the pipeline (the expensive stage we refuse to start).
          A cache hit above always answers: serving it is cheaper than
          refusing. *)
       Atomic.incr t.timeout_total;
       emit_refusal t shard.recorder ~seq ~query:key.Canonical.text
         ~hash:key.Canonical.hash ~cache:Flight_recorder.Timed_out;
       Error (timeout_error ())
     | None ->
       let ept_spent = ref 0.0 in
       let ept =
         lazy
           (let t1 = Obs.now_mono () in
            let e =
              match t.ept with
              | Ok e -> e
              | Error err -> raise (Core.Error.Xseed err)
            in
            ept_spent := Obs.now_mono () -. t1;
            e)
       in
       let het_before = het_counters t in
       let t1 = Obs.now_mono () in
       (match Core.Estimator.estimate_result_stats_on shard.estimator ept cast with
        | Ok (outcome, ms) ->
          let miss_s = Obs.now_mono () -. t1 in
          trace_stage t shard ~name:`Pipeline ~t0:t1 ~dur:miss_s;
          Lru_cache.put shard.cache key.Canonical.text outcome;
          (match shard.drift_shard with
           | Some s -> Drift.note_shard s ~cache_hit:false
           | None -> ());
          emit_record t shard.recorder ~seq ~key ~status:Flight_recorder.Miss
            ~outcome ~canonicalize_s ~ept_s:!ept_spent
            ~match_s:(Float.max 0.0 (miss_s -. !ept_spent))
            ~ept_nodes:ms.Core.Matcher.ept_nodes
            ~frontier_peak:ms.Core.Matcher.frontier_peak
            ~het_hits:(het_hits_since t het_before);
          (match t.auditor with
           | Some a ->
             Auditor.sample a ~query:key.Canonical.text
               ~hash:key.Canonical.hash ~ast:cast
               ~estimate:outcome.Core.Estimator.value
           | None -> ());
          Ok
            { Serve.value = outcome.Core.Estimator.value;
              status = Core.Explain.Miss }
        | Error e -> Error e))

(* Retire a chunk exactly once: decrement the parent batch by the chunk's
   slot count and the pool's in-flight chunk count. Both the worker that
   executed the chunk and the supervisor cleaning up after a crashed
   worker call this; [c_done] (under the batch lock, which also publishes
   the result-array writes) makes the second call a no-op. *)
let complete_chunk t (c : chunk) =
  let slots = c.c_hi - c.c_base in
  let first =
    with_lock c.c_parent.batch_lock (fun () ->
        if c.c_done then false
        else begin
          c.c_done <- true;
          c.c_parent.remaining <- c.c_parent.remaining - slots;
          if c.c_parent.remaining = 0 then
            Condition.broadcast c.c_parent.batch_done;
          true
        end)
  in
  if first then begin
    let before = Atomic.fetch_and_add t.inflight (-1) in
    if before = 1 then
      with_lock t.drain_lock (fun () -> Condition.broadcast t.drain_cond)
  end

(* The thief-side split for a victim's last queued chunk: the victim keeps
   the leading (ceil) half [cursor, mid), the thief takes [mid, hi). Runs
   under the work queue's global mutex while nobody owns the chunk, which
   is what makes mutating [c_hi] safe. A chunk below 2 remaining slots is
   unsplittable — the granularity floor the deterministic stealing tests
   lean on: a lone length-1 chunk can never leave its planned shard. The
   thief's sibling is a fresh in-flight chunk, so the drain count grows
   here; that cannot race [wait_drained] past zero because the victim
   chunk being split is itself still in flight. *)
let split_chunk t (c : chunk) =
  let len = c.c_hi - c.c_cursor in
  if len < 2 then None
  else begin
    let mid = c.c_cursor + ((len + 1) / 2) in
    let thief =
      { c with c_base = mid; c_cursor = mid; c_span = false; c_done = false }
    in
    c.c_hi <- mid;
    Atomic.incr t.inflight;
    Some (c, thief)
  end

(* One dequeue-and-serve iteration cycle over whole chunks. Raises only if
   the worker body itself dies (chaos injection, or a bug outside the
   per-query guard) — the supervisor catches that, answers the chunk's
   unserved slots, and restarts. *)
let worker_loop t shard =
  let sampling_gc = t.telemetry || Option.is_some t.tracing in
  let split = split_chunk t in
  let rec loop () =
    match Work_queue.pop t.queue ~shard:shard.id ~split with
    | None -> ()
    | Some (c, stolen_from) ->
      let t_deq = Obs.now_mono () in
      let epoch = Atomic.get t.epoch in
      if epoch <> shard.hot.epoch_seen then begin
        (* Feedback refined the synopsis since this shard last served:
           every cached outcome may be stale. *)
        Lru_cache.clear shard.cache;
        shard.hot.epoch_seen <- epoch
      end;
      (match stolen_from with
       | Some _victim ->
         shard.hot.steals <- shard.hot.steals + 1;
         (match (t.tracing, shard.tbuf) with
          | Some tg, Some tb ->
            Obs.Trace.instant tb ~name:tg.names.n_steal
              ~ts:(Obs.Trace.rel tg.tr t_deq)
          | _ -> ())
       | None ->
         if c.c_affinity && c.c_shard = shard.id then
           shard.hot.affinity_hits <- shard.hot.affinity_hits + 1);
      if t.telemetry then
        Obs.hobserve shard.queue_wait_us (1e6 *. (t_deq -. c.c_enqueued_at));
      (match (t.tracing, shard.tbuf) with
       | Some tg, Some tb when c.c_span ->
         (* Close the queue-wait async span the submitter opened for this
            chunk; async spans may overlap, which B/E slices on this track
            could not. Split offspring carry no span. *)
         Obs.Trace.async_end tb ~name:tg.names.n_queue_wait
           ~ts:(Obs.Trace.rel tg.tr t_deq) ~id:(c.c_seq_base + c.c_base)
       | _ -> ());
      serve_chunk c t_deq
  and serve_chunk c t_deq =
    shard.hot.current <- Some c;
    let gc0 = if sampling_gc then Some (Gc.quick_stat ()) else None in
    while c.c_cursor < c.c_hi do
      let slot = c.c_cursor in
      let seq = c.c_seq_base + slot in
      let query = c.c_queries.(slot) in
      let t_slot = Obs.now_mono () in
      c.c_deq.(slot) <- t_slot;
      let result =
        if is_quarantined t query then
          (* Refused before any execution: a query that has already
             crashed two workers never runs again. *)
          Error (quarantined_error ())
        else if past_deadline t ~enqueued_at:c.c_enqueued_at ~now:t_slot
        then begin
          (* First deadline checkpoint, per slot: the budget runs from the
             chunk's enqueue, so a deadline can expire mid-chunk — earlier
             slots answered, later ones refused. *)
          Atomic.incr t.timeout_total;
          emit_refusal t shard.recorder ~seq ~query ~hash:0
            ~cache:Flight_recorder.Timed_out;
          Error (timeout_error ())
        end
        else begin
          (* The chaos hook sits outside the per-query guard below on
             purpose: returning true kills the worker body the way a real
             bug outside the guard would, exercising the supervisor. *)
          (match t.chaos with
           | Some kill when kill query -> failwith "chaos: worker killed"
           | Some _ | None -> ());
          try
            serve_query t shard ~seq ~enqueued_at:c.c_enqueued_at query
          with exn ->
            Error
              (match Core.Error.of_exn exn with
               | Some e -> e
               | None ->
                 Core.Error.make Core.Error.Internal (Printexc.to_string exn))
        end
      in
      (* Lock-free reply write, straight into the submission-order slot;
         the batch mutex inside [complete_chunk] publishes it. *)
      c.c_results.(slot) <- Some result;
      c.c_fin.(slot) <- Obs.now_mono ();
      c.c_cursor <- slot + 1
    done;
    let t_fin = Obs.now_mono () in
    shard.hot.busy_s <- shard.hot.busy_s +. (t_fin -. t_deq);
    shard.hot.last_served_at <- t_fin;
    (match gc0 with
     | None -> ()
     | Some gc0 ->
       let gc1 = Gc.quick_stat () in
       Obs.add shard.gc_minor_words
         (int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words));
       Obs.add shard.gc_major_words
         (int_of_float
            (gc1.Gc.major_words +. gc1.Gc.promoted_words
            -. (gc0.Gc.major_words +. gc0.Gc.promoted_words)));
       Obs.add shard.gc_minor_collections
         (gc1.Gc.minor_collections - gc0.Gc.minor_collections);
       Obs.add shard.gc_major_collections
         (gc1.Gc.major_collections - gc0.Gc.major_collections);
       match (t.tracing, shard.tbuf) with
       | Some tg, Some tb ->
         let ts = Obs.Trace.rel tg.tr t_fin in
         Obs.Trace.counter tb ~name:tg.names.n_gc_minor_words ~ts
           ~value:gc1.Gc.minor_words;
         Obs.Trace.counter tb ~name:tg.names.n_gc_major_words ~ts
           ~value:(gc1.Gc.major_words +. gc1.Gc.promoted_words)
       | _ -> ());
    (match (t.tracing, shard.tbuf) with
     | Some tg, Some tb ->
       let ts = Obs.Trace.rel tg.tr t_deq in
       let dur = t_fin -. t_deq in
       Obs.Trace.complete_seq tb ~name:tg.names.n_execute ~ts ~dur
         ~seq:(c.c_seq_base + c.c_base);
       (* The flow arrow touches down mid-slice so Perfetto anchors it
          inside the execute slice rather than on its edge. *)
       if c.c_span then
         Obs.Trace.flow_step tb ~name:tg.names.n_query
           ~ts:(ts +. (dur /. 2.0)) ~id:(c.c_seq_base + c.c_base)
     | _ -> ());
    complete_chunk t c;
    shard.hot.current <- None;
    loop ()
  in
  loop ()

(* Worker supervision: an exception escaping the loop body is a dead
   worker. Restart it in place — same domain, same shard — after answering
   the unserved slots of whatever chunk it was holding ([ERR internal],
   via the idempotent completion) and noting the crash against the slot
   that was executing, for quarantine. Restarting on the same domain keeps
   shard identity (caches, rings, registries) stable and costs nothing;
   what matters for liveness is that the loop re-enters [Work_queue.pop],
   not that a fresh domain spawns. *)
let rec supervise t shard =
  match worker_loop t shard with
  | () -> ()  (* queue closed: clean shutdown *)
  | exception exn ->
    Atomic.incr t.worker_restarts;
    (match shard.hot.current with
     | Some c ->
       if c.c_cursor < c.c_hi then note_crash t c.c_queries.(c.c_cursor);
       let err =
         Core.Error.make Core.Error.Internal
           (Printf.sprintf
              "worker %d died serving this query: %s (worker restarted)"
              shard.id (Printexc.to_string exn))
       in
       let now = Obs.now_mono () in
       for slot = c.c_cursor to c.c_hi - 1 do
         if c.c_results.(slot) = None then begin
           c.c_results.(slot) <- Some (Error err);
           if c.c_deq.(slot) = 0.0 then c.c_deq.(slot) <- now;
           c.c_fin.(slot) <- now
         end
       done;
       c.c_cursor <- c.c_hi;
       complete_chunk t c
     | None -> ());
    shard.hot.current <- None;
    supervise t shard

let create ?(workers = 2) ?(qerror_threshold = 2.0) ?(cache_capacity = 1024)
    ?(telemetry = true) ?(recorder_capacity = 256) ?(drift_slots = 6)
    ?(drift_per_slot = 64) ?(drift_p90_threshold = 8.0) ?(queue_capacity = 256)
    ?(chunk_target = 8) ?(steal = true) ?trace ?deadline_s
    ?(shed_policy = `Block) ?chaos ?auditor estimator =
  if workers < 1 then
    invalid_arg (Printf.sprintf "Pool.create: workers %d < 1" workers);
  if chunk_target < 1 then
    invalid_arg
      (Printf.sprintf "Pool.create: chunk_target %d < 1" chunk_target);
  if not (Float.is_finite qerror_threshold) || qerror_threshold < 1.0 then
    invalid_arg "Pool.create: qerror_threshold must be finite and >= 1";
  (match deadline_s with
   | Some d when Float.is_nan d ->
     invalid_arg "Pool.create: deadline_s must not be NaN"
   | _ -> ());
  let drift =
    if telemetry then
      Some
        (Drift.create ~slots:drift_slots ~per_slot:drift_per_slot
           ~p90_threshold:drift_p90_threshold ())
    else None
  in
  let tracing =
    Option.map
      (fun tr ->
        { tr;
          coord = Obs.Trace.register tr ~tid:0 ~name:"coordinator";
          coord_lock = Mutex.create ();
          names =
            { n_execute = Obs.Trace.intern tr "execute";
              n_canonicalize = Obs.Trace.intern tr "canonicalize";
              n_pipeline = Obs.Trace.intern tr "pipeline";
              n_queue_wait = Obs.Trace.intern tr "queue_wait";
              n_batch_submit = Obs.Trace.intern tr "batch_submit";
              n_batch_gather = Obs.Trace.intern tr "batch_gather";
              n_chunk_dispatch = Obs.Trace.intern tr "chunk_dispatch";
              n_steal = Obs.Trace.intern tr "steal";
              n_feedback = Obs.Trace.intern tr "feedback";
              n_explain = Obs.Trace.intern tr "explain";
              n_query = Obs.Trace.intern tr "query";
              n_gc_minor_words = Obs.Trace.intern tr "gc.minor_words";
              n_gc_major_words = Obs.Trace.intern tr "gc.major_words" } })
      trace
  in
  let shards =
    Array.init workers (fun id ->
        let obs = Obs.create () in
        let shard_labels = [ ("shard", string_of_int id) ] in
        { id;
          estimator =
            Core.Estimator.create
              ~card_threshold:(Core.Estimator.card_threshold estimator)
              ~max_ept_nodes:(Core.Estimator.max_ept_nodes estimator)
              ~recursion_aware:(Core.Estimator.recursion_aware estimator)
              ?het:(Core.Estimator.het estimator)
              ?values:(Core.Estimator.values estimator)
              ~obs
              (Core.Estimator.kernel estimator);
          obs;
          cache = Lru_cache.create ~capacity:cache_capacity;
          recorder =
            (if telemetry then
               Some (Flight_recorder.create ~capacity:recorder_capacity ())
             else None);
          drift_shard = Option.map Drift.register_shard drift;
          tbuf =
            Option.map
              (fun tr ->
                Obs.Trace.register tr ~tid:(id + 1)
                  ~name:(Printf.sprintf "shard-%d" id))
              trace;
          hot =
            { epoch_seen = 0;
              busy_s = 0.0;
              last_served_at = 0.0;
              steals = 0;
              affinity_hits = 0;
              current = None;
              pad0 = 0;
              pad1 = 0;
              pad2 = 0;
              pad3 = 0;
              pad4 = 0;
              pad5 = 0;
              pad6 = 0;
              pad7 = 0;
              pad8 = 0;
              pad9 = 0 };
          queue_wait_us = Obs.histogram obs "engine.pool.queue_wait_us";
          gc_minor_words = Obs.counter_with obs "engine.gc.minor_words" shard_labels;
          gc_major_words = Obs.counter_with obs "engine.gc.major_words" shard_labels;
          gc_minor_collections =
            Obs.counter_with obs "engine.gc.minor_collections" shard_labels;
          gc_major_collections =
            Obs.counter_with obs "engine.gc.major_collections" shard_labels })
  in
  let coord_obs = Obs.create () in
  let t =
    { base = estimator;
      threshold = qerror_threshold;
      shards;
      queue = Work_queue.create ~steal ~shards:workers ~capacity:queue_capacity ();
      chunk_target;
      domains = [||];
      epoch = Atomic.make 0;
      inflight = Atomic.make 0;
      deadline_s;
      shed_policy;
      shed_total = Atomic.make 0;
      timeout_total = Atomic.make 0;
      worker_restarts = Atomic.make 0;
      chaos;
      quarantine_lock = Mutex.create ();
      crash_counts = Hashtbl.create 16;
      quarantined_queries = Hashtbl.create 16;
      quarantine_active = Atomic.make false;
      drain_lock = Mutex.create ();
      drain_cond = Condition.create ();
      submit_lock = Mutex.create ();
      ept = materialize_ept estimator;
      next_seq = 0;
      drift;
      recorder =
        (if telemetry then
           Some (Flight_recorder.create ~capacity:recorder_capacity ())
         else None);
      record_lock = Mutex.create ();
      on_record = None;
      feedback_seen = 0;
      feedback_rounds = 0;
      stopped = false;
      telemetry;
      created_at = Obs.now_mono ();
      coord_obs;
      batch_chunk = Obs.histogram coord_obs "engine.pool.batch_chunk";
      tracing;
      auditor;
      scrape = Scrape_meter.create () }
  in
  (* The EPT and shards are fully built before any domain spawns, so the
     workers' first reads are ordered by the spawn itself. *)
  t.domains <-
    Array.map (fun shard -> Domain.spawn (fun () -> supervise t shard)) shards;
  t

let workers t = Array.length t.shards
let epoch t = Atomic.get t.epoch
let shed_total t = Atomic.get t.shed_total
let timeout_total t = Atomic.get t.timeout_total
let worker_restarts t = Atomic.get t.worker_restarts
let qerror_threshold t = t.threshold
let feedback_seen t = t.feedback_seen
let feedback_rounds t = t.feedback_rounds
let drift t = t.drift
let chunk_target t = t.chunk_target
let set_on_record t f = t.on_record <- Some f

let steals_total t = (Work_queue.stats t.queue).Work_queue.steals

let affinity_hits t =
  Array.fold_left (fun acc (s : shard) -> acc + s.hot.affinity_hits) 0 t.shards

(* The affinity hash: a client token (connection counter, tenant id...)
   maps to a stable preferred shard. [Hashtbl.hash] mixes the bits so
   consecutive connection ids still spread across shards. *)
let preferred_shard t ~affinity = Hashtbl.hash affinity mod workers t

let shard_cache_counters t =
  Array.map (fun (s : shard) -> Lru_cache.counters s.cache) t.shards

let closed_error () =
  Core.Error.make Core.Error.Internal "the pool has been shut down"

let with_coord tracing f =
  match tracing with
  | None -> ()
  | Some tg -> with_lock tg.coord_lock (fun () -> f tg)

(* Submit a batch as per-shard chunks and wait for all of it; replies land
   in the preallocated submission-order result array regardless of which
   shard served which slot. Returns the raw results, the per-slot
   enqueue/dequeue/finish stamp arrays (for PROFILE; refused slots keep
   zero stamps) and the monotonic instant reassembly finished.

   When tracing, the coordinator track shows a [batch_submit] slice with,
   per chunk, a [chunk_dispatch] instant, a flow start and a queue-wait
   async-begin, and a [batch_gather] slice where every chunk's flow arrow
   lands. *)
let run_batch ?affinity t queries =
  let queries = Array.of_list queries in
  let n = Array.length queries in
  if n = 0 then ([||], [||], [||], [||], Obs.now_mono ())
  else begin
    let results = Array.make n None in
    let enq = Array.make n 0.0 in
    let deq = Array.make n 0.0 in
    let fin = Array.make n 0.0 in
    let parent =
      { remaining = n;
        batch_lock = Mutex.create ();
        batch_done = Condition.create () }
    in
    let flows = ref [] in  (* admitted chunk flow ids, ended at gather *)
    let t_sub0 = Obs.now_mono () in
    with_lock t.submit_lock (fun () ->
        if t.telemetry then Obs.hobserve t.batch_chunk (float_of_int n);
        let seq_base = t.next_seq in
        t.next_seq <- seq_base + n;
        if t.stopped then begin
          for slot = 0 to n - 1 do
            results.(slot) <- Some (Error (closed_error ()))
          done;
          with_lock parent.batch_lock (fun () -> parent.remaining <- 0)
        end
        else begin
          let preferred =
            Option.map (fun a -> preferred_shard t ~affinity:a) affinity
          in
          let plan =
            plan_chunks ~n ~workers:(workers t)
              ~chunk_target:t.chunk_target ?preferred ()
          in
          Array.iter
            (fun (lo, hi, shard_id) ->
              let c_enq = Obs.now_mono () in
              for slot = lo to hi - 1 do
                enq.(slot) <- c_enq
              done;
              let c =
                { c_queries = queries;
                  c_results = results;
                  c_deq = deq;
                  c_fin = fin;
                  c_seq_base = seq_base;
                  c_parent = parent;
                  c_enqueued_at = c_enq;
                  c_shard = shard_id;
                  c_affinity = Option.is_some preferred;
                  c_span = Option.is_some t.tracing;
                  c_base = lo;
                  c_hi = hi;
                  c_cursor = lo;
                  c_done = false }
              in
              Atomic.incr t.inflight;
              let id = seq_base + lo in
              with_coord t.tracing (fun tg ->
                  let ts = Obs.Trace.rel tg.tr c_enq in
                  Obs.Trace.instant tg.coord ~name:tg.names.n_chunk_dispatch
                    ~ts;
                  Obs.Trace.flow_start tg.coord ~name:tg.names.n_query ~ts
                    ~id;
                  Obs.Trace.async_begin tg.coord ~name:tg.names.n_queue_wait
                    ~ts ~id);
              let admitted =
                match t.shed_policy with
                | `Block ->
                  if Work_queue.push t.queue ~shard:shard_id c then `Ok
                  else `Closed
                | `Shed_newest -> Work_queue.try_push t.queue ~shard:shard_id c
              in
              match admitted with
              | `Ok -> flows := id :: !flows
              | (`Closed | `Full) as refusal ->
                ignore (Atomic.fetch_and_add t.inflight (-1) : int);
                for slot = lo to hi - 1 do
                  let error =
                    match refusal with
                    | `Closed -> closed_error ()
                    | `Full ->
                      (* Bounded admission under shed-newest: the deque is
                         full, so this newest chunk is the one dropped —
                         every slot it carries. *)
                      Atomic.incr t.shed_total;
                      emit_refusal t t.recorder ~seq:(seq_base + slot)
                        ~query:queries.(slot) ~hash:0
                        ~cache:Flight_recorder.Shed;
                      overloaded_error
                        ~capacity:(Work_queue.capacity t.queue) ()
                  in
                  results.(slot) <- Some (Error error)
                done;
                (* Nobody will ever dequeue it: close its queue-wait span
                   and terminate its flow so the trace still lints. *)
                with_coord t.tracing (fun tg ->
                    let ts = Obs.Trace.now tg.tr in
                    Obs.Trace.async_end tg.coord ~name:tg.names.n_queue_wait
                      ~ts ~id;
                    Obs.Trace.flow_end tg.coord ~name:tg.names.n_query ~ts
                      ~id);
                with_lock parent.batch_lock (fun () ->
                    c.c_done <- true;
                    parent.remaining <- parent.remaining - (hi - lo)))
            plan
        end;
        with_coord t.tracing (fun tg ->
            Obs.Trace.complete tg.coord ~name:tg.names.n_batch_submit
              ~ts:(Obs.Trace.rel tg.tr t_sub0)
              ~dur:(Obs.now_mono () -. t_sub0)));
    with_lock parent.batch_lock (fun () ->
        while parent.remaining > 0 do
          Condition.wait parent.batch_done parent.batch_lock
        done);
    let t_gather0 = Obs.now_mono () in
    let out =
      Array.map
        (function
          | Some r -> r
          | None -> Error (closed_error ()))
        results
    in
    let t_done = Obs.now_mono () in
    with_coord t.tracing (fun tg ->
        let ts0 = Obs.Trace.rel tg.tr t_gather0 in
        let dur = Float.max 1e-9 (t_done -. t_gather0) in
        List.iter
          (fun id ->
            Obs.Trace.flow_end tg.coord ~name:tg.names.n_query
              ~ts:(ts0 +. (dur /. 2.0)) ~id)
          !flows;
        Obs.Trace.complete tg.coord ~name:tg.names.n_batch_gather ~ts:ts0
          ~dur);
    (out, enq, deq, fin, t_done)
  end

let estimate_batch ?affinity t queries =
  let results, _, _, _, _ = run_batch ?affinity t queries in
  Array.to_list results

let estimate ?affinity t query =
  match estimate_batch ?affinity t [ query ] with
  | [ r ] -> r
  | _ -> Error (closed_error ())

(* The PROFILE verb: run the queries as one batch and compute exact
   per-stage percentiles from the per-slot stamps. Stages partition each
   query's life: queue-wait (submit to execution start — for a slot deep
   in a chunk that includes its predecessors' execute time), execute
   (start to result), reassemble (result to batch completion — the stall
   until the whole batch can be answered). Refused or unserved slots
   carry zero stamps and are skipped. [steals] is the pool-wide steal
   delta across the batch (exact when the pool is otherwise quiet). *)
let profile ?affinity t queries =
  let s0 = steals_total t in
  let out, enq, deq, fin, t_done = run_batch ?affinity t queries in
  let s1 = steals_total t in
  let count kind =
    Array.fold_left
      (fun acc -> function
        | Result.Error e when Core.Error.kind e = kind -> acc + 1
        | _ -> acc)
      0 out
  in
  let served = ref [] in
  Array.iteri
    (fun slot _ ->
      if deq.(slot) > 0.0 && fin.(slot) > 0.0 then served := slot :: !served)
    out;
  let served = List.rev !served in
  let stage f = Array.of_list (List.map f served) in
  Ok
    { Serve.profiled = List.length served;
      queue_wait_us =
        Serve.percentiles
          (stage (fun i -> 1e6 *. Float.max 0.0 (deq.(i) -. enq.(i))));
      execute_us =
        Serve.percentiles
          (stage (fun i -> 1e6 *. Float.max 0.0 (fin.(i) -. deq.(i))));
      reassemble_us =
        Serve.percentiles
          (stage (fun i -> 1e6 *. Float.max 0.0 (t_done -. fin.(i))));
      timed_out = count Core.Error.Timeout;
      shed = count Core.Error.Overloaded;
      steals = max 0 (s1 - s0);
      tenant = None }

(* Wait until no chunk is being served or queued. Callers hold
   [submit_lock], so no new submission can race the drain. *)
let wait_drained t =
  with_lock t.drain_lock (fun () ->
      while Atomic.get t.inflight > 0 do
        Condition.wait t.drain_cond t.drain_lock
      done)

let next_seq_locked t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let emit_audit_record t ~seq (r : Auditor.audited) =
  match t.recorder with
  | None -> ()
  | Some rec_ ->
    let worst_step, worst_axis, contribution =
      match r.Auditor.worst with
      | None -> ("", "", 1.0)
      | Some w -> (w.Auditor.step, w.Auditor.axis, w.Auditor.contribution)
    in
    let fr =
      Flight_recorder.record ~seq rec_
        ~audit:
          { Flight_recorder.audit_actual = r.Auditor.actual;
            audit_qerror = r.Auditor.qerror;
            audit_worst_step = worst_step;
            audit_worst_axis = worst_axis;
            audit_contribution = contribution }
        ~query:r.Auditor.query ~hash:r.Auditor.hash
        ~cache:Flight_recorder.Audited ~estimate:r.Auditor.estimate
        ~canonicalize_s:0.0 ~ept_s:0.0 ~match_s:0.0 ~ept_nodes:0
        ~frontier_peak:0 ~degenerate_clamps:0 ~het_hits:0
        ~feedback_round:t.feedback_rounds
    in
    (match t.on_record with
     | None -> ()
     | Some f -> with_lock t.record_lock (fun () -> f fr))

(* Fold completed shadow audits into the coordinator's telemetry. Callers
   hold [submit_lock] with the workers drained — the single-writer state the
   feedback path already establishes — so [Drift.observe] cannot race a
   worker's [note_shard] and the audit-feedback EPT rebuild below follows
   the same epoch protocol as client feedback. *)
let drain_audits_locked t =
  match t.auditor with
  | None -> ()
  | Some a ->
    Auditor.drain a (fun r ->
        (match t.drift with
         | Some d ->
           ignore
             (Drift.observe d ~estimate:r.Auditor.estimate
                ~actual:r.Auditor.actual
               : float)
         | None -> ());
        emit_audit_record t ~seq:(next_seq_locked t) r;
        if Auditor.feedback_enabled a then begin
          let fb =
            Feedback.apply
              ?ept:(Result.to_option t.ept)
              ~threshold:t.threshold t.base r.Auditor.ast
              ~estimate:r.Auditor.estimate ~actual:r.Auditor.actual
          in
          if fb.Feedback.refined then begin
            t.feedback_rounds <- t.feedback_rounds + 1;
            Auditor.note_refined a;
            t.ept <- materialize_ept t.base;
            Atomic.incr t.epoch
          end
        end)

(* Single-writer feedback: stop submissions, drain the workers, and only
   then touch the shared HET/EPT. The estimate judged by the q-error is
   recomputed inline on the drained pool (recorded as a cache Bypass on the
   coordinator ring — it deliberately skips the shard caches), matching the
   single engine's arithmetic exactly. *)
(* One coordinator-track slice for a drained verb (feedback/explain). *)
let trace_coord_verb t which t0 =
  with_coord t.tracing (fun tg ->
      let name =
        if which = `Feedback then tg.names.n_feedback else tg.names.n_explain
      in
      Obs.Trace.complete tg.coord ~name ~ts:(Obs.Trace.rel tg.tr t0)
        ~dur:(Obs.now_mono () -. t0))

let feedback t query ~actual =
  match parse query with
  | Error e -> Error e
  | Ok ast ->
    with_lock t.submit_lock (fun () ->
        if t.stopped then Error (closed_error ())
        else begin
          let tv0 = Obs.now_mono () in
          Fun.protect ~finally:(fun () -> trace_coord_verb t `Feedback tv0)
          @@ fun () ->
          wait_drained t;
          drain_audits_locked t;
          let t0 = Obs.now_mono () in
          let cast = Canonical.canonicalize ast in
          let key = Canonical.of_ast cast in
          let canonicalize_s = Obs.now_mono () -. t0 in
          let ept_or_err = t.ept in
          let lazy_ept =
            lazy
              (match ept_or_err with
               | Ok e -> e
               | Error err -> raise (Core.Error.Xseed err))
          in
          let t1 = Obs.now_mono () in
          match
            Core.Estimator.estimate_result_stats_on t.base lazy_ept cast
          with
          | Error e -> Error e
          | Ok (outcome, ms) ->
            let match_s = Obs.now_mono () -. t1 in
            t.feedback_seen <- t.feedback_seen + 1;
            (match t.drift with
             | Some d ->
               Drift.note_estimate d ~cache_hit:false;
               ignore
                 (Drift.observe d ~estimate:outcome.Core.Estimator.value
                    ~actual
                   : float)
             | None -> ());
            let fb =
              Feedback.apply
                ?ept:(Result.to_option ept_or_err)
                ~threshold:t.threshold t.base cast
                ~estimate:outcome.Core.Estimator.value ~actual
            in
            if fb.Feedback.refined then begin
              t.feedback_rounds <- t.feedback_rounds + 1;
              (* Rebuild eagerly while drained; workers drop their caches
                 when they observe the new epoch at their next dequeue. *)
              t.ept <- materialize_ept t.base;
              Atomic.incr t.epoch
            end;
            emit_record t t.recorder ~seq:(next_seq_locked t) ~key
              ~status:Flight_recorder.Bypass ~outcome ~canonicalize_s
              ~ept_s:0.0 ~match_s ~ept_nodes:ms.Core.Matcher.ept_nodes
              ~frontier_peak:ms.Core.Matcher.frontier_peak ~het_hits:0;
            Ok fb
        end)

(* EXPLAIN re-runs the whole pipeline (it reports per-stage numbers), so it
   runs drained on the base estimator like feedback does. *)
let explain t query =
  match parse query with
  | Error e -> Error e
  | Ok ast ->
    with_lock t.submit_lock (fun () ->
        if t.stopped then Error (closed_error ())
        else begin
          let tv0 = Obs.now_mono () in
          Fun.protect ~finally:(fun () -> trace_coord_verb t `Explain tv0)
          @@ fun () ->
          wait_drained t;
          let cast = Canonical.canonicalize ast in
          let key = Canonical.of_ast cast in
          let cached =
            Array.exists
              (fun (s : shard) -> Lru_cache.mem s.cache key.Canonical.text)
              t.shards
          in
          let het_before = het_counters t in
          match
            Core.Error.guard (fun () ->
                let qt = Xpath.Query_tree.of_path cast in
                if qt.Xpath.Query_tree.size > 62 then
                  Core.Error.raisef Core.Error.Malformed_query
                    "query tree has %d nodes; the matcher's bitset encoding \
                     supports 62"
                    qt.Xpath.Query_tree.size;
                match Core.Explain.run t.base cast with
                | r -> r
                | exception Core.Matcher.Ept_too_large n ->
                  Core.Error.raisef Core.Error.Limit_exceeded
                    "EPT exceeded max_ept_nodes while materializing (%d \
                     nodes)"
                    n)
          with
          | Error e -> Error e
          | Ok r ->
            let status =
              if cached then Core.Explain.Hit else Core.Explain.Miss
            in
            emit_record t t.recorder ~seq:(next_seq_locked t) ~key
              ~status:(if cached then Flight_recorder.Hit else Flight_recorder.Miss)
              ~outcome:
                { Core.Estimator.value = r.Core.Explain.estimate;
                  clamped = r.Core.Explain.degenerate_clamps;
                  unknown_labels = r.Core.Explain.unknown_labels }
              ~canonicalize_s:0.0 ~ept_s:r.Core.Explain.ept_seconds
              ~match_s:r.Core.Explain.match_seconds
              ~ept_nodes:r.Core.Explain.ept_nodes
              ~frontier_peak:r.Core.Explain.matcher.Core.Matcher.frontier_peak
              ~het_hits:(het_hits_since t het_before);
            Ok
              { r with
                Core.Explain.cache = status;
                feedback_rounds = t.feedback_rounds }
        end)

(* Aggregate cache counters: the per-shard sums. *)
let cache_counters t =
  Array.fold_left
    (fun (acc : Lru_cache.counters) (c : Lru_cache.counters) ->
      { Lru_cache.hits = acc.hits + c.hits;
        misses = acc.misses + c.misses;
        insertions = acc.insertions + c.insertions;
        evictions = acc.evictions + c.evictions;
        invalidations = acc.invalidations + c.invalidations })
    { Lru_cache.hits = 0; misses = 0; insertions = 0; evictions = 0;
      invalidations = 0 }
    (shard_cache_counters t)

let cache_length t =
  Array.fold_left (fun acc (s : shard) -> acc + Lru_cache.length s.cache) 0 t.shards

let cache_capacity t =
  Array.fold_left (fun acc (s : shard) -> acc + Lru_cache.capacity s.cache) 0 t.shards

let flight_total t =
  Array.fold_left
    (fun acc (s : shard) ->
      acc + match s.recorder with None -> 0 | Some r -> Flight_recorder.total r)
    (match t.recorder with None -> 0 | Some r -> Flight_recorder.total r)
    t.shards

let stats_json t =
  let open Obs.Json in
  let c = cache_counters t in
  let het_json =
    match Core.Estimator.het t.base with
    | None -> Null
    | Some h ->
      let u = Core.Het.counters h in
      Obj
        [ ("active", Int (Core.Het.active_count h));
          ("total", Int (Core.Het.total_count h));
          ("bytes", Int (Core.Het.size_in_bytes h));
          ("simple_lookups", Int u.Core.Het.simple_lookups);
          ("simple_hits", Int u.Core.Het.simple_hits);
          ("branching_lookups", Int u.Core.Het.branching_lookups);
          ("branching_hits", Int u.Core.Het.branching_hits);
          ("feedback_inserts", Int u.Core.Het.feedback_inserts);
          ("collisions", Int u.Core.Het.collisions) ]
  in
  Obj
    [ ( "cache",
        Obj
          [ ("capacity", Int (cache_capacity t));
            ("size", Int (cache_length t));
            ("hits", Int c.Lru_cache.hits);
            ("misses", Int c.Lru_cache.misses);
            ("insertions", Int c.Lru_cache.insertions);
            ("evictions", Int c.Lru_cache.evictions);
            ("invalidations", Int c.Lru_cache.invalidations) ] );
      ( "feedback",
        Obj
          [ ("seen", Int t.feedback_seen);
            ("rounds", Int t.feedback_rounds);
            ("qerror_threshold", Float t.threshold) ] );
      ("het", het_json);
      ("synopsis_bytes", Int (Core.Estimator.size_in_bytes t.base));
      ( "pool",
        let q = Work_queue.stats t.queue in
        Obj
          [ ("workers", Int (workers t));
            ("epoch", Int (epoch t));
            ("chunk_target", Int t.chunk_target);
            ("queue_depth", Int (Work_queue.length t.queue));
            ("queue_pushes", Int q.Work_queue.pushes);
            ("queue_pops", Int q.Work_queue.pops);
            ("queue_steals", Int q.Work_queue.steals);
            ("queue_push_waits", Int q.Work_queue.push_waits);
            ("queue_pop_waits", Int q.Work_queue.pop_waits);
            ("queue_push_wait_s", Float q.Work_queue.push_wait_s);
            ("queue_pop_wait_s", Float q.Work_queue.pop_wait_s);
            ("queue_max_occupancy", Int q.Work_queue.max_occupancy);
            ("affinity_hits", Int (affinity_hits t));
            ("shed_total", Int (shed_total t));
            ("timeout_total", Int (timeout_total t));
            ("worker_restarts", Int (worker_restarts t));
            ("quarantined", Int (quarantined_count t)) ] ) ]

(* One scrape: pool-level totals published into a scratch registry, merged
   with every shard's pipeline registry. The merge orders series by key, so
   the exposition is deterministic no matter how work was scheduled; it is
   rebuilt per scrape, so repeated scrapes without traffic are identical. *)
let merged_metrics t =
  let obs = Obs.create () in
  let c = cache_counters t in
  Obs.add_to ~obs "engine.cache.hits" c.Lru_cache.hits;
  Obs.add_to ~obs "engine.cache.misses" c.Lru_cache.misses;
  Obs.add_to ~obs "engine.cache.insertions" c.Lru_cache.insertions;
  Obs.add_to ~obs "engine.cache.evictions" c.Lru_cache.evictions;
  Obs.add_to ~obs "engine.cache.invalidations" c.Lru_cache.invalidations;
  Obs.set_to ~obs "engine.cache.size" (float_of_int (cache_length t));
  Obs.set_to ~obs "engine.cache.capacity" (float_of_int (cache_capacity t));
  Obs.max_to ~obs "engine.feedback.seen" t.feedback_seen;
  Obs.max_to ~obs "engine.feedback.rounds" t.feedback_rounds;
  Obs.set_to ~obs "engine.synopsis_bytes"
    (float_of_int (Core.Estimator.size_in_bytes t.base));
  (match Core.Estimator.het t.base with
   | None -> ()
   | Some h ->
     let u = Core.Het.counters h in
     Obs.set_to ~obs "engine.het.active" (float_of_int (Core.Het.active_count h));
     Obs.set_to ~obs "engine.het.total" (float_of_int (Core.Het.total_count h));
     Obs.set_to ~obs "engine.het.bytes" (float_of_int (Core.Het.size_in_bytes h));
     Obs.max_to ~obs "het.simple_lookups" u.Core.Het.simple_lookups;
     Obs.max_to ~obs "het.simple_hits" u.Core.Het.simple_hits;
     Obs.max_to ~obs "het.branching_lookups" u.Core.Het.branching_lookups;
     Obs.max_to ~obs "het.branching_hits" u.Core.Het.branching_hits;
     Obs.max_to ~obs "het.feedback_inserts" u.Core.Het.feedback_inserts;
     Obs.max_to ~obs "het.collisions" u.Core.Het.collisions);
  Obs.max_to ~obs "engine.flight.records" (flight_total t);
  (match t.auditor with None -> () | Some a -> Auditor.publish a obs);
  Scrape_meter.publish t.scrape ~obs
    ~served:
      (c.Lru_cache.hits + c.Lru_cache.misses + t.feedback_seen
      + timeout_total t + shed_total t);
  (match t.drift with None -> () | Some d -> Drift.publish d obs);
  Obs.set_to ~obs "engine.pool.workers" (float_of_int (workers t));
  Obs.set_to ~obs "engine.pool.epoch" (float_of_int (epoch t));
  Obs.set_to ~obs "engine.pool.queue_depth"
    (float_of_int (Work_queue.length t.queue));
  let q = Work_queue.stats t.queue in
  Obs.add_to ~obs "engine.pool.queue.pushes" q.Work_queue.pushes;
  Obs.add_to ~obs "engine.pool.queue.pops" q.Work_queue.pops;
  Obs.add_to ~obs "engine.pool.queue.push_waits" q.Work_queue.push_waits;
  Obs.add_to ~obs "engine.pool.queue.pop_waits" q.Work_queue.pop_waits;
  Obs.set_to ~obs "engine.pool.queue.push_wait_s" q.Work_queue.push_wait_s;
  Obs.set_to ~obs "engine.pool.queue.pop_wait_s" q.Work_queue.pop_wait_s;
  Obs.max_to ~obs "engine.pool.queue.max_occupancy" q.Work_queue.max_occupancy;
  Obs.add_to ~obs "engine.pool.steals_total" q.Work_queue.steals;
  Obs.add_to ~obs "engine.pool.affinity_hits" (affinity_hits t);
  Obs.add_to ~obs "engine.pool.shed_total" (shed_total t);
  Obs.add_to ~obs "engine.pool.timeout_total" (timeout_total t);
  Obs.add_to ~obs "engine.pool.worker_restarts" (worker_restarts t);
  Obs.set_to ~obs "engine.pool.quarantined" (float_of_int (quarantined_count t));
  (* Busy fraction per shard: serving time over the shard's active window
     (create to last completed chunk), so a quiet re-scrape stays
     byte-identical — a live-uptime denominator would tick on its own.
     [busy_s]/[last_served_at] are written by the shard's own domain
     without synchronization; a scrape may read a slightly stale pair,
     which is fine for a utilization gauge. *)
  Array.iter
    (fun (s : shard) ->
      let fraction =
        if s.hot.last_served_at <= t.created_at then 0.0
        else
          Float.min 1.0 (s.hot.busy_s /. (s.hot.last_served_at -. t.created_at))
      in
      Obs.gset
        (Obs.gauge_with obs "engine.pool.busy_fraction"
           [ ("shard", string_of_int s.id) ])
        fraction)
    t.shards;
  Obs.merged
    (obs :: t.coord_obs
    :: Array.to_list (Array.map (fun (s : shard) -> s.obs) t.shards))

let metrics_text t =
  let t0 = Obs.now_mono () in
  let text = Obs.prometheus ~prefix:"xseed_" (merged_metrics t) in
  Scrape_meter.note t.scrape (Obs.now_mono () -. t0);
  text

(* Flight records from every shard ring plus the coordinator ring, merged
   newest-submission-first on the global sequence number. *)
let recent ?n t =
  let all =
    Array.fold_left
      (fun acc (s : shard) ->
        match s.recorder with
        | None -> acc
        | Some r -> List.rev_append (Flight_recorder.recent r) acc)
      (match t.recorder with
       | None -> []
       | Some r -> Flight_recorder.recent r)
      t.shards
  in
  let sorted =
    List.sort
      (fun (a : Flight_recorder.record) (b : Flight_recorder.record) ->
        compare b.Flight_recorder.seq a.Flight_recorder.seq)
      all
  in
  match n with
  | None -> sorted
  | Some n ->
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take (max 0 n) sorted

let telemetry_disabled () =
  Core.Error.make Core.Error.Internal "telemetry is disabled on this pool"

let server ?affinity t =
  { Serve.estimate = (fun q -> estimate ?affinity t q);
    estimate_batch = (fun qs -> estimate_batch ?affinity t qs);
    feedback = (fun q ~actual -> feedback t q ~actual);
    explain = (fun q -> explain t q);
    stats_json = (fun () -> stats_json t);
    metrics_text = (fun () -> metrics_text t);
    recent =
      (fun n ->
        if
          Option.is_none t.recorder
          && Array.for_all (fun (s : shard) -> Option.is_none s.recorder) t.shards
        then Error (telemetry_disabled ())
        else Ok (recent ?n t));
    drift_json =
      (fun () ->
        match t.drift with
        | None -> Error (telemetry_disabled ())
        | Some d -> Ok (Drift.to_json d));
    profile = (fun qs -> profile ?affinity t qs);
    audit =
      (fun () ->
        match t.auditor with
        | None ->
          Error
            (Core.Error.make Core.Error.Internal
               "auditing is disabled (serve with --audit-rate and a source \
                document)")
        | Some a ->
          (* Settle outside the submission lock so clients keep being
             served while the audit domain catches up; then fold the
             results in under the drained single-writer state. *)
          ignore (Auditor.settle ~timeout_s:5.0 a : bool);
          with_lock t.submit_lock (fun () ->
              if t.stopped then Error (closed_error ())
              else begin
                wait_drained t;
                drain_audits_locked t;
                Ok (Auditor.status_json a)
              end)) }

(* Drop every shard cache by bumping the epoch (applied at each shard's
   next dequeue), without touching the synopsis. Used by benchmarks to
   force cold-cache passes. *)
let invalidate t =
  with_lock t.submit_lock (fun () ->
      wait_drained t;
      Atomic.incr t.epoch)

let shutdown t =
  let join =
    with_lock t.submit_lock (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          Work_queue.close t.queue;
          true
        end)
  in
  if join then Array.iter Domain.join t.domains
