let compare_value_predicate (a : Xpath.Ast.value_predicate)
    (b : Xpath.Ast.value_predicate) =
  Stdlib.compare a b

let rec canonicalize (path : Xpath.Ast.t) : Xpath.Ast.t =
  List.map canonical_step path

and canonical_step (s : Xpath.Ast.step) =
  let predicates =
    List.sort_uniq Xpath.Ast.compare (List.map canonicalize s.predicates)
  in
  let value_predicates =
    List.sort_uniq compare_value_predicate s.value_predicates
  in
  { s with predicates; value_predicates }

type key = { hash : int; text : string }

let hash_of_text text =
  String.fold_left
    (fun h c -> Core.Path_hash.extend h (Char.code c))
    Core.Path_hash.empty text

let of_ast ast =
  let text = Xpath.Ast.to_string (canonicalize ast) in
  { hash = hash_of_text text; text }

let of_string query =
  match Xpath.Parser.parse_result query with
  | Result.Error { position; message } ->
    Result.Error (Core.Error.make ~position Core.Error.Malformed_query message)
  | Ok path -> Ok (of_ast path)

let equal a b = String.equal a.text b.text
let pp ppf k = Format.fprintf ppf "%s#%08x" k.text k.hash
