(** Query canonicalization for the serving engine's estimate cache.

    Two spellings of the same query — predicate order, duplicated
    predicates, whitespace, redundant ['.'] self steps (dropped by the
    parser) — must land on the same cache slot. [canonicalize] maps an AST
    to a normal form (predicates recursively canonicalized, then sorted and
    deduplicated; likewise value predicates); [of_ast] renders that normal
    form back to concrete syntax and hashes it with the same incremental
    scheme the HET uses ({!Core.Path_hash.extend} folded over the bytes), so
    a key is cheap to compare and stable across runs. *)

val canonicalize : Xpath.Ast.t -> Xpath.Ast.t
(** Normal form; idempotent and estimate-preserving (predicates are
    conjunctive, so order and multiplicity do not matter). *)

type key = {
  hash : int;  (** 32-bit incremental hash of [text] *)
  text : string;  (** the canonical spelling, [Xpath.Ast.to_string] of the
                      canonical AST; the authoritative cache key *)
}

val of_ast : Xpath.Ast.t -> key
val of_string : string -> (key, Core.Error.t) result
(** Parse then {!of_ast}; a syntax error is [Malformed_query]. *)

val equal : key -> key -> bool
(** Text equality — the hash is a fast filter, never the verdict. *)

val pp : Format.formatter -> key -> unit
