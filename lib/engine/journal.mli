(** Crash-safe feedback journal: an append-only write-ahead log of the
    serving engine's FEEDBACK observations, so learned HET entries survive
    a process death (including [kill -9]) instead of living exactly one
    process lifetime.

    {b File format} (DESIGN.md §13). A journal is the 8-byte magic
    ["XSEEDJ1\n"] followed by frames. Each frame is

    {v
    +----------------+----------------+------------------+
    | length (u32 BE)| CRC-32 (u32 BE)| payload (length) |
    +----------------+----------------+------------------+
    v}

    where the CRC (IEEE 802.3, {!Core.Crc32}) covers the payload bytes and
    the payload is the text ["F <actual> <query>"]. The writer appends a
    complete frame per feedback and (per {!fsync} policy) fsyncs, so after
    a crash the file is a valid prefix plus at most one torn frame.

    {b Truncation rule.} Readers stop at the first bad frame. A frame that
    runs past end-of-file (incomplete header or payload) is a {e torn
    tail} — the expected residue of a crash mid-append, silently
    recoverable by truncating to the last good frame. A frame that is
    fully present but fails its CRC or does not parse is {e corruption}
    ([xseed journal-dump] exits 74 on it; the serving path still recovers
    by truncating, losing everything after the bad frame). *)

type entry = { query : string; actual : int }
(** One FEEDBACK observation: the raw query text as received by the
    protocol, and the observed true cardinality. Replaying entries in
    order through the feedback path reproduces the learned HET state. *)

type tail =
  | Clean  (** every byte belongs to a valid frame *)
  | Torn of int
      (** the frame starting at this byte offset runs past end-of-file *)
  | Corrupt of int
      (** the frame starting at this byte offset is fully present but
          fails its CRC or does not parse *)

type scan = {
  entries : entry list;  (** decoded frames, oldest first *)
  frames : int;  (** [List.length entries] *)
  valid_bytes : int;
      (** length of the valid prefix (magic + good frames); the
          truncation point when [tail] is not {!Clean} *)
  tail : tail;
}

val magic : string
(** The 8-byte file header, ["XSEEDJ1\n"]. *)

val frame : entry -> string
(** Encode one entry as a complete frame (header + payload). *)

val to_string : entry list -> string
(** A whole journal image in memory: {!magic} plus one {!frame} per
    entry. The writer produces byte-identical files. *)

val scan_string : string -> (scan, Core.Error.t) result
(** Decode a journal image, stopping at the first bad frame per the
    truncation rule; never raises on arbitrary bytes. [Error] only when
    the magic itself is missing or wrong (the bytes are not a journal) —
    an empty string is a valid empty journal. *)

val scan_file : string -> (scan, Core.Error.t) result
(** {!scan_string} over a file's contents. [Error] additionally on a
    missing file or an unreadable one. A zero-length file is a valid
    empty journal (the state a crash before the first append leaves). *)

val recover : string -> (scan, Core.Error.t) result
(** {!scan_file}, then — when the tail is torn or corrupt — truncate the
    file to [valid_bytes] so subsequent appends extend a clean journal.
    A missing file is returned as an empty clean scan (nothing to
    recover), so serving can start with [--journal] pointing at a file
    that does not exist yet. *)

(** {1 Writing} *)

type fsync = [ `Always | `Every of int | `Never ]
(** Durability policy: [`Always] fsyncs after every append (a crash loses
    at most the frame being written), [`Every n] after every [n]th append
    (a crash loses at most the last [n-1] observations), [`Never] leaves
    flushing to the OS. *)

type writer

val open_append : ?fsync:fsync -> string -> (writer, Core.Error.t) result
(** Open (creating if absent) for appending, writing the magic when the
    file is empty. Refuses a non-empty file whose magic is wrong. Run
    {!recover} first if the file may carry a torn or corrupt tail —
    [open_append] itself never truncates. [fsync] defaults to [`Always]. *)

val append : writer -> entry -> (unit, Core.Error.t) result
(** Append one complete frame and apply the durability policy.
    [Error Io_error] if the OS refused the write — the caller decides
    whether to surface lost durability to the client. *)

val appended : writer -> int
(** Entries appended through this writer (excludes replayed history). *)

val sync : writer -> unit
(** Flush and fsync now, regardless of policy. Best-effort on error. *)

val close : writer -> unit
(** {!sync} then close. Idempotent. *)

val wrap_server : writer -> Serve.server -> Serve.server
(** Interpose on the feedback path of a {!Serve.server}: a successful
    FEEDBACK is appended to the journal before the reply is sent, so the
    reply acknowledges durability (under the writer's fsync policy). If
    the append fails, the client receives the I/O error even though the
    in-memory refinement already happened — the estimate is live but not
    durable. All other verbs pass through untouched. The serve protocol
    loop is single-threaded, so this is the single-writer path. *)
