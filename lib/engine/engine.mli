(** The serving layer: one loaded synopsis answering a stream of estimate
    requests, learning from execution feedback as it goes.

    An {!t} owns a {!Core.Estimator.t} and wraps it with the three things a
    host optimizer needs that the per-query API does not give:

    - {b amortized EPT}: the traveler's estimation path tree is materialized
      once and shared across queries instead of rebuilt per call;
    - {b an estimate cache}: queries are canonicalized ({!Canonical}) and
      served from a size-bounded LRU ({!Lru_cache}), so equivalent spellings
      cost one pipeline run;
    - {b a feedback loop} ({!Feedback}): observed true cardinalities whose
      q-error crosses a threshold refresh the HET under its memory budget,
      after which every cached estimate and the shared EPT are invalidated —
      the next requests re-derive from the refined synopsis.

    On top of these the engine carries serving telemetry: every answered
    query appends a {!Flight_recorder} record (stage wall times, cache
    outcome, per-query matcher stats), feedback observations stream into a
    {!Drift} monitor (sliding-window q-error with edge-triggered alerts),
    and [metrics_text] renders the whole registry — engine totals, drift
    gauges and any pipeline counters sharing the context — as a Prometheus
    scrape payload. Telemetry is on by default and cheap (a ring-buffer
    store per query); [~telemetry:false] turns the recorder and monitor off
    for baseline benchmarking.

    For multi-core serving, {!Pool} runs N of these shards over one shared
    synopsis behind a bounded {!Work_queue}, with single-writer feedback
    and epoch-based cache invalidation; {!Serve} is the line protocol both
    the single engine and the pool speak.

    Surfaced on the command line as [xseed serve] (line protocol, with
    [--workers N] for the pool) and [xseed replay] (workload-driven
    feedback rounds). *)

module Canonical = Canonical
module Lru_cache = Lru_cache
module Feedback = Feedback
module Flight_recorder = Flight_recorder
module Drift = Drift
module Work_queue = Work_queue
module Serve = Serve
module Pool = Pool
module Journal = Journal
module Registry = Registry
module Auditor = Auditor
module Scrape_meter = Scrape_meter

include module type of struct
  include Engine_core
end
