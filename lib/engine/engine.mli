(** The serving layer: one loaded synopsis answering a stream of estimate
    requests, learning from execution feedback as it goes.

    An {!t} owns a {!Core.Estimator.t} and wraps it with the three things a
    host optimizer needs that the per-query API does not give:

    - {b amortized EPT}: the traveler's estimation path tree is materialized
      once and shared across queries instead of rebuilt per call;
    - {b an estimate cache}: queries are canonicalized ({!Canonical}) and
      served from a size-bounded LRU ({!Lru_cache}), so equivalent spellings
      cost one pipeline run;
    - {b a feedback loop} ({!Feedback}): observed true cardinalities whose
      q-error crosses a threshold refresh the HET under its memory budget,
      after which every cached estimate and the shared EPT are invalidated —
      the next requests re-derive from the refined synopsis.

    Surfaced on the command line as [xseed serve] (line protocol, see
    {!Protocol}) and [xseed replay] (workload-driven feedback rounds). *)

module Canonical = Canonical
module Lru_cache = Lru_cache
module Feedback = Feedback

type t

val create :
  ?qerror_threshold:float ->
  ?cache_capacity:int ->
  ?obs:Obs.t ->
  Core.Estimator.t ->
  t
(** [qerror_threshold] (default 2.0) is the minimum q-error at which
    feedback refines the HET; [cache_capacity] (default 1024) bounds the
    estimate cache. [obs] receives pipeline metrics from every cache-miss
    estimation. *)

val estimator : t -> Core.Estimator.t
val qerror_threshold : t -> float

val feedback_rounds : t -> int
(** Number of feedback observations that actually refined the HET (and so
    invalidated the cache) over this engine's lifetime. *)

val feedback_seen : t -> int
(** Total feedback observations, refined or not. *)

type served = {
  key : Canonical.key;
  outcome : Core.Estimator.outcome;
  status : Core.Explain.cache_status;
      (** [Hit] or [Miss]; the engine never serves [Bypass] *)
}

val estimate_ast : t -> Xpath.Ast.t -> (served, Core.Error.t) result
(** Canonicalize, consult the cache, run the pipeline on a miss (caching the
    outcome). Errors are never cached. Same error contract as
    {!Core.Estimator.estimate_result}. *)

val estimate : t -> string -> (served, Core.Error.t) result
(** Parse then {!estimate_ast}; a syntax error is [Malformed_query]. *)

val estimate_batch : t -> string list -> (served, Core.Error.t) result list
(** Per-query results in order; one bad query does not fail the batch. *)

val feedback : t -> string -> actual:int -> (served * Feedback.outcome, Core.Error.t) result
(** Observe the true cardinality of an executed query: serve (or reuse) the
    engine's estimate, judge it ({!Feedback.apply}), and on refinement clear
    the cache and the shared EPT. The returned [served] is the estimate the
    q-error was computed against. *)

val feedback_ast : t -> Xpath.Ast.t -> actual:int -> (served * Feedback.outcome, Core.Error.t) result

val invalidate : t -> unit
(** Drop the cached EPT and every cached estimate (counted as
    invalidations). Called automatically when feedback refines the HET —
    a refreshed entry can affect any estimate that touched its path, so the
    engine conservatively assumes all of them did. *)

val explain : t -> string -> (Core.Explain.report, Core.Error.t) result
(** {!Core.Explain.run} through the engine: the report's [cache] field says
    whether this query is currently cached ([Hit]/[Miss] — the explain run
    itself always re-executes the pipeline) and [feedback_rounds] is
    {!feedback_rounds}. Does not disturb cache contents or counters. *)

val cache_counters : t -> Lru_cache.counters
val cache_length : t -> int

val stats_json : t -> Obs.Json.t
(** One object: cache counters and occupancy, feedback totals, HET
    active/total/usage (or [null] without a HET), synopsis footprint. *)

val publish_counters : t -> unit
(** Push cache totals ([engine.cache.*]), [engine.feedback.*] and HET
    totals into the engine's Obs context (no-op without one). *)

(** The [xseed serve] line protocol. One request per line:

    {v
    ESTIMATE <xpath>            ->  OK <estimate> <hit|miss>
    FEEDBACK <xpath> <actual>   ->  OK <q_error> <refined|kept>
    EXPLAIN <xpath>             ->  OK <explain report as one-line JSON>
    STATS                       ->  OK <engine stats as one-line JSON>
    v}

    Any failure — unknown verb, bad query, missing count, pipeline limit —
    is a one-line [ERR <kind> <message>] where [kind] is
    {!Core.Error.kind_name}; the handler never raises and never emits a
    non-finite number. Blank lines are ignored. *)
module Protocol : sig
  val handle_line : t -> string -> string option
  (** [None] for a blank line, otherwise exactly one [OK]/[ERR] response
      line (no trailing newline). *)

  val run : t -> in_channel -> out_channel -> unit
  (** Serve until EOF, flushing after every response. *)
end
