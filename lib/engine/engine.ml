(* Root module of the [engine] library: re-export the serving submodules
   and the single-domain engine itself ([Engine_core]). [Pool] and [Serve]
   depend on [Engine_core] directly so this module stays a pure facade. *)

module Canonical = Canonical
module Lru_cache = Lru_cache
module Feedback = Feedback
module Flight_recorder = Flight_recorder
module Drift = Drift
module Work_queue = Work_queue
module Serve = Serve
module Pool = Pool
module Journal = Journal
module Registry = Registry
module Auditor = Auditor
module Scrape_meter = Scrape_meter
include Engine_core
