module Canonical = Canonical
module Lru_cache = Lru_cache
module Feedback = Feedback

type t = {
  estimator : Core.Estimator.t;
  cache : Core.Estimator.outcome Lru_cache.t;
  threshold : float;
  obs : Obs.t option;
  mutable ept : Core.Matcher.ept option;  (* shared across queries *)
  mutable feedback_seen : int;
  mutable feedback_rounds : int;
}

let create ?(qerror_threshold = 2.0) ?(cache_capacity = 1024) ?obs estimator =
  if not (Float.is_finite qerror_threshold) || qerror_threshold < 1.0 then
    invalid_arg "Engine.create: qerror_threshold must be finite and >= 1";
  { estimator;
    cache = Lru_cache.create ~capacity:cache_capacity;
    threshold = qerror_threshold;
    obs;
    ept = None;
    feedback_seen = 0;
    feedback_rounds = 0 }

let estimator t = t.estimator
let qerror_threshold t = t.threshold
let feedback_rounds t = t.feedback_rounds
let feedback_seen t = t.feedback_seen
let cache_counters t = Lru_cache.counters t.cache
let cache_length t = Lru_cache.length t.cache

let invalidate t =
  Lru_cache.clear t.cache;
  t.ept <- None

let ept_lazy t =
  lazy
    (match t.ept with
     | Some e -> e
     | None ->
       let e = Core.Estimator.ept t.estimator in
       t.ept <- Some e;
       e)

type served = {
  key : Canonical.key;
  outcome : Core.Estimator.outcome;
  status : Core.Explain.cache_status;
}

let estimate_ast t ast =
  let cast = Canonical.canonicalize ast in
  let key = Canonical.of_ast cast in
  match Lru_cache.find t.cache key.Canonical.text with
  | Some outcome -> Ok { key; outcome; status = Core.Explain.Hit }
  | None ->
    (match Core.Estimator.estimate_result_on t.estimator (ept_lazy t) cast with
     | Ok outcome ->
       Lru_cache.put t.cache key.Canonical.text outcome;
       Ok { key; outcome; status = Core.Explain.Miss }
     | Error e -> Error e)

let parse query =
  match Xpath.Parser.parse_result query with
  | Result.Error { position; message } ->
    Result.Error (Core.Error.make ~position Core.Error.Malformed_query message)
  | Ok path -> Ok path

let estimate t query =
  match parse query with Error e -> Error e | Ok ast -> estimate_ast t ast

let estimate_batch t queries = List.map (estimate t) queries

let feedback_ast t ast ~actual =
  match estimate_ast t ast with
  | Error e -> Error e
  | Ok served ->
    t.feedback_seen <- t.feedback_seen + 1;
    let fb =
      Feedback.apply ?ept:t.ept ~threshold:t.threshold t.estimator
        (Canonical.canonicalize ast)
        ~estimate:served.outcome.Core.Estimator.value ~actual
    in
    if fb.Feedback.refined then begin
      t.feedback_rounds <- t.feedback_rounds + 1;
      invalidate t
    end;
    Ok (served, fb)

let feedback t query ~actual =
  match parse query with Error e -> Error e | Ok ast -> feedback_ast t ast ~actual

let explain t query =
  match parse query with
  | Error e -> Error e
  | Ok ast ->
    let cast = Canonical.canonicalize ast in
    let key = Canonical.of_ast cast in
    let cached = Lru_cache.mem t.cache key.Canonical.text in
    (match
       Core.Error.guard (fun () ->
           let qt = Xpath.Query_tree.of_path cast in
           if qt.Xpath.Query_tree.size > 62 then
             Core.Error.raisef Core.Error.Malformed_query
               "query tree has %d nodes; the matcher's bitset encoding \
                supports 62"
               qt.Xpath.Query_tree.size;
           match Core.Explain.run ?obs:t.obs t.estimator cast with
           | r -> r
           | exception Core.Matcher.Ept_too_large n ->
             Core.Error.raisef Core.Error.Limit_exceeded
               "EPT exceeded max_ept_nodes while materializing (%d nodes)" n)
     with
     | Ok r ->
       Ok
         { r with
           Core.Explain.cache =
             (if cached then Core.Explain.Hit else Core.Explain.Miss);
           feedback_rounds = t.feedback_rounds }
     | Error e -> Error e)

let stats_json t =
  let open Obs.Json in
  let c = Lru_cache.counters t.cache in
  let het_json =
    match Core.Estimator.het t.estimator with
    | None -> Null
    | Some h ->
      let u = Core.Het.counters h in
      Obj
        [ ("active", Int (Core.Het.active_count h));
          ("total", Int (Core.Het.total_count h));
          ("bytes", Int (Core.Het.size_in_bytes h));
          ("simple_lookups", Int u.Core.Het.simple_lookups);
          ("simple_hits", Int u.Core.Het.simple_hits);
          ("branching_lookups", Int u.Core.Het.branching_lookups);
          ("branching_hits", Int u.Core.Het.branching_hits);
          ("feedback_inserts", Int u.Core.Het.feedback_inserts);
          ("collisions", Int u.Core.Het.collisions) ]
  in
  Obj
    [ ( "cache",
        Obj
          [ ("capacity", Int (Lru_cache.capacity t.cache));
            ("size", Int (Lru_cache.length t.cache));
            ("hits", Int c.Lru_cache.hits);
            ("misses", Int c.Lru_cache.misses);
            ("insertions", Int c.Lru_cache.insertions);
            ("evictions", Int c.Lru_cache.evictions);
            ("invalidations", Int c.Lru_cache.invalidations) ] );
      ( "feedback",
        Obj
          [ ("seen", Int t.feedback_seen);
            ("rounds", Int t.feedback_rounds);
            ("qerror_threshold", Float t.threshold) ] );
      ("het", het_json);
      ("synopsis_bytes", Int (Core.Estimator.size_in_bytes t.estimator)) ]

let publish_counters t =
  Lru_cache.publish_counters ?obs:t.obs t.cache;
  Obs.add_to ?obs:t.obs "engine.feedback.seen" t.feedback_seen;
  Obs.add_to ?obs:t.obs "engine.feedback.rounds" t.feedback_rounds;
  Option.iter
    (Core.Het.publish_counters ?obs:t.obs)
    (Core.Estimator.het t.estimator)

module Protocol = struct
  let sanitize s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

  let err e =
    let position =
      match Core.Error.position e with
      | Some p -> Printf.sprintf " (at %d)" p
      | None -> ""
    in
    Printf.sprintf "ERR %s %s%s"
      (Core.Error.kind_name (Core.Error.kind e))
      (sanitize (Core.Error.message e))
      position

  let malformed fmt =
    Format.kasprintf
      (fun m -> err (Core.Error.make Core.Error.Malformed_query m))
      fmt

  let split_verb line =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line i (String.length line - i)) )

  let handle_line t raw =
    let line = String.trim raw in
    if line = "" then None
    else
      Some
        (try
           let verb, rest = split_verb line in
           match verb with
           | "ESTIMATE" ->
             (match estimate t rest with
              | Ok s ->
                Printf.sprintf "OK %.2f %s" s.outcome.Core.Estimator.value
                  (Core.Explain.cache_status_name s.status)
              | Error e -> err e)
           | "FEEDBACK" ->
             (match String.rindex_opt rest ' ' with
              | None -> malformed "FEEDBACK expects '<xpath> <actual-count>'"
              | Some i ->
                let query = String.trim (String.sub rest 0 i) in
                let count =
                  String.sub rest (i + 1) (String.length rest - i - 1)
                in
                (match int_of_string_opt count with
                 | Some actual when actual >= 0 && query <> "" ->
                   (match feedback t query ~actual with
                    | Ok (_, fb) ->
                      Printf.sprintf "OK %.3f %s" fb.Feedback.q_error
                        (if fb.Feedback.refined then "refined" else "kept")
                    | Error e -> err e)
                 | _ ->
                   malformed
                     "FEEDBACK expects '<xpath> <actual-count>' with a \
                      non-negative integer count"))
           | "EXPLAIN" ->
             (match explain t rest with
              | Ok r -> "OK " ^ Obs.Json.to_string (Core.Explain.to_json r)
              | Error e -> err e)
           | "STATS" ->
             if rest = "" then "OK " ^ Obs.Json.to_string (stats_json t)
             else malformed "STATS takes no argument"
           | _ ->
             malformed
               "unknown command %S (expected ESTIMATE, FEEDBACK, EXPLAIN or \
                STATS)"
               verb
         with exn ->
           err
             (match Core.Error.of_exn exn with
              | Some e -> e
              | None ->
                Core.Error.make Core.Error.Internal (Printexc.to_string exn)))

  let run t ic oc =
    try
      while true do
        match handle_line t (input_line ic) with
        | Some response ->
          output_string oc response;
          output_char oc '\n';
          flush oc
        | None -> ()
      done
    with End_of_file -> ()
end
