module Canonical = Canonical
module Lru_cache = Lru_cache
module Feedback = Feedback
module Flight_recorder = Flight_recorder
module Drift = Drift

type t = {
  estimator : Core.Estimator.t;
  cache : Core.Estimator.outcome Lru_cache.t;
  threshold : float;
  obs : Obs.t option;
  metrics : Obs.t;  (* scrape registry; = obs when one was supplied *)
  recorder : Flight_recorder.t option;
  drift : Drift.t option;
  mutable on_record : (Flight_recorder.record -> unit) option;
  mutable ept : Core.Matcher.ept option;  (* shared across queries *)
  mutable feedback_seen : int;
  mutable feedback_rounds : int;
}

let create ?(qerror_threshold = 2.0) ?(cache_capacity = 1024)
    ?(telemetry = true) ?(recorder_capacity = 256) ?(drift_slots = 6)
    ?(drift_per_slot = 64) ?(drift_p90_threshold = 8.0) ?obs estimator =
  if not (Float.is_finite qerror_threshold) || qerror_threshold < 1.0 then
    invalid_arg "Engine.create: qerror_threshold must be finite and >= 1";
  { estimator;
    cache = Lru_cache.create ~capacity:cache_capacity;
    threshold = qerror_threshold;
    obs;
    metrics = (match obs with Some o -> o | None -> Obs.create ());
    recorder =
      (if telemetry then Some (Flight_recorder.create ~capacity:recorder_capacity ())
       else None);
    drift =
      (if telemetry then
         Some
           (Drift.create ~slots:drift_slots ~per_slot:drift_per_slot
              ~p90_threshold:drift_p90_threshold ())
       else None);
    on_record = None;
    ept = None;
    feedback_seen = 0;
    feedback_rounds = 0 }

let estimator t = t.estimator
let qerror_threshold t = t.threshold
let feedback_rounds t = t.feedback_rounds
let feedback_seen t = t.feedback_seen
let cache_counters t = Lru_cache.counters t.cache
let cache_length t = Lru_cache.length t.cache
let metrics t = t.metrics
let recorder t = t.recorder
let drift t = t.drift
let set_on_record t f = t.on_record <- Some f

let invalidate t =
  Lru_cache.clear t.cache;
  t.ept <- None

let ept_lazy t =
  lazy
    (match t.ept with
     | Some e -> e
     | None ->
       let e = Core.Estimator.ept t.estimator in
       t.ept <- Some e;
       e)

(* Same memoized EPT, but timing its materialization: [!spent] is the wall
   time the force cost (~0 when the shared EPT already exists). The inner
   force still happens inside the estimator's error guard, so Ept_too_large
   surfaces as Limit_exceeded exactly as before. *)
let ept_lazy_timed t spent =
  let underlying = ept_lazy t in
  lazy
    (let t0 = Obs.now () in
     let e = Lazy.force underlying in
     spent := Obs.now () -. t0;
     e)

let het_hits_snapshot t =
  match Core.Estimator.het t.estimator with
  | None -> None
  | Some h -> Some (Core.Het.counters h)

let het_hits_since t before =
  match (before, Core.Estimator.het t.estimator) with
  | Some before, Some h ->
    let d = Core.Het.diff_counters ~before ~after:(Core.Het.counters h) in
    d.Core.Het.simple_hits + d.Core.Het.branching_hits
  | _ -> 0

type served = {
  key : Canonical.key;
  outcome : Core.Estimator.outcome;
  status : Core.Explain.cache_status;
}

let flight_status = function
  | Core.Explain.Hit -> Flight_recorder.Hit
  | Core.Explain.Miss -> Flight_recorder.Miss
  | Core.Explain.Bypass -> Flight_recorder.Bypass

let record_flight t ~(key : Canonical.key) ~status
    ~(outcome : Core.Estimator.outcome) ~canonicalize_s ~ept_s ~match_s
    ~ept_nodes ~frontier_peak ~het_hits =
  match t.recorder with
  | None -> ()
  | Some rec_ ->
    let r =
      Flight_recorder.record rec_ ~query:key.Canonical.text
        ~hash:key.Canonical.hash ~cache:(flight_status status)
        ~estimate:outcome.Core.Estimator.value ~canonicalize_s ~ept_s ~match_s
        ~ept_nodes ~frontier_peak
        ~degenerate_clamps:outcome.Core.Estimator.clamped ~het_hits
        ~feedback_round:t.feedback_rounds
    in
    (match t.on_record with None -> () | Some f -> f r)

let estimate_ast t ast =
  let t0 = Obs.now () in
  let cast = Canonical.canonicalize ast in
  let key = Canonical.of_ast cast in
  let canonicalize_s = Obs.now () -. t0 in
  match Lru_cache.find t.cache key.Canonical.text with
  | Some outcome ->
    (match t.drift with Some d -> Drift.note_estimate d ~cache_hit:true | None -> ());
    record_flight t ~key ~status:Core.Explain.Hit ~outcome ~canonicalize_s
      ~ept_s:0.0 ~match_s:0.0 ~ept_nodes:0 ~frontier_peak:0 ~het_hits:0;
    Ok { key; outcome; status = Core.Explain.Hit }
  | None ->
    let ept_spent = ref 0.0 in
    let het_before = het_hits_snapshot t in
    let t1 = Obs.now () in
    (match
       Core.Estimator.estimate_result_stats_on t.estimator
         (ept_lazy_timed t ept_spent)
         cast
     with
     | Ok (outcome, ms) ->
       let miss_s = Obs.now () -. t1 in
       Lru_cache.put t.cache key.Canonical.text outcome;
       (match t.drift with
        | Some d -> Drift.note_estimate d ~cache_hit:false
        | None -> ());
       record_flight t ~key ~status:Core.Explain.Miss ~outcome ~canonicalize_s
         ~ept_s:!ept_spent
         ~match_s:(Float.max 0.0 (miss_s -. !ept_spent))
         ~ept_nodes:ms.Core.Matcher.ept_nodes
         ~frontier_peak:ms.Core.Matcher.frontier_peak
         ~het_hits:(het_hits_since t het_before);
       Ok { key; outcome; status = Core.Explain.Miss }
     | Error e -> Error e)

let parse query =
  match Xpath.Parser.parse_result query with
  | Result.Error { position; message } ->
    Result.Error (Core.Error.make ~position Core.Error.Malformed_query message)
  | Ok path -> Ok path

let estimate t query =
  match parse query with Error e -> Error e | Ok ast -> estimate_ast t ast

let estimate_batch t queries = List.map (estimate t) queries

let feedback_ast t ast ~actual =
  match estimate_ast t ast with
  | Error e -> Error e
  | Ok served ->
    t.feedback_seen <- t.feedback_seen + 1;
    (match t.drift with
     | Some d ->
       ignore
         (Drift.observe ?obs:(Some t.metrics) d
            ~estimate:served.outcome.Core.Estimator.value ~actual
           : float)
     | None -> ());
    let fb =
      Feedback.apply ?ept:t.ept ~threshold:t.threshold t.estimator
        (Canonical.canonicalize ast)
        ~estimate:served.outcome.Core.Estimator.value ~actual
    in
    if fb.Feedback.refined then begin
      t.feedback_rounds <- t.feedback_rounds + 1;
      invalidate t
    end;
    Ok (served, fb)

let feedback t query ~actual =
  match parse query with Error e -> Error e | Ok ast -> feedback_ast t ast ~actual

let explain t query =
  match parse query with
  | Error e -> Error e
  | Ok ast ->
    let t0 = Obs.now () in
    let cast = Canonical.canonicalize ast in
    let key = Canonical.of_ast cast in
    let canonicalize_s = Obs.now () -. t0 in
    let cached = Lru_cache.mem t.cache key.Canonical.text in
    let het_before = het_hits_snapshot t in
    (match
       Core.Error.guard (fun () ->
           let qt = Xpath.Query_tree.of_path cast in
           if qt.Xpath.Query_tree.size > 62 then
             Core.Error.raisef Core.Error.Malformed_query
               "query tree has %d nodes; the matcher's bitset encoding \
                supports 62"
               qt.Xpath.Query_tree.size;
           match Core.Explain.run ?obs:t.obs t.estimator cast with
           | r -> r
           | exception Core.Matcher.Ept_too_large n ->
             Core.Error.raisef Core.Error.Limit_exceeded
               "EPT exceeded max_ept_nodes while materializing (%d nodes)" n)
     with
     | Ok r ->
       let status = if cached then Core.Explain.Hit else Core.Explain.Miss in
       record_flight t ~key ~status
         ~outcome:
           { Core.Estimator.value = r.Core.Explain.estimate;
             clamped = r.Core.Explain.degenerate_clamps;
             unknown_labels = r.Core.Explain.unknown_labels }
         ~canonicalize_s ~ept_s:r.Core.Explain.ept_seconds
         ~match_s:r.Core.Explain.match_seconds
         ~ept_nodes:r.Core.Explain.ept_nodes
         ~frontier_peak:r.Core.Explain.matcher.Core.Matcher.frontier_peak
         ~het_hits:(het_hits_since t het_before);
       Ok
         { r with
           Core.Explain.cache = status;
           feedback_rounds = t.feedback_rounds }
     | Error e -> Error e)

let stats_json t =
  let open Obs.Json in
  let c = Lru_cache.counters t.cache in
  let het_json =
    match Core.Estimator.het t.estimator with
    | None -> Null
    | Some h ->
      let u = Core.Het.counters h in
      Obj
        [ ("active", Int (Core.Het.active_count h));
          ("total", Int (Core.Het.total_count h));
          ("bytes", Int (Core.Het.size_in_bytes h));
          ("simple_lookups", Int u.Core.Het.simple_lookups);
          ("simple_hits", Int u.Core.Het.simple_hits);
          ("branching_lookups", Int u.Core.Het.branching_lookups);
          ("branching_hits", Int u.Core.Het.branching_hits);
          ("feedback_inserts", Int u.Core.Het.feedback_inserts);
          ("collisions", Int u.Core.Het.collisions) ]
  in
  Obj
    [ ( "cache",
        Obj
          [ ("capacity", Int (Lru_cache.capacity t.cache));
            ("size", Int (Lru_cache.length t.cache));
            ("hits", Int c.Lru_cache.hits);
            ("misses", Int c.Lru_cache.misses);
            ("insertions", Int c.Lru_cache.insertions);
            ("evictions", Int c.Lru_cache.evictions);
            ("invalidations", Int c.Lru_cache.invalidations) ] );
      ( "feedback",
        Obj
          [ ("seen", Int t.feedback_seen);
            ("rounds", Int t.feedback_rounds);
            ("qerror_threshold", Float t.threshold) ] );
      ("het", het_json);
      ("synopsis_bytes", Int (Core.Estimator.size_in_bytes t.estimator)) ]

let publish_counters t =
  Lru_cache.publish_counters ?obs:t.obs t.cache;
  Obs.add_to ?obs:t.obs "engine.feedback.seen" t.feedback_seen;
  Obs.add_to ?obs:t.obs "engine.feedback.rounds" t.feedback_rounds;
  Option.iter
    (Core.Het.publish_counters ?obs:t.obs)
    (Core.Estimator.het t.estimator)

(* Republish every engine-level total into the scrape registry. Counters go
   through set_max so republishing before each scrape is idempotent;
   point-in-time values are gauges. *)
let publish_telemetry t =
  let obs = t.metrics in
  let c = Lru_cache.counters t.cache in
  Obs.max_to ~obs "engine.cache.hits" c.Lru_cache.hits;
  Obs.max_to ~obs "engine.cache.misses" c.Lru_cache.misses;
  Obs.max_to ~obs "engine.cache.insertions" c.Lru_cache.insertions;
  Obs.max_to ~obs "engine.cache.evictions" c.Lru_cache.evictions;
  Obs.max_to ~obs "engine.cache.invalidations" c.Lru_cache.invalidations;
  Obs.set_to ~obs "engine.cache.size" (float_of_int (Lru_cache.length t.cache));
  Obs.set_to ~obs "engine.cache.capacity"
    (float_of_int (Lru_cache.capacity t.cache));
  Obs.max_to ~obs "engine.feedback.seen" t.feedback_seen;
  Obs.max_to ~obs "engine.feedback.rounds" t.feedback_rounds;
  Obs.set_to ~obs "engine.synopsis_bytes"
    (float_of_int (Core.Estimator.size_in_bytes t.estimator));
  (match Core.Estimator.het t.estimator with
   | None -> ()
   | Some h ->
     let u = Core.Het.counters h in
     Obs.set_to ~obs "engine.het.active" (float_of_int (Core.Het.active_count h));
     Obs.set_to ~obs "engine.het.total" (float_of_int (Core.Het.total_count h));
     Obs.set_to ~obs "engine.het.bytes" (float_of_int (Core.Het.size_in_bytes h));
     Obs.max_to ~obs "het.simple_lookups" u.Core.Het.simple_lookups;
     Obs.max_to ~obs "het.simple_hits" u.Core.Het.simple_hits;
     Obs.max_to ~obs "het.branching_lookups" u.Core.Het.branching_lookups;
     Obs.max_to ~obs "het.branching_hits" u.Core.Het.branching_hits;
     Obs.max_to ~obs "het.feedback_inserts" u.Core.Het.feedback_inserts;
     Obs.max_to ~obs "het.collisions" u.Core.Het.collisions);
  (match t.recorder with
   | None -> ()
   | Some r ->
     Obs.max_to ~obs "engine.flight.records" (Flight_recorder.total r));
  match t.drift with None -> () | Some d -> Drift.publish d obs

let metrics_text t =
  publish_telemetry t;
  Obs.prometheus ~prefix:"xseed_" t.metrics

module Protocol = struct
  let sanitize s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

  let err e =
    let position =
      match Core.Error.position e with
      | Some p -> Printf.sprintf " (at %d)" p
      | None -> ""
    in
    Printf.sprintf "ERR %s %s%s"
      (Core.Error.kind_name (Core.Error.kind e))
      (sanitize (Core.Error.message e))
      position

  let malformed fmt =
    Format.kasprintf
      (fun m -> err (Core.Error.make Core.Error.Malformed_query m))
      fmt

  let split_verb line =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line i (String.length line - i)) )

  let chop_trailing_newline s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

  let handle_line t raw =
    let line = String.trim raw in
    if line = "" then None
    else
      Some
        (try
           let verb, rest = split_verb line in
           match verb with
           | "ESTIMATE" ->
             (match estimate t rest with
              | Ok s ->
                Printf.sprintf "OK %.2f %s" s.outcome.Core.Estimator.value
                  (Core.Explain.cache_status_name s.status)
              | Error e -> err e)
           | "FEEDBACK" ->
             (match String.rindex_opt rest ' ' with
              | None -> malformed "FEEDBACK expects '<xpath> <actual-count>'"
              | Some i ->
                let query = String.trim (String.sub rest 0 i) in
                let count =
                  String.sub rest (i + 1) (String.length rest - i - 1)
                in
                (match int_of_string_opt count with
                 | Some actual when actual >= 0 && query <> "" ->
                   (match feedback t query ~actual with
                    | Ok (_, fb) ->
                      Printf.sprintf "OK %.3f %s" fb.Feedback.q_error
                        (if fb.Feedback.refined then "refined" else "kept")
                    | Error e -> err e)
                 | _ ->
                   malformed
                     "FEEDBACK expects '<xpath> <actual-count>' with a \
                      non-negative integer count"))
           | "EXPLAIN" ->
             (match explain t rest with
              | Ok r -> "OK " ^ Obs.Json.to_string (Core.Explain.to_json r)
              | Error e -> err e)
           | "STATS" ->
             if rest = "" then "OK " ^ Obs.Json.to_string (stats_json t)
             else malformed "STATS takes no argument"
           | "METRICS" ->
             (* The one multi-line response without a header: the payload IS
                the Prometheus exposition, ready to proxy to a scraper. *)
             if rest = "" then chop_trailing_newline (metrics_text t)
             else malformed "METRICS takes no argument"
           | "RECENT" ->
             (match t.recorder with
              | None ->
                err
                  (Core.Error.make Core.Error.Internal
                     "telemetry is disabled on this engine")
              | Some r ->
                let n =
                  if rest = "" then Ok None
                  else
                    match int_of_string_opt rest with
                    | Some n when n >= 0 -> Ok (Some n)
                    | _ -> Result.Error ()
                in
                (match n with
                 | Result.Error () ->
                   malformed
                     "RECENT takes an optional non-negative integer count"
                 | Ok n ->
                   let records = Flight_recorder.recent ?n r in
                   String.concat "\n"
                     (Printf.sprintf "OK %d" (List.length records)
                     :: List.map
                          (fun fr ->
                            Obs.Json.to_string (Flight_recorder.to_json fr))
                          records)))
           | "DRIFT" ->
             (match t.drift with
              | None ->
                err
                  (Core.Error.make Core.Error.Internal
                     "telemetry is disabled on this engine")
              | Some d ->
                if rest = "" then "OK " ^ Obs.Json.to_string (Drift.to_json d)
                else malformed "DRIFT takes no argument")
           | _ ->
             malformed
               "unknown command %S (expected ESTIMATE, FEEDBACK, EXPLAIN, \
                STATS, METRICS, RECENT or DRIFT)"
               verb
         with exn ->
           err
             (match Core.Error.of_exn exn with
              | Some e -> e
              | None ->
                Core.Error.make Core.Error.Internal (Printexc.to_string exn)))

  let run ?on_request t ic oc =
    try
      while true do
        match handle_line t (input_line ic) with
        | Some response ->
          output_string oc response;
          output_char oc '\n';
          flush oc;
          (match on_request with None -> () | Some f -> f ())
        | None -> ()
      done
    with End_of_file -> ()
end
