type outcome = {
  estimate : float;
  actual : int;
  q_error : float;
  refined : bool;
}

let q_error ~estimate ~actual =
  Stats.Metrics.q_error estimate (float_of_int actual)

let apply ?ept ~threshold estimator ast ~estimate ~actual =
  let q = q_error ~estimate ~actual in
  let refined =
    q >= threshold && Core.Estimator.record_feedback ?ept estimator ast ~actual
  in
  { estimate; actual; q_error = q; refined }
