(** Sliding-window accuracy-drift monitor for the serving engine.

    Each feedback observation contributes its smoothed q-error
    [max((est+1)/(act+1), (act+1)/(est+1))] to a sliding window
    ({!Obs.Window}: [slots] sub-histograms of [per_slot] observations,
    oldest expiring slot-at-a-time). Estimate traffic and cache hits are
    counted in parallel per-slot rings rotated in lockstep, so the
    window's q-error percentiles, estimate volume and hit rate all cover
    the same span.

    When the window's p90 q-error reaches [p90_threshold] the monitor
    bumps the [engine.drift.alerts] counter and emits one
    ["drift_alert"] event; the alert is edge-triggered and re-arms only
    after p90 falls back below the threshold, so a persistently bad
    window counts once, not once per observation. *)

type t

val create : ?slots:int -> ?per_slot:int -> ?p90_threshold:float -> unit -> t
(** Defaults: 6 slots of 64 feedback observations, threshold 8.0 (a p90
    q-error of 8 means a tenth of recent feedback was off by ~an order of
    magnitude).
    @raise Invalid_argument when [slots] or [per_slot] < 1, or the
    threshold is below 1 (q-error is always >= 1). *)

val qerror : estimate:float -> actual:int -> float
(** The +1-smoothed q-error both this module and the feedback gate use. *)

val observe : ?obs:Obs.t -> t -> estimate:float -> actual:int -> float
(** Record one feedback observation; returns its q-error. Rotates the
    window when the current slot is full, then evaluates the alert
    condition (bumping [engine.drift.alerts] / emitting the event on
    [obs] when it newly fires). *)

val note_estimate : t -> cache_hit:bool -> unit
(** Count one served estimate (and whether it was a cache hit) against the
    current window slot. *)

(** {1 Per-worker volume shards}

    Under the serving pool, estimate traffic is spread across worker
    domains while feedback stays single-writer. A {!shard} gives each
    worker its own pair of volume rings sharing the owner's slot index:
    the worker bumps only its shard (no synchronization on the estimate
    hot path) and {!observe}'s rotation clears every shard's landing slot
    in lockstep, so {!window_estimates}, {!window_hits} and {!hit_rate}
    always sum the owner's rings plus all shards over the same span. The
    caller must ensure rotation (i.e. {!observe}) never runs concurrently
    with {!note_shard} — the pool drains in-flight work before applying
    feedback. *)

type shard

val register_shard : t -> shard
(** A fresh all-zero shard whose rings rotate with the owner's window.
    Not itself domain-safe: register all shards before handing them to
    their workers. *)

val note_shard : shard -> cache_hit:bool -> unit
(** Count one served estimate against the shard's current slot. Safe to
    call from the shard's owning worker while other workers note their own
    shards; never concurrently with {!observe}. *)

val shard_estimates : shard -> int
(** Window estimate volume contributed by this shard (all live slots). *)

val shard_hits : shard -> int

(** {1 Window reads} — [nan] where the window is empty. *)

val window_count : t -> int
(** Feedback observations currently in the window. *)

val window_estimates : t -> int
(** Own rings plus every registered shard's contribution. *)

val window_hits : t -> int
val hit_rate : t -> float
val median : t -> float
val p90 : t -> float
val max_qerror : t -> float

val alerts : t -> int
(** Alert edges fired over the monitor's lifetime. *)

val alerting : t -> bool
(** Currently above threshold (the alert has fired and not yet re-armed). *)

val p90_threshold : t -> float

val publish : t -> Obs.t -> unit
(** Republish the window into a metrics registry —
    [engine.drift.qerror_{p50,p90,max}], [engine.drift.window_*] gauges
    and the [engine.drift.alerts] counter (idempotently, via max). Called
    by the engine before each scrape/snapshot. *)

val to_json : t -> Obs.Json.t
(** One-object summary (the serve protocol's [DRIFT] payload). *)
