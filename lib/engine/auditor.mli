(** Shadow accuracy auditor: sampled ground-truth q-error without client
    feedback, with per-step error attribution.

    The serving engine's accuracy observability ({!Drift}, the q-error
    metrics, replay's [--assert-improving]) only sees truth when a client
    volunteers [FEEDBACK <actual>]. The auditor closes the paper's Figure 1
    loop with zero client cooperation: a deterministic hash-based sampler
    taps served estimates from the hot path into a bounded queue, and a
    dedicated low-priority audit domain replays each sampled query against
    a resident {!Nok.Storage} of the source document (the paper's Section
    6.4 exact evaluator), computing the {e true} q-error.

    Design constraints, in priority order:

    - {e Audited queries never delay or fail a client response.} The tap is
      a pure hash test plus a bounded try-push; a full queue sheds the
      sample (counted, never surfaced as an ERR) and the client answer is
      already on the wire either way.
    - {e Zero shared mutable state with the serving estimator.} The audit
      domain owns a private estimator (loaded from the synopsis file, or
      handed over at create) and its own memoized EPT, so HET refinement on
      the serving side never races a shadow evaluation.
    - {e Deterministic sampling.} Whether a query is in-sample depends only
      on [(seed, rate, canonical hash)] — the same query is always in or
      out, independent of arrival order or interleaving ({!in_sample} is
      exposed pure for the property tests).

    Each audited query also gets {e error attribution}: the query's step
    prefixes are re-estimated against the private estimator and evaluated
    exactly, so the step whose q-error multiplier is largest — the place
    accuracy is lost — is identified per query and aggregated per
    label/axis/clamp bucket.

    Completed audits accumulate inside the auditor (an exact q-error ring
    feeding the [AUDIT] verb's window percentiles) and are handed back to
    the serving layer via {!drain}, which runs on the serving thread where
    {!Drift.observe} and the q-error-gated HET refinement are safe. *)

type source =
  | Paths of { synopsis : string; doc : string }
      (** Load lazily on the audit domain: the synopsis file (a private
          estimator) and the source document (a value-collecting
          {!Nok.Storage}). A load failure disables auditing (visible in
          {!status_json} and the [engine.audit.errors] counter) — it never
          affects serving. *)
  | Loaded of { estimator : Core.Estimator.t; storage : Nok.Storage.t }
      (** Hand over already-built resources. The estimator becomes the
          audit domain's private property — callers must not keep using
          it. *)

type step_report = {
  index : int;  (** 1-based step position in the canonical query *)
  step : string;  (** the step's own concrete syntax, e.g. ["//item[bidder]"] *)
  label : string;  (** name test, or ["*"] *)
  axis : string;  (** ["child"] or ["descendant"] *)
  clamped : bool;  (** the prefix estimate was degenerate-clamped *)
  estimate : float;  (** private-estimator estimate of the prefix *)
  actual : int;  (** exact NoK cardinality of the prefix *)
  qerror : float;  (** smoothed q-error of the prefix *)
  contribution : float;
      (** this step's q-error multiplier: prefix q-error over the previous
          prefix's q-error — the attribution signal. *)
}

type audited = {
  query : string;  (** canonical text *)
  hash : int;  (** canonical hash *)
  ast : Xpath.Ast.t;  (** canonical AST, for the refinement path *)
  estimate : float;  (** the estimate the client was served *)
  actual : int;  (** exact cardinality from the NoK evaluator *)
  qerror : float;  (** smoothed q-error of [estimate] vs [actual] *)
  steps : step_report list;  (** one per step prefix, in query order *)
  worst : step_report option;  (** the largest [contribution]; [None] only
                                   when attribution itself failed *)
}

val in_sample : seed:int -> rate:float -> int -> bool
(** [in_sample ~seed ~rate hash] — the pure sampling rule: mix [seed] into
    [hash] (splitmix64 finalizer), scale to \[0, 1) and compare against
    [rate]. Rate 0.0 selects nothing and 1.0 selects everything, exactly;
    intermediate rates select a fixed pseudo-random subset of hash space,
    so the same query is always in or out of sample regardless of arrival
    order. *)

val exact_percentile : float array -> float -> float
(** Exact rank selection over a copy (rank [round (p * (n-1))], matching
    {!Serve.percentiles}); [0.0] when empty — the shared arithmetic behind
    the AUDIT window and the offline report, so the two agree to float
    equality. *)

val window_json : float array -> Obs.Json.t
(** [{"count", "p50", "p90", "max"}] over raw q-errors via
    {!exact_percentile} — rendered identically by the [AUDIT] verb and
    [xseed audit]'s summary line. *)

val audit_one :
  estimator:Core.Estimator.t ->
  ept:Core.Matcher.ept Lazy.t ->
  storage:Nok.Storage.t ->
  estimate:float ->
  Xpath.Ast.t ->
  (audited, string) result
(** The shadow evaluation itself, exposed for the offline [xseed audit]
    subcommand: exact cardinality plus per-prefix attribution of a
    canonical AST. [estimate] is the served (or offline-estimated) value
    the headline q-error judges. Errors (query too large for the NoK
    bitmask, value predicates without collected values, ...) come back as
    a message, never an exception. *)

val audited_json : audited -> Obs.Json.t
(** One attribution record: query, estimate, actual, q-error, worst step
    and the per-step breakdown — a line of the JSON-lines attribution
    report and the ["audit"] payload of a flight record. *)

type t

val create :
  ?seed:int ->
  ?feedback:bool ->
  ?queue_capacity:int ->
  ?ring_capacity:int ->
  ?trace:Obs.Trace.t ->
  rate:float ->
  source ->
  t
(** Spawn the audit domain. [rate] must be within \[0, 1\] (at 0.0 the tap
    never fires but the AUDIT surface still answers). [seed] (default
    [0x5eed]) keys the sampler. [feedback] (default false) marks drained
    audits for the q-error-gated HET refinement path ([--audit-feedback]).
    [queue_capacity] (default 256) bounds the tap queue — overflow sheds.
    [ring_capacity] (default 4096) bounds the exact q-error window.
    [trace] adds an [audit] track recording one slice per shadow
    evaluation.
    @raise Invalid_argument on a rate outside \[0, 1\]. *)

val rate : t -> float
val feedback_enabled : t -> bool

val sample :
  t -> query:string -> hash:int -> ast:Xpath.Ast.t -> estimate:float -> unit
(** The hot-path tap. Applies {!in_sample}; enqueues at most one bounded
    push. Never blocks, never raises, never touches the reply — a full
    queue increments the shed counter and drops the sample. Safe from any
    domain. *)

val pending : t -> int
(** Completed audits awaiting {!drain} — a single atomic read, cheap
    enough to poll on the serving path. *)

val drain : t -> (audited -> unit) -> unit
(** Hand every completed audit to [f], oldest first, on the caller's
    thread. The caller must be the serving side's single writer (the
    engine's serving thread; the pool drained under its submit lock) so
    [f] may safely run {!Drift.observe} and HET refinement. *)

val note_refined : t -> unit
(** Count one audit-driven HET refinement (the drain callback reports
    back; the auditor itself never touches the serving estimator). *)

val settle : ?timeout_s:float -> t -> bool
(** Block until the audit backlog is empty and the domain idle, or
    [timeout_s] (default 5.0) elapses; [true] on idle. The [AUDIT] verb
    settles first so its report covers everything already sampled. *)

val status_json : t -> Obs.Json.t
(** The [AUDIT] reply: rate, sampled/completed/shed/error counts, backlog,
    refinement count, the exact q-error window ({!window_json}) and the
    top worst-step buckets. *)

val publish : t -> Obs.t -> unit
(** Republish the audit state into a scrape registry, idempotently:
    [engine.audit.*] counters/gauges plus the per-bucket
    [engine.audit.worst_step{label,axis,clamp}] series. Call it from the
    scrape path — values only move when audits complete, so quiet
    re-scrapes stay byte-identical. *)

val shutdown : t -> unit
(** Stop the audit domain (abandoning any backlog) and join it.
    Idempotent. *)
