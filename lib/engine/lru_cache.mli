(** Size-bounded LRU cache for served estimates.

    String-keyed (canonical query text), polymorphic in the value. A
    [find] refreshes recency; a [put] past capacity evicts the least
    recently used entry. Counters account for every operation —
    [hits + misses = lookups] always — and can be published into an Obs
    context as [engine.cache.*]. *)

type 'v t

val create : capacity:int -> 'v t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'v t -> int
val length : 'v t -> int

val find : 'v t -> string -> 'v option
(** Counted: a hit refreshes the entry's recency. *)

val mem : 'v t -> string -> bool
(** Uncounted, recency-neutral peek. *)

val put : 'v t -> string -> 'v -> unit
(** Insert (counted, possibly evicting the LRU entry) or refresh the value
    and recency of an existing key (counted as an insertion, never as an
    eviction). *)

val remove : 'v t -> string -> unit
(** Drop one key if present; counted as an invalidation. *)

val clear : 'v t -> unit
(** Drop everything; each dropped entry counts as an invalidation. *)

type counters = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;  (** capacity-forced removals only *)
  invalidations : int;  (** [remove]/[clear] removals *)
}

val counters : 'v t -> counters

val publish_counters : ?obs:Obs.t -> 'v t -> unit
(** Add current totals to [engine.cache.{hits,misses,insertions,evictions,
    invalidations}] counters (and [engine.cache.size] via max). *)
