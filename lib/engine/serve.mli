(** The serve line protocol, generic over what answers it.

    A {!server} is a record of closures — the protocol layer neither knows
    nor cares whether a single-threaded {!Engine.t} or a multi-domain
    {!Pool.t} sits behind it. One request per line:

    {v
    ESTIMATE <xpath>            ->  OK <estimate> <hit|miss>
    BATCH <n>                   ->  OK <n>, then n per-query OK/ERR lines
                                    answering the n following request
                                    lines in submission order
    PROFILE <n>                 ->  one-line per-stage latency breakdown of
                                    the n following request lines:
                                    OK <n> queue_wait_us p50=.. p90=.. p99=..
                                    execute_us ... reassemble_us ...
    FEEDBACK <xpath> <actual>   ->  OK <q_error> <refined|kept>
    EXPLAIN <xpath>             ->  OK <explain report as one-line JSON>
    STATS                       ->  OK <stats as one-line JSON>
    METRICS                     ->  Prometheus text exposition (multi-line)
    RECENT [n]                  ->  OK <k> then k flight-record JSON lines,
                                    newest first
    DRIFT                       ->  OK <drift summary as one-line JSON>
    AUDIT                       ->  OK <shadow-audit summary as one-line
                                    JSON: sampled/completed/shed counts,
                                    backlog, true q-error window
                                    (count/p50/p90/max) and top-k worst
                                    steps by attribution>
    PING                        ->  OK pong
    VERSION                     ->  OK xseed <version> protocol <n>
    v}

    [PING] and [VERSION] never touch a synopsis — they are the health-check
    surface load balancers probe, identical over the stdin and TCP
    transports, and they answer even on a registry session with no tenant
    selected.

    [PROFILE n] frames exactly like [BATCH n] (the n following lines are
    ESTIMATE requests, verb prefix optional) but runs them as one traced
    batch and answers with a single line giving exact p50/p90/p99 of the
    three serving stages in microseconds: queue-wait (submit to dequeue),
    execute (dequeue to result), reassemble (result to batch completion).
    On a single-threaded engine queue-wait and reassemble are zero. Hitting
    end of input inside the frame is one [ERR io-error] line.

    [BATCH n] consumes exactly [n] further input lines, each an ESTIMATE
    request (the [ESTIMATE ] verb prefix is optional on payload lines), and
    answers them in submission order behind an [OK n] header — under a pool
    the batch fans out across worker domains but the reply order is still
    the submission order. A malformed count (missing, negative, non-numeric
    or above the per-batch limit of 10,000) fails with a single [ERR] line
    before any payload line is consumed; hitting end of input inside a
    batch yields [ERR io-error] lines for the missing slots.

    Any failure — unknown verb, bad query, missing count, pipeline limit —
    is a one-line [ERR <kind> <message>] where [kind] is
    {!Core.Error.kind_name}; the handler never raises and never emits a
    non-finite number. [METRICS], [RECENT] and [BATCH] are the only
    multi-line responses, and only on success — their malformed spellings
    still fail with a single [ERR] line. Blank lines are ignored. *)

type estimate_reply = { value : float; status : Core.Explain.cache_status }

type stage_percentiles = { p50 : float; p90 : float; p99 : float }
(** Exact rank percentiles over one stage's samples, microseconds. *)

type profile_reply = {
  profiled : int;  (** queries measured *)
  queue_wait_us : stage_percentiles;
  execute_us : stage_percentiles;
  reassemble_us : stage_percentiles;
  timed_out : int;  (** queries refused with [ERR timeout] during the run *)
  shed : int;  (** queries refused with [ERR overloaded] during the run *)
  steals : int;
      (** chunks stolen across shards while the run was in flight,
          rendered as [steals=<n>]; 0 on a single engine *)
  tenant : string option;
      (** the tenant that served the run, rendered as a trailing
          [tenant=<name>] field; [None] outside a registry session *)
}

val version : string
(** The server version [VERSION] reports (also the CLI's [--version]). *)

val protocol_version : int
(** The serve-protocol revision [VERSION] reports and the TCP HELLO
    handshake negotiates. *)

type server = {
  estimate : string -> (estimate_reply, Core.Error.t) result;
  estimate_batch : string list -> (estimate_reply, Core.Error.t) result list;
      (** One result per query, in submission order; one bad query does not
          fail the batch. *)
  feedback : string -> actual:int -> (Feedback.outcome, Core.Error.t) result;
  explain : string -> (Core.Explain.report, Core.Error.t) result;
  stats_json : unit -> Obs.Json.t;
  metrics_text : unit -> string;
  recent : int option -> (Flight_recorder.record list, Core.Error.t) result;
      (** Newest first; [Error] when telemetry is disabled. *)
  drift_json : unit -> (Obs.Json.t, Core.Error.t) result;
  profile : string list -> (profile_reply, Core.Error.t) result;
      (** Run the queries as one measured batch and report the per-stage
          breakdown. Per-query errors do not fail the run — the reply is a
          timing summary. *)
  audit : unit -> (Obs.Json.t, Core.Error.t) result;
      (** Shadow-audit status: settle in-flight audits (bounded wait),
          drain results, and report the true q-error window and worst-step
          attribution as one JSON object; [Error] when auditing is
          disabled (no [--audit-rate] or no source document). *)
}

val max_batch : int
(** Default upper bound on a single BATCH (and PROFILE) count (10,000);
    [?max_batch] on {!handle_request}/{!run} overrides it per server and
    the rejection message always names the live limit. *)

val percentiles : float array -> stage_percentiles
(** Exact rank selection over a copy of [samples] (all zeros when empty).
    Exposed for the engine/pool profile implementations and the bench. *)

val handle_request :
  ?max_batch:int ->
  ?extra:(string -> string -> string option) ->
  server ->
  read_line:(unit -> string option) ->
  string ->
  string option
(** Answer one request line: [None] for a blank line, otherwise the
    complete response (no trailing newline; multi-line for successful
    [METRICS]/[RECENT]/[BATCH]). [read_line] supplies the extra payload
    lines a [BATCH] needs ([None] = end of input); it is only called for a
    well-formed BATCH count. [max_batch] (default {!max_batch}) bounds the
    BATCH/PROFILE count. [extra verb rest] is consulted before the core
    verb table — a registry session adds USE/LOAD/TENANTS there; returning
    [None] falls through (and an unknown verb still answers one [ERR]). *)

val run :
  ?on_request:(unit -> unit) ->
  ?max_batch:int ->
  ?extra:(string -> string -> string option) ->
  server ->
  in_channel ->
  out_channel ->
  unit
(** Serve until EOF, flushing after every response. [on_request] runs
    after each non-blank request has been answered and flushed — the
    CLI's [--snapshot-every] hook. [max_batch]/[extra] as in
    {!handle_request}. *)
