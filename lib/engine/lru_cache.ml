type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* toward the MRU end *)
  mutable next : 'v node option;  (* toward the LRU end *)
}

type 'v t = {
  cap : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;  (* most recently used *)
  mutable tail : 'v node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Lru_cache.create: capacity %d < 1" capacity);
  { cap = capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    invalidations = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

let drop ?(counter = `Invalidation) t node =
  unlink t node;
  Hashtbl.remove t.table node.key;
  match counter with
  | `Eviction -> t.evictions <- t.evictions + 1
  | `Invalidation -> t.invalidations <- t.invalidations + 1

let put t key value =
  (match Hashtbl.find_opt t.table key with
   | Some node ->
     node.value <- value;
     unlink t node;
     push_front t node
   | None ->
     if Hashtbl.length t.table >= t.cap then
       Option.iter (drop ~counter:`Eviction t) t.tail;
     let node = { key; value; prev = None; next = None } in
     Hashtbl.replace t.table key node;
     push_front t node);
  t.insertions <- t.insertions + 1

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some node -> drop t node
  | None -> ()

let clear t =
  t.invalidations <- t.invalidations + Hashtbl.length t.table;
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

type counters = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidations : int;
}

let counters (t : _ t) =
  { hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
    invalidations = t.invalidations }

let publish_counters ?obs (t : _ t) =
  Obs.add_to ?obs "engine.cache.hits" t.hits;
  Obs.add_to ?obs "engine.cache.misses" t.misses;
  Obs.add_to ?obs "engine.cache.insertions" t.insertions;
  Obs.add_to ?obs "engine.cache.evictions" t.evictions;
  Obs.add_to ?obs "engine.cache.invalidations" t.invalidations;
  Obs.max_to ?obs "engine.cache.size" (length t)
