(** Query-feedback policy: when an observed true cardinality disagrees with
    the served estimate badly enough, refresh the HET (paper Figure 1).

    The engine calls {!apply} after every executed query. The q-error of
    (estimate, actual) decides whether the observation is worth spending
    HET budget on: below [threshold] the synopsis was good enough and
    nothing changes; at or above it the observation is pushed into the HET
    via {!Core.Estimator.record_feedback}, which activates the entry
    immediately under the current memory budget (evicting the least useful
    active entry when full). *)

type outcome = {
  estimate : float;  (** the estimate being judged *)
  actual : int;  (** observed true cardinality *)
  q_error : float;  (** [max((e+1)/(a+1), (a+1)/(e+1))] *)
  refined : bool;
      (** an HET entry was inserted or refreshed — the caller must treat
          every cached estimate derived from the old table as stale *)
}

val q_error : estimate:float -> actual:int -> float
(** {!Stats.Metrics.q_error} with the actual as a count. *)

val apply :
  ?ept:Core.Matcher.ept ->
  threshold:float ->
  Core.Estimator.t ->
  Xpath.Ast.t ->
  estimate:float ->
  actual:int ->
  outcome
(** [threshold] is the minimum q-error that triggers refinement (the
    engine's default is 2.0 — a factor-two miss); pass [ept] to reuse a
    materialized EPT for the insertion's error bookkeeping. *)
