(** The single-threaded serving engine: one loaded synopsis answering a
    stream of estimate requests, learning from execution feedback as it
    goes. Re-exported (with the rest of the serving layer) as {!Engine}. *)

type t

val create :
  ?qerror_threshold:float ->
  ?cache_capacity:int ->
  ?telemetry:bool ->
  ?recorder_capacity:int ->
  ?drift_slots:int ->
  ?drift_per_slot:int ->
  ?drift_p90_threshold:float ->
  ?obs:Obs.t ->
  ?trace:Obs.Trace.t ->
  ?deadline_s:float ->
  Core.Estimator.t ->
  t
(** [qerror_threshold] (default 2.0) is the minimum q-error at which
    feedback refines the HET; [cache_capacity] (default 1024) bounds the
    estimate cache. [obs] receives pipeline metrics from every cache-miss
    estimation and becomes the engine's scrape registry ({!metrics});
    without it the engine still keeps a private registry so [METRICS]
    works. [telemetry] (default [true]) enables the flight recorder
    ([recorder_capacity], default 256 records) and the drift monitor
    ([drift_slots] x [drift_per_slot] feedback observations, default
    6 x 64, alerting at window-p90 q-error [drift_p90_threshold],
    default 8.0). [trace] attaches the engine to a {!Obs.Trace} session:
    the engine registers one buffer (tid 1, ["engine"]) and records
    [estimate] / [canonicalize] / [pipeline] / [feedback] / [explain]
    slices for every request, stamped with the same monotonic stage clock
    the flight recorder uses. Without [trace] the request path never
    touches a trace ring. [deadline_s] gives every request a wall-clock
    budget on the monotonic clock ({!Obs.now_mono}): a cache miss whose
    canonicalize stage already overran it is refused with
    [Error Timeout] before the pipeline runs (cache hits always answer —
    serving them is cheaper than refusing). Without it requests never
    time out. *)

val estimator : t -> Core.Estimator.t
val qerror_threshold : t -> float

val feedback_rounds : t -> int
(** Number of feedback observations that actually refined the HET (and so
    invalidated the cache) over this engine's lifetime. *)

val feedback_seen : t -> int
(** Total feedback observations, refined or not. *)

val timed_out : t -> int
(** Requests refused with [Error Timeout] because they overran the
    engine's [deadline_s]; always 0 without one. *)

type served = {
  key : Canonical.key;
  outcome : Core.Estimator.outcome;
  status : Core.Explain.cache_status;
      (** [Hit] or [Miss]; the engine never serves [Bypass] *)
}

val estimate_ast : t -> Xpath.Ast.t -> (served, Core.Error.t) result
(** Canonicalize, consult the cache, run the pipeline on a miss (caching the
    outcome). Errors are never cached. Same error contract as
    {!Core.Estimator.estimate_result}. *)

val estimate : t -> string -> (served, Core.Error.t) result
(** Parse then {!estimate_ast}; a syntax error is [Malformed_query]. *)

val estimate_batch : t -> string list -> (served, Core.Error.t) result list
(** Per-query results in order; one bad query does not fail the batch. *)

val feedback : t -> string -> actual:int -> (served * Feedback.outcome, Core.Error.t) result
(** Observe the true cardinality of an executed query: serve (or reuse) the
    engine's estimate, judge it ({!Feedback.apply}), and on refinement clear
    the cache and the shared EPT. The returned [served] is the estimate the
    q-error was computed against. *)

val feedback_ast : t -> Xpath.Ast.t -> actual:int -> (served * Feedback.outcome, Core.Error.t) result

val invalidate : t -> unit
(** Drop the cached EPT and every cached estimate (counted as
    invalidations). Called automatically when feedback refines the HET —
    a refreshed entry can affect any estimate that touched its path, so the
    engine conservatively assumes all of them did. *)

val explain : t -> string -> (Core.Explain.report, Core.Error.t) result
(** {!Core.Explain.run} through the engine: the report's [cache] field says
    whether this query is currently cached ([Hit]/[Miss] — the explain run
    itself always re-executes the pipeline) and [feedback_rounds] is
    {!feedback_rounds}. Does not disturb cache contents or counters. *)

val cache_counters : t -> Lru_cache.counters
val cache_length : t -> int

(** {1 Serving telemetry} *)

val metrics : t -> Obs.t
(** The scrape registry: the [?obs] passed to {!create}, or the engine's
    private context. *)

val recorder : t -> Flight_recorder.t option
(** [None] when the engine was created with [~telemetry:false]. *)

val drift : t -> Drift.t option

val set_on_record : t -> (Flight_recorder.record -> unit) -> unit
(** Install a callback invoked with every flight record as it is written —
    the CLI's [--telemetry-out] JSON-lines sink. At most one callback;
    installing replaces. *)

val set_auditor : t -> Auditor.t -> unit
(** Attach a shadow auditor: every served estimate (hit or miss) is offered
    to {!Auditor.sample}, and completed audits are folded back in on the
    serving thread ({!drain_audits}) — into the drift window, the flight
    ring (as [Audited] records carrying the attribution payload), and, when
    the auditor was created with [~feedback:true], the q-error-gated HET
    refinement path. The engine does not own the auditor's lifecycle: the
    caller shuts it down. *)

val auditor : t -> Auditor.t option

val drain_audits : t -> unit
(** Fold any completed shadow audits into the engine's telemetry (a cheap
    atomic check when there are none). Runs automatically at the start of
    every estimate and inside the [AUDIT] verb; exposed for drain-epilogue
    flushing. Must be called from the serving thread — it touches the same
    drift window and flight ring the request path writes. *)

val audit_reply : t -> (Obs.Json.t, Core.Error.t) result
(** The [AUDIT] verb: settle in-flight audits (bounded 5 s wait), drain,
    and report {!Auditor.status_json}; [Error Internal] when no auditor is
    attached. *)

val publish_telemetry : t -> unit
(** Republish engine totals into {!metrics}: [engine.cache.*] counters
    (via max, so calling before every scrape is idempotent) and occupancy
    gauges, [engine.feedback.*], [engine.het.*] and [het.*] totals,
    [engine.flight.records], and the drift window's
    [engine.drift.*] gauges/counter. *)

val metrics_text : t -> string
(** {!publish_telemetry}, then the full registry in Prometheus text
    exposition format 0.0.4 with the [xseed_] name prefix
    ({!Obs.prometheus}). *)

val stats_json : t -> Obs.Json.t
(** One object: cache counters and occupancy, feedback totals, HET
    active/total/usage (or [null] without a HET), synopsis footprint. *)

val publish_counters : t -> unit
(** Push cache totals ([engine.cache.*]), [engine.feedback.*] and HET
    totals into the engine's Obs context (no-op without one). *)

val profile : t -> string list -> (Serve.profile_reply, Core.Error.t) result
(** The [PROFILE] verb: run the queries, timing each with the monotonic
    clock, and report exact per-stage percentiles. On a single engine
    queue-wait and reassemble are structurally zero; execute is each
    estimate's wall time. Per-query errors do not fail the run. *)

val server : t -> Serve.server
(** This engine behind the generic {!Serve} protocol — what
    [xseed serve] (without [--workers]) runs. *)

(** The [xseed serve] line protocol over a single engine; see {!Serve} for
    the verb surface (including [BATCH]). Kept as a module for
    compatibility: [handle_line] answers one self-contained line
    (a [BATCH] here reads no payload lines, so its slots report
    end-of-input errors). *)
module Protocol : sig
  val handle_line : t -> string -> string option
  (** [None] for a blank line, otherwise the complete response (no trailing
      newline; multi-line for successful [METRICS]/[RECENT]/[BATCH]). *)

  val run :
    ?on_request:(unit -> unit) ->
    ?max_batch:int ->
    t ->
    in_channel ->
    out_channel ->
    unit
  (** Serve until EOF, flushing after every response. [on_request] runs
      after each non-blank request has been answered and flushed — the
      CLI's [--snapshot-every] hook. [max_batch] overrides the per-batch
      cap (default {!Serve.max_batch}). *)
end
