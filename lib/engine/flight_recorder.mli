(** Per-query flight records in a fixed-size ring buffer.

    Every [estimate]/[explain] the serving engine answers appends one
    {!record}: the canonical query and its hash, the cache outcome, the
    per-stage wall times, the estimate, and the per-query matcher stats
    (EPT nodes, frontier peak, clamps, HET hits). The ring overwrites
    oldest-first, so memory is bounded by [capacity] regardless of uptime;
    {!recent} reads newest-first for the serve protocol's [RECENT] command
    and {!to_json} renders one record as a JSON object (one line of the
    [--telemetry-out] JSON-lines sink). *)

type cache_status = Hit | Miss | Bypass | Timed_out | Shed | Audited
(** [Timed_out] and [Shed] mark requests the fault-tolerance layer
    refused: the record carries the raw query, a zero estimate and zero
    stage times — the point is that the refusal is visible in RECENT and
    [--telemetry-out] streams, not that it was served. [Audited] marks a
    shadow-audit attribution record appended when the background auditor
    completes a sampled query — not a served request at all. *)

val cache_status_name : cache_status -> string
(** ["hit"] / ["miss"] / ["bypass"] / ["timeout"] / ["shed"] /
    ["audit"]. *)

type audit = {
  audit_actual : int;  (** exact cardinality from the NoK evaluator *)
  audit_qerror : float;  (** true q-error of the served estimate *)
  audit_worst_step : string;  (** step text with the largest q-error growth *)
  audit_worst_axis : string;  (** its axis, ["child"]/["descendant"] *)
  audit_contribution : float;  (** its q-error multiplier *)
}
(** The shadow auditor's per-query attribution payload, rendered by
    {!to_json} as an ["audit"] sub-object. *)

type record = {
  seq : int;  (** monotone sequence number, 0-based, never reused *)
  query : string;  (** canonical query text *)
  hash : int;  (** canonical query hash (cache key) *)
  cache : cache_status;
  estimate : float;
  canonicalize_s : float;  (** parse + canonicalize wall seconds *)
  ept_s : float;  (** EPT materialization seconds; ~0 when reused *)
  match_s : float;  (** matcher two-pass seconds *)
  total_s : float;  (** sum of the stages *)
  ept_nodes : int;  (** EPT nodes visited by the matcher; 0 on cache hit *)
  frontier_peak : int;
  degenerate_clamps : int;
  het_hits : int;  (** HET lookups answered for this query (simple + branching) *)
  feedback_round : int;  (** engine feedback round at answer time *)
  tenant : string option;
      (** owning tenant when the ring belongs to a registry-managed engine
          ({!set_tenant}); [None] on single-tenant engines *)
  audit : audit option;
      (** shadow-audit attribution, on [Audited] records only *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] (default 256) records.
    @raise Invalid_argument when [capacity] < 1. *)

val capacity : t -> int

val set_tenant : t -> string -> unit
(** Stamp every record written from now on with this tenant name (rendered
    as a ["tenant"] field by {!to_json}). The registry calls it once per
    page-in; records already in the ring keep their stamp. *)

val total : t -> int
(** Records ever written, including overwritten ones. *)

val record :
  ?seq:int ->
  ?audit:audit ->
  t ->
  query:string ->
  hash:int ->
  cache:cache_status ->
  estimate:float ->
  canonicalize_s:float ->
  ept_s:float ->
  match_s:float ->
  ept_nodes:int ->
  frontier_peak:int ->
  degenerate_clamps:int ->
  het_hits:int ->
  feedback_round:int ->
  record
(** Append one record (assigning its [seq]) and return it. [?seq] replaces
    the ring's own numbering with an externally issued sequence number —
    the serving pool stamps records with its global submission counter so
    per-shard rings can be merged back into one submission-ordered stream
    ({!recent} order within a single ring is unaffected: it is newest
    write first regardless of the stored [seq]). *)

val recent : ?n:int -> t -> record list
(** The last [n] records (default: all live ones), newest first. *)

val to_json : record -> Obs.Json.t
(** One JSON object; wall times under ["wall_us"] in microseconds, hash as
    8 hex digits. *)

val dump_jsonl : out_channel -> t -> unit
(** Every live record as JSON-lines, newest first. *)
