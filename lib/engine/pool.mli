(** Multi-domain serving pool: one shared synopsis, N worker shards.

    The pool owns one immutable synopsis (kernel + HET + value synopsis)
    and one materialized EPT, shared read-only by [workers] domains. Each
    worker has a private shard — its own {!Lru_cache}, {!Flight_recorder}
    ring, {!Obs} registry and {!Drift} volume shard — so the estimate hot
    path takes no lock beyond the sharded {!Work_queue}'s own mutex.

    {b Chunk dispatch} (DESIGN.md §16). A batch of [n] queries is cut by
    {!plan_chunks} into contiguous per-shard slices, one queue operation
    per chunk rather than per query. Workers write replies lock-free into
    the batch's preallocated submission-order result array; the only
    synchronization per chunk is one idempotent completion latch. Idle
    shards steal chunks from the tail of busy shards' deques — a victim's
    last divisible chunk is split in half, and a lone length-1 chunk is
    never stolen — so a straggler no longer serializes the batch.
    Per-shard mutable hot state is padded past a cache line to kill false
    sharing between worker domains.

    {b Single-writer feedback.} [feedback] (and [explain]) take the
    submission lock, wait for in-flight chunks to drain, and only then
    touch the shared HET/EPT. A refining feedback bumps the pool {!epoch};
    workers compare it at their next dequeue and drop their now-stale
    caches. No estimate ever observes a half-applied refinement.

    {b Determinism.} Over the same synopsis, pool estimates are
    bit-identical to a single {!Engine_core.t}'s — with chunking, stealing
    and affinity in any combination: the matcher keeps all per-query
    scratch off the shared EPT, and every shard estimator is built from
    the same kernel/HET/values. Merged metrics ({!metrics_text}) are
    rendered from a per-scrape registry with series sorted by key, so the
    exposition does not depend on scheduling. *)

type t

val create :
  ?workers:int ->
  ?qerror_threshold:float ->
  ?cache_capacity:int ->
  ?telemetry:bool ->
  ?recorder_capacity:int ->
  ?drift_slots:int ->
  ?drift_per_slot:int ->
  ?drift_p90_threshold:float ->
  ?queue_capacity:int ->
  ?chunk_target:int ->
  ?steal:bool ->
  ?trace:Obs.Trace.t ->
  ?deadline_s:float ->
  ?shed_policy:[ `Block | `Shed_newest ] ->
  ?chaos:(string -> bool) ->
  ?auditor:Auditor.t ->
  Core.Estimator.t ->
  t
(** Spawns [workers] (default 2) domains immediately; call {!shutdown}
    when done. [cache_capacity] (default 1024) and [recorder_capacity]
    (default 256) are {e per shard}; [queue_capacity] (default 256) is
    chunk slots {e per shard deque}. [chunk_target] (default 8) is the
    preferred slots-per-chunk fed to {!plan_chunks}; [~chunk_target:1]
    restores per-query dispatch (deterministic shed tests use it).
    [steal] (default [true]) gates work stealing. The EPT is materialized
    eagerly (a failure surfaces as [Limit_exceeded] on the first
    estimate, as with the single engine). Other knobs as
    {!Engine_core.create}.

    {b Failure model} (DESIGN.md §13). [deadline_s] gives every request a
    wall-clock budget, measured from its {e chunk}'s enqueue on the
    monotonic clock ({!Obs.now_mono}) and checked per slot: before the
    slot executes (so a deadline can expire mid-chunk — earlier slots
    answered, later ones refused [ERR timeout]) and again between
    canonicalize and the pipeline on a cache miss. Cache hits always
    answer. [shed_policy] (default [`Block]) governs a full shard deque:
    [`Block] applies backpressure (the submitter waits), [`Shed_newest]
    refuses the chunk being submitted — every slot it carries — with
    [ERR overloaded] without blocking. Workers are supervised: an
    exception escaping a worker's loop body answers the chunk's unserved
    slots with [ERR internal], bumps {!worker_restarts} and restarts the
    loop in place — a batch never hangs on a dead worker. A query whose
    execution has killed workers twice is quarantined (refused
    [ERR internal] before executing). [chaos] is a test-only fault hook
    called on the worker domain right before each query executes;
    returning [true] kills the worker body there, exercising the
    supervisor.

    [trace] attaches the pool to an {!Obs.Trace} session: the coordinator
    registers tid 0 and each shard tid [id+1]. Per chunk the trace carries
    a [chunk_dispatch] instant at submit, a [queue_wait] async span (begun
    at submit on the coordinator, ended at dequeue on the serving shard),
    an [execute] slice with per-query [canonicalize] / [pipeline]
    sub-slices on the shard track, and a [query] flow arrow linking
    submit -> execute -> gather; a [steal] instant lands on the thief's
    track at every stolen dequeue, and [batch_submit] / [batch_gather]
    slices frame the coordinator's work. Shard buffers are written only by
    their own domain; the coordinator buffer is guarded by an internal
    innermost lock. Without [trace] the hot path never touches a ring.

    [auditor] attaches a shadow auditor: every estimate a worker serves is
    offered to {!Auditor.sample} (thread-safe, lock-then-drop — never
    blocks the reply), and completed audits are folded back into the
    coordinator's drift window and flight ring only under the drained
    single-writer state (on the feedback path and the [AUDIT] verb), so
    audit feedback follows the same epoch protocol as client feedback.
    The pool does not own the auditor's lifecycle: the caller shuts it
    down after {!shutdown}.
    @raise Invalid_argument when [workers] < 1, [chunk_target] < 1 or the
    threshold is invalid. *)

val shutdown : t -> unit
(** Close the queue, let queued chunks drain, and join all worker domains.
    Idempotent; subsequent requests answer with an [internal] error. *)

val workers : t -> int

val chunk_target : t -> int
(** The preferred slots-per-chunk this pool plans with. *)

val plan_chunks :
  n:int ->
  workers:int ->
  chunk_target:int ->
  ?preferred:int ->
  unit ->
  (int * int * int) array
(** The pure chunk plan: [n] slots cut into
    [min n (max workers (ceil n/chunk_target))] contiguous [(lo, hi,
    shard)] slices — [lo] inclusive, [hi] exclusive. Laws (QCheck-pinned):
    the slices partition [0, n) exactly (cover every index once, in
    order); sizes differ by at most one with longer chunks first; [n = 0]
    plans no chunks. Chunk [i] goes to shard [i mod workers], or every
    chunk to [preferred] under affinity routing (stealing rebalances). *)

val preferred_shard : t -> affinity:int -> int
(** The affinity hash: the shard every chunk of an [affinity]-routed
    submission is planned onto. Stable for the life of the pool. *)

val epoch : t -> int
(** Cache-invalidation epoch: starts at 0, incremented by every refining
    feedback and by {!invalidate}. Monotone non-decreasing. *)

val qerror_threshold : t -> float
val feedback_seen : t -> int
val feedback_rounds : t -> int
val drift : t -> Drift.t option

val shed_total : t -> int
(** Query slots refused [ERR overloaded] by the [`Shed_newest] policy. *)

val timeout_total : t -> int
(** Query slots refused [ERR timeout] at either deadline checkpoint. *)

val worker_restarts : t -> int
(** Times the supervisor restarted a worker loop after an escaping
    exception. 0 in a healthy pool. *)

val steals_total : t -> int
(** Chunks served by a shard other than the one they were planned onto
    (the work queue's own count — exported as
    [engine.pool.steals_total]). *)

val affinity_hits : t -> int
(** Affinity-routed chunks served by their preferred shard (exported as
    [engine.pool.affinity_hits]). *)

val quarantined_count : t -> int
(** Distinct queries currently quarantined (two worker kills each). *)

val set_on_record : t -> (Flight_recorder.record -> unit) -> unit
(** Sink invoked for every flight record, from whichever domain produced
    it (serialized by an internal lock — the sink itself need not be
    domain-safe). *)

val estimate :
  ?affinity:int -> t -> string -> (Serve.estimate_reply, Core.Error.t) result
(** Submit one query and wait for its reply. Domain-safe. [affinity]
    routes the chunk to {!preferred_shard} so a session's shard cache
    stays hot across requests; stealing still rebalances under load. *)

val estimate_batch :
  ?affinity:int ->
  t ->
  string list ->
  (Serve.estimate_reply, Core.Error.t) result list
(** Submit a batch as per-shard chunks; replies return in submission
    order regardless of which shard served each slot. While a shard deque
    is full, [`Block] pools wait (backpressure) and [`Shed_newest] pools
    answer the overflowing chunk's slots [ERR overloaded] immediately. *)

val feedback : t -> string -> actual:int -> (Feedback.outcome, Core.Error.t) result
(** Drain the pool, judge the query's estimate against [actual], and
    refine the HET when the q-error exceeds the threshold. Refinements
    rebuild the shared EPT and bump {!epoch} before submissions resume. *)

val explain : t -> string -> (Core.Explain.report, Core.Error.t) result
(** Full-pipeline explain, run drained on the base estimator. The cache
    status reports whether {e any} shard holds the query. *)

val profile :
  ?affinity:int -> t -> string list -> (Serve.profile_reply, Core.Error.t) result
(** The [PROFILE] verb: run the queries as one batch and report exact
    per-stage percentiles from per-slot monotonic stamps. The stages
    partition each query's life: queue-wait (submit to execution start —
    for a slot deep in a chunk that includes its predecessors' execute
    time), execute (start to result), reassemble (result to batch
    completion). Refused slots (shed, pool shut down mid-submit) are
    excluded from [profiled]. [steals] reports the pool-wide steal delta
    across the batch. *)

val invalidate : t -> unit
(** Bump {!epoch} without touching the synopsis, dropping every shard's
    cache at its next dequeue — cold-cache benchmark passes. *)

val stats_json : t -> Obs.Json.t
(** Engine stats with cache counters summed across shards, plus a
    ["pool"] object ([workers], [epoch], [chunk_target], [queue_depth],
    and the work queue's contention counters [queue_pushes] /
    [queue_pops] / [queue_steals] / [queue_push_waits] /
    [queue_pop_waits] / [queue_push_wait_s] / [queue_pop_wait_s] /
    [queue_max_occupancy], plus [affinity_hits] and the failure counters
    [shed_total] / [timeout_total] / [worker_restarts] / [quarantined]). *)

val metrics_text : t -> string
(** Prometheus exposition of {!merged_metrics}. *)

val merged_metrics : t -> Obs.t
(** A fresh registry per call: pool-level totals merged with every
    shard's pipeline registry via {!Obs.merged} (series sorted by key;
    repeated calls without traffic are identical). Includes, when
    telemetry is on: the pool-wide [engine.pool.queue_wait_us] histogram
    (per-chunk dequeue waits; shard observations merge by key),
    [engine.pool.batch_chunk], [engine.pool.queue.*] contention counters
    from {!Work_queue.stats}, [engine.pool.steals_total] and
    [engine.pool.affinity_hits], per-shard [engine.gc.*] counters
    (labelled [shard="N"]) and [engine.pool.busy_fraction] gauges
    (serving time over the shard's create-to-last-served window, so quiet
    re-scrapes stay byte-identical; best-effort reads of per-domain
    accumulators). *)

val recent : ?n:int -> t -> Flight_recorder.record list
(** Flight records merged across all shard rings plus the coordinator's
    (feedback/explain) ring, newest submission first ([seq] descending). *)

val cache_counters : t -> Lru_cache.counters
(** Per-shard counters summed. *)

val shard_cache_counters : t -> Lru_cache.counters array
(** One entry per shard, in shard order (test hook for the sum law). *)

val server : ?affinity:int -> t -> Serve.server
(** The serve-protocol vtable ([xseed serve --workers N]). [affinity]
    bakes a client identity into the vtable, routing every submission
    through it to {!preferred_shard} — the net layer passes a
    per-connection token here so a session's shard cache stays hot. *)
