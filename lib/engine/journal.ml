(* Append-only CRC-framed write-ahead log for feedback observations. The
   format is deliberately dumb — length + CRC + text payload per frame —
   because the recovery rule has to be decidable on arbitrary bytes: stop
   at the first frame that is torn (runs past EOF) or corrupt (present but
   CRC/parse-invalid), and truncate there. *)

type entry = { query : string; actual : int }

type tail = Clean | Torn of int | Corrupt of int

type scan = {
  entries : entry list;
  frames : int;
  valid_bytes : int;
  tail : tail;
}

let magic = "XSEEDJ1\n"

(* ------------------------------------------------------------------ *)
(* Encoding *)

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let payload_of_entry e = Printf.sprintf "F %d %s" e.actual e.query

let entry_of_payload p =
  let n = String.length p in
  if n < 4 || p.[0] <> 'F' || p.[1] <> ' ' then None
  else
    match String.index_from_opt p 2 ' ' with
    | None -> None
    | Some i ->
      (match int_of_string_opt (String.sub p 2 (i - 2)) with
       | Some actual when actual >= 0 ->
         Some { query = String.sub p (i + 1) (n - i - 1); actual }
       | _ -> None)

let frame e =
  let payload = payload_of_entry e in
  let b = Buffer.create (String.length payload + 8) in
  put_u32 b (String.length payload);
  put_u32 b (Core.Crc32.digest payload);
  Buffer.add_string b payload;
  Buffer.contents b

let to_string entries =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  List.iter (fun e -> Buffer.add_string b (frame e)) entries;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scanning *)

let not_a_journal path_hint =
  Core.Error.make Core.Error.Corrupt_synopsis
    (Printf.sprintf "%snot an XSEED journal (bad magic; expected %S)"
       (match path_hint with None -> "" | Some p -> p ^ ": ")
       (String.trim magic))

let scan_string ?path s =
  let total = String.length s in
  if total = 0 then
    Ok { entries = []; frames = 0; valid_bytes = 0; tail = Clean }
  else if total < String.length magic || String.sub s 0 (String.length magic) <> magic
  then Error (not_a_journal path)
  else begin
    let entries = ref [] in
    let frames = ref 0 in
    let rec go off =
      if off = total then { entries = List.rev !entries; frames = !frames;
                            valid_bytes = off; tail = Clean }
      else if total - off < 8 then
        { entries = List.rev !entries; frames = !frames; valid_bytes = off;
          tail = Torn off }
      else begin
        let len = get_u32 s off in
        let crc = get_u32 s (off + 4) in
        if total - off - 8 < len then
          (* The declared payload runs past EOF: the crash-mid-append
             residue the format is designed to shrug off. *)
          { entries = List.rev !entries; frames = !frames; valid_bytes = off;
            tail = Torn off }
        else begin
          let payload = String.sub s (off + 8) len in
          if Core.Crc32.digest payload <> crc then
            { entries = List.rev !entries; frames = !frames;
              valid_bytes = off; tail = Corrupt off }
          else
            match entry_of_payload payload with
            | None ->
              { entries = List.rev !entries; frames = !frames;
                valid_bytes = off; tail = Corrupt off }
            | Some e ->
              entries := e :: !entries;
              incr frames;
              go (off + 8 + len)
        end
      end
    in
    Ok (go (String.length magic))
  end

let scan_string s = scan_string ?path:None s

let read_file path =
  if not (Sys.file_exists path) then
    Error (Core.Error.make Core.Error.Missing_file ("no such file: " ^ path))
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> Ok s
    | exception Sys_error m -> Error (Core.Error.make Core.Error.Io_error m)

let scan_file path =
  match read_file path with
  | Error _ as e -> e
  | Ok s ->
    (match scan_string s with
     | Error _ -> Error (not_a_journal (Some path))
     | Ok _ as ok -> ok)

let recover path =
  if not (Sys.file_exists path) then
    Ok { entries = []; frames = 0; valid_bytes = 0; tail = Clean }
  else
    match scan_file path with
    | Error _ as e -> e
    | Ok scan ->
      (match scan.tail with
       | Clean -> Ok scan
       | Torn _ | Corrupt _ ->
         (match Unix.truncate path scan.valid_bytes with
          | () -> Ok scan
          | exception Unix.Unix_error (err, _, _) ->
            Error
              (Core.Error.make Core.Error.Io_error
                 (Printf.sprintf "%s: truncating dirty tail: %s" path
                    (Unix.error_message err)))))

(* ------------------------------------------------------------------ *)
(* Writing *)

type fsync = [ `Always | `Every of int | `Never ]

type writer = {
  oc : out_channel;
  fsync : fsync;
  mutable appended : int;
  mutable closed : bool;
}

let io_error fmt = Printf.ksprintf (Core.Error.make Core.Error.Io_error) fmt

let open_append ?(fsync = `Always) path =
  (match fsync with
   | `Every n when n < 1 ->
     invalid_arg "Journal.open_append: `Every n requires n >= 1"
   | _ -> ());
  let existing =
    if Sys.file_exists path then
      match read_file path with Ok s -> Some s | Error _ -> None
    else None
  in
  match existing with
  | Some s
    when String.length s > 0
         && (String.length s < String.length magic
            || String.sub s 0 (String.length magic) <> magic) ->
    Error (not_a_journal (Some path))
  | _ ->
    (match open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path with
     | oc ->
       let w = { oc; fsync; appended = 0; closed = false } in
       (match existing with
        | Some s when String.length s > 0 -> ()
        | _ ->
          output_string oc magic;
          flush oc);
       Ok w
     | exception Sys_error m -> Error (io_error "%s" m))

let appended w = w.appended

let do_fsync w =
  flush w.oc;
  try Unix.fsync (Unix.descr_of_out_channel w.oc)
  with Unix.Unix_error _ | Sys_error _ -> ()

let sync w = if not w.closed then do_fsync w

let append w e =
  if w.closed then Error (io_error "journal writer is closed")
  else
    match
      output_string w.oc (frame e);
      w.appended <- w.appended + 1;
      (match w.fsync with
       | `Always -> do_fsync w
       | `Every n -> if w.appended mod n = 0 then do_fsync w else flush w.oc
       | `Never -> flush w.oc)
    with
    | () -> Ok ()
    | exception Sys_error m -> Error (io_error "journal append: %s" m)

let close w =
  if not w.closed then begin
    (try do_fsync w with _ -> ());
    (try close_out_noerr w.oc with _ -> ());
    w.closed <- true
  end

(* ------------------------------------------------------------------ *)

let wrap_server w (s : Serve.server) =
  { s with
    Serve.feedback =
      (fun query ~actual ->
        match s.Serve.feedback query ~actual with
        | Error _ as e -> e
        | Ok fb ->
          (match append w { query; actual } with
           | Ok () -> Ok fb
           | Error e -> Error e)) }
