(** A bounded multi-producer multi-consumer FIFO for OCaml 5 domains.

    The pool's submission path pushes jobs (blocking while the queue is
    full, which backpressures clients instead of growing memory) and worker
    domains pop them (blocking while empty). {!close} wakes everyone up:
    pending items still drain, further pushes are refused, and poppers see
    [None] once the ring is empty — the worker shutdown signal.

    Built on one mutex and two condition variables; the mutex's
    acquire/release pairs also order memory between producers and
    consumers, which the pool relies on for publishing its shared EPT. *)

type 'a t

val create : capacity:int -> 'a t
(** A ring of [capacity] slots; no allocation after creation.
    @raise Invalid_argument when [capacity] < 1. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Occupied slots at the instant of the read. *)

val push : 'a t -> 'a -> bool
(** Enqueue, blocking while full. [false] when the queue is (or becomes)
    closed — the item was not enqueued. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking enqueue: [`Full] immediately when the ring has no free
    slot (the item was not enqueued), [`Closed] after {!close}. The
    admission primitive for shed-newest load shedding — a producer that
    would have blocked can answer "overloaded" instead. *)

val pop : 'a t -> 'a option
(** Dequeue the oldest item, blocking while empty. [None] only when the
    queue is closed {e and} drained. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked producers and consumers.
    Idempotent. Already-queued items still drain through {!pop}.

    {b Close/blocked-operation race semantics} (pinned by tests): a
    producer blocked in {!push} on a full ring is woken and returns
    [false] — its item is {e never} enqueued, even though slots may later
    free up; a {!try_push} after close returns [`Closed]. A consumer
    blocked in {!pop} on an empty ring is woken and returns [None]; if
    items remain (close raced an occupied ring), blocked and subsequent
    consumers drain them in FIFO order and only then see [None]. The
    wait counters ({!stats}) still record the blocked interval that close
    cut short. *)

val closed : 'a t -> bool

(** {1 Contention accounting}

    The queue counts its own traffic and blocking time under its lock, so
    the numbers are exact. The monotonic clock is read only when an
    operation actually blocks — an uncontended push or pop costs nothing
    beyond the mutex it already takes. *)

type stats = {
  pushes : int;  (** items successfully enqueued *)
  pops : int;  (** items successfully dequeued *)
  push_waits : int;  (** pushes that found the ring full and blocked *)
  pop_waits : int;  (** pops that found the ring empty and blocked *)
  push_wait_s : float;  (** total producer blocking time, seconds *)
  pop_wait_s : float;  (** total consumer blocking time, seconds *)
  max_occupancy : int;  (** high-water mark of occupied slots *)
}

val stats : 'a t -> stats
(** A consistent snapshot, taken under the queue lock. *)
