(** Sharded bounded deques with work stealing, for OCaml 5 domains.

    Since PR 10 the pool dispatches {e chunks} (contiguous slices of a
    batch), one queue operation per chunk, so a single global mutex covers
    every shard's deque. Producers push a chunk to its planned shard
    (blocking while that deque is full, which backpressures clients
    instead of growing memory); each worker domain pops from its own
    deque's head in FIFO order and, when empty, steals from the tail of
    the busiest other deque. {!close} wakes everyone up: pending chunks
    still drain, further pushes are refused, and poppers see [None] once
    everything reachable is gone — the worker shutdown signal.

    {b Steal protocol} (pinned by the deterministic scheduling tests): a
    victim holding ≥ 2 chunks donates its tail chunk whole; a victim down
    to its last chunk is only relieved of half — the thief's [split]
    divides it, the keep-half returns to the victim's tail; and a lone
    chunk that [split] refuses ([None], the granularity floor) is {e
    never} stolen, so a shard busy with a sub-minimal chunk keeps it.
    Victim choice is longest-deque-first, scanning from the thief's
    right-hand neighbour, first scanned wins ties.

    The global mutex's acquire/release pairs also order memory between
    producers, owners, and thieves, which the pool relies on both for
    publishing its shared EPT and for handing mutable chunk cursors from
    victim to thief. *)

type 'a t

val create : ?steal:bool -> shards:int -> capacity:int -> unit -> 'a t
(** One deque per shard, each a ring of [capacity] chunk slots; no
    allocation after creation. [steal] (default [true]) gates the steal
    path: when off, {!pop} only ever serves a worker its own deque.
    @raise Invalid_argument when [shards] < 1 or [capacity] < 1. *)

val shards : 'a t -> int
val capacity : 'a t -> int

val length : 'a t -> int
(** Occupied slots across all shards at the instant of the read. *)

val push : 'a t -> shard:int -> 'a -> bool
(** Enqueue at [shard]'s tail, blocking while that deque is full. [false]
    when the queue is (or becomes) closed — the item was not enqueued. *)

val try_push : 'a t -> shard:int -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking enqueue: [`Full] immediately when [shard]'s deque has no
    free slot (the item was not enqueued), [`Closed] after {!close}. The
    admission primitive for shed-newest load shedding — a producer that
    would have blocked can answer "overloaded" instead. *)

val pop : 'a t -> shard:int -> split:('a -> ('a * 'a) option) -> ('a * int option) option
(** Dequeue for worker [shard]: its own deque's head first, else a steal
    under the protocol above. [split v] must either divide [v] into
    [(keep, take)] — [keep] stays with the victim, [take] goes to the
    thief — or answer [None] to mark [v] unsplittable. The second
    component of the result names the victim shard when the chunk was
    stolen ([None] = own deque). Blocks while nothing is runnable;
    answers [None] only when the queue is closed and drained (with
    stealing disabled: closed and {e this shard's} deque drained). *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked producers and consumers.
    Idempotent. Already-queued chunks still drain through {!pop}.

    {b Close/blocked-operation race semantics} (pinned by tests): a
    producer blocked in {!push} on a full deque is woken and returns
    [false] — its item is {e never} enqueued, even though slots may later
    free up; a {!try_push} after close returns [`Closed]. A consumer
    blocked in {!pop} is woken and returns [None] once nothing reachable
    remains; if chunks remain (close raced occupied deques), blocked and
    subsequent consumers drain them and only then see [None]. The wait
    counters ({!stats}) still record the blocked interval that close cut
    short. *)

val closed : 'a t -> bool

(** {1 Contention accounting}

    The queue counts its own traffic and blocking time under its lock, so
    the numbers are exact. The monotonic clock is read only when an
    operation actually blocks — an uncontended push or pop costs nothing
    beyond the mutex it already takes. *)

type stats = {
  pushes : int;  (** chunks successfully enqueued *)
  pops : int;  (** chunks successfully dequeued (own + stolen) *)
  steals : int;  (** pops satisfied from another shard's deque *)
  push_waits : int;  (** pushes that found the deque full and blocked *)
  pop_waits : int;  (** pops that found nothing runnable and blocked *)
  push_wait_s : float;  (** total producer blocking time, seconds *)
  pop_wait_s : float;  (** total consumer blocking time, seconds *)
  max_occupancy : int;  (** high-water mark of occupied slots, all shards *)
}

val stats : 'a t -> stats
(** A consistent snapshot, taken under the queue lock. *)
