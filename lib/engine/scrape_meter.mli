(** Scrape self-observability without breaking the quiet-scrape contract.

    Every serving surface promises that two consecutive [METRICS] scrapes
    with no traffic in between render byte-identical text. Naively
    publishing "how long did the last scrape take" breaks that — the
    measurement itself is new data every render. A meter therefore anchors
    publication to served traffic, the same way the pool's
    [busy_fraction] anchors its denominator to the last served job: the
    published [scrape.total] / [scrape.duration_seconds] series only move
    when the served-traffic marker has advanced since the last
    publication, so quiet re-scrapes republish the exact same values. *)

type t

val create : unit -> t

val note : t -> float -> unit
(** Record one completed render of [dur] seconds. Call after the
    exposition text is built. *)

val publish : t -> obs:Obs.t -> served:int -> unit
(** Publish [scrape.total] (renders completed before this one) and
    [scrape.duration_seconds] (their cumulative wall time) into [obs].
    The emitted values are latched: they advance only when [served] (any
    monotone traffic marker: requests answered, registry ticks) differs
    from its value at the last latch, so a quiet re-scrape re-emits the
    same numbers. Nothing is emitted until at least one render has been
    latched. Call before the render, from the scrape path. *)
