(** Multi-tenant synopsis registry: many named synopses behind one serving
    process, paged in and out under a global memory budget.

    A {!t} maps tenant names to synopsis files. A tenant is {e resident}
    when its synopsis is loaded into an {!Engine_core.t} of its own (private
    estimate cache, flight ring, drift window, metric registry, and — with a
    journal directory — a crash-safe feedback journal); otherwise it is
    {e paged out} and costs nothing but its registry entry. [USE]-ing a
    paged-out tenant loads it on demand; when the global budget would
    overflow, least-recently-used residents are evicted first. Eviction
    flushes the tenant's journal, drops its caches through the engine's
    epoch/invalidate path, and releases the synopsis — the checksummed v2
    file format makes the reload cheap and safe, and replaying the journal
    on page-in reproduces the learned HET/feedback state, so an
    evict/reload round trip is estimate-for-estimate identical to a tenant
    that was never evicted.

    {b Protocol surface.} A {!session} (one per client connection) carries
    the active tenant selected with [USE <tenant>]; {!extra} adds the
    registry verbs to the {!Serve} layer:

    {v
    USE <tenant>           ->  OK <tenant> <resident|loaded>
    LOAD <tenant> <path>   ->  OK <tenant> loaded <bytes>
    TENANTS                ->  OK <n> then one line per tenant:
                               <name> <resident <bytes>|paged-out>
    v}

    All other verbs route to the active tenant's engine; without one they
    answer [ERR malformed-query no tenant selected] (except [PING],
    [VERSION], [STATS] and [METRICS], which work tenant-less).

    {b Concurrency.} Every registry operation — including serving an
    estimate through a session — runs under one internal mutex, so a [USE]
    racing an eviction can never observe a half-released engine. The
    registry is the many-documents axis; {!Pool} remains the many-cores
    axis for a single hot synopsis.

    {b Metrics.} {!metrics_text} merges every resident tenant's registry
    with a [tenant="<name>"] label on each series ({!Obs.merged_labeled})
    plus registry-level [registry.*] series, rendered sorted so quiet
    scrapes are byte-identical across repeats. *)

type t

val create :
  ?memory_budget:int ->
  ?het_budget:int ->
  ?qerror_threshold:float ->
  ?cache_capacity:int ->
  ?telemetry:bool ->
  ?drift_p90_threshold:float ->
  ?journal_dir:string ->
  ?journal_fsync:Journal.fsync ->
  ?audit_rate:float ->
  ?audit_seed:int ->
  ?audit_feedback:bool ->
  unit ->
  t
(** [memory_budget] bounds the sum of resident synopses'
    {!Core.Synopsis.size_in_bytes}; absent means unlimited (nothing is ever
    evicted). [het_budget] is applied per tenant at page-in
    ({!Core.Het.set_budget}), bounding what each tenant's feedback loop may
    learn. [journal_dir] gives every tenant a crash-safe feedback journal
    at [<dir>/<tenant>.wal] (recovered and replayed at page-in, appended to
    before each FEEDBACK ack, flushed at eviction) under [journal_fsync]
    (default [`Always]). [audit_rate] (default 0.0, within [0, 1]) arms a
    shadow {!Auditor} at page-in for every tenant whose manifest line
    declared a [doc=] source document (seeded by [audit_seed]; with
    [audit_feedback] the audited ground truth also drives the tenant's
    q-error-gated HET refinement); tenants without a document are never
    audited, and eviction shuts the tenant's auditor down. The remaining
    knobs are per-tenant {!Engine_core.create} parameters.
    @raise Invalid_argument when [memory_budget]/[het_budget] < 1 or
    [audit_rate] is outside [0, 1]. *)

val register :
  ?doc:string -> t -> name:string -> path:string -> (unit, Core.Error.t) result
(** Add a tenant without loading it. Names are limited to
    [A-Za-z0-9_.-] (they travel in protocol lines and journal file names);
    re-registering an existing name is an error. [doc] is the tenant's
    source XML document — required for shadow auditing to arm at
    page-in. *)

val load_manifest : t -> string -> (int, Core.Error.t) result
(** Register every tenant in a manifest file — one [<name> <path>] pair
    per line, with an optional trailing [doc=<path>] field naming the
    tenant's source document (arming shadow auditing when the registry has
    an [audit_rate]); [#] comments and blank lines ignored, relative paths
    (synopsis and document alike) resolved against the manifest's
    directory. Returns the number of tenants registered. Nothing is
    loaded; tenants page in on first [USE]. *)

val use : t -> string -> ([ `Resident | `Loaded ], Core.Error.t) result
(** Make the tenant resident (paging it in if needed, evicting LRU
    residents if the budget requires) and mark it most recently used.
    [`Resident] means it already was; [`Loaded] means this call paged it
    in. *)

val evict : t -> string -> bool
(** Page the tenant out now (flush + close its journal, invalidate its
    engine, release the synopsis). [false] when it was not resident.
    Mostly a test hook — serving evicts through the budget. *)

val tenants : t -> (string * int option) list
(** Every registered tenant, sorted by name, with its resident synopsis
    size ([None] = paged out). *)

val registered_count : t -> int
val resident_count : t -> int

val resident_bytes : t -> int
(** Sum of resident synopses' sizes — the quantity the budget bounds. *)

val memory_budget : t -> int option
val evictions : t -> int
val page_ins : t -> int

val journal_replayed : t -> int
(** Journal entries replayed through feedback across all page-ins. *)

val engine : t -> string -> Engine_core.t option
(** The tenant's live engine when resident. Test hook: does not touch LRU
    order. *)

val metrics_text : t -> string
(** Prometheus exposition of every resident tenant's registry (each series
    labeled [tenant="<name>"]) merged with the registry-level series:
    [registry.tenants.registered]/[.resident] and [registry.bytes.resident]/
    [.budget] gauges ([budget] reads 0 when unlimited), and the
    [registry.evictions]/[registry.page_ins]/[registry.journal.replayed]
    counters. Deterministic: series sorted by key, idempotent publishes. *)

val stats_json : t -> Obs.Json.t
(** One object: the gauge/counter values above plus a ["tenants"] object
    mapping each name to its resident size or [null]. *)

val close : t -> unit
(** Evict every resident tenant (flushing all journals). Idempotent. *)

(** {1 Sessions} *)

type session
(** One client's view of the registry: the active tenant plus the serve
    vtable that routes to it. Sessions are cheap; the TCP server creates
    one per connection. *)

val session : t -> session

val active : session -> string option

val server : session -> Serve.server
(** Routes estimate/batch/feedback/explain/recent/drift/profile to the
    active tenant (paging it back in if it was evicted since the [USE]),
    answering [ERR malformed-query] without one. [stats_json] reports the
    active tenant's stats nested with the registry's; [metrics_text] is
    always the registry-wide tenant-labeled scrape. [profile] stamps the
    reply's [tenant=] field; flight records carry the tenant name. *)

val extra : session -> string -> string -> string option
(** The [USE]/[LOAD]/[TENANTS] verb handler to pass as [?extra] to
    {!Serve.handle_request}/{!Serve.run}. *)
