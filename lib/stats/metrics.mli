(** Error metrics from the paper's Section 6.3.

    Given (estimate, actual) pairs over a workload:
    - RMSE: sqrt(mean of squared errors) — average error per query;
    - NRMSE: RMSE divided by the mean actual result size — error per unit of
      accurate result (adopted from Zhang et al., VLDB 2005);
    - R² (coefficient of determination) and OPD (order-preserving degree) —
      computed but mostly reported as sanity values, as in the paper;
    - q-error: [max((est+1)/(act+1), (act+1)/(est+1))] — the field-standard
      multiplicative error, with +1 smoothing so empty results stay finite;
      reported as median / p90 / max over the workload. *)

type summary = {
  count : int;
  rmse : float;
  nrmse : float;
      (** RMSE / mean actual; infinite when the mean actual is zero or
          negative (degenerate workloads) *)
  r_squared : float;
  opd : float;
      (** fraction of strictly-ordered actual pairs whose estimates preserve
          the order (ties in estimates count as preserved halfway); exact up
          to 2000 queries, estimated from 200k deterministically sampled
          pairs above that so large workloads stay O(n log n) *)
  mean_actual : float;
  max_abs_error : float;
  q_error_median : float;
  q_error_p90 : float;
  q_error_max : float;
}

val summarize : (float * float) list -> summary
(** [(estimate, actual)] pairs. @raise Invalid_argument on an empty list. *)

val q_error : float -> float -> float
(** [q_error est act] with +1 smoothing; inputs are clamped at zero. *)

val rmse : (float * float) list -> float
val nrmse : (float * float) list -> float

val pp : Format.formatter -> summary -> unit
val pp_row : Format.formatter -> summary -> unit
(** Compact "RMSE x / NRMSE y%" rendering used by the bench tables. *)
