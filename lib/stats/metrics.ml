type summary = {
  count : int;
  rmse : float;
  nrmse : float;
  r_squared : float;
  opd : float;
  mean_actual : float;
  max_abs_error : float;
  q_error_median : float;
  q_error_p90 : float;
  q_error_max : float;
}

(* q-error with the field-standard +1 smoothing so zero estimates / actuals
   stay finite: max((e+1)/(a+1), (a+1)/(e+1)). Negative inputs are clamped
   to zero (cardinalities cannot be negative; clamping keeps the metric
   defined on noisy estimators). *)
let q_error e a =
  let e = Float.max 0.0 e +. 1.0 and a = Float.max 0.0 a +. 1.0 in
  Float.max (e /. a) (a /. e)

(* kth smallest (0-based) via sorting; workloads are small enough. *)
let percentile_of_sorted arr p =
  let n = Array.length arr in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    arr.(Int.max 0 (Int.min (n - 1) rank))
  end

(* Above this many pairs OPD samples ordered pairs instead of enumerating
   all O(n²) of them, so summarize stays usable on multi-thousand-query
   workloads (compare --count 5000). *)
let opd_exact_cutoff = 2000
let opd_samples = 200_000

let summarize pairs =
  let n = List.length pairs in
  if n = 0 then invalid_arg "Metrics.summarize: empty workload";
  let nf = float_of_int n in
  let sum_sq_err = ref 0.0 and sum_actual = ref 0.0 and max_err = ref 0.0 in
  List.iter
    (fun (e, a) ->
      let d = e -. a in
      sum_sq_err := !sum_sq_err +. (d *. d);
      sum_actual := !sum_actual +. a;
      if Float.abs d > !max_err then max_err := Float.abs d)
    pairs;
  let mean_actual = !sum_actual /. nf in
  let rmse = sqrt (!sum_sq_err /. nf) in
  (* NRMSE is only meaningful against a positive mean result size; a zero or
     negative mean (degenerate workloads) reports infinity rather than a
     zero division or a sign-flipped ratio. *)
  let nrmse = if mean_actual <= 0.0 then Float.infinity else rmse /. mean_actual in
  let ss_tot =
    List.fold_left
      (fun acc (_, a) -> acc +. ((a -. mean_actual) *. (a -. mean_actual)))
      0.0 pairs
  in
  let r_squared =
    if ss_tot = 0.0 then if !sum_sq_err = 0.0 then 1.0 else 0.0
    else 1.0 -. (!sum_sq_err /. ss_tot)
  in
  let arr = Array.of_list pairs in
  let ordered = ref 0 and preserved = ref 0.0 in
  let score (ei, ai) (ej, aj) =
    if ai < aj then begin
      incr ordered;
      if ei < ej then preserved := !preserved +. 1.0
      else if ei = ej then preserved := !preserved +. 0.5
    end
    else if aj < ai then begin
      incr ordered;
      if ej < ei then preserved := !preserved +. 1.0
      else if ej = ei then preserved := !preserved +. 0.5
    end
  in
  if n <= opd_exact_cutoff then
    Array.iteri
      (fun i pi ->
        for j = i + 1 to n - 1 do
          score pi arr.(j)
        done)
      arr
  else begin
    (* Deterministic LCG pair sampling: same workload, same answer. *)
    let state = ref 0x9E3779B97F4A7C1 in
    let rand_below bound =
      state := (!state * 1442695040888963) + 40692;
      (!state lsr 33) mod bound
    in
    for _ = 1 to opd_samples do
      let i = rand_below n and j = rand_below n in
      if i <> j then score arr.(i) arr.(j)
    done
  end;
  let opd = if !ordered = 0 then 1.0 else !preserved /. float_of_int !ordered in
  let q_errors = Array.map (fun (e, a) -> q_error e a) arr in
  Array.sort Float.compare q_errors;
  { count = n; rmse; nrmse; r_squared; opd; mean_actual; max_abs_error = !max_err;
    q_error_median = percentile_of_sorted q_errors 0.5;
    q_error_p90 = percentile_of_sorted q_errors 0.9;
    q_error_max = q_errors.(n - 1) }

let rmse pairs = (summarize pairs).rmse
let nrmse pairs = (summarize pairs).nrmse

let pp ppf s =
  Format.fprintf ppf
    "n=%d RMSE=%.4g NRMSE=%.2f%% R2=%.4f OPD=%.4f q50=%.2f q90=%.2f qmax=%.3g \
     mean|a|=%.4g maxerr=%.4g"
    s.count s.rmse (100.0 *. s.nrmse) s.r_squared s.opd s.q_error_median
    s.q_error_p90 s.q_error_max s.mean_actual s.max_abs_error

let pp_row ppf s =
  Format.fprintf ppf "%10.2f %9.2f%%" s.rmse (100.0 *. s.nrmse)
