(** Value synopsis: per-(context label, target) statistics for estimating
    value-predicate selectivities — the paper's future-work layer, built in
    the style of the value-histogram work it cites (Polyzotis & Garofalakis,
    VLDB 2002: structure synopsis x value distributions).

    For every (parent label, child label) pair the synopsis keeps the text
    distribution of those children, and for every (label, attribute) pair
    the attribute's value distribution:
    - an equi-depth histogram over the values that parse as numbers;
    - the top-k most frequent strings exactly (end-biased histogram), with
      the residual modelled as uniform over the remaining distinct values;
    - presence counts, so "some child satisfies it" folds in both how many
      parents have such a child at all and how many they have.

    The estimator multiplies these selectivities into the match
    probabilities exactly where structural predicate selectivities go. *)

type t

val build : ?buckets:int -> ?topk:int -> ?sample:int -> Nok.Storage.t -> t
(** Requires a storage built with [~with_values:true].
    [buckets] (default 32) histogram buckets; [topk] (default 16) frequent
    strings kept exactly; [sample] (default 8) example values retained for
    workload generation. @raise Invalid_argument without values. *)

val selectivity : t -> context:Xml.Label.t -> Xpath.Ast.value_predicate -> float
(** P(a node labeled [context] satisfies the predicate). Pairs never seen in
    the document have probability 0. *)

val sample_values :
  t -> context:Xml.Label.t -> Xpath.Ast.value_target -> string list
(** A few example values actually occurring under the context (for workload
    generators). *)

val targets_of : t -> context:Xml.Label.t -> Xpath.Ast.value_target list
(** Every target with statistics under the context label. *)

val entry_count : t -> int

val size_in_bytes : t -> int
(** 8 bytes per histogram boundary and counter, plus the retained frequent
    strings. *)

val to_string : t -> string
(** Stable textual dump. Label ids appear as names, so the dump is portable
    across label tables. *)

val of_string : ?table:Xml.Label.table -> string -> t
(** @raise Invalid_argument on a malformed dump. *)

val of_string_result : ?table:Xml.Label.table -> string -> (t, Error.t) result
(** Like {!of_string}; a malformed dump is a [Corrupt_synopsis] error whose
    [position] is the 1-based line number. Non-finite histogram boundaries
    and negative counts are rejected on load, and {!selectivity} clamps its
    result into [0, 1], so a loaded synopsis can never produce a NaN. *)
