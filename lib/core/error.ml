type kind =
  | Malformed_xml
  | Malformed_query
  | Corrupt_synopsis
  | Limit_exceeded
  | Missing_file
  | Io_error
  | Internal
  | Timeout
  | Overloaded

type t = {
  kind : kind;
  position : int option;
  section : string option;
  message : string;
}

exception Xseed of t

let make ?position ?section kind message = { kind; position; section; message }

let raisef ?position ?section kind fmt =
  Format.kasprintf
    (fun message -> raise (Xseed (make ?position ?section kind message)))
    fmt

let kind_name = function
  | Malformed_xml -> "malformed-xml"
  | Malformed_query -> "malformed-query"
  | Corrupt_synopsis -> "corrupt-synopsis"
  | Limit_exceeded -> "limit-exceeded"
  | Missing_file -> "missing-file"
  | Io_error -> "io-error"
  | Internal -> "internal"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"

(* sysexits.h: EX_DATAERR 65, EX_NOINPUT 66, EX_SOFTWARE 70, EX_IOERR 74,
   EX_TEMPFAIL 75 (the two transient serving failures: a request deadline
   expired, or admission control shed the request under load). EX_USAGE 64
   is assigned by the CLI driver for command-line errors. *)
let exit_code t =
  match t.kind with
  | Malformed_xml | Malformed_query | Corrupt_synopsis | Limit_exceeded -> 65
  | Missing_file -> 66
  | Io_error -> 74
  | Internal -> 70
  | Timeout | Overloaded -> 75

let kind t = t.kind
let position t = t.position
let section t = t.section
let message t = t.message

let pp ppf t =
  let describe = function
    | Malformed_xml -> "malformed XML"
    | Malformed_query -> "malformed query"
    | Corrupt_synopsis -> "corrupt synopsis"
    | Limit_exceeded -> "resource limit exceeded"
    | Missing_file -> "missing file"
    | Io_error -> "I/O error"
    | Internal -> "internal error"
    | Timeout -> "deadline exceeded"
    | Overloaded -> "overloaded"
  in
  Format.fprintf ppf "%s" (describe t.kind);
  (match (t.section, t.position) with
   | Some s, Some p -> Format.fprintf ppf " (%s section, line %d)" s p
   | Some s, None -> Format.fprintf ppf " (%s section)" s
   | None, Some p -> Format.fprintf ppf " (at byte %d)" p
   | None, None -> ());
  Format.fprintf ppf ": %s" t.message

let to_string t = Format.asprintf "%a" pp t

let to_json t =
  let open Obs.Json in
  Obj
    [ ("kind", String (kind_name t.kind));
      ("position", match t.position with None -> Null | Some p -> Int p);
      ("section", match t.section with None -> Null | Some s -> String s);
      ("message", String t.message) ]

let of_exn = function
  | Xseed t -> Some t
  | Xml.Sax.Malformed { position; message } ->
    Some (make ~position Malformed_xml message)
  | Xml.Sax.Limit { position; message } ->
    Some (make ~position Limit_exceeded message)
  | Xpath.Parser.Error { position; message } ->
    Some (make ~position Malformed_query message)
  | Sys_error message -> Some (make Io_error message)
  | End_of_file -> Some (make Io_error "unexpected end of file")
  | Invalid_argument message | Failure message -> Some (make Internal message)
  | _ -> None

let guard f =
  match f () with
  | v -> Ok v
  | exception e -> (match of_exn e with Some t -> Error t | None -> raise e)
