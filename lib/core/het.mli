(** The hyper-edge table (paper Section 5): exact statistics for the places
    the kernel's independence assumptions hurt most.

    Two kinds of entries, both keyed by a {!Path_hash}:
    - {b simple}: the actual cardinality of a rooted simple path, plus the
      actual backward selectivity of its last step — consulted by the
      traveler's EST function;
    - {b branching}: the correlated backward selectivity of a pattern
      [p\[q1\]..\[qk\]/r] — consulted by the matcher in place of the
      independence approximation.

    Mirroring the paper's management scheme, the full table (ordered by
    estimation error, the "secondary storage" copy) is always retained;
    {!set_budget} chooses the top-k entries that fit the in-memory budget
    and only those answer lookups. *)

type t

val create : unit -> t

val add_simple : t -> hash:int -> card:int -> bsel:float option -> error:float -> unit
(** Record a simple-path entry. A later call with the same hash replaces the
    earlier one. [error] ranks the entry for budget selection. *)

val add_branching : t -> hash:int -> bsel:float -> error:float -> unit

val set_budget : t -> bytes:int -> unit
(** Keep the largest-error entries whose in-memory footprint fits [bytes];
    the rest stay on the "secondary" list and stop answering lookups. *)

val unlimited_budget : t -> unit
(** Activate every entry. This is the state after construction. *)

val lookup_simple : t -> int -> (int * float option) option
(** [(actual cardinality, actual bsel)] for an active simple entry. *)

val lookup_branching : t -> int -> float option

val record_feedback : t -> hash:int -> card:int -> ?bsel:float -> error:float -> unit -> unit
(** Query-feedback insertion (paper Figure 1): same as {!add_simple} but the
    entry is activated immediately, evicting the currently least useful
    active entry if a budget is set and full. *)

val record_branching_feedback : t -> hash:int -> bsel:float -> error:float -> unit
(** {!add_branching} counted as optimizer feedback rather than
    precomputation. *)

(** {1 Usage counters}

    Monotonic over the table's lifetime; misses are lookups minus hits. *)

type counters = {
  simple_lookups : int;
  simple_hits : int;
  branching_lookups : int;
  branching_hits : int;
  feedback_inserts : int;
}

val counters : t -> counters

val diff_counters : before:counters -> after:counters -> counters
(** Per-query usage: snapshot before and after, diff. *)

val publish_counters : ?obs:Obs.t -> t -> unit
(** Add the current totals to [het.*] counters of an Obs context. *)

val active_count : t -> int
val total_count : t -> int

val size_in_bytes : t -> int
(** Footprint of the {e active} entries: 16 bytes per simple entry (4 key +
    8 cardinality + 4 bsel) and 8 per branching entry (4 key + 4 bsel). *)

val simple_entry_bytes : int
val branching_entry_bytes : int

val to_string : t -> string
(** Stable textual dump of all entries (persistence). *)

val of_string : string -> t
(** @raise Invalid_argument on a malformed dump. *)

val of_string_result : string -> (t, Error.t) result
(** Like {!of_string}; a malformed dump is a [Corrupt_synopsis] error whose
    [position] is the 1-based line number. Non-finite statistics are
    rejected and selectivities are clamped into [0, 1], so a loaded table
    can never inject a NaN into an estimate. *)

val pp : Format.formatter -> t -> unit
