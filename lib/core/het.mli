(** The hyper-edge table (paper Section 5): exact statistics for the places
    the kernel's independence assumptions hurt most.

    Two kinds of entries, both keyed by a {!Path_hash}:
    - {b simple}: the actual cardinality of a rooted simple path, plus the
      actual backward selectivity of its last step — consulted by the
      traveler's EST function;
    - {b branching}: the correlated backward selectivity of a pattern
      [p\[q1\]..\[qk\]/r] — consulted by the matcher in place of the
      independence approximation.

    Hashes are 32-bit, so distinct paths can collide. Every entry therefore
    also stores the canonical spelling of its path ({!Path_hash.key_of_labels}
    / {!Path_hash.branching_key}); colliding entries coexist in a per-hash
    bucket, insertion is order-insensitive (same-path inserts replace, as
    before), and a lookup that supplies its path never reads another path's
    statistics. Legacy entries loaded from v1 dumps carry no path and keep
    the old hash-only matching.

    Mirroring the paper's management scheme, the full table (ordered by
    estimation error, the "secondary storage" copy) is always retained;
    {!set_budget} chooses the top-k entries that fit the in-memory budget
    and only those answer lookups. *)

type t

val create : unit -> t

val add_simple :
  ?path:string -> t -> hash:int -> card:int -> bsel:float option -> error:float -> unit
(** Record a simple-path entry. A later call with the same hash {e and the
    same path} replaces the earlier one; a colliding insert (same hash,
    different path) keeps both. [error] ranks the entry for budget
    selection. *)

val add_branching : ?path:string -> t -> hash:int -> bsel:float -> error:float -> unit

val set_budget : t -> bytes:int -> unit
(** Keep the largest-error entries whose in-memory footprint fits [bytes];
    the rest stay on the "secondary" list and stop answering lookups. *)

val unlimited_budget : t -> unit
(** Activate every entry. This is the state after construction. *)

val lookup_simple : t -> ?path:string -> int -> (int * float option) option
(** [(actual cardinality, actual bsel)] for an active simple entry. With
    [path], only the entry recorded under that canonical path (or a legacy
    path-less entry) answers; a hash collision is counted and misses. *)

val lookup_branching : t -> ?path:string -> int -> float option

val record_feedback :
  t -> hash:int -> ?path:string -> card:int -> ?bsel:float -> error:float -> unit -> unit
(** Query-feedback insertion (paper Figure 1): same as {!add_simple} but the
    entry is activated immediately, evicting the currently least useful
    active entry if a budget is set and full. *)

val record_branching_feedback :
  ?path:string -> t -> hash:int -> bsel:float -> error:float -> unit
(** {!add_branching} counted as optimizer feedback rather than
    precomputation. *)

(** {1 Usage counters}

    Monotonic over the table's lifetime; misses are lookups minus hits. *)

type counters = {
  simple_lookups : int;
  simple_hits : int;
  branching_lookups : int;
  branching_hits : int;
  feedback_inserts : int;
  collisions : int;
      (** lookups that touched a bucket holding more than one path, or
          whose supplied path matched no binding under its hash *)
}

val counters : t -> counters

val diff_counters : before:counters -> after:counters -> counters
(** Per-query usage: snapshot before and after, diff. *)

val publish_counters : ?obs:Obs.t -> t -> unit
(** Add the current totals to [het.*] counters of an Obs context. *)

val active_count : t -> int
val total_count : t -> int

val size_in_bytes : t -> int
(** Footprint of the {e active} entries: 16 bytes per simple entry (4 key +
    8 cardinality + 4 bsel) and 8 per branching entry (4 key + 4 bsel).
    Canonical paths live with the "secondary storage" copy and are not
    charged against the in-memory budget. *)

val simple_entry_bytes : int
val branching_entry_bytes : int

val to_string : t -> string
(** Stable textual dump of all entries (persistence), format ["xseed-het
    v2"]: each entry line ends with its canonical path ([-] when absent). *)

val of_string : string -> t
(** @raise Invalid_argument on a malformed dump. *)

val of_string_result : string -> (t, Error.t) result
(** Like {!of_string}; reads both v1 (path-less) and v2 dumps. A malformed
    dump is a [Corrupt_synopsis] error whose [position] is the 1-based line
    number. Non-finite statistics are rejected and selectivities are
    clamped into [0, 1], so a loaded table can never inject a NaN into an
    estimate. *)

val pp : Format.formatter -> t -> unit
