(** The synopsis traveler (paper Algorithm 2).

    Walks the kernel depth-first, maintaining the rooted synopsis path, its
    recursion level (via {!Counter_stacks}) and its {!Path_hash}, and emits
    the expanded path tree (EPT) as a stream of open/close events annotated
    with the estimated cardinality, forward selectivity and backward
    selectivity of each path — the quantities of Definition 5.

    Cycles in the kernel terminate because an edge only has counts for the
    recursion levels that exist in the data (Observation 1); additionally a
    vertex whose estimated cardinality is at most [card_threshold] is not
    opened, the paper's heuristic for keeping the EPT small on highly
    recursive data (Section 6.4 uses 20 for Treebank). *)

type open_info = {
  label : Xml.Label.t;
  dewey : Xml.Dewey.t;
  card : float;
  fsel : float;
  bsel : float;
}

type event =
  | Open of open_info
  | Close of { label : Xml.Label.t; dewey : Xml.Dewey.t }
  | Eos

type t

type stats = {
  events : int;  (** open + close events emitted so far *)
  opened : int;  (** EPT nodes opened (the EPT's size) *)
  pruned : int;  (** branches cut by the cardinality threshold / max depth *)
  max_recursion_level : int;  (** highest recursion level entered *)
  max_depth_seen : int;  (** deepest rooted path opened *)
}

val create :
  ?card_threshold:float ->
  ?recursion_aware:bool ->
  ?max_depth:int ->
  ?het:Het.t ->
  ?obs:Obs.t ->
  Kernel.t ->
  t
(** [card_threshold] defaults to 0.5: estimated-cardinality-zero branches
    are never expanded but everything estimated at one node or more is.
    When [het] is given, simple-path entries override the estimated
    cardinality and backward selectivity (Section 5's modified EST).

    When [obs] is given, the traveler publishes [traveler.events],
    [traveler.opened], [traveler.pruned], [traveler.max_recursion_level]
    and [traveler.max_depth] once the walk finishes; {!stats} exposes the
    same quantities per instance at any point.

    [recursion_aware] (default true) is the ablation switch: when false the
    traveler always reads edge statistics at level 0 (a collapsed kernel's
    totals), losing Observation 1's termination bound — [max_depth]
    (default 60) and the cardinality threshold then bound the walk. *)

val next : t -> event
(** Returns [Eos] forever once the traversal is finished. *)

val iter : t -> f:(event -> unit) -> unit
(** Drain the remaining events (excluding the final [Eos]). *)

val events_generated : t -> int

val stats : t -> stats
(** Counters so far (complete once {!next} has returned [Eos]). *)

val ept_to_xml : ?card_threshold:float -> ?het:Het.t -> Kernel.t -> string
(** Render the EPT as the XML document shown in the paper's Section 4. *)
