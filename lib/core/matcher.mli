(** The synopsis matcher (paper Algorithm 3).

    Materializes the traveler's EPT event stream and matches the query tree
    against it. Where the paper's pseudo-code buffers candidate events per
    query-tree node and flushes [card × aggregated-bsel] on total matches,
    this implementation computes the same quantities compositionally:

    - bottom-up, for every EPT node and query-tree node [q], the probability
      that the pattern below [q] is embedded at/below the EPT node — each
      step weighted by the event's backward selectivity exactly as
      AGGREGATED-BSEL multiplies predicate-event bsels;
    - top-down, the probability that an EPT node is a valid image of each
      result-path node given its ancestors;
    - the estimate is the sum of [card × P(valid image of the result node)].

    For linear paths with predicates this reduces to the paper's
    [|q| × absel] formula. Where several EPT branches can satisfy the same
    predicate the paper's plain product over matched events would shrink
    with extra evidence; we combine alternatives with noisy-or instead
    (documented deviation, see DESIGN.md).

    When a {!Het} is available, correlated backward selectivities override
    the independence approximation for [p\[q1\]..\[qk\]/r] patterns, as in
    Section 5's modified matcher. *)

exception Ept_too_large of int

type ept
(** Immutable once materialized: per-estimate accumulators live in scratch
    arrays owned by each {!estimate} call, not on the tree, so one EPT may
    be shared across domains and serve concurrent estimates without
    synchronization (the serving pool relies on this). *)

val materialize : ?max_nodes:int -> ?obs:Obs.t -> Traveler.t -> ept
(** Drain a fresh traveler into an EPT tree. [max_nodes] (default 2_000_000)
    guards against runaway expansion of highly recursive kernels when the
    card threshold is set too low. When [obs] is given, adds the node count
    to [matcher.ept_nodes]. @raise Ept_too_large when exceeded. *)

val node_count : ept -> int

type synthetic
(** A hand-built EPT node, for estimators that expand a different synopsis
    (e.g. the TreeSketch baseline) but reuse this matcher. *)

val synthetic_node :
  label:Xml.Label.t -> card:float -> bsel:float -> children:synthetic list -> synthetic

val of_synthetic : synthetic -> ept

type match_stats = {
  mutable ept_nodes : int;  (** EPT nodes visited by the bottom-up pass *)
  mutable frontier : int;  (** live candidate vectors (internal) *)
  mutable frontier_peak : int;
      (** peak number of candidate match vectors held at once — the
          analogue of Algorithm 3's buffered candidate-event sets *)
  mutable frontier_sum : int;
      (** sum of the running frontier sampled at every EPT node, so
          [frontier_sum / ept_nodes] is the mean live-frontier size over
          the traversal (the distribution the peak alone cannot show) *)
  mutable match_steps : int;
      (** (EPT node, query-tree node) combinations examined, both passes *)
  mutable het_joint_overrides : int;
      (** predicate groups whose correlated bsel came from a joint HET
          pattern, replacing the sibling-independence product *)
  mutable het_single_overrides : int;
      (** single predicates answered by a HET branching entry *)
  mutable independence_preds : int;
      (** predicate factors computed under the independence assumption
          (noisy-or over EPT alternatives) *)
}

val estimate :
  ?het:Het.t ->
  ?values:Value_synopsis.t ->
  ?obs:Obs.t ->
  table:Xml.Label.table ->
  ept ->
  Xpath.Query_tree.t ->
  float
(** Estimated cardinality of the query against the EPT. When [values] is
    given, value-predicate selectivities multiply into the match
    probabilities; without it value predicates are ignored (factor 1).
    When [obs] is given, publishes the [matcher.*] counters of
    {!match_stats}. @raise Invalid_argument if the query has more than 62
    steps. *)

val estimate_with_stats :
  ?het:Het.t ->
  ?values:Value_synopsis.t ->
  table:Xml.Label.table ->
  ept ->
  Xpath.Query_tree.t ->
  float * match_stats
(** {!estimate} returning the per-query match statistics (used by
    {!Explain}). *)

val publish_stats : ?obs:Obs.t -> match_stats -> unit
(** Add the statistics to an Obs context's [matcher.*] metrics (what
    {!estimate} does internally). *)
