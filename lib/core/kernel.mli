(** The XSEED kernel (paper Definition 4): an edge-labeled label-split graph.

    Vertices are interned element labels; each directed edge [(u, v)] carries
    a vector of [(parent_count, child_count)] pairs indexed by the recursion
    level of the rooted paths that cross the edge. The pair at level [i]
    records that [parent_count i] document nodes mapped to [u] have, in
    total, [child_count i] children mapped to [v] on paths of recursion
    level [i]. *)

type edge = private {
  src : Xml.Label.t;
  dst : Xml.Label.t;
  mutable p_cnt : int array;
  mutable c_cnt : int array;
  mutable levels : int;  (** pairs in use; arrays may be longer *)
}

type t

val create : ?table:Xml.Label.table -> unit -> t
val table : t -> Xml.Label.table

val root : t -> Xml.Label.t
(** @raise Invalid_argument on an empty kernel. *)

val set_root : t -> Xml.Label.t -> unit

val get_vertex : t -> Xml.Label.t -> unit
(** Ensure the vertex exists (paper's GET-VERTEX). *)

val get_edge : t -> Xml.Label.t -> Xml.Label.t -> edge
(** The edge from [src] to [dst], created zeroed if absent (GET-EDGE). *)

val find_edge : t -> Xml.Label.t -> Xml.Label.t -> edge option

val add_at_level : edge -> int -> parents:int -> children:int -> unit
(** Accumulate counts into the pair at a recursion level (may be negative
    when subtracting a deleted subtree; counts never go below zero). *)

val edge_counts : edge -> int -> int * int
(** [(parent_count, child_count)] at a level; [(0, 0)] beyond the vector. *)

val vertex_count : t -> int
val edge_count : t -> int

val out_edges : t -> Xml.Label.t -> edge list
(** Ordered by destination label id (deterministic traversal order). *)

val in_edges : t -> Xml.Label.t -> edge list

val total_children : t -> Xml.Label.t -> level:int -> int
(** The paper's S_v at a recursion level: the sum of child counts at that
    level over all in-edges of [v] — plus one for the kernel root at level 0,
    which has no in-edge but one document instance. *)

val has_vertex : t -> Xml.Label.t -> bool

val size_in_bytes : t -> int
(** Memory a compact C layout would need: 8 bytes per vertex plus, per edge,
    8 bytes of header and 8 bytes per recursion-level pair. This is the
    number compared against the paper's 25KB / 50KB budgets. *)

val prune_empty : t -> unit
(** Drop edges whose every pair is zero and unreachable zero-degree vertices
    (used after subtracting subtree statistics). *)

val copy : t -> t

val collapse_levels : t -> t
(** Ablation: a copy whose every edge has its per-recursion-level pairs
    summed into level 0 — i.e. XSEED with the paper's key novelty removed.
    A recursion-blind kernel loses Observation 1's termination bound, so
    traversing it relies entirely on the cardinality threshold, and
    recursive queries collapse (the `ablation` bench section quantifies
    this). *)

val to_string : t -> string
(** Stable textual serialization (label names, not ids). *)

val of_string : ?table:Xml.Label.table -> string -> t
(** @raise Invalid_argument on a malformed dump. *)

val of_string_result : ?table:Xml.Label.table -> string -> (t, Error.t) result
(** Like {!of_string}; a malformed dump is a [Corrupt_synopsis] error whose
    [position] is the 1-based line number. *)

val equal : t -> t -> bool
(** Same vertices, edges and counts (by label name). *)

val pp : Format.formatter -> t -> unit
