(** Incremental path hashing (the paper's [incHash]).

    HET keys are single integers: extending a rooted path by one label, or
    rendering a branching pattern like [p\[q\]/r], never re-hashes the whole
    path. Hashes are folded to 32 bits to mirror the paper's design (and its
    collision trade-off, which the test suite measures). *)

val empty : int
(** Hash of the empty path. *)

val extend : int -> Xml.Label.t -> int
(** [extend h label] is the hash of the path [h] followed by [label]. *)

val of_labels : Xml.Label.t list -> int
(** Fold {!extend} over a rooted label path. *)

val branching : parent:int -> predicates:Xml.Label.t list -> next:Xml.Label.t -> int
(** Key for the correlated-bsel pattern [p\[q1\]..\[qk\]/r]. [predicates] are
    sorted internally so [p\[q1\]\[q2\]/r] and [p\[q2\]\[q1\]/r] coincide. *)

(** {1 Canonical keys}

    Space-free textual spellings of what a hash covers. Stored alongside
    HET entries so a 32-bit collision is detected instead of silently
    merging two paths' statistics. *)

val key_of_labels : Xml.Label.t list -> string
(** ["l1/l2/.../lk"] over label ids. *)

val branching_key : parent:Xml.Label.t -> predicates:Xml.Label.t list -> next:Xml.Label.t -> string
(** ["p\[q1,..,qk\]/r"] over label ids, predicates sorted as {!branching}
    sorts them ([next = -1] spells a pattern with no next step). *)
