(** Per-query estimation reports: what the pipeline did and why.

    [run estimator query] executes the full estimation pipeline once —
    traveler over the kernel, matcher over the materialized EPT — with every
    stage instrumented, and returns a structured report: the estimate, a
    wall-clock breakdown per stage, EPT statistics (nodes emitted vs pruned
    by the cardinality threshold, recursion levels touched), matcher
    statistics (frontier peak, match steps), HET usage for {e this} query
    (lookups / hits / misses), and which estimation assumptions fired (HET
    overrides vs independence fallbacks).

    Surfaced on the command line as [xseed explain SYNOPSIS QUERY]. *)

type cache_status =
  | Hit  (** served from a serving layer's estimate cache *)
  | Miss  (** computed and inserted by a serving layer *)
  | Bypass  (** computed directly, no cache in the path (plain [run]) *)

val cache_status_name : cache_status -> string
(** Stable lowercase identifier (["hit"], ["miss"], ["bypass"]). *)

type report = {
  query : string;
  estimate : float;
  cache : cache_status;
      (** whether the serving layer's estimate cache answered; [Bypass]
          when no cache sits in front of the estimator *)
  feedback_rounds : int;
      (** feedback-driven HET refinements applied by the serving engine
          before this report; 0 on direct runs *)
  card_threshold : float;
  kernel_vertices : int;
  kernel_edges : int;
  synopsis_bytes : int;  (** kernel + active HET + value synopsis *)
  ept_nodes : int;
  traveler : Traveler.stats;
  matcher : Matcher.match_stats;
  het_active : int option;  (** active entries; [None] without a HET *)
  het_total : int option;
  het_usage : Het.counters option;  (** this query's lookups/hits/inserts *)
  ept_seconds : float;  (** traveler walk + EPT materialization *)
  match_seconds : float;  (** query compile + both matcher passes *)
  total_seconds : float;
  assumptions : string list;
      (** human-readable list of the estimation assumptions and overrides
          that fired for this query, in pipeline order *)
  degenerate_clamps : int;
      (** 1 if the raw estimate was NaN/inf/negative and got clamped *)
  unknown_labels : string list;
      (** name tests absent from the synopsis's label table (each matches
          nothing; a sign the query and synopsis disagree) *)
}

val run : ?obs:Obs.t -> Estimator.t -> Xpath.Ast.t -> report
(** Runs under an [explain] span when [obs] has a sink; pipeline counters
    are published into [obs] as usual. *)

val run_string : ?obs:Obs.t -> Estimator.t -> string -> report
(** Parse then {!run}. @raise Xpath.Parser.Error on a bad query. *)

val pp : Format.formatter -> report -> unit
(** Multi-line human-readable report. *)

val to_json : report -> Obs.Json.t
(** The report as a JSON object (stable field names; see README
    "Observability"). *)
