type target_key = Tchild of Xml.Label.t | Tattr of string

type dist = {
  parents : int;  (* context-labeled nodes in the document *)
  with_target : int;  (* of those, how many have >= 1 such child/attribute *)
  samples : int;  (* target instances *)
  numeric : int;  (* instances whose text parses as a number *)
  boundaries : float array;  (* equi-depth boundaries over numeric values *)
  frequent : (string * int) list;  (* top-k exact string counts *)
  distinct : int;
  examples : string list;
}

type t = {
  dists : (Xml.Label.t * target_key, dist) Hashtbl.t;
  buckets : int;
  table : Xml.Label.table;
}

(* Accumulator used during the single pass. *)
type acc = {
  mutable a_with_target : int;
  mutable values : string list;  (* all instances, reversed *)
  mutable a_samples : int;
}

let build ?(buckets = 32) ?(topk = 16) ?(sample = 8) (st : Nok.Storage.t) =
  if not (Nok.Storage.has_values st) then
    invalid_arg "Value_synopsis.build: storage built without ~with_values:true";
  let accs : (Xml.Label.t * target_key, acc) Hashtbl.t = Hashtbl.create 256 in
  let label_counts = Hashtbl.create 64 in
  let acc_of key =
    match Hashtbl.find_opt accs key with
    | Some a -> a
    | None ->
      let a = { a_with_target = 0; values = []; a_samples = 0 } in
      Hashtbl.add accs key a;
      a
  in
  let n = Nok.Storage.node_count st in
  for i = 0 to n - 1 do
    let context = st.labels.(i) in
    Hashtbl.replace label_counts context
      (1 + Option.value (Hashtbl.find_opt label_counts context) ~default:0);
    (* Children grouped per label so with_target counts each parent once. *)
    let seen = Hashtbl.create 4 in
    List.iter
      (fun j ->
        let key = (context, Tchild st.labels.(j)) in
        let a = acc_of key in
        if not (Hashtbl.mem seen st.labels.(j)) then begin
          Hashtbl.add seen st.labels.(j) ();
          a.a_with_target <- a.a_with_target + 1
        end;
        a.a_samples <- a.a_samples + 1;
        a.values <- String.trim (Nok.Storage.node_text st j) :: a.values)
      (Nok.Storage.children st i);
    List.iter
      (fun (name, v) ->
        let a = acc_of (context, Tattr name) in
        a.a_with_target <- a.a_with_target + 1;
        a.a_samples <- a.a_samples + 1;
        a.values <- String.trim v :: a.values)
      (if Array.length st.attributes = 0 then [] else st.attributes.(i))
  done;
  let dists = Hashtbl.create (Hashtbl.length accs) in
  Hashtbl.iter
    (fun ((context, _) as key) a ->
      let parents = Option.value (Hashtbl.find_opt label_counts context) ~default:0 in
      let counts = Hashtbl.create 64 in
      let numbers = ref [] in
      let numeric = ref 0 in
      List.iter
        (fun v ->
          Hashtbl.replace counts v
            (1 + Option.value (Hashtbl.find_opt counts v) ~default:0);
          match float_of_string_opt v with
          | Some x ->
            incr numeric;
            numbers := x :: !numbers
          | None -> ())
        a.values;
      let sorted_numbers = List.sort Float.compare !numbers in
      let num_arr = Array.of_list sorted_numbers in
      let boundaries =
        if Array.length num_arr = 0 then [||]
        else
          Array.init (buckets + 1) (fun b ->
              let idx =
                min (Array.length num_arr - 1) (b * Array.length num_arr / buckets)
              in
              if b = buckets then num_arr.(Array.length num_arr - 1)
              else num_arr.(idx))
      in
      let by_freq =
        Hashtbl.fold (fun v c l -> (v, c) :: l) counts []
        |> List.sort (fun (_, c1) (_, c2) -> Int.compare c2 c1)
      in
      let frequent = List.filteri (fun i _ -> i < topk) by_freq in
      let examples =
        List.filteri (fun i _ -> i < sample) (List.map fst by_freq)
      in
      Hashtbl.replace dists key
        { parents; with_target = a.a_with_target; samples = a.a_samples;
          numeric = !numeric; boundaries; frequent;
          distinct = Hashtbl.length counts; examples })
    accs;
  { dists; buckets; table = st.table }

let key_of_target t target =
  match target with
  | Xpath.Ast.Child_text name ->
    Option.map (fun l -> Tchild l) (Xml.Label.find_opt t.table name)
  | Xpath.Ast.Attribute name -> Some (Tattr name)

(* Fraction of numeric instances strictly below x, from the equi-depth
   histogram (linear interpolation within a bucket). *)
let fraction_below t d x =
  let b = d.boundaries in
  if Array.length b = 0 then 0.0
  else if x <= b.(0) then 0.0
  else if x >= b.(Array.length b - 1) then 1.0
  else begin
    let rec find i = if b.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    let lo = b.(i) and hi = b.(i + 1) in
    let within = if hi > lo then (x -. lo) /. (hi -. lo) else 0.5 in
    (float_of_int i +. within) /. float_of_int t.buckets
  end

(* P(one target instance satisfies cmp literal). *)
let instance_selectivity t d (cmp : Xpath.Ast.cmp) (lit : Xpath.Ast.literal) =
  let samples = float_of_int (max 1 d.samples) in
  match lit with
  | Xpath.Ast.Text s ->
    let eq =
      match List.assoc_opt s d.frequent with
      | Some c -> float_of_int c /. samples
      | None ->
        (* Residual mass spread uniformly over unlisted distinct values. *)
        let freq_mass = List.fold_left (fun acc (_, c) -> acc + c) 0 d.frequent in
        let residual = d.samples - freq_mass in
        let residual_distinct = d.distinct - List.length d.frequent in
        if residual <= 0 || residual_distinct <= 0 then 0.0
        else float_of_int residual /. float_of_int residual_distinct /. samples
    in
    (match cmp with
     | Xpath.Ast.Eq -> eq
     | Xpath.Ast.Ne -> 1.0 -. eq
     | Xpath.Ast.Lt | Xpath.Ast.Le | Xpath.Ast.Gt | Xpath.Ast.Ge -> 0.0)
  | Xpath.Ast.Number x ->
    let numeric_share = float_of_int d.numeric /. samples in
    let below = fraction_below t d x in
    let eq_numeric =
      (* Point selectivity: one distinct numeric value's share. *)
      if d.numeric = 0 then 0.0
      else 1.0 /. float_of_int (max 1 (min d.distinct d.numeric))
    in
    (match cmp with
     | Xpath.Ast.Eq -> numeric_share *. eq_numeric
     | Xpath.Ast.Ne -> 1.0 -. (numeric_share *. eq_numeric)
     | Xpath.Ast.Lt -> numeric_share *. below
     | Xpath.Ast.Le -> numeric_share *. Float.min 1.0 (below +. eq_numeric)
     | Xpath.Ast.Gt -> numeric_share *. (1.0 -. below -. eq_numeric) |> Float.max 0.0
     | Xpath.Ast.Ge -> numeric_share *. (1.0 -. below))

let find t ~context target =
  Option.bind (key_of_target t target) (fun key ->
      Hashtbl.find_opt t.dists (context, key))

(* Probabilities must stay in [0, 1] even when the distribution counts are
   inconsistent (a hand-edited or corrupt v1 dump can claim more frequent
   instances than samples); a stray value outside the unit interval turns
   into NaN under [( ** )] below. *)
let clamp01 x = if Float.is_nan x then 0.0 else Float.max 0.0 (Float.min 1.0 x)

let selectivity t ~context (vp : Xpath.Ast.value_predicate) =
  match find t ~context vp.target with
  | None -> 0.0  (* the pair never occurs in the document *)
  | Some d ->
    if d.parents = 0 then 0.0
    else begin
      let sel = clamp01 (instance_selectivity t d vp.cmp vp.literal) in
      (* P(>= 1 of the parent's instances satisfies): noisy-or across the
         average number of instances per parent that has any. *)
      let avg =
        float_of_int d.samples /. float_of_int (max 1 d.with_target)
      in
      let exists = 1.0 -. ((1.0 -. sel) ** avg) in
      clamp01 (float_of_int d.with_target /. float_of_int d.parents *. exists)
    end

let sample_values t ~context target =
  match find t ~context target with None -> [] | Some d -> d.examples

let targets_of t ~context =
  Hashtbl.fold
    (fun (ctx, key) _ acc ->
      if ctx = context then
        (match key with
         | Tchild l -> Xpath.Ast.Child_text (Xml.Label.name t.table l)
         | Tattr a -> Xpath.Ast.Attribute a)
        :: acc
      else acc)
    t.dists []

let entry_count t = Hashtbl.length t.dists

let size_in_bytes t =
  Hashtbl.fold
    (fun _ d acc ->
      acc + 32
      + (8 * Array.length d.boundaries)
      + List.fold_left (fun a (s, _) -> a + 8 + String.length s) 0 d.frequent)
    t.dists 0

(* ------------------------------------------------------------------ *)
(* Serialization. String values are hex-encoded so whitespace and newlines
   survive; labels are written as names so the dump is table-portable. *)

let hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let unhex s =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Value_synopsis: bad hex"
  in
  if String.length s mod 2 <> 0 then invalid_arg "Value_synopsis: bad hex";
  String.init (String.length s / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "xseed-values v1 %d\n" t.buckets);
  let rows =
    Hashtbl.fold
      (fun (context, key) d acc ->
        let target =
          match key with
          | Tchild l -> "c:" ^ Xml.Label.name t.table l
          | Tattr a -> "a:" ^ a
        in
        (Xml.Label.name t.table context, target, d) :: acc)
      t.dists []
    |> List.sort compare
  in
  List.iter
    (fun (context, target, d) ->
      Buffer.add_string buf
        (Printf.sprintf "dist %s %s %d %d %d %d %d\n" context target d.parents
           d.with_target d.samples d.numeric d.distinct);
      if Array.length d.boundaries > 0 then begin
        Buffer.add_string buf "bounds";
        Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %h" x)) d.boundaries;
        Buffer.add_char buf '\n'
      end;
      List.iter
        (fun (v, c) -> Buffer.add_string buf (Printf.sprintf "freq %s %d\n" (hex v) c))
        d.frequent;
      List.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "sample %s\n" (hex v)))
        d.examples)
    rows;
  Buffer.contents buf

let of_string_exn ?table s =
  let table = match table with Some t -> t | None -> Xml.Label.create_table () in
  let malformed_at i line =
    Error.raisef ~position:(i + 1) ~section:"values" Error.Corrupt_synopsis
      "bad values line: %s" (String.trim line)
  in
  let lines = String.split_on_char '\n' s in
  let buckets = ref 32 in
  (match lines with
   | first :: _ ->
     (match String.split_on_char ' ' first with
      | [ "xseed-values"; "v1"; b ] ->
        (match int_of_string_opt b with
         | Some b when b > 0 -> buckets := b
         | _ -> malformed_at 0 first)
      | _ ->
        Error.raisef ~position:1 ~section:"values" Error.Corrupt_synopsis
          "bad values header")
   | [] ->
     Error.raisef ~section:"values" Error.Corrupt_synopsis "empty values section");
  let dists = Hashtbl.create 64 in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (key, d, freq, samples) ->
      Hashtbl.replace dists key
        { d with frequent = List.rev freq; examples = List.rev samples };
      current := None
  in
  List.iteri
    (fun i line ->
      let malformed line = malformed_at i line in
      let unhex v = try unhex v with Invalid_argument _ -> malformed line in
      if i > 0 then
        match String.split_on_char ' ' (String.trim line) with
        | [ "" ] -> ()
        | [ "dist"; context; target; parents; with_target; samples; numeric;
            distinct ] ->
          flush ();
          let context = Xml.Label.intern table context in
          let key =
            if String.length target > 2 && String.sub target 0 2 = "c:" then
              Tchild (Xml.Label.intern table (String.sub target 2 (String.length target - 2)))
            else if String.length target > 2 && String.sub target 0 2 = "a:" then
              Tattr (String.sub target 2 (String.length target - 2))
            else malformed line
          in
          (match
             ( int_of_string_opt parents, int_of_string_opt with_target,
               int_of_string_opt samples, int_of_string_opt numeric,
               int_of_string_opt distinct )
           with
           | Some parents, Some with_target, Some samples, Some numeric, Some distinct ->
             current :=
               Some
                 ( (context, key),
                   { parents = max 0 parents; with_target = max 0 with_target;
                     samples = max 0 samples; numeric = max 0 numeric;
                     boundaries = [||]; frequent = []; distinct = max 0 distinct;
                     examples = [] },
                   [], [] )
           | _ -> malformed line)
        | "bounds" :: values ->
          (match !current with
           | Some (key, d, f, sm) ->
             let boundaries =
               Array.of_list
                 (List.map
                    (fun v ->
                      match float_of_string_opt v with
                      | Some x when Float.is_finite x -> x
                      | _ -> malformed line)
                    values)
             in
             current := Some (key, { d with boundaries }, f, sm)
           | None -> malformed line)
        | [ "freq"; v; c ] ->
          (match (!current, int_of_string_opt c) with
           | Some (key, d, f, sm), Some c when c >= 0 ->
             current := Some (key, d, (unhex v, c) :: f, sm)
           | _ -> malformed line)
        | [ "sample"; v ] ->
          (match !current with
           | Some (key, d, f, sm) -> current := Some (key, d, f, unhex v :: sm)
           | None -> malformed line)
        | [ "sample" ] ->
          (* hex("") is empty, and trimming ate the separator. *)
          (match !current with
           | Some (key, d, f, sm) -> current := Some (key, d, f, "" :: sm)
           | None -> malformed line)
        | _ -> malformed line)
    lines;
  flush ();
  { dists; buckets = !buckets; table }

let of_string_result ?table s = Error.guard (fun () -> of_string_exn ?table s)

let of_string ?table s =
  match of_string_result ?table s with
  | Ok t -> t
  | Error e -> invalid_arg ("Value_synopsis.of_string: " ^ Error.message e)
