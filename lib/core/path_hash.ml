let mask = 0xFFFFFFFF

let empty = 0x811C9DC5 land mask (* FNV offset basis *)

(* FNV-1a style step over small ints; labels are offset so label 0 is
   distinguishable from structural sentinels. *)
let step h v = (h lxor (v land mask)) * 0x01000193 land mask

let extend h label = step h (label + 16)

let of_labels labels = List.fold_left extend empty labels

let open_bracket = 1
let close_bracket = 2
let slash = 3

let branching ~parent ~predicates ~next =
  let h = extend empty parent in
  let h =
    List.fold_left
      (fun h q -> step (extend (step h open_bracket) q) close_bracket)
      h
      (List.sort Int.compare predicates)
  in
  extend (step h slash) next

(* Canonical textual keys: the un-hashed spelling of what a hash covers, so
   the HET can tell two colliding paths apart. Space-free by construction
   (label ids and '[,]/' only), so they survive the HET's space-separated
   dump format. *)

let key_of_labels labels = String.concat "/" (List.map string_of_int labels)

let branching_key ~parent ~predicates ~next =
  Printf.sprintf "%d[%s]/%d" parent
    (String.concat ","
       (List.map string_of_int (List.sort Int.compare predicates)))
    next
