type t = {
  kernel : Kernel.t;
  het : Het.t option;
  values : Value_synopsis.t option;
  card_threshold : float;
  max_ept_nodes : int;
  recursion_aware : bool;
  obs : Obs.t option;
}

let create ?(card_threshold = 0.5) ?(max_ept_nodes = 2_000_000)
    ?(recursion_aware = true) ?het ?values ?obs kernel =
  { kernel; het; values; card_threshold; max_ept_nodes; recursion_aware; obs }

let kernel t = t.kernel
let het t = t.het
let values t = t.values
let card_threshold t = t.card_threshold
let max_ept_nodes t = t.max_ept_nodes
let recursion_aware t = t.recursion_aware

let ept t =
  let traveler =
    Traveler.create ~card_threshold:t.card_threshold
      ~recursion_aware:t.recursion_aware ?het:t.het ?obs:t.obs t.kernel
  in
  Matcher.materialize ~max_nodes:t.max_ept_nodes ?obs:t.obs traveler

let estimate_on t ept path =
  Matcher.estimate ?het:t.het ?values:t.values ?obs:t.obs
    ~table:(Kernel.table t.kernel) ept
    (Xpath.Query_tree.of_path path)

let estimate t path = estimate_on t (ept t) path

let estimate_string t query = estimate t (Xpath.Parser.parse query)

(* A rooted simple path: child axes, name tests, no predicates. *)
let simple_labels table path =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | ({ axis = Xpath.Ast.Child; test = Xpath.Ast.Name n; predicates = [];
         value_predicates = [] }
       : Xpath.Ast.step)
      :: rest ->
      (match Xml.Label.find_opt table n with
       | Some l -> go (l :: acc) rest
       | None -> None)
    | _ :: _ -> None
  in
  go [] path

(* A path whose last step is .../p[q1]..[qk]/r with single-label child-axis
   predicates on p only: returns (pattern hash, predicate-free path). *)
let branching_pattern table path =
  let rec split prefix = function
    | [ penultimate; last ] -> Some (List.rev prefix, penultimate, last)
    | step :: rest -> split (step :: prefix) rest
    | [] -> None
  in
  match split [] path with
  | None -> None
  | Some (prefix, (p : Xpath.Ast.step), (r : Xpath.Ast.step)) ->
    if p.predicates = [] || r.predicates <> [] then None
    else
      let simple_pred = function
        | [ ({ axis = Xpath.Ast.Child; test = Xpath.Ast.Name n; predicates = [];
               value_predicates = [] }
             : Xpath.Ast.step) ] ->
          Xml.Label.find_opt table n
        | _ -> None
      in
      let pred_labels = List.map simple_pred p.predicates in
      if List.exists Option.is_none pred_labels then None
      else
        match (p.test, r.test) with
        | Xpath.Ast.Name pn, Xpath.Ast.Name rn ->
          (match (Xml.Label.find_opt table pn, Xml.Label.find_opt table rn) with
           | Some pl, Some rl ->
             let hash =
               Path_hash.branching ~parent:pl
                 ~predicates:(List.map Option.get pred_labels) ~next:rl
             in
             let stripped = prefix @ [ { p with predicates = [] }; r ] in
             Some (hash, stripped)
           | _ -> None)
        | _ -> None

let record_feedback t path ~actual =
  match t.het with
  | None -> ()
  | Some het ->
    let table = Kernel.table t.kernel in
    (match simple_labels table path with
     | Some labels ->
       let est = estimate t path in
       let error = Float.abs (est -. float_of_int actual) in
       Het.record_feedback het ~hash:(Path_hash.of_labels labels) ~card:actual ~error ()
     | None ->
       (match branching_pattern table path with
        | None -> ()
        | Some (hash, stripped) ->
          let est = estimate t path in
          let error = Float.abs (est -. float_of_int actual) in
          let denom = estimate t stripped in
          if denom > 0.0 then begin
            let bsel = Float.min 1.0 (float_of_int actual /. denom) in
            Het.record_branching_feedback het ~hash ~bsel ~error
          end))

let size_in_bytes t =
  Kernel.size_in_bytes t.kernel
  + (match t.het with None -> 0 | Some h -> Het.size_in_bytes h)
  + (match t.values with None -> 0 | Some v -> Value_synopsis.size_in_bytes v)
