type t = {
  kernel : Kernel.t;
  het : Het.t option;
  values : Value_synopsis.t option;
  card_threshold : float;
  max_ept_nodes : int;
  recursion_aware : bool;
  obs : Obs.t option;
}

let create ?(card_threshold = 0.5) ?(max_ept_nodes = 2_000_000)
    ?(recursion_aware = true) ?het ?values ?obs kernel =
  { kernel; het; values; card_threshold; max_ept_nodes; recursion_aware; obs }

let kernel t = t.kernel
let het t = t.het
let values t = t.values
let card_threshold t = t.card_threshold
let max_ept_nodes t = t.max_ept_nodes
let recursion_aware t = t.recursion_aware

let ept t =
  let traveler =
    Traveler.create ~card_threshold:t.card_threshold
      ~recursion_aware:t.recursion_aware ?het:t.het ?obs:t.obs t.kernel
  in
  Matcher.materialize ~max_nodes:t.max_ept_nodes ?obs:t.obs traveler

(* A corrupt-but-loadable synopsis (or a pathological query shape) can push
   the arithmetic into NaN/inf territory; an estimate is only useful to an
   optimizer as a finite non-negative number, so degenerate values are
   clamped and counted rather than propagated. *)
let clamp_estimate ?obs x =
  let value, clamped =
    if Float.is_nan x then (0.0, 1)
    else if x = Float.infinity then (Float.max_float, 1)
    else if x < 0.0 then (0.0, 1)
    else (x, 0)
  in
  if clamped > 0 then Obs.add_to ?obs "estimator.degenerate_clamps" 1;
  (value, clamped)

let raw_estimate_on t ept path =
  Matcher.estimate ?het:t.het ?values:t.values ?obs:t.obs
    ~table:(Kernel.table t.kernel) ept
    (Xpath.Query_tree.of_path path)

let estimate_on t ept path =
  fst (clamp_estimate ?obs:t.obs (raw_estimate_on t ept path))

let estimate t path = estimate_on t (ept t) path

let estimate_string t query = estimate t (Xpath.Parser.parse query)

(* Name tests absent from the kernel's label table. They are never interned
   (lookups use [find_opt]), so estimating an unknown name cannot grow the
   synopsis; it just contributes zero matches. *)
let unknown_labels t path =
  let table = Kernel.table t.kernel in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note n =
    if Xml.Label.find_opt table n = None && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  let rec go path =
    List.iter
      (fun (s : Xpath.Ast.step) ->
        (match s.test with Xpath.Ast.Name n -> note n | Xpath.Ast.Wildcard -> ());
        List.iter go s.predicates)
      path
  in
  go path;
  List.rev !out

type outcome = { value : float; clamped : int; unknown_labels : string list }

let outcome_on t ept path =
  let value, clamped = clamp_estimate ?obs:t.obs (raw_estimate_on t ept path) in
  { value; clamped; unknown_labels = unknown_labels t path }

let estimate_result_on t ept path =
  Error.guard (fun () ->
      if path = [] then Error.raisef Error.Malformed_query "empty query";
      let qt = Xpath.Query_tree.of_path path in
      if qt.Xpath.Query_tree.size > 62 then
        Error.raisef Error.Malformed_query
          "query tree has %d nodes; the matcher's bitset encoding supports 62"
          qt.Xpath.Query_tree.size;
      match outcome_on t (Lazy.force ept) path with
      | o -> o
      | exception Matcher.Ept_too_large n ->
        Error.raisef Error.Limit_exceeded
          "EPT exceeded max_ept_nodes while materializing (%d nodes)" n)

let estimate_result_stats_on t ept path =
  Error.guard (fun () ->
      if path = [] then Error.raisef Error.Malformed_query "empty query";
      let qt = Xpath.Query_tree.of_path path in
      if qt.Xpath.Query_tree.size > 62 then
        Error.raisef Error.Malformed_query
          "query tree has %d nodes; the matcher's bitset encoding supports 62"
          qt.Xpath.Query_tree.size;
      match
        Matcher.estimate_with_stats ?het:t.het ?values:t.values
          ~table:(Kernel.table t.kernel) (Lazy.force ept) qt
      with
      | raw, ms ->
        Matcher.publish_stats ?obs:t.obs ms;
        let value, clamped = clamp_estimate ?obs:t.obs raw in
        ({ value; clamped; unknown_labels = unknown_labels t path }, ms)
      | exception Matcher.Ept_too_large n ->
        Error.raisef Error.Limit_exceeded
          "EPT exceeded max_ept_nodes while materializing (%d nodes)" n)

let estimate_result t path = estimate_result_on t (lazy (ept t)) path

let estimate_string_result t query =
  match Xpath.Parser.parse_result query with
  | Result.Error { position; message } ->
    Result.Error (Error.make ~position Error.Malformed_query message)
  | Ok path -> estimate_result t path

(* A rooted simple path: child axes, name tests, no predicates. *)
let simple_labels table path =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | ({ axis = Xpath.Ast.Child; test = Xpath.Ast.Name n; predicates = [];
         value_predicates = [] }
       : Xpath.Ast.step)
      :: rest ->
      (match Xml.Label.find_opt table n with
       | Some l -> go (l :: acc) rest
       | None -> None)
    | _ :: _ -> None
  in
  go [] path

(* A path whose last step is .../p[q1]..[qk]/r with single-label child-axis
   predicates on p only: returns (pattern hash, predicate-free path). *)
let branching_pattern table path =
  let rec split prefix = function
    | [ penultimate; last ] -> Some (List.rev prefix, penultimate, last)
    | step :: rest -> split (step :: prefix) rest
    | [] -> None
  in
  match split [] path with
  | None -> None
  | Some (prefix, (p : Xpath.Ast.step), (r : Xpath.Ast.step)) ->
    if p.predicates = [] || r.predicates <> [] then None
    else
      let simple_pred = function
        | [ ({ axis = Xpath.Ast.Child; test = Xpath.Ast.Name n; predicates = [];
               value_predicates = [] }
             : Xpath.Ast.step) ] ->
          Xml.Label.find_opt table n
        | _ -> None
      in
      let pred_labels = List.map simple_pred p.predicates in
      if List.exists Option.is_none pred_labels then None
      else
        match (p.test, r.test) with
        | Xpath.Ast.Name pn, Xpath.Ast.Name rn ->
          (match (Xml.Label.find_opt table pn, Xml.Label.find_opt table rn) with
           | Some pl, Some rl ->
             let predicates = List.map Option.get pred_labels in
             let hash = Path_hash.branching ~parent:pl ~predicates ~next:rl in
             let key =
               Path_hash.branching_key ~parent:pl ~predicates ~next:rl
             in
             let stripped = prefix @ [ { p with predicates = [] }; r ] in
             Some (hash, key, stripped)
           | _ -> None)
        | _ -> None

let record_feedback ?ept:shared_ept t path ~actual =
  match t.het with
  | None -> false
  | Some het ->
    let estimate path =
      match shared_ept with
      | Some e -> estimate_on t e path
      | None -> estimate t path
    in
    let table = Kernel.table t.kernel in
    (match simple_labels table path with
     | Some labels ->
       let est = estimate path in
       let error = Float.abs (est -. float_of_int actual) in
       Het.record_feedback het ~hash:(Path_hash.of_labels labels)
         ~path:(Path_hash.key_of_labels labels) ~card:actual ~error ();
       true
     | None ->
       (match branching_pattern table path with
        | None -> false
        | Some (hash, pattern_key, stripped) ->
          let est = estimate path in
          let error = Float.abs (est -. float_of_int actual) in
          let denom = estimate stripped in
          if denom > 0.0 then begin
            let bsel = Float.min 1.0 (float_of_int actual /. denom) in
            Het.record_branching_feedback het ~hash ~path:pattern_key ~bsel
              ~error;
            true
          end
          else false))

let size_in_bytes t =
  Kernel.size_in_bytes t.kernel
  + (match t.het with None -> 0 | Some h -> Het.size_in_bytes h)
  + (match t.values with None -> 0 | Some v -> Value_synopsis.size_in_bytes v)
