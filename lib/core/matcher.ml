exception Ept_too_large of int

(* EPT nodes are immutable once materialized: the bottom-up accumulators
   live in a per-estimate {!scratch} indexed by [id], not on the nodes, so
   one EPT can serve concurrent estimates from several domains (the serving
   pool shares a single EPT across workers with no locks). *)
type node = {
  mutable id : int;  (* preorder index, assigned once at materialization *)
  label : Xml.Label.t;
  card : float;
  bsel : float;
  children : node array;
}

type ept = { root : node; nodes : int }

let materialize ?(max_nodes = 2_000_000) ?obs traveler =
  let count = ref 0 in
  (* Stack of (open_info, preorder id, reversed children). *)
  let stack = ref [] in
  let finished = ref None in
  let rec drain () =
    match Traveler.next traveler with
    | Traveler.Eos -> ()
    | Traveler.Open info ->
      incr count;
      if !count > max_nodes then raise (Ept_too_large !count);
      stack := (info, !count - 1, ref []) :: !stack;
      drain ()
    | Traveler.Close _ ->
      (match !stack with
       | [] -> invalid_arg "Matcher.materialize: unbalanced traveler events"
       | (info, id, kids) :: rest ->
         let node =
           { id; label = info.label; card = info.card; bsel = info.bsel;
             children = Array.of_list (List.rev !kids) }
         in
         (match rest with
          | [] -> finished := Some node
          | (_, _, parent_kids) :: _ -> parent_kids := node :: !parent_kids);
         stack := rest;
         drain ())
  in
  drain ();
  match !finished with
  | Some root ->
    Obs.add_to ?obs "matcher.ept_nodes" !count;
    { root; nodes = !count }
  | None -> invalid_arg "Matcher.materialize: traveler produced no events"

let node_count ept = ept.nodes

type synthetic = node

let synthetic_node ~label ~card ~bsel ~children =
  { id = 0; label; card; bsel; children = Array.of_list children }

(* Synthetic trees are built without ids; renumber in preorder so the
   estimate scratch indexes them like a materialized EPT. *)
let of_synthetic root =
  let next = ref 0 in
  let rec go n =
    n.id <- !next;
    incr next;
    Array.iter go n.children
  in
  go root;
  { root; nodes = !next }

(* Compiled query mirror (same shape as Nok.Eval's). *)
type compiled = {
  size : int;
  test : int array;  (* label id, -1 wildcard, -2 unknown name *)
  is_descendant : bool array;
  parent : int array;
  preds : int list array;  (* predicate children *)
  spine : int array;  (* spine child or -1 *)
  kids : int list array;  (* preds @ spine *)
  vpreds : Xpath.Ast.value_predicate list array;
  on_result_path : bool array;
  result_id : int;
}

let compile table (qt : Xpath.Query_tree.t) =
  if qt.size > 62 then invalid_arg "Matcher: query has more than 62 steps";
  let test = Array.make qt.size (-2) in
  let is_descendant = Array.make qt.size false in
  let parent = Array.make qt.size (-1) in
  let preds = Array.make qt.size [] in
  let spine = Array.make qt.size (-1) in
  let kids = Array.make qt.size [] in
  let vpreds = Array.make qt.size [] in
  let on_result_path = Array.make qt.size false in
  Xpath.Query_tree.iter qt ~f:(fun n ->
      test.(n.id) <-
        (match n.test with
         | Xpath.Ast.Wildcard -> -1
         | Xpath.Ast.Name name ->
           (match Xml.Label.find_opt table name with Some l -> l | None -> -2));
      is_descendant.(n.id) <- n.axis = Xpath.Ast.Descendant;
      on_result_path.(n.id) <- n.on_result_path;
      vpreds.(n.id) <- n.value_predicates;
      preds.(n.id) <- List.map (fun c -> c.Xpath.Query_tree.id) n.predicates;
      (match n.spine with Some s -> spine.(n.id) <- s.id | None -> ());
      let children = Xpath.Query_tree.children n in
      kids.(n.id) <- List.map (fun c -> c.Xpath.Query_tree.id) children;
      List.iter (fun c -> parent.(c.Xpath.Query_tree.id) <- n.id) children);
  { size = qt.size; test; is_descendant; parent; preds; spine; kids; vpreds;
    on_result_path; result_id = qt.result.id }

let test_matches c q label = c.test.(q) = -1 || c.test.(q) = label

let noisy_or a b = 1.0 -. ((1.0 -. a) *. (1.0 -. b))

(* Per-estimate instrumentation, threaded through both passes. The frontier
   is the number of candidate match vectors (per-child m arrays) live at
   once — the analogue of Algorithm 3's buffered candidate-event sets; a
   match step is one (EPT node, query-tree node) combination examined. *)
type match_stats = {
  mutable ept_nodes : int;
  mutable frontier : int;
  mutable frontier_peak : int;
  mutable frontier_sum : int;
  mutable match_steps : int;
  mutable het_joint_overrides : int;
  mutable het_single_overrides : int;
  mutable independence_preds : int;
}

let fresh_stats () =
  { ept_nodes = 0; frontier = 0; frontier_peak = 0; frontier_sum = 0;
    match_steps = 0; het_joint_overrides = 0; het_single_overrides = 0;
    independence_preds = 0 }

(* Selectivity of QTN q's value predicates at a node with this label. With
   no value synopsis the predicates are ignored (factor 1), preserving the
   purely structural behaviour of the paper. *)
let value_factor values c node_label q =
  match values with
  | None -> 1.0
  | Some vs ->
    List.fold_left
      (fun acc vp -> acc *. Value_synopsis.selectivity vs ~context:node_label vp)
      1.0 c.vpreds.(q)

(* Per-estimate accumulator store, one slot per EPT node (by preorder id)
   per query-tree node. Keeping these outside the EPT makes the shared EPT
   read-only during matching — concurrent estimates each carry their own
   scratch — at the same allocation cost as the former on-node arrays. *)
type scratch = {
  sc_c_or : float array array;  (* P(a child embeds QTN q's subtree) *)
  sc_d_or : float array array;  (* P(a proper descendant embeds it) *)
}

let fresh_scratch ept =
  { sc_c_or = Array.make ept.nodes [||]; sc_d_or = Array.make ept.nodes [||] }

(* Bottom-up: fill every node's c_or / d_or slots and return its m vector.
   m.(q) = P(this node embeds the full pattern subtree of q | it exists). *)
let rec bottom_up ?values ms sc c node =
  let q_n = c.size in
  ms.ept_nodes <- ms.ept_nodes + 1;
  ms.match_steps <- ms.match_steps + q_n;
  let c_or = Array.make q_n 0.0 in
  let d_or = Array.make q_n 0.0 in
  sc.sc_c_or.(node.id) <- c_or;
  sc.sc_d_or.(node.id) <- d_or;
  ms.frontier <- ms.frontier + Array.length node.children;
  if ms.frontier > ms.frontier_peak then ms.frontier_peak <- ms.frontier;
  ms.frontier_sum <- ms.frontier_sum + ms.frontier;
  let kid_ms = Array.map (bottom_up ?values ms sc c) node.children in
  ms.frontier <- ms.frontier - Array.length node.children;
  Array.iteri
    (fun i kid ->
      let m_kid = kid_ms.(i) in
      let kid_d_or = sc.sc_d_or.(kid.id) in
      for q = 0 to q_n - 1 do
        c_or.(q) <- noisy_or c_or.(q) (kid.bsel *. m_kid.(q));
        let below = noisy_or m_kid.(q) kid_d_or.(q) in
        d_or.(q) <- noisy_or d_or.(q) (kid.bsel *. below)
      done)
    node.children;
  let m = Array.make q_n 0.0 in
  for q = 0 to q_n - 1 do
    if test_matches c q node.label then begin
      let sat = ref (value_factor values c node.label q) in
      List.iter
        (fun k ->
          let p = if c.is_descendant.(k) then d_or.(k) else c_or.(k) in
          sat := !sat *. p)
        c.kids.(q);
      m.(q) <- !sat
    end
  done;
  m

(* Predicate factor at a spine node, with HET correlated-bsel overrides.
   A child-axis single-name predicate pattern p[q1]..[qk]/r is looked up
   jointly first, then each predicate singly; remaining predicates fall back
   to the independence factors from the bottom-up pass. *)
let pred_factor het ms sc c node q =
  let plain k =
    ms.independence_preds <- ms.independence_preds + 1;
    if c.is_descendant.(k) then sc.sc_d_or.(node.id).(k)
    else sc.sc_c_or.(node.id).(k)
  in
  match het with
  | None -> List.fold_left (fun acc k -> acc *. plain k) 1.0 c.preds.(q)
  | Some het ->
    let next = if c.spine.(q) >= 0 then c.test.(c.spine.(q)) else -1 in
    let simple_pred k =
      (* Eligible for a HET pattern: child axis, name test, no nested steps. *)
      (not c.is_descendant.(k)) && c.test.(k) >= 0 && c.kids.(k) = []
    in
    let eligible, rest = List.partition simple_pred c.preds.(q) in
    let rest_factor = List.fold_left (fun acc k -> acc *. plain k) 1.0 rest in
    let joint =
      match eligible with
      | _ :: _ :: _ when next >= -1 ->
        let predicates = List.map (fun k -> c.test.(k)) eligible in
        let hash = Path_hash.branching ~parent:node.label ~predicates ~next in
        Het.lookup_branching het
          ~path:(Path_hash.branching_key ~parent:node.label ~predicates ~next)
          hash
      | _ -> None
    in
    (match joint with
     | Some bsel ->
       ms.het_joint_overrides <- ms.het_joint_overrides + 1;
       bsel *. rest_factor
     | None ->
       List.fold_left
         (fun acc k ->
           let predicates = [ c.test.(k) ] in
           let hash = Path_hash.branching ~parent:node.label ~predicates ~next in
           let path = Path_hash.branching_key ~parent:node.label ~predicates ~next in
           let factor =
             match Het.lookup_branching het ~path hash with
             | Some bsel ->
               ms.het_single_overrides <- ms.het_single_overrides + 1;
               bsel
             | None -> plain k
           in
           acc *. factor)
         rest_factor eligible)

(* Top-down: a.(q) = P(node is a valid image of result-path QTN q given its
   own existence), combining test, predicates (structural and value) and
   ancestor validity. *)
let rec top_down ?values het ms sc c node ~is_root ~parent_a ~anc_or acc =
  let q_n = c.size in
  ms.match_steps <- ms.match_steps + q_n;
  let a = Array.make q_n 0.0 in
  for q = 0 to q_n - 1 do
    if c.on_result_path.(q) && test_matches c q node.label then begin
      let anc_factor =
        let p = c.parent.(q) in
        if p < 0 then if c.is_descendant.(q) then 1.0 else if is_root then 1.0 else 0.0
        else if c.is_descendant.(q) then anc_or.(p)
        else parent_a.(p)
      in
      if anc_factor > 0.0 then
        a.(q) <-
          anc_factor *. pred_factor het ms sc c node q
          *. value_factor values c node.label q
    end
  done;
  acc := !acc +. (node.card *. a.(c.result_id));
  let anc_or' = Array.init q_n (fun q -> noisy_or anc_or.(q) a.(q)) in
  Array.iter
    (fun kid ->
      top_down ?values het ms sc c kid ~is_root:false ~parent_a:a
        ~anc_or:anc_or' acc)
    node.children

let estimate_with_stats ?het ?values ~table ept qt =
  let c = compile table qt in
  let ms = fresh_stats () in
  let sc = fresh_scratch ept in
  ignore (bottom_up ?values ms sc c ept.root : float array);
  let acc = ref 0.0 in
  let zeros = Array.make c.size 0.0 in
  top_down ?values het ms sc c ept.root ~is_root:true ~parent_a:zeros
    ~anc_or:zeros acc;
  (!acc, ms)

let publish_stats ?obs ms =
  match obs with
  | None -> ()
  | Some _ ->
    Obs.add_to ?obs "matcher.match_steps" ms.match_steps;
    Obs.max_to ?obs "matcher.frontier_peak" ms.frontier_peak;
    (* Per-query mean of the running frontier — the peak is already a
       separate counter, so the histogram carries the distribution. *)
    if ms.ept_nodes > 0 then
      Obs.observe ?obs "matcher.frontier_mean"
        (float_of_int ms.frontier_sum /. float_of_int ms.ept_nodes);
    Obs.add_to ?obs "matcher.het_joint_overrides" ms.het_joint_overrides;
    Obs.add_to ?obs "matcher.het_single_overrides" ms.het_single_overrides;
    Obs.add_to ?obs "matcher.independence_preds" ms.independence_preds

let estimate ?het ?values ?obs ~table ept qt =
  let result, ms = estimate_with_stats ?het ?values ~table ept qt in
  publish_stats ?obs ms;
  result
