(* CRC-32 (IEEE 802.3 / zlib polynomial), table-driven, bytewise. All
   intermediate values fit in 32 bits, so plain OCaml ints are exact. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest s =
  let tbl = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := tbl.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

let to_hex crc = Printf.sprintf "%08x" crc

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 && v <= 0xFFFFFFFF -> Some v
    | _ -> None
