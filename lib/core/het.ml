type simple_entry = {
  card : int;
  sbsel : float option;
  serror : float;
  spath : string option;  (* canonical path key; None on legacy v1 entries *)
}

type branching_entry = { bbsel : float; berror : float; bpath : string option }

type counters = {
  simple_lookups : int;
  simple_hits : int;
  branching_lookups : int;
  branching_hits : int;
  feedback_inserts : int;
  collisions : int;
}

(* Each 32-bit hash maps to a bucket of entries discriminated by their
   canonical path, so two colliding paths coexist instead of the later
   insert silently overwriting the earlier one. Buckets are almost always
   singletons; collisions only show up on 32-bit hash clashes. *)
type t = {
  simple_all : (int, simple_entry list) Hashtbl.t;
  branching_all : (int, branching_entry list) Hashtbl.t;
  simple_active : (int, simple_entry list) Hashtbl.t;
  branching_active : (int, branching_entry list) Hashtbl.t;
  mutable budget : int option;  (* None = unlimited *)
  (* Usage counters (monotonic over the table's lifetime; snapshot and diff
     for per-query numbers). Plain field bumps keep lookups cheap. *)
  mutable n_simple_lookups : int;
  mutable n_simple_hits : int;
  mutable n_branching_lookups : int;
  mutable n_branching_hits : int;
  mutable n_feedback_inserts : int;
  mutable n_collisions : int;
}

let simple_entry_bytes = 16
let branching_entry_bytes = 8

let create () =
  { simple_all = Hashtbl.create 256; branching_all = Hashtbl.create 256;
    simple_active = Hashtbl.create 256; branching_active = Hashtbl.create 256;
    budget = None; n_simple_lookups = 0; n_simple_hits = 0;
    n_branching_lookups = 0; n_branching_hits = 0; n_feedback_inserts = 0;
    n_collisions = 0 }

let counters t =
  { simple_lookups = t.n_simple_lookups; simple_hits = t.n_simple_hits;
    branching_lookups = t.n_branching_lookups;
    branching_hits = t.n_branching_hits;
    feedback_inserts = t.n_feedback_inserts; collisions = t.n_collisions }

let diff_counters ~before ~after =
  { simple_lookups = after.simple_lookups - before.simple_lookups;
    simple_hits = after.simple_hits - before.simple_hits;
    branching_lookups = after.branching_lookups - before.branching_lookups;
    branching_hits = after.branching_hits - before.branching_hits;
    feedback_inserts = after.feedback_inserts - before.feedback_inserts;
    collisions = after.collisions - before.collisions }

let publish_counters ?obs t =
  Obs.add_to ?obs "het.simple_lookups" t.n_simple_lookups;
  Obs.add_to ?obs "het.simple_hits" t.n_simple_hits;
  Obs.add_to ?obs "het.branching_lookups" t.n_branching_lookups;
  Obs.add_to ?obs "het.branching_hits" t.n_branching_hits;
  Obs.add_to ?obs "het.feedback_inserts" t.n_feedback_inserts;
  Obs.add_to ?obs "het.collisions" t.n_collisions

(* Bucket operations. Replacement matches on the canonical path, so the
   final table state does not depend on insertion order: inserting paths A
   then B under one hash leaves the same two bindings as B then A. *)

let bucket_put tbl hash path entry ~path_of =
  let bucket =
    match Hashtbl.find_opt tbl hash with Some b -> b | None -> []
  in
  let bucket = entry :: List.filter (fun e -> path_of e <> path) bucket in
  Hashtbl.replace tbl hash bucket

let bucket_remove tbl hash path ~path_of =
  match Hashtbl.find_opt tbl hash with
  | None -> ()
  | Some bucket ->
    (match List.filter (fun e -> path_of e <> path) bucket with
     | [] -> Hashtbl.remove tbl hash
     | rest -> Hashtbl.replace tbl hash rest)

(* Resolve a lookup against a bucket. A caller-supplied path only accepts
   its own entry or a legacy path-less one; a pathless lookup prefers the
   deterministically smallest path so the answer is insertion-order
   independent even under collision. *)
let bucket_find t bucket path ~path_of =
  let ambiguous = match bucket with _ :: _ :: _ -> true | _ -> false in
  let found =
    match path with
    | Some _ ->
      (match List.find_opt (fun e -> path_of e = path) bucket with
       | Some _ as hit -> hit
       | None ->
         (match List.find_opt (fun e -> path_of e = None) bucket with
          | Some _ as legacy -> legacy
          | None ->
            (* Only mismatching paths under this hash: a detected
               collision, not a hit. *)
            t.n_collisions <- t.n_collisions + 1;
            None))
    | None ->
      (match bucket with
       | [ e ] -> Some e
       | [] -> None
       | es ->
         Some
           (List.fold_left
              (fun best e -> if path_of e < path_of best then e else best)
              (List.hd es) (List.tl es)))
  in
  if ambiguous && found <> None then t.n_collisions <- t.n_collisions + 1;
  found

let spath e = e.spath
let bpath e = e.bpath

let add_simple ?path t ~hash ~card ~bsel ~error =
  let e = { card; sbsel = bsel; serror = error; spath = path } in
  bucket_put t.simple_all hash path e ~path_of:spath;
  if t.budget = None then bucket_put t.simple_active hash path e ~path_of:spath

let add_branching ?path t ~hash ~bsel ~error =
  let e = { bbsel = bsel; berror = error; bpath = path } in
  bucket_put t.branching_all hash path e ~path_of:bpath;
  if t.budget = None then
    bucket_put t.branching_active hash path e ~path_of:bpath

(* All entries, largest error first; simple before branching on ties since a
   simple-path miss also poisons every estimate passing through it. *)
let ranked t =
  let items = ref [] in
  Hashtbl.iter
    (fun h es ->
      List.iter (fun e -> items := (e.serror, 0, `Simple (h, e)) :: !items) es)
    t.simple_all;
  Hashtbl.iter
    (fun h es ->
      List.iter (fun e -> items := (e.berror, 1, `Branching (h, e)) :: !items) es)
    t.branching_all;
  List.sort
    (fun (e1, k1, _) (e2, k2, _) ->
      let c = Float.compare e2 e1 in
      if c <> 0 then c else Int.compare k1 k2)
    !items

let set_budget t ~bytes =
  t.budget <- Some bytes;
  Hashtbl.reset t.simple_active;
  Hashtbl.reset t.branching_active;
  let remaining = ref bytes in
  List.iter
    (fun (_, _, entry) ->
      match entry with
      | `Simple (h, e) ->
        if !remaining >= simple_entry_bytes then begin
          remaining := !remaining - simple_entry_bytes;
          bucket_put t.simple_active h e.spath e ~path_of:spath
        end
      | `Branching (h, e) ->
        if !remaining >= branching_entry_bytes then begin
          remaining := !remaining - branching_entry_bytes;
          bucket_put t.branching_active h e.bpath e ~path_of:bpath
        end)
    (ranked t)

let unlimited_budget t =
  t.budget <- None;
  Hashtbl.reset t.simple_active;
  Hashtbl.reset t.branching_active;
  Hashtbl.iter (fun h es -> Hashtbl.replace t.simple_active h es) t.simple_all;
  Hashtbl.iter
    (fun h es -> Hashtbl.replace t.branching_active h es)
    t.branching_all

let lookup_simple t ?path hash =
  t.n_simple_lookups <- t.n_simple_lookups + 1;
  match Hashtbl.find_opt t.simple_active hash with
  | None -> None
  | Some bucket ->
    (match bucket_find t bucket path ~path_of:spath with
     | Some e ->
       t.n_simple_hits <- t.n_simple_hits + 1;
       Some (e.card, e.sbsel)
     | None -> None)

let lookup_branching t ?path hash =
  t.n_branching_lookups <- t.n_branching_lookups + 1;
  match Hashtbl.find_opt t.branching_active hash with
  | None -> None
  | Some bucket ->
    (match bucket_find t bucket path ~path_of:bpath with
     | Some e ->
       t.n_branching_hits <- t.n_branching_hits + 1;
       Some e.bbsel
     | None -> None)

let active_entries tbl =
  Hashtbl.fold (fun _ es acc -> acc + List.length es) tbl 0

let size_in_bytes t =
  (simple_entry_bytes * active_entries t.simple_active)
  + (branching_entry_bytes * active_entries t.branching_active)

(* Shrink the active set back under [bytes] by dropping smallest-error
   entries, never touching [keep] (the entry whose insertion triggered the
   shrink — feedback always keeps its own observation). *)
let evict_to_fit t ~bytes ~keep =
  let rec evict () =
    if size_in_bytes t > bytes then begin
      let worst =
        ref
          (None
            : ([ `S of int * string option | `B of int * string option ]
              * float)
              option)
      in
      Hashtbl.iter
        (fun h es ->
          List.iter
            (fun e ->
              match !worst with
              | Some (_, we) when we <= e.serror -> ()
              | _ -> worst := Some (`S (h, e.spath), e.serror))
            es)
        t.simple_active;
      Hashtbl.iter
        (fun h es ->
          List.iter
            (fun e ->
              match !worst with
              | Some (_, we) when we <= e.berror -> ()
              | _ -> worst := Some (`B (h, e.bpath), e.berror))
            es)
        t.branching_active;
      match !worst with
      | None -> ()
      | Some (victim, _) when victim = keep ->
        ()  (* the new entry itself is the least useful: keep it *)
      | Some (`S (h, p), _) ->
        bucket_remove t.simple_active h p ~path_of:spath;
        evict ()
      | Some (`B (h, p), _) ->
        bucket_remove t.branching_active h p ~path_of:bpath;
        evict ()
    end
  in
  evict ()

let record_branching_feedback ?path t ~hash ~bsel ~error =
  t.n_feedback_inserts <- t.n_feedback_inserts + 1;
  let e = { bbsel = bsel; berror = error; bpath = path } in
  bucket_put t.branching_all hash path e ~path_of:bpath;
  bucket_put t.branching_active hash path e ~path_of:bpath;
  match t.budget with
  | None -> ()
  | Some bytes -> evict_to_fit t ~bytes ~keep:(`B (hash, path))

let record_feedback t ~hash ?path ~card ?bsel ~error () =
  t.n_feedback_inserts <- t.n_feedback_inserts + 1;
  let e = { card; sbsel = bsel; serror = error; spath = path } in
  bucket_put t.simple_all hash path e ~path_of:spath;
  bucket_put t.simple_active hash path e ~path_of:spath;
  match t.budget with
  | None -> ()
  | Some bytes -> evict_to_fit t ~bytes ~keep:(`S (hash, path))

let active_count t =
  active_entries t.simple_active + active_entries t.branching_active

let total_count t =
  active_entries t.simple_all + active_entries t.branching_all

(* v2 dump lines append the canonical path ("-" when absent). The v1 reader
   path below still accepts the shorter legacy lines, so pre-existing
   synopsis files load unchanged (their entries just carry no path). *)
let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "xseed-het v2\n";
  (match t.budget with
   | Some b -> Buffer.add_string buf (Printf.sprintf "budget %d\n" b)
   | None -> ());
  let path_str = function None -> "-" | Some p -> p in
  let simples =
    Hashtbl.fold
      (fun h es acc -> List.fold_left (fun acc e -> (h, e) :: acc) acc es)
      t.simple_all []
    |> List.sort (fun (a, ea) (b, eb) ->
           let c = Int.compare a b in
           if c <> 0 then c else Stdlib.compare ea.spath eb.spath)
  in
  List.iter
    (fun (h, e) ->
      Buffer.add_string buf
        (Printf.sprintf "simple %d %d %s %h %s\n" h e.card
           (match e.sbsel with None -> "-" | Some b -> Printf.sprintf "%h" b)
           e.serror (path_str e.spath)))
    simples;
  let branches =
    Hashtbl.fold
      (fun h es acc -> List.fold_left (fun acc e -> (h, e) :: acc) acc es)
      t.branching_all []
    |> List.sort (fun (a, ea) (b, eb) ->
           let c = Int.compare a b in
           if c <> 0 then c else Stdlib.compare ea.bpath eb.bpath)
  in
  List.iter
    (fun (h, e) ->
      Buffer.add_string buf
        (Printf.sprintf "branching %d %h %h %s\n" h e.bbsel e.berror
           (path_str e.bpath)))
    branches;
  Buffer.contents buf

let of_string_result s =
  Error.guard (fun () ->
      let t = create () in
      let budget = ref None in
      let malformed i line =
        Error.raisef ~position:(i + 1) ~section:"het" Error.Corrupt_synopsis
          "bad HET line: %s" (String.trim line)
      in
      (* Reject non-finite statistics outright: a NaN selectivity would
         silently poison every estimate that touches the entry. *)
      let finite i line x = if Float.is_finite x then x else malformed i line in
      let clamp01 x = Float.max 0.0 (Float.min 1.0 x) in
      let opt_path = function "-" -> None | p -> Some p in
      List.iteri
        (fun i line ->
          let simple h card bsel error path =
            match
              (int_of_string_opt h, int_of_string_opt card,
               float_of_string_opt error)
            with
            | Some h, Some card, Some error ->
              let error = finite i line error in
              let bsel =
                if bsel = "-" then None
                else
                  match float_of_string_opt bsel with
                  | Some b -> Some (clamp01 (finite i line b))
                  | None -> malformed i line
              in
              add_simple t ~hash:h ?path ~card:(max 0 card) ~bsel ~error
            | _ -> malformed i line
          in
          let branching h bsel error path =
            match
              (int_of_string_opt h, float_of_string_opt bsel,
               float_of_string_opt error)
            with
            | Some h, Some bsel, Some error ->
              add_branching t ~hash:h ?path ~bsel:(clamp01 (finite i line bsel))
                ~error:(finite i line error)
            | _ -> malformed i line
          in
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] -> ()
          | [ "xseed-het"; ("v1" | "v2") ] when i = 0 -> ()
          | [ "budget"; b ] ->
            (match int_of_string_opt b with
             | Some b -> budget := Some b
             | None -> malformed i line)
          | [ "simple"; h; card; bsel; error ] -> simple h card bsel error None
          | [ "simple"; h; card; bsel; error; path ] ->
            simple h card bsel error (opt_path path)
          | [ "branching"; h; bsel; error ] -> branching h bsel error None
          | [ "branching"; h; bsel; error; path ] ->
            branching h bsel error (opt_path path)
          | _ -> malformed i line)
        (String.split_on_char '\n' s);
      (match !budget with Some b -> set_budget t ~bytes:b | None -> ());
      t)

let of_string s =
  match of_string_result s with
  | Ok t -> t
  | Error e -> invalid_arg ("Het.of_string: " ^ Error.message e)

let pp ppf t =
  Format.fprintf ppf "HET: %d entries (%d active, %d bytes)" (total_count t)
    (active_count t) (size_in_bytes t)
