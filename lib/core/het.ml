type simple_entry = { card : int; sbsel : float option; serror : float }
type branching_entry = { bbsel : float; berror : float }

type counters = {
  simple_lookups : int;
  simple_hits : int;
  branching_lookups : int;
  branching_hits : int;
  feedback_inserts : int;
}

type t = {
  simple_all : (int, simple_entry) Hashtbl.t;
  branching_all : (int, branching_entry) Hashtbl.t;
  simple_active : (int, simple_entry) Hashtbl.t;
  branching_active : (int, branching_entry) Hashtbl.t;
  mutable budget : int option;  (* None = unlimited *)
  (* Usage counters (monotonic over the table's lifetime; snapshot and diff
     for per-query numbers). Plain field bumps keep lookups cheap. *)
  mutable n_simple_lookups : int;
  mutable n_simple_hits : int;
  mutable n_branching_lookups : int;
  mutable n_branching_hits : int;
  mutable n_feedback_inserts : int;
}

let simple_entry_bytes = 16
let branching_entry_bytes = 8

let create () =
  { simple_all = Hashtbl.create 256; branching_all = Hashtbl.create 256;
    simple_active = Hashtbl.create 256; branching_active = Hashtbl.create 256;
    budget = None; n_simple_lookups = 0; n_simple_hits = 0;
    n_branching_lookups = 0; n_branching_hits = 0; n_feedback_inserts = 0 }

let counters t =
  { simple_lookups = t.n_simple_lookups; simple_hits = t.n_simple_hits;
    branching_lookups = t.n_branching_lookups;
    branching_hits = t.n_branching_hits;
    feedback_inserts = t.n_feedback_inserts }

let diff_counters ~before ~after =
  { simple_lookups = after.simple_lookups - before.simple_lookups;
    simple_hits = after.simple_hits - before.simple_hits;
    branching_lookups = after.branching_lookups - before.branching_lookups;
    branching_hits = after.branching_hits - before.branching_hits;
    feedback_inserts = after.feedback_inserts - before.feedback_inserts }

let publish_counters ?obs t =
  Obs.add_to ?obs "het.simple_lookups" t.n_simple_lookups;
  Obs.add_to ?obs "het.simple_hits" t.n_simple_hits;
  Obs.add_to ?obs "het.branching_lookups" t.n_branching_lookups;
  Obs.add_to ?obs "het.branching_hits" t.n_branching_hits;
  Obs.add_to ?obs "het.feedback_inserts" t.n_feedback_inserts

let add_simple t ~hash ~card ~bsel ~error =
  let e = { card; sbsel = bsel; serror = error } in
  Hashtbl.replace t.simple_all hash e;
  if t.budget = None then Hashtbl.replace t.simple_active hash e

let add_branching t ~hash ~bsel ~error =
  let e = { bbsel = bsel; berror = error } in
  Hashtbl.replace t.branching_all hash e;
  if t.budget = None then Hashtbl.replace t.branching_active hash e

(* All entries, largest error first; simple before branching on ties since a
   simple-path miss also poisons every estimate passing through it. *)
let ranked t =
  let items = ref [] in
  Hashtbl.iter
    (fun h e -> items := (e.serror, 0, `Simple (h, e)) :: !items)
    t.simple_all;
  Hashtbl.iter
    (fun h e -> items := (e.berror, 1, `Branching (h, e)) :: !items)
    t.branching_all;
  List.sort
    (fun (e1, k1, _) (e2, k2, _) ->
      let c = Float.compare e2 e1 in
      if c <> 0 then c else Int.compare k1 k2)
    !items

let set_budget t ~bytes =
  t.budget <- Some bytes;
  Hashtbl.reset t.simple_active;
  Hashtbl.reset t.branching_active;
  let remaining = ref bytes in
  List.iter
    (fun (_, _, entry) ->
      match entry with
      | `Simple (h, e) ->
        if !remaining >= simple_entry_bytes then begin
          remaining := !remaining - simple_entry_bytes;
          Hashtbl.replace t.simple_active h e
        end
      | `Branching (h, e) ->
        if !remaining >= branching_entry_bytes then begin
          remaining := !remaining - branching_entry_bytes;
          Hashtbl.replace t.branching_active h e
        end)
    (ranked t)

let unlimited_budget t =
  t.budget <- None;
  Hashtbl.reset t.simple_active;
  Hashtbl.reset t.branching_active;
  Hashtbl.iter (fun h e -> Hashtbl.replace t.simple_active h e) t.simple_all;
  Hashtbl.iter (fun h e -> Hashtbl.replace t.branching_active h e) t.branching_all

let lookup_simple t hash =
  t.n_simple_lookups <- t.n_simple_lookups + 1;
  match Hashtbl.find_opt t.simple_active hash with
  | Some e ->
    t.n_simple_hits <- t.n_simple_hits + 1;
    Some (e.card, e.sbsel)
  | None -> None

let lookup_branching t hash =
  t.n_branching_lookups <- t.n_branching_lookups + 1;
  match Hashtbl.find_opt t.branching_active hash with
  | Some e ->
    t.n_branching_hits <- t.n_branching_hits + 1;
    Some e.bbsel
  | None -> None

let size_in_bytes t =
  (simple_entry_bytes * Hashtbl.length t.simple_active)
  + (branching_entry_bytes * Hashtbl.length t.branching_active)

let record_branching_feedback t ~hash ~bsel ~error =
  t.n_feedback_inserts <- t.n_feedback_inserts + 1;
  add_branching t ~hash ~bsel ~error

let record_feedback t ~hash ~card ?bsel ~error () =
  t.n_feedback_inserts <- t.n_feedback_inserts + 1;
  let e = { card; sbsel = bsel; serror = error } in
  Hashtbl.replace t.simple_all hash e;
  (match t.budget with
   | None -> Hashtbl.replace t.simple_active hash e
   | Some bytes ->
     Hashtbl.replace t.simple_active hash e;
     (* Evict smallest-error active entries until we fit again. *)
     let rec evict () =
       if size_in_bytes t > bytes then begin
         let worst = ref None in
         Hashtbl.iter
           (fun h e ->
             match !worst with
             | Some (_, we, _) when we <= e.serror -> ()
             | _ -> worst := Some (`S h, e.serror, ()))
           t.simple_active;
         Hashtbl.iter
           (fun h e ->
             match !worst with
             | Some (_, we, _) when we <= e.berror -> ()
             | _ -> worst := Some (`B h, e.berror, ()))
           t.branching_active;
         match !worst with
         | Some (`S h, _, ()) when h <> hash ->
           Hashtbl.remove t.simple_active h;
           evict ()
         | Some (`B h, _, ()) ->
           Hashtbl.remove t.branching_active h;
           evict ()
         | _ -> ()  (* the new entry itself is the least useful: keep it *)
       end
     in
     evict ())

let active_count t =
  Hashtbl.length t.simple_active + Hashtbl.length t.branching_active

let total_count t = Hashtbl.length t.simple_all + Hashtbl.length t.branching_all

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "xseed-het v1\n";
  (match t.budget with
   | Some b -> Buffer.add_string buf (Printf.sprintf "budget %d\n" b)
   | None -> ());
  let simples =
    Hashtbl.fold (fun h e acc -> (h, e) :: acc) t.simple_all []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (h, e) ->
      Buffer.add_string buf
        (Printf.sprintf "simple %d %d %s %h\n" h e.card
           (match e.sbsel with None -> "-" | Some b -> Printf.sprintf "%h" b)
           e.serror))
    simples;
  let branches =
    Hashtbl.fold (fun h e acc -> (h, e) :: acc) t.branching_all []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (h, e) ->
      Buffer.add_string buf (Printf.sprintf "branching %d %h %h\n" h e.bbsel e.berror))
    branches;
  Buffer.contents buf

let of_string_result s =
  Error.guard (fun () ->
      let t = create () in
      let budget = ref None in
      let malformed i line =
        Error.raisef ~position:(i + 1) ~section:"het" Error.Corrupt_synopsis
          "bad HET line: %s" (String.trim line)
      in
      (* Reject non-finite statistics outright: a NaN selectivity would
         silently poison every estimate that touches the entry. *)
      let finite i line x = if Float.is_finite x then x else malformed i line in
      let clamp01 x = Float.max 0.0 (Float.min 1.0 x) in
      List.iteri
        (fun i line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] -> ()
          | [ "xseed-het"; "v1" ] when i = 0 -> ()
          | [ "budget"; b ] ->
            (match int_of_string_opt b with
             | Some b -> budget := Some b
             | None -> malformed i line)
          | [ "simple"; h; card; bsel; error ] ->
            (match
               (int_of_string_opt h, int_of_string_opt card, float_of_string_opt error)
             with
             | Some h, Some card, Some error ->
               let error = finite i line error in
               let bsel =
                 if bsel = "-" then None
                 else
                   match float_of_string_opt bsel with
                   | Some b -> Some (clamp01 (finite i line b))
                   | None -> malformed i line
               in
               add_simple t ~hash:h ~card:(max 0 card) ~bsel ~error
             | _ -> malformed i line)
          | [ "branching"; h; bsel; error ] ->
            (match
               (int_of_string_opt h, float_of_string_opt bsel, float_of_string_opt error)
             with
             | Some h, Some bsel, Some error ->
               add_branching t ~hash:h ~bsel:(clamp01 (finite i line bsel))
                 ~error:(finite i line error)
             | _ -> malformed i line)
          | _ -> malformed i line)
        (String.split_on_char '\n' s);
      (match !budget with Some b -> set_budget t ~bytes:b | None -> ());
      t)

let of_string s =
  match of_string_result s with
  | Ok t -> t
  | Error e -> invalid_arg ("Het.of_string: " ^ Error.message e)

let pp ppf t =
  Format.fprintf ppf "HET: %d entries (%d active, %d bytes)" (total_count t)
    (active_count t) (size_in_bytes t)
