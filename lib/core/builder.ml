type frame = { v : Xml.Label.t; mutable out : (Kernel.edge * int) list }

(* One step of Algorithm 1. [sign] is +1 for construction / insertion and -1
   for deletion. The per-frame [out] list is a set: an (edge, level) pair is
   recorded once per parent node, so closing the parent bumps each edge's
   parent count exactly once. [mrl] tracks the maximum recursion level
   touched, for observability. *)
let feed kernel ~sign ~rl ~stack ~mrl event =
  match event with
  | Xml.Event.Start_element (name, _) ->
    let v = Xml.Label.intern (Kernel.table kernel) name in
    Kernel.get_vertex kernel v;
    (match !stack with
     | [] ->
       let l = Counter_stacks.push rl v in
       if l > !mrl then mrl := l
     | parent :: _ ->
       let e = Kernel.get_edge kernel parent.v v in
       let l = Counter_stacks.push rl v in
       if l > !mrl then mrl := l;
       Kernel.add_at_level e l ~parents:0 ~children:sign;
       if not (List.exists (fun (e', l') -> e' == e && l' = l) parent.out) then
         parent.out <- (e, l) :: parent.out);
    stack := { v; out = [] } :: !stack
  | Xml.Event.End_element _ ->
    (match !stack with
     | [] -> invalid_arg "Builder: unbalanced events"
     | fr :: rest ->
       List.iter
         (fun (e, l) -> Kernel.add_at_level e l ~parents:sign ~children:0)
         fr.out;
       Counter_stacks.pop rl fr.v;
       stack := rest)
  | Xml.Event.Text _ -> ()

let publish ?obs kernel mrl =
  Obs.add_to ?obs "builder.vertices" (Kernel.vertex_count kernel);
  Obs.add_to ?obs "builder.edges" (Kernel.edge_count kernel);
  Obs.max_to ?obs "builder.max_recursion_level" mrl

let of_string ?obs ?table input =
  let kernel = Kernel.create ?table () in
  let rl = Counter_stacks.create () in
  let stack = ref [] and mrl = ref 0 in
  Obs.span ?obs "builder.of_string" (fun () ->
      Xml.Sax.iter ?obs input ~f:(feed kernel ~sign:1 ~rl ~stack ~mrl));
  if !stack <> [] then invalid_arg "Builder.of_string: unclosed element";
  publish ?obs kernel !mrl;
  kernel

let of_events ?obs ?table events =
  let kernel = Kernel.create ?table () in
  let rl = Counter_stacks.create () in
  let stack = ref [] and mrl = ref 0 in
  List.iter (feed kernel ~sign:1 ~rl ~stack ~mrl) events;
  if !stack <> [] then invalid_arg "Builder.of_events: unclosed element";
  publish ?obs kernel !mrl;
  kernel

let fold_into kernel next =
  let rl = Counter_stacks.create () in
  let stack = ref [] and mrl = ref 0 in
  let rec loop () =
    match next () with
    | None -> if !stack <> [] then invalid_arg "Builder.fold_into: unclosed element"
    | Some event ->
      feed kernel ~sign:1 ~rl ~stack ~mrl event;
      loop ()
  in
  loop ()

let check_single_element events =
  let depth = ref 0 and roots = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Xml.Event.Start_element _ ->
        if !depth = 0 then incr roots;
        incr depth
      | Xml.Event.End_element _ ->
        decr depth;
        if !depth < 0 then invalid_arg "Builder: unbalanced subtree events"
      | Xml.Event.Text _ -> ())
    events;
  if !depth <> 0 || !roots <> 1 then
    invalid_arg "Builder: subtree events must form one balanced element"

(* Replay the subtree with the recursion-level counter primed by the
   insertion path, so every level index inside the subtree is computed
   relative to the document, then splice the connecting edge. The connecting
   edge's parent count moves only when [parent_edge_changes]: the caller
   (who can see the document) says whether the insertion parent gains its
   first / loses its last child with the subtree root's label. *)
let splice kernel ~sign ~parent_edge_changes ~at events =
  (match at with
   | [] -> invalid_arg "Builder: insertion path must be non-empty"
   | _ -> ());
  check_single_element events;
  let rl = Counter_stacks.create () in
  List.iter (fun l -> ignore (Counter_stacks.push rl l : int)) at;
  let parent_frame = { v = List.nth at (List.length at - 1); out = [] } in
  let stack = ref [ parent_frame ] and mrl = ref 0 in
  List.iter (feed kernel ~sign ~rl ~stack ~mrl) events;
  (match !stack with
   | [ fr ] when fr == parent_frame ->
     if parent_edge_changes then
       List.iter
         (fun (e, l) -> Kernel.add_at_level e l ~parents:sign ~children:0)
         fr.out
   | _ -> invalid_arg "Builder: subtree events must form one balanced element");
  if sign < 0 then Kernel.prune_empty kernel

let add_subtree ?(parent_gains_label = true) kernel ~at events =
  splice kernel ~sign:1 ~parent_edge_changes:parent_gains_label ~at events

let remove_subtree ?(parent_loses_label = true) kernel ~at events =
  splice kernel ~sign:(-1) ~parent_edge_changes:parent_loses_label ~at events
