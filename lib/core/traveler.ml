type open_info = {
  label : Xml.Label.t;
  dewey : Xml.Dewey.t;
  card : float;
  fsel : float;
  bsel : float;
}

type event =
  | Open of open_info
  | Close of { label : Xml.Label.t; dewey : Xml.Dewey.t }
  | Eos

(* A footprint (paper Algorithm 2): one frame per open vertex of the rooted
   synopsis path. *)
type footprint = {
  vertex : Xml.Label.t;
  card : float;
  fsel : float;
  bsel : float;
  hash : int;
  pkey : string;  (* canonical path key matching [hash], for HET lookups *)
  dewey : Xml.Dewey.t;
  edges : Kernel.edge array;  (* out-edges in deterministic order *)
  mutable child_idx : int;
  mutable opened : int;  (* children opened so far, for Dewey ranks *)
}

type state = Init | Running | Finished

type stats = {
  events : int;
  opened : int;
  pruned : int;
  max_recursion_level : int;
  max_depth_seen : int;
}

type t = {
  kernel : Kernel.t;
  het : Het.t option;
  threshold : float;
  recursion_aware : bool;
  max_depth : int;
  obs : Obs.t option;
  rl : Counter_stacks.t;
  mutable path : footprint list;
  mutable state : state;
  mutable emitted : int;
  mutable opened : int;
  mutable pruned : int;
  mutable max_rl : int;
  mutable max_depth_seen : int;
}

let create ?(card_threshold = 0.5) ?(recursion_aware = true) ?(max_depth = 60)
    ?het ?obs kernel =
  { kernel; het; threshold = card_threshold; recursion_aware; max_depth; obs;
    rl = Counter_stacks.create (); path = []; state = Init; emitted = 0;
    opened = 0; pruned = 0; max_rl = 0; max_depth_seen = 0 }

let stats t =
  { events = t.emitted; opened = t.opened; pruned = t.pruned;
    max_recursion_level = t.max_rl; max_depth_seen = t.max_depth_seen }

(* Publish once, on the transition to Finished. *)
let publish t =
  match t.obs with
  | None -> ()
  | Some _ as obs ->
    Obs.add_to ?obs "traveler.events" t.emitted;
    Obs.add_to ?obs "traveler.opened" t.opened;
    Obs.add_to ?obs "traveler.pruned" t.pruned;
    Obs.max_to ?obs "traveler.max_recursion_level" t.max_rl;
    Obs.max_to ?obs "traveler.max_depth" t.max_depth_seen

let out_edges_array kernel v = Array.of_list (Kernel.out_edges kernel v)

(* The paper's EST: estimate cardinality, fsel and bsel for extending the
   current path (whose top frame is [fp], recursion level [old_rl]) along
   edge [e], the new path having recursion level [rl]. *)
let est t fp (e : Kernel.edge) ~old_rl ~rl ~hash ~pkey =
  let card, bsel =
    let from_het =
      match t.het with
      | None -> None
      | Some het -> Het.lookup_simple het ~path:pkey hash
    in
    match from_het with
    | Some (card, Some bsel) -> (float_of_int card, bsel)
    | other ->
      let p_cnt, c_cnt = Kernel.edge_counts e rl in
      let approx_bsel =
        let s = Kernel.total_children t.kernel fp.vertex ~level:old_rl in
        if s = 0 then 0.0 else float_of_int p_cnt /. float_of_int s
      in
      (match other with
       | Some (card, None) -> (float_of_int card, approx_bsel)
       | _ -> (float_of_int c_cnt *. fp.fsel, approx_bsel))
  in
  let fsel =
    let s = Kernel.total_children t.kernel e.dst ~level:rl in
    if s = 0 then 0.0 else card /. float_of_int s
  in
  (card, fsel, bsel)

let open_root t =
  let root = Kernel.root t.kernel in
  ignore (Counter_stacks.push t.rl root : int);
  let fp =
    { vertex = root; card = 1.0; fsel = 1.0; bsel = 1.0;
      hash = Path_hash.extend Path_hash.empty root;
      pkey = string_of_int root; dewey = Xml.Dewey.root;
      edges = out_edges_array t.kernel root; child_idx = 0; opened = 0 }
  in
  t.path <- [ fp ];
  t.state <- Running;
  t.opened <- t.opened + 1;
  if t.max_depth_seen < 1 then t.max_depth_seen <- 1;
  Open { label = root; dewey = fp.dewey; card = 1.0; fsel = 1.0; bsel = 1.0 }

(* VISIT-NEXT-CHILD: advance depth-first from the top frame. *)
let rec visit_next t =
  match t.path with
  | [] ->
    t.state <- Finished;
    publish t;
    Eos
  | fp :: rest ->
    if fp.child_idx >= Array.length fp.edges then begin
      (* All children done: close this vertex. *)
      Counter_stacks.pop t.rl fp.vertex;
      t.path <- rest;
      Close { label = fp.vertex; dewey = fp.dewey }
    end
    else begin
      let e = fp.edges.(fp.child_idx) in
      fp.child_idx <- fp.child_idx + 1;
      let v = e.dst in
      let old_rl, rl =
        if t.recursion_aware then
          let old_rl = Counter_stacks.recursion_level t.rl in
          (old_rl, Counter_stacks.push t.rl v)
        else begin
          (* Ablation mode: level-0 statistics everywhere; the counter
             stacks still track the path for balanced pops. *)
          ignore (Counter_stacks.push t.rl v : int);
          (0, 0)
        end
      in
      let hash = Path_hash.extend fp.hash v in
      let pkey = fp.pkey ^ "/" ^ string_of_int v in
      let card, fsel, bsel = est t fp e ~old_rl ~rl ~hash ~pkey in
      if card <= t.threshold || Counter_stacks.depth t.rl > t.max_depth then begin
        (* END-TRAVELING: prune this branch. *)
        t.pruned <- t.pruned + 1;
        Counter_stacks.pop t.rl v;
        visit_next t
      end
      else begin
        t.opened <- t.opened + 1;
        if rl > t.max_rl then t.max_rl <- rl;
        let depth = Counter_stacks.depth t.rl in
        if depth > t.max_depth_seen then t.max_depth_seen <- depth;
        fp.opened <- fp.opened + 1;
        let child =
          { vertex = v; card; fsel; bsel; hash; pkey;
            dewey = Xml.Dewey.child fp.dewey fp.opened;
            edges = out_edges_array t.kernel v; child_idx = 0; opened = 0 }
        in
        t.path <- child :: t.path;
        Open { label = v; dewey = child.dewey; card; fsel; bsel }
      end
    end

let next t =
  let event =
    match t.state with
    | Init -> open_root t
    | Running -> visit_next t
    | Finished -> Eos
  in
  (match event with Eos -> () | _ -> t.emitted <- t.emitted + 1);
  event

let iter t ~f =
  let rec go () =
    match next t with
    | Eos -> ()
    | e ->
      f e;
      go ()
  in
  go ()

let events_generated t = t.emitted

let ept_to_xml ?card_threshold ?het kernel =
  let t = create ?card_threshold ?het kernel in
  let buf = Buffer.create 1024 in
  let name l = Xml.Label.name (Kernel.table kernel) l in
  let num x =
    (* Paper style: integers without a decimal point, plain decimals else. *)
    if Float.is_integer x && Float.abs x < 1e15 then
      string_of_int (int_of_float x)
    else Printf.sprintf "%g" x
  in
  (* Render with matching open/close tags; self-closing when childless needs
     lookahead, so buffer the pending open tag. *)
  let pending : open_info option ref = ref None in
  let flush_pending ~selfclose =
    match !pending with
    | None -> ()
    | Some info ->
      Buffer.add_string buf
        (Printf.sprintf "<%s dID=\"%s\" card=\"%s\" fsel=\"%s\" bsel=\"%s\"%s>"
           (name info.label)
           (Xml.Dewey.to_string info.dewey)
           (num info.card) (num info.fsel) (num info.bsel)
           (if selfclose then "/" else ""));
      pending := None
  in
  iter t ~f:(fun event ->
      match event with
      | Open info ->
        flush_pending ~selfclose:false;
        pending := Some info
      | Close { label; _ } ->
        if !pending <> None then flush_pending ~selfclose:true
        else Buffer.add_string buf (Printf.sprintf "</%s>" (name label))
      | Eos -> ());
  Buffer.contents buf
