(** CRC-32 checksums (IEEE 802.3 polynomial, the zlib/PNG variant) for
    synopsis file integrity. Dependency-free; the 32-bit value is returned
    as a non-negative [int]. *)

val digest : string -> int
(** Checksum of the whole string, in [0, 0xFFFFFFFF]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex (8 digits), the on-disk spelling. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
