type t = {
  kernel : Kernel.t;
  het : Het.t option;
  values : Value_synopsis.t option;
  card_threshold : float;
  obs : Obs.t option;
  mutable estimator : Estimator.t;
}

let build ?budget_bytes ?(with_het = true) ?(with_values = false) ?mbp
    ?bsel_threshold ?(card_threshold = 0.5) ?obs doc =
  let table = Xml.Label.create_table () in
  let kernel =
    Obs.span ?obs "synopsis.kernel_build" (fun () ->
        Builder.of_string ?obs ~table doc)
  in
  let het, values =
    if not (with_het || with_values) then (None, None)
    else begin
      let storage =
        Obs.span ?obs "synopsis.storage_build" (fun () ->
            Nok.Storage.of_string ~table ~with_values doc)
      in
      let het =
        if not with_het then None
        else begin
          let path_tree = Pathtree.Path_tree.of_string ~table doc in
          let het, stats =
            Obs.span ?obs "synopsis.het_build" (fun () ->
                Het_builder.build ?mbp ?bsel_threshold ~card_threshold ~kernel
                  ~path_tree ~storage ())
          in
          Obs.add_to ?obs "het.simple_entries" stats.Het_builder.simple_entries;
          Obs.add_to ?obs "het.branching_entries"
            stats.Het_builder.branching_entries;
          Obs.add_to ?obs "het.nok_evaluations" stats.Het_builder.nok_evaluations;
          Some het
        end
      in
      let values =
        if with_values then
          Some
            (Obs.span ?obs "synopsis.value_build" (fun () ->
                 Value_synopsis.build storage))
        else None
      in
      (het, values)
    end
  in
  (match (budget_bytes, het) with
   | Some budget, Some het ->
     Het.set_budget het ~bytes:(max 0 (budget - Kernel.size_in_bytes kernel))
   | _ -> ());
  let estimator = Estimator.create ~card_threshold ?het ?values ?obs kernel in
  { kernel; het; values; card_threshold; obs; estimator }

let kernel t = t.kernel
let het t = t.het
let values t = t.values
let estimator t = t.estimator

let estimate t query = Estimator.estimate_string t.estimator query

let set_budget t ~bytes =
  match t.het with
  | None -> ()
  | Some het ->
    Het.set_budget het ~bytes:(max 0 (bytes - Kernel.size_in_bytes t.kernel));
    t.estimator <-
      Estimator.create ~card_threshold:t.card_threshold ~het ?values:t.values
        ?obs:t.obs t.kernel

let kernel_size_in_bytes t = Kernel.size_in_bytes t.kernel

let size_in_bytes t =
  kernel_size_in_bytes t
  + (match t.het with None -> 0 | Some h -> Het.size_in_bytes h)

(* Serialization: a label-table section (preserving interning order, which
   HET hashes depend on), the kernel dump, then optionally the HET dump. *)
let label_marker = "---kernel---\n"
let het_marker = "---het---\n"
let values_marker = "---values---\n"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "xseed-synopsis v1\n";
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\n')
    (Xml.Label.names (Kernel.table t.kernel));
  Buffer.add_string buf label_marker;
  Buffer.add_string buf (Kernel.to_string t.kernel);
  (match t.het with
   | Some het ->
     Buffer.add_string buf het_marker;
     Buffer.add_string buf (Het.to_string het)
   | None -> ());
  (match t.values with
   | Some values ->
     Buffer.add_string buf values_marker;
     Buffer.add_string buf (Value_synopsis.to_string values)
   | None -> ());
  Buffer.contents buf

let find_marker contents marker =
  let n = String.length marker in
  let rec go i =
    if i + n > String.length contents then None
    else if String.sub contents i n = marker then Some i
    else go (i + 1)
  in
  go 0

let of_string contents =
  let kernel_at =
    match find_marker contents label_marker with
    | Some i -> i
    | None -> invalid_arg "Synopsis.of_string: missing kernel section"
  in
  let table = Xml.Label.create_table () in
  (match String.split_on_char '\n' (String.sub contents 0 kernel_at) with
   | "xseed-synopsis v1" :: names ->
     List.iter
       (fun name -> if name <> "" then ignore (Xml.Label.intern table name : int))
       names
   | _ -> invalid_arg "Synopsis.of_string: bad header");
  let body =
    String.sub contents
      (kernel_at + String.length label_marker)
      (String.length contents - kernel_at - String.length label_marker)
  in
  (* Peel the optional values section off the tail first. *)
  let body, values =
    match find_marker body values_marker with
    | None -> (body, None)
    | Some i ->
      ( String.sub body 0 i,
        Some
          (Value_synopsis.of_string ~table
             (String.sub body
                (i + String.length values_marker)
                (String.length body - i - String.length values_marker))) )
  in
  let kernel, het =
    match find_marker body het_marker with
    | None -> (Kernel.of_string ~table body, None)
    | Some i ->
      ( Kernel.of_string ~table (String.sub body 0 i),
        Some
          (Het.of_string
             (String.sub body
                (i + String.length het_marker)
                (String.length body - i - String.length het_marker))) )
  in
  let card_threshold = 0.5 in
  let estimator = Estimator.create ~card_threshold ?het ?values kernel in
  { kernel; het; values; card_threshold; obs = None; estimator }

let pp ppf t =
  Format.fprintf ppf "XSEED synopsis: kernel %dB (%d vertices, %d edges)%a"
    (kernel_size_in_bytes t) (Kernel.vertex_count t.kernel)
    (Kernel.edge_count t.kernel)
    (fun ppf -> function
      | None -> Format.fprintf ppf ", no HET"
      | Some h -> Format.fprintf ppf ", %a" Het.pp h)
    t.het
