type t = {
  kernel : Kernel.t;
  het : Het.t option;
  values : Value_synopsis.t option;
  card_threshold : float;
  obs : Obs.t option;
  mutable estimator : Estimator.t;
}

let build ?budget_bytes ?(with_het = true) ?(with_values = false) ?mbp
    ?bsel_threshold ?(card_threshold = 0.5) ?obs doc =
  let table = Xml.Label.create_table () in
  let kernel =
    Obs.span ?obs "synopsis.kernel_build" (fun () ->
        Builder.of_string ?obs ~table doc)
  in
  let het, values =
    if not (with_het || with_values) then (None, None)
    else begin
      let storage =
        Obs.span ?obs "synopsis.storage_build" (fun () ->
            Nok.Storage.of_string ~table ~with_values doc)
      in
      let het =
        if not with_het then None
        else begin
          let path_tree = Pathtree.Path_tree.of_string ~table doc in
          let het, stats =
            Obs.span ?obs "synopsis.het_build" (fun () ->
                Het_builder.build ?mbp ?bsel_threshold ~card_threshold ~kernel
                  ~path_tree ~storage ())
          in
          Obs.add_to ?obs "het.simple_entries" stats.Het_builder.simple_entries;
          Obs.add_to ?obs "het.branching_entries"
            stats.Het_builder.branching_entries;
          Obs.add_to ?obs "het.nok_evaluations" stats.Het_builder.nok_evaluations;
          Some het
        end
      in
      let values =
        if with_values then
          Some
            (Obs.span ?obs "synopsis.value_build" (fun () ->
                 Value_synopsis.build storage))
        else None
      in
      (het, values)
    end
  in
  (match (budget_bytes, het) with
   | Some budget, Some het ->
     Het.set_budget het ~bytes:(max 0 (budget - Kernel.size_in_bytes kernel))
   | _ -> ());
  let estimator = Estimator.create ~card_threshold ?het ?values ?obs kernel in
  { kernel; het; values; card_threshold; obs; estimator }

let build_result ?budget_bytes ?with_het ?with_values ?mbp ?bsel_threshold
    ?card_threshold ?obs doc =
  Error.guard (fun () ->
      build ?budget_bytes ?with_het ?with_values ?mbp ?bsel_threshold
        ?card_threshold ?obs doc)

let kernel t = t.kernel
let het t = t.het
let values t = t.values
let estimator t = t.estimator
let card_threshold t = t.card_threshold

let estimate t query = Estimator.estimate_string t.estimator query

let set_budget t ~bytes =
  match t.het with
  | None -> ()
  | Some het ->
    Het.set_budget het ~bytes:(max 0 (bytes - Kernel.size_in_bytes t.kernel));
    t.estimator <-
      Estimator.create ~card_threshold:t.card_threshold ~het ?values:t.values
        ?obs:t.obs t.kernel

let kernel_size_in_bytes t = Kernel.size_in_bytes t.kernel

let size_in_bytes t =
  kernel_size_in_bytes t
  + (match t.het with None -> 0 | Some h -> Het.size_in_bytes h)

(* Serialization. Two formats:

   - v1 (legacy, still readable): label table, kernel, HET and values
     concatenated with marker lines. The markers are found by scanning the
     whole payload, so a label or HET line that happens to contain a marker
     string mis-splits the file — a documented limitation fixed by v2.
   - v2 (default): a header carrying [card_threshold] and, per section, a
     byte length and a CRC-32, followed by the raw section payloads. Any
     truncation or byte flip in a payload is caught by the length/checksum
     check before section parsing starts; marker collisions are impossible
     because nothing is ever scanned for. See DESIGN.md for the layout. *)

let label_marker = "---kernel---\n"
let het_marker = "---het---\n"
let values_marker = "---values---\n"

let corrupt ?position ?section fmt =
  Error.raisef ?position ?section Error.Corrupt_synopsis fmt

(* Sections in canonical order; labels first (preserving interning order,
   which HET hashes depend on), then the kernel, then the optional parts. *)
let sections_of t =
  let labels =
    String.concat ""
      (List.map (fun n -> n ^ "\n") (Xml.Label.names (Kernel.table t.kernel)))
  in
  [ ("labels", labels); ("kernel", Kernel.to_string t.kernel) ]
  @ (match t.het with Some h -> [ ("het", Het.to_string h) ] | None -> [])
  @ (match t.values with
     | Some v -> [ ("values", Value_synopsis.to_string v) ]
     | None -> [])

let to_string_v1 t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "xseed-synopsis v1\n";
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\n')
    (Xml.Label.names (Kernel.table t.kernel));
  Buffer.add_string buf label_marker;
  Buffer.add_string buf (Kernel.to_string t.kernel);
  (match t.het with
   | Some het ->
     Buffer.add_string buf het_marker;
     Buffer.add_string buf (Het.to_string het)
   | None -> ());
  (match t.values with
   | Some values ->
     Buffer.add_string buf values_marker;
     Buffer.add_string buf (Value_synopsis.to_string values)
   | None -> ());
  Buffer.contents buf

let to_string_v2 t =
  let sections = sections_of t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "xseed-synopsis v2\n";
  Buffer.add_string buf (Printf.sprintf "card_threshold %h\n" t.card_threshold);
  List.iter
    (fun (name, payload) ->
      Buffer.add_string buf
        (Printf.sprintf "section %s %d %s\n" name (String.length payload)
           (Crc32.to_hex (Crc32.digest payload))))
    sections;
  Buffer.add_string buf "end\n";
  List.iter (fun (_, payload) -> Buffer.add_string buf payload) sections;
  Buffer.contents buf

let to_string ?(version = `V2) t =
  match version with `V1 -> to_string_v1 t | `V2 -> to_string_v2 t

let find_marker contents marker =
  let n = String.length marker in
  let rec go i =
    if i + n > String.length contents then None
    else if String.sub contents i n = marker then Some i
    else go (i + 1)
  in
  go 0

let ok_or_raise = function Ok v -> v | Error e -> raise (Error.Xseed e)

let check_kernel kernel =
  if Kernel.vertex_count kernel = 0 then
    corrupt ~section:"kernel" "empty kernel (no vertices)";
  kernel

let of_string_v1_exn contents =
  let kernel_at =
    match find_marker contents label_marker with
    | Some i -> i
    | None -> corrupt ~section:"header" "missing kernel section marker"
  in
  let table = Xml.Label.create_table () in
  (match String.split_on_char '\n' (String.sub contents 0 kernel_at) with
   | "xseed-synopsis v1" :: names ->
     List.iter
       (fun name -> if name <> "" then ignore (Xml.Label.intern table name : int))
       names
   | _ -> corrupt ~section:"header" "bad v1 header");
  let body =
    String.sub contents
      (kernel_at + String.length label_marker)
      (String.length contents - kernel_at - String.length label_marker)
  in
  (* Peel the optional values section off the tail first. *)
  let body, values =
    match find_marker body values_marker with
    | None -> (body, None)
    | Some i ->
      ( String.sub body 0 i,
        Some
          (ok_or_raise
             (Value_synopsis.of_string_result ~table
                (String.sub body
                   (i + String.length values_marker)
                   (String.length body - i - String.length values_marker)))) )
  in
  let kernel, het =
    match find_marker body het_marker with
    | None -> (ok_or_raise (Kernel.of_string_result ~table body), None)
    | Some i ->
      ( ok_or_raise (Kernel.of_string_result ~table (String.sub body 0 i)),
        Some
          (ok_or_raise
             (Het.of_string_result
                (String.sub body
                   (i + String.length het_marker)
                   (String.length body - i - String.length het_marker)))) )
  in
  let kernel = check_kernel kernel in
  (* v1 has nowhere to store the build threshold; fall back to the default. *)
  let card_threshold = 0.5 in
  let estimator = Estimator.create ~card_threshold ?het ?values kernel in
  { kernel; het; values; card_threshold; obs = None; estimator }

let section_names = [ "labels"; "kernel"; "het"; "values" ]

let read_line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> None
  | Some i -> Some (String.sub s pos (i - pos), i + 1)

let of_string_v2_exn contents =
  let card_threshold = ref 0.5 in
  let sections = ref [] in
  (* Header: one line per field, terminated by "end"; everything after the
     "end" line is raw payload bytes. *)
  let rec header pos lineno =
    match read_line contents pos with
    | None ->
      corrupt ~section:"header" ~position:lineno "unterminated header (no 'end')"
    | Some (line, pos') ->
      (match String.split_on_char ' ' line with
       | [ "end" ] -> pos'
       | [ "card_threshold"; v ] ->
         (match float_of_string_opt v with
          | Some x when Float.is_finite x ->
            card_threshold := x;
            header pos' (lineno + 1)
          | _ ->
            corrupt ~section:"header" ~position:lineno "bad card_threshold %S" v)
       | [ "section"; name; len; crc ] ->
         (match (int_of_string_opt len, Crc32.of_hex crc) with
          | Some len, Some crc when len >= 0 ->
            if not (List.mem name section_names) then
              corrupt ~section:"header" ~position:lineno "unknown section %S" name;
            if List.exists (fun (n, _, _) -> n = name) !sections then
              corrupt ~section:"header" ~position:lineno "duplicate section %S"
                name;
            sections := (name, len, crc) :: !sections;
            header pos' (lineno + 1)
          | _ ->
            corrupt ~section:"header" ~position:lineno "bad section line: %s" line)
       | _ -> corrupt ~section:"header" ~position:lineno "bad header line: %s" line)
  in
  let body_start =
    match read_line contents 0 with
    | Some ("xseed-synopsis v2", pos) -> pos
    | _ -> corrupt ~section:"header" ~position:1 "bad v2 magic line"
  in
  let payload_start = header body_start 2 in
  let sections = List.rev !sections in
  let names = List.map (fun (n, _, _) -> n) sections in
  if names <> List.filter (fun n -> List.mem n names) section_names then
    corrupt ~section:"header" "sections out of canonical order";
  if not (List.mem "labels" names) || not (List.mem "kernel" names) then
    corrupt ~section:"header" "missing mandatory labels/kernel section";
  let total = List.fold_left (fun acc (_, len, _) -> acc + len) 0 sections in
  let avail = String.length contents - payload_start in
  if avail < total then
    corrupt ~section:"header" "truncated payload: header promises %d bytes, %d present"
      total avail;
  if avail > total then
    corrupt ~section:"header" "%d bytes of trailing garbage after the last section"
      (avail - total);
  (* Slice and checksum every section before parsing any of them, so a
     corruption report always points at the file, not at a parser. *)
  let slices, _ =
    List.fold_left
      (fun (acc, off) (name, len, crc) ->
        let payload = String.sub contents off len in
        let computed = Crc32.digest payload in
        if computed <> crc then
          corrupt ~section:name "checksum mismatch: header %s, payload %s"
            (Crc32.to_hex crc) (Crc32.to_hex computed);
        ((name, payload) :: acc, off + len))
      ([], payload_start) sections
  in
  let slices = List.rev slices in
  let table = Xml.Label.create_table () in
  List.iter
    (fun name -> if name <> "" then ignore (Xml.Label.intern table name : int))
    (String.split_on_char '\n' (List.assoc "labels" slices));
  let kernel =
    check_kernel (ok_or_raise (Kernel.of_string_result ~table (List.assoc "kernel" slices)))
  in
  let het =
    Option.map (fun s -> ok_or_raise (Het.of_string_result s))
      (List.assoc_opt "het" slices)
  in
  let values =
    Option.map
      (fun s -> ok_or_raise (Value_synopsis.of_string_result ~table s))
      (List.assoc_opt "values" slices)
  in
  let card_threshold = !card_threshold in
  let estimator = Estimator.create ~card_threshold ?het ?values kernel in
  { kernel; het; values; card_threshold; obs = None; estimator }

let of_string_result contents =
  Error.guard (fun () ->
      match read_line contents 0 with
      | Some ("xseed-synopsis v1", _) -> of_string_v1_exn contents
      | Some ("xseed-synopsis v2", _) -> of_string_v2_exn contents
      | _ ->
        corrupt ~section:"header" ~position:1
          "not a synopsis file (unrecognized first line)")

let of_string contents =
  match of_string_result contents with
  | Ok t -> t
  | Error e -> invalid_arg ("Synopsis.of_string: " ^ Error.to_string e)

let pp ppf t =
  Format.fprintf ppf "XSEED synopsis: kernel %dB (%d vertices, %d edges)%a"
    (kernel_size_in_bytes t) (Kernel.vertex_count t.kernel)
    (Kernel.edge_count t.kernel)
    (fun ppf -> function
      | None -> Format.fprintf ppf ", no HET"
      | Some h -> Format.fprintf ppf ", %a" Het.pp h)
    t.het
