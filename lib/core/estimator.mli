(** Public cardinality-estimation API: kernel + optional HET + tuning knobs.

    [estimate] runs the paper's full pipeline — traveler over the kernel
    (EST, with HET simple-path overrides), matcher over the EPT (with HET
    correlated-bsel overrides) — and returns the estimated number of nodes
    the query selects. *)

type t

val create :
  ?card_threshold:float ->
  ?max_ept_nodes:int ->
  ?recursion_aware:bool ->
  ?het:Het.t ->
  ?values:Value_synopsis.t ->
  ?obs:Obs.t ->
  Kernel.t ->
  t
(** [card_threshold] defaults to 0.5 (expand everything estimated at one
    node or more); raise it to ~20 for highly recursive data, as the paper
    does for Treebank. [max_ept_nodes] defaults to 2_000_000.
    [recursion_aware:false] is the ablation switch of
    {!Traveler.create}: pair it with {!Kernel.collapse_levels} to measure
    what the paper's recursion-level vectors buy. [values] enables
    value-predicate selectivity estimation (ignored factor-1 otherwise).
    [obs] is threaded into every traveler and matcher run this estimator
    performs, accumulating [traveler.*] and [matcher.*] metrics. *)

val kernel : t -> Kernel.t
val het : t -> Het.t option
val values : t -> Value_synopsis.t option
val card_threshold : t -> float
val max_ept_nodes : t -> int
val recursion_aware : t -> bool

val estimate : t -> Xpath.Ast.t -> float
(** Estimated cardinality |p|. The EPT is regenerated per call, matching the
    paper's per-query estimation cost; use {!ept}+{!estimate_on} to amortize
    it across a workload. *)

val estimate_string : t -> string -> float
(** Parse then estimate. @raise Xpath.Parser.Error on a bad query. *)

val ept : t -> Matcher.ept
(** Materialize the EPT once. *)

val estimate_on : t -> Matcher.ept -> Xpath.Ast.t -> float

val record_feedback : t -> Xpath.Ast.t -> actual:int -> unit
(** Feed the actual cardinality of an executed query back into the HET
    (paper Figure 1). Simple paths insert an exact-cardinality entry keyed by
    their path hash; queries whose last spine step carries single-label
    predicates insert a correlated-bsel entry. No-op when the estimator has
    no HET or the query shape fits neither pattern. *)

val size_in_bytes : t -> int
(** Kernel plus active HET footprint — the paper's memory-budget number. *)
