(** Public cardinality-estimation API: kernel + optional HET + tuning knobs.

    [estimate] runs the paper's full pipeline — traveler over the kernel
    (EST, with HET simple-path overrides), matcher over the EPT (with HET
    correlated-bsel overrides) — and returns the estimated number of nodes
    the query selects. *)

type t

val create :
  ?card_threshold:float ->
  ?max_ept_nodes:int ->
  ?recursion_aware:bool ->
  ?het:Het.t ->
  ?values:Value_synopsis.t ->
  ?obs:Obs.t ->
  Kernel.t ->
  t
(** [card_threshold] defaults to 0.5 (expand everything estimated at one
    node or more); raise it to ~20 for highly recursive data, as the paper
    does for Treebank. [max_ept_nodes] defaults to 2_000_000.
    [recursion_aware:false] is the ablation switch of
    {!Traveler.create}: pair it with {!Kernel.collapse_levels} to measure
    what the paper's recursion-level vectors buy. [values] enables
    value-predicate selectivity estimation (ignored factor-1 otherwise).
    [obs] is threaded into every traveler and matcher run this estimator
    performs, accumulating [traveler.*] and [matcher.*] metrics. *)

val kernel : t -> Kernel.t
val het : t -> Het.t option
val values : t -> Value_synopsis.t option
val card_threshold : t -> float
val max_ept_nodes : t -> int
val recursion_aware : t -> bool

val estimate : t -> Xpath.Ast.t -> float
(** Estimated cardinality |p|. The EPT is regenerated per call, matching the
    paper's per-query estimation cost; use {!ept}+{!estimate_on} to amortize
    it across a workload. The result is always finite and non-negative:
    degenerate values (NaN, infinity, negatives — possible only with
    inconsistent synopsis statistics) are clamped and counted on the
    [estimator.degenerate_clamps] Obs counter. *)

val estimate_string : t -> string -> float
(** Parse then estimate. @raise Xpath.Parser.Error on a bad query. *)

type outcome = {
  value : float;  (** the (clamped) estimate *)
  clamped : int;  (** 1 if the raw estimate was degenerate, else 0 *)
  unknown_labels : string list;
      (** name tests absent from the synopsis's label table, in query
          order. Unknown names are never interned into the table; they
          simply match nothing. *)
}

val estimate_result : t -> Xpath.Ast.t -> (outcome, Error.t) result
(** Total-function estimation: an empty query or one whose query tree
    exceeds the matcher's 62-node bitset limit is [Malformed_query]; an EPT
    blow-up past [max_ept_nodes] is [Limit_exceeded]. Never raises on any
    parseable query, and [outcome.value] is never NaN. *)

val estimate_string_result : t -> string -> (outcome, Error.t) result
(** {!estimate_result} after parsing; a syntax error is [Malformed_query]
    with the byte position. *)

val estimate_result_on : t -> Matcher.ept Lazy.t -> Xpath.Ast.t -> (outcome, Error.t) result
(** {!estimate_result} against a caller-held EPT, for serving layers that
    amortize materialization across queries. The EPT is forced inside the
    error guard, so a deferred blow-up still comes back as
    [Limit_exceeded]. *)

val estimate_result_stats_on :
  t ->
  Matcher.ept Lazy.t ->
  Xpath.Ast.t ->
  (outcome * Matcher.match_stats, Error.t) result
(** {!estimate_result_on} that also returns the per-query
    {!Matcher.match_stats} (frontier peak, EPT nodes visited, HET
    overrides, …) so a serving layer can attribute them to the query —
    the flight recorder's data source. Stats are still published to the
    estimator's [obs] context exactly as {!estimate_result_on} does. *)

val clamp_estimate : ?obs:Obs.t -> float -> float * int
(** [(clamped value, 1 if clamping fired else 0)]; bumps
    [estimator.degenerate_clamps] when it fires. Exposed for callers that
    run {!Matcher.estimate} directly. *)

val unknown_labels : t -> Xpath.Ast.t -> string list
(** The [outcome.unknown_labels] computation alone (including name tests
    inside predicates). *)

val ept : t -> Matcher.ept
(** Materialize the EPT once. *)

val estimate_on : t -> Matcher.ept -> Xpath.Ast.t -> float

val record_feedback : ?ept:Matcher.ept -> t -> Xpath.Ast.t -> actual:int -> bool
(** Feed the actual cardinality of an executed query back into the HET
    (paper Figure 1). Simple paths insert an exact-cardinality entry keyed by
    their path hash; queries whose last spine step carries single-label
    predicates insert a correlated-bsel entry. Returns whether an entry was
    inserted or refreshed: [false] when the estimator has no HET or the
    query shape fits neither pattern. [ept] reuses a caller-held EPT for
    the error computation instead of re-materializing one per call. *)

val size_in_bytes : t -> int
(** Kernel plus active HET footprint — the paper's memory-budget number. *)
