type cache_status = Hit | Miss | Bypass

let cache_status_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"

type report = {
  query : string;
  estimate : float;
  cache : cache_status;
  feedback_rounds : int;
  card_threshold : float;
  kernel_vertices : int;
  kernel_edges : int;
  synopsis_bytes : int;
  ept_nodes : int;
  traveler : Traveler.stats;
  matcher : Matcher.match_stats;
  het_active : int option;
  het_total : int option;
  het_usage : Het.counters option;
  ept_seconds : float;
  match_seconds : float;
  total_seconds : float;
  assumptions : string list;
  degenerate_clamps : int;
  unknown_labels : string list;
}

(* Derive the assumption trail from the counters: every quantity the final
   estimate rests on either came from an exact HET entry or from one of the
   paper's independence approximations. *)
let assumptions_of ~(path : Xpath.Ast.t) ~(ms : Matcher.match_stats)
    ~(traveler : Traveler.stats) ~(het_usage : Het.counters option) =
  let acc = ref [] in
  let addf fmt = Format.kasprintf (fun s -> acc := s :: !acc) fmt in
  (match het_usage with
   | Some u ->
     if u.simple_hits > 0 then
       addf "HET simple-path override: exact cardinality/bsel used for %d of %d \
             traveler lookups"
         u.simple_hits u.simple_lookups;
     if u.simple_lookups > u.simple_hits then
       addf "path-step independence: card = child_count x fsel(parent) for %d \
             HET-miss steps"
         (u.simple_lookups - u.simple_hits)
   | None ->
     if traveler.opened > 1 then
       addf "path-step independence: card = child_count x fsel(parent) for every \
             non-root EPT step (no HET)");
  if ms.het_joint_overrides > 0 then
    addf "HET joint-pattern override: correlated bsel replaced the sibling \
          product %d time%s"
      ms.het_joint_overrides
      (if ms.het_joint_overrides = 1 then "" else "s");
  if ms.het_single_overrides > 0 then
    addf "HET single-pattern override: correlated bsel used for %d predicate%s"
      ms.het_single_overrides
      (if ms.het_single_overrides = 1 then "" else "s");
  if ms.independence_preds > 0 then
    addf "sibling independence: noisy-or over EPT alternatives for %d predicate \
          factor%s"
      ms.independence_preds
      (if ms.independence_preds = 1 then "" else "s");
  if List.exists (fun (s : Xpath.Ast.step) -> s.axis = Xpath.Ast.Descendant) path
  then
    addf "ancestor-descendant independence: descendant steps combine ancestor \
          probabilities with noisy-or";
  List.rev !acc

let run ?obs estimator path =
  Obs.span ?obs "explain" (fun () ->
      let kernel = Estimator.kernel estimator in
      let het = Estimator.het estimator in
      let values = Estimator.values estimator in
      let het_before = Option.map Het.counters het in
      let t0 = Obs.now_mono () in
      let traveler =
        Traveler.create
          ~card_threshold:(Estimator.card_threshold estimator)
          ~recursion_aware:(Estimator.recursion_aware estimator)
          ?het ?obs kernel
      in
      let ept =
        Matcher.materialize ~max_nodes:(Estimator.max_ept_nodes estimator) ?obs
          traveler
      in
      let t1 = Obs.now_mono () in
      let estimate, ms =
        Matcher.estimate_with_stats ?het ?values ~table:(Kernel.table kernel) ept
          (Xpath.Query_tree.of_path path)
      in
      let t2 = Obs.now_mono () in
      let estimate, degenerate_clamps = Estimator.clamp_estimate ?obs estimate in
      let unknown_labels = Estimator.unknown_labels estimator path in
      Matcher.publish_stats ?obs ms;
      let het_usage =
        match (het, het_before) with
        | Some h, Some before ->
          Some (Het.diff_counters ~before ~after:(Het.counters h))
        | _ -> None
      in
      let tstats = Traveler.stats traveler in
      { query = Xpath.Ast.to_string path;
        estimate;
        (* Direct runs never consult an estimate cache; a serving layer
           (Engine) overrides these two fields on its reports. *)
        cache = Bypass;
        feedback_rounds = 0;
        card_threshold = Estimator.card_threshold estimator;
        kernel_vertices = Kernel.vertex_count kernel;
        kernel_edges = Kernel.edge_count kernel;
        synopsis_bytes = Estimator.size_in_bytes estimator;
        ept_nodes = Matcher.node_count ept;
        traveler = tstats;
        matcher = ms;
        het_active = Option.map Het.active_count het;
        het_total = Option.map Het.total_count het;
        het_usage;
        ept_seconds = t1 -. t0;
        match_seconds = t2 -. t1;
        total_seconds = t2 -. t0;
        assumptions = assumptions_of ~path ~ms ~traveler:tstats ~het_usage;
        degenerate_clamps;
        unknown_labels })

let run_string ?obs estimator query =
  run ?obs estimator (Xpath.Parser.parse query)

let pp ppf r =
  let ms s = 1000.0 *. s in
  Format.fprintf ppf "@[<v>explain %s@," r.query;
  Format.fprintf ppf "  estimate     %.2f@," r.estimate;
  Format.fprintf ppf "  cache        %s (%d feedback round%s applied)@,"
    (cache_status_name r.cache) r.feedback_rounds
    (if r.feedback_rounds = 1 then "" else "s");
  Format.fprintf ppf
    "  wall clock   %.3f ms  (ept build %.3f ms, match %.3f ms)@,"
    (ms r.total_seconds) (ms r.ept_seconds) (ms r.match_seconds);
  Format.fprintf ppf
    "  synopsis     %d vertices, %d edges, %d B total (card_threshold %g)@,"
    r.kernel_vertices r.kernel_edges r.synopsis_bytes r.card_threshold;
  Format.fprintf ppf
    "  EPT          %d nodes emitted, %d branches pruned, max recursion level \
     %d, max depth %d@,"
    r.traveler.opened r.traveler.pruned r.traveler.max_recursion_level
    r.traveler.max_depth_seen;
  Format.fprintf ppf
    "  matcher      frontier peak %d, frontier mean %.1f, match steps %d@,"
    r.matcher.frontier_peak
    (if r.matcher.ept_nodes > 0 then
       float_of_int r.matcher.frontier_sum /. float_of_int r.matcher.ept_nodes
     else 0.0)
    r.matcher.match_steps;
  (match (r.het_active, r.het_total, r.het_usage) with
   | Some active, Some total, Some u ->
     Format.fprintf ppf
       "  HET          %d/%d entries active; simple %d lookups / %d hits / %d \
        misses; branching %d lookups / %d hits; feedback inserts %d@,"
       active total u.simple_lookups u.simple_hits
       (u.simple_lookups - u.simple_hits)
       u.branching_lookups u.branching_hits u.feedback_inserts
   | _ -> Format.fprintf ppf "  HET          none (kernel-only estimate)@,");
  if r.degenerate_clamps > 0 then
    Format.fprintf ppf
      "  warning      raw estimate was degenerate (NaN/inf/negative); clamped@,";
  if r.unknown_labels <> [] then
    Format.fprintf ppf "  unknown      label%s not in synopsis: %s@,"
      (if List.length r.unknown_labels = 1 then "" else "s")
      (String.concat ", " r.unknown_labels);
  Format.fprintf ppf "  assumptions@,";
  List.iter (fun a -> Format.fprintf ppf "    - %s@," a) r.assumptions;
  Format.fprintf ppf "@]"

let to_json r =
  let open Obs.Json in
  let opt_int = function None -> Null | Some i -> Int i in
  Obj
    [ ("query", String r.query);
      ("estimate", Float r.estimate);
      ("cache", String (cache_status_name r.cache));
      ("feedback_rounds", Int r.feedback_rounds);
      ("card_threshold", Float r.card_threshold);
      ( "kernel",
        Obj
          [ ("vertices", Int r.kernel_vertices);
            ("edges", Int r.kernel_edges);
            ("synopsis_bytes", Int r.synopsis_bytes) ] );
      ( "wall_ms",
        Obj
          [ ("total", Float (1000.0 *. r.total_seconds));
            ("ept_build", Float (1000.0 *. r.ept_seconds));
            ("match", Float (1000.0 *. r.match_seconds)) ] );
      ( "ept",
        Obj
          [ ("nodes", Int r.ept_nodes);
            ("emitted", Int r.traveler.opened);
            ("pruned", Int r.traveler.pruned);
            ("max_recursion_level", Int r.traveler.max_recursion_level);
            ("max_depth", Int r.traveler.max_depth_seen) ] );
      ( "matcher",
        Obj
          [ ("frontier_peak", Int r.matcher.frontier_peak);
            ( "frontier_mean",
              Float
                (if r.matcher.ept_nodes > 0 then
                   float_of_int r.matcher.frontier_sum
                   /. float_of_int r.matcher.ept_nodes
                 else 0.0) );
            ("match_steps", Int r.matcher.match_steps);
            ("het_joint_overrides", Int r.matcher.het_joint_overrides);
            ("het_single_overrides", Int r.matcher.het_single_overrides);
            ("independence_preds", Int r.matcher.independence_preds) ] );
      ( "het",
        match r.het_usage with
        | None -> Null
        | Some u ->
          Obj
            [ ("active", opt_int r.het_active);
              ("total", opt_int r.het_total);
              ("simple_lookups", Int u.simple_lookups);
              ("simple_hits", Int u.simple_hits);
              ("simple_misses", Int (u.simple_lookups - u.simple_hits));
              ("branching_lookups", Int u.branching_lookups);
              ("branching_hits", Int u.branching_hits);
              ("feedback_inserts", Int u.feedback_inserts) ] );
      ("degenerate_clamps", Int r.degenerate_clamps);
      ("unknown_labels", List (List.map (fun a -> String a) r.unknown_labels));
      ("assumptions", List (List.map (fun a -> String a) r.assumptions)) ]
