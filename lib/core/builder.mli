(** Kernel construction (paper Algorithm 1) and incremental maintenance.

    Construction is a single SAX pass: the path stack carries, per open
    element, the set of (edge, recursion level) pairs contributed by its
    children so parent counts are bumped once per parent on the closing tag;
    the {!Counter_stacks} give the recursion level of each rooted path in
    expected O(1).

    Incremental maintenance replays only the added or deleted subtree,
    primed with its insertion path, and merges (or subtracts) the resulting
    deltas — the graph merge/subtract the paper defers to its tech report. *)

val of_string : ?obs:Obs.t -> ?table:Xml.Label.table -> string -> Kernel.t
(** When [obs] is given, runs under a [builder.of_string] span and publishes
    [builder.vertices], [builder.edges] and [builder.max_recursion_level]
    (plus the SAX parser's counters). *)

val of_events : ?obs:Obs.t -> ?table:Xml.Label.table -> Xml.Event.t list -> Kernel.t

val fold_into : Kernel.t -> (unit -> Xml.Event.t option) -> unit
(** Feed a pull stream of events into an existing kernel (streaming
    construction for documents that never fit in memory). *)

val add_subtree :
  ?parent_gains_label:bool -> Kernel.t -> at:Xml.Label.t list -> Xml.Event.t list -> unit
(** [add_subtree k ~at events] updates [k] as if the subtree given by
    [events] had been inserted under the rooted label path [at] (root label
    first, excluding the new subtree's root). The edge connecting the path's
    last label to the subtree root is updated too; its parent count moves
    only when [parent_gains_label] (default true) — pass false when the
    insertion parent already has a child with the subtree root's label.
    @raise Invalid_argument if [at] is empty (documents have one root) or
    the events are not a single balanced element. *)

val remove_subtree :
  ?parent_loses_label:bool -> Kernel.t -> at:Xml.Label.t list -> Xml.Event.t list -> unit
(** Inverse of {!add_subtree}: subtract the subtree's contribution. Pass
    [parent_loses_label:false] when the parent keeps other children with the
    subtree root's label. Counts are clamped at zero; emptied edges and
    vertices are pruned. *)
