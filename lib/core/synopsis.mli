(** One-call construction of a complete XSEED synopsis from a document:
    kernel + (optionally) HET, fitted to a memory budget.

    This is the API a DBMS optimizer integration would use; the pieces
    ({!Builder}, {!Het_builder}, {!Estimator}) remain available for finer
    control. *)

type t

val build :
  ?budget_bytes:int ->
  ?with_het:bool ->
  ?with_values:bool ->
  ?mbp:int ->
  ?bsel_threshold:float ->
  ?card_threshold:float ->
  ?obs:Obs.t ->
  string ->
  t
(** [build doc] parses [doc] once for each needed structure (kernel, and
    when [with_het] — default true — the path tree and NoK storage for HET
    precomputation). [with_values] (default false) additionally builds the
    value synopsis so value predicates are estimated rather than ignored.
    When [budget_bytes] is given, the HET keeps only the top entries such
    that kernel + HET fit the budget; the kernel itself is never reduced
    (it is the irreducible part of the design). [obs] instruments the whole
    build ([synopsis.*_build] spans, builder/SAX/HET counters) and is kept
    by the returned estimator. *)

val kernel : t -> Kernel.t
val het : t -> Het.t option
val values : t -> Value_synopsis.t option
val estimator : t -> Estimator.t

val estimate : t -> string -> float
(** Parse and estimate a query. *)

val set_budget : t -> bytes:int -> unit
(** Re-fit the HET to a new total budget (dynamic reconfiguration). *)

val size_in_bytes : t -> int
val kernel_size_in_bytes : t -> int

val to_string : t -> string
(** Persist kernel + HET, including the label table: HET hashes are computed
    over label ids, so interning order must survive the round trip. *)

val of_string : string -> t
(** @raise Invalid_argument on a malformed dump. *)

val pp : Format.formatter -> t -> unit
