(** One-call construction of a complete XSEED synopsis from a document:
    kernel + (optionally) HET, fitted to a memory budget.

    This is the API a DBMS optimizer integration would use; the pieces
    ({!Builder}, {!Het_builder}, {!Estimator}) remain available for finer
    control. *)

type t

val build :
  ?budget_bytes:int ->
  ?with_het:bool ->
  ?with_values:bool ->
  ?mbp:int ->
  ?bsel_threshold:float ->
  ?card_threshold:float ->
  ?obs:Obs.t ->
  string ->
  t
(** [build doc] parses [doc] once for each needed structure (kernel, and
    when [with_het] — default true — the path tree and NoK storage for HET
    precomputation). [with_values] (default false) additionally builds the
    value synopsis so value predicates are estimated rather than ignored.
    When [budget_bytes] is given, the HET keeps only the top entries such
    that kernel + HET fit the budget; the kernel itself is never reduced
    (it is the irreducible part of the design). [obs] instruments the whole
    build ([synopsis.*_build] spans, builder/SAX/HET counters) and is kept
    by the returned estimator. *)

val build_result :
  ?budget_bytes:int ->
  ?with_het:bool ->
  ?with_values:bool ->
  ?mbp:int ->
  ?bsel_threshold:float ->
  ?card_threshold:float ->
  ?obs:Obs.t ->
  string ->
  (t, Error.t) result
(** {!build}, but an ill-formed document or a fired resource limit comes
    back as [Error] instead of an exception. *)

val kernel : t -> Kernel.t
val het : t -> Het.t option
val values : t -> Value_synopsis.t option
val estimator : t -> Estimator.t

val card_threshold : t -> float
(** The HET precomputation threshold the synopsis was built with. Persisted
    by the v2 file format; v1 files load with the default (0.5). *)

val estimate : t -> string -> float
(** Parse and estimate a query. *)

val set_budget : t -> bytes:int -> unit
(** Re-fit the HET to a new total budget (dynamic reconfiguration). *)

val size_in_bytes : t -> int
val kernel_size_in_bytes : t -> int

val to_string : ?version:[ `V1 | `V2 ] -> t -> string
(** Persist kernel + HET + values, including the label table: HET hashes
    are computed over label ids, so interning order must survive the round
    trip.

    [`V2] (the default) writes a header with the [card_threshold] and a
    per-section byte length and CRC-32 checksum, so truncation and byte
    corruption are detected on load. [`V1] writes the legacy
    marker-delimited format (which cannot store the threshold and is
    confused by section payloads that contain a marker line). *)

val of_string : string -> t
(** @raise Invalid_argument on a malformed dump. *)

val of_string_result : string -> (t, Error.t) result
(** Version-negotiating loader: reads both v1 and v2 dumps, returning a
    [Corrupt_synopsis] error (with section name, and line number where
    meaningful) on any truncated, checksum-mismatched or unparseable
    input. A loaded synopsis always has a non-empty kernel, so estimation
    over it cannot raise. *)

val pp : Format.formatter -> t -> unit
