(** Structured errors for every untrusted input boundary of the library:
    XML documents, XPath queries, synopsis files, and the filesystem.

    All [*_result] entry points ({!Synopsis.of_string_result},
    {!Kernel.of_string_result}, {!Estimator.estimate_string_result}, ...)
    return [(_, Error.t) result] instead of raising, so a host system (a
    query optimizer, a server) can treat any bad input as data, not as a
    crash. The legacy raising APIs remain as thin wrappers. *)

type kind =
  | Malformed_xml  (** ill-formed document (SAX parse error) *)
  | Malformed_query  (** XPath syntax error, or an unsupported query shape *)
  | Corrupt_synopsis
      (** truncated, checksum-mismatched or unparseable synopsis file *)
  | Limit_exceeded  (** a configured resource guard fired (see {!Xml.Sax.limits}) *)
  | Missing_file  (** input path does not exist *)
  | Io_error  (** the OS refused a read or write *)
  | Internal  (** an invariant violation surfaced as an exception *)
  | Timeout  (** a per-request deadline expired before the answer was ready *)
  | Overloaded
      (** admission control shed the request instead of queueing it *)

type t = {
  kind : kind;
  position : int option;
      (** byte offset for XML/XPath input; line number within a synopsis
          section for deserializers *)
  section : string option;
      (** synopsis section name: ["header"], ["labels"], ["kernel"],
          ["het"], ["values"] *)
  message : string;
}

exception Xseed of t
(** The single exception the raising wrappers and the CLI funnel through. *)

val make : ?position:int -> ?section:string -> kind -> string -> t

val raisef :
  ?position:int ->
  ?section:string ->
  kind ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Format a message and raise {!Xseed}. *)

val kind : t -> kind
val position : t -> int option
val section : t -> string option
val message : t -> string

val exit_code : t -> int
(** The CLI exit-code contract (sysexits.h): 65 for malformed data of any
    kind (XML, query, synopsis, limit), 66 for a missing file, 74 for an
    I/O error, 70 for internal errors, 75 (EX_TEMPFAIL) for the transient
    serving failures ({!Timeout}, {!Overloaded}). 64 (usage) is produced
    by the command-line layer itself. *)

val kind_name : kind -> string
(** Stable kebab-case identifier, used in JSON output and tests. *)

val pp : Format.formatter -> t -> unit
(** One-line human diagnostic: kind, position/section, message. *)

val to_string : t -> string
val to_json : t -> Obs.Json.t

val of_exn : exn -> t option
(** Map a known exception ({!Xseed}, {!Xml.Sax.Malformed},
    {!Xml.Sax.Limit}, {!Xpath.Parser.Error}, [Sys_error], [End_of_file],
    [Invalid_argument], [Failure]) to a structured error; [None] for
    anything else. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run [f], converting any {!of_exn}-known exception to [Error]. Unknown
    exceptions propagate. *)
