type edge = {
  src : Xml.Label.t;
  dst : Xml.Label.t;
  mutable p_cnt : int array;
  mutable c_cnt : int array;
  mutable levels : int;
}

type t = {
  tbl : Xml.Label.table;
  vertices : (Xml.Label.t, unit) Hashtbl.t;
  edges : (int, edge) Hashtbl.t;  (* keyed by src * 2^20 + dst *)
  outs : (Xml.Label.t, edge list ref) Hashtbl.t;
  ins : (Xml.Label.t, edge list ref) Hashtbl.t;
  mutable root_label : Xml.Label.t option;
}

let edge_key src dst = (src lsl 20) lor dst

let create ?table () =
  let tbl = match table with Some t -> t | None -> Xml.Label.create_table () in
  { tbl; vertices = Hashtbl.create 64; edges = Hashtbl.create 128;
    outs = Hashtbl.create 64; ins = Hashtbl.create 64; root_label = None }

let table t = t.tbl

let root t =
  match t.root_label with
  | Some r -> r
  | None -> invalid_arg "Kernel.root: empty kernel"

let set_root t label = t.root_label <- Some label

let get_vertex t label =
  if not (Hashtbl.mem t.vertices label) then begin
    Hashtbl.add t.vertices label ();
    if t.root_label = None then t.root_label <- Some label
  end

let adj tbl label =
  match Hashtbl.find_opt tbl label with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl label r;
    r

let get_edge t src dst =
  let key = edge_key src dst in
  match Hashtbl.find_opt t.edges key with
  | Some e -> e
  | None ->
    get_vertex t src;
    get_vertex t dst;
    let e = { src; dst; p_cnt = Array.make 2 0; c_cnt = Array.make 2 0; levels = 0 } in
    Hashtbl.add t.edges key e;
    let o = adj t.outs src in
    o := e :: !o;
    let i = adj t.ins dst in
    i := e :: !i;
    e

let find_edge t src dst = Hashtbl.find_opt t.edges (edge_key src dst)

let ensure_level e level =
  if level >= Array.length e.p_cnt then begin
    let n = ref (Array.length e.p_cnt) in
    while level >= !n do n := 2 * !n done;
    let grow a =
      let bigger = Array.make !n 0 in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    e.p_cnt <- grow e.p_cnt;
    e.c_cnt <- grow e.c_cnt
  end;
  if level >= e.levels then e.levels <- level + 1

let add_at_level e level ~parents ~children =
  if level < 0 then invalid_arg "Kernel.add_at_level: negative level";
  ensure_level e level;
  e.p_cnt.(level) <- max 0 (e.p_cnt.(level) + parents);
  e.c_cnt.(level) <- max 0 (e.c_cnt.(level) + children)

let edge_counts e level =
  if level < 0 || level >= e.levels then (0, 0) else (e.p_cnt.(level), e.c_cnt.(level))

let vertex_count t = Hashtbl.length t.vertices
let edge_count t = Hashtbl.length t.edges

let out_edges t label =
  match Hashtbl.find_opt t.outs label with
  | None -> []
  | Some r -> List.sort (fun a b -> Int.compare a.dst b.dst) !r

let in_edges t label =
  match Hashtbl.find_opt t.ins label with
  | None -> []
  | Some r -> List.sort (fun a b -> Int.compare a.src b.src) !r

let total_children t label ~level =
  let base = if t.root_label = Some label && level = 0 then 1 else 0 in
  List.fold_left
    (fun acc e -> acc + snd (edge_counts e level))
    base (in_edges t label)

let has_vertex t label = Hashtbl.mem t.vertices label

let size_in_bytes t =
  let edges_bytes =
    Hashtbl.fold (fun _ e acc -> acc + 8 + (8 * e.levels)) t.edges 0
  in
  (8 * vertex_count t) + edges_bytes

let is_empty_edge e =
  let rec go i = i >= e.levels || (e.p_cnt.(i) = 0 && e.c_cnt.(i) = 0 && go (i + 1)) in
  go 0

let trim_levels e =
  while e.levels > 0 && e.p_cnt.(e.levels - 1) = 0 && e.c_cnt.(e.levels - 1) = 0 do
    e.levels <- e.levels - 1
  done

let prune_empty t =
  Hashtbl.iter (fun _ e -> trim_levels e) t.edges;
  let dead =
    Hashtbl.fold (fun k e acc -> if is_empty_edge e then (k, e) :: acc else acc)
      t.edges []
  in
  List.iter
    (fun (k, e) ->
      Hashtbl.remove t.edges k;
      let o = adj t.outs e.src in
      o := List.filter (fun e' -> e' != e) !o;
      let i = adj t.ins e.dst in
      i := List.filter (fun e' -> e' != e) !i)
    dead;
  (* Drop vertices with no remaining edges, keeping the root. *)
  let isolated =
    Hashtbl.fold
      (fun v () acc ->
        let no_out = match Hashtbl.find_opt t.outs v with None -> true | Some r -> !r = [] in
        let no_in = match Hashtbl.find_opt t.ins v with None -> true | Some r -> !r = [] in
        if no_out && no_in && t.root_label <> Some v then v :: acc else acc)
      t.vertices []
  in
  List.iter (fun v -> Hashtbl.remove t.vertices v) isolated

(* ------------------------------------------------------------------ *)
(* Serialization: stable text format keyed by label names. *)

(* Serialized order is by label name so dumps are comparable across label
   tables with different interning orders. *)
let sorted_edges t =
  let name = Xml.Label.name t.tbl in
  Hashtbl.fold (fun _ e acc -> e :: acc) t.edges []
  |> List.sort (fun a b ->
         let c = String.compare (name a.src) (name b.src) in
         if c <> 0 then c else String.compare (name a.dst) (name b.dst))

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "xseed-kernel v1\n";
  (match t.root_label with
   | Some r -> Buffer.add_string buf (Printf.sprintf "root %s\n" (Xml.Label.name t.tbl r))
   | None -> ());
  let vs =
    Hashtbl.fold (fun v () acc -> Xml.Label.name t.tbl v :: acc) t.vertices []
  in
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "vertex %s\n" v))
    (List.sort String.compare vs);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s" (Xml.Label.name t.tbl e.src)
           (Xml.Label.name t.tbl e.dst));
      for l = 0 to e.levels - 1 do
        Buffer.add_string buf (Printf.sprintf " %d:%d" e.p_cnt.(l) e.c_cnt.(l))
      done;
      Buffer.add_char buf '\n')
    (sorted_edges t);
  Buffer.contents buf

let of_string_result ?table s =
  Error.guard (fun () ->
      let t = create ?table () in
      let lines = String.split_on_char '\n' s in
      let malformed i line =
        Error.raisef ~position:(i + 1) ~section:"kernel" Error.Corrupt_synopsis
          "bad kernel line: %s" (String.trim line)
      in
      List.iteri
        (fun i line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] -> ()
          | [ "xseed-kernel"; "v1" ] when i = 0 -> ()
          | [ "root"; name ] -> t.root_label <- Some (Xml.Label.intern t.tbl name)
          | [ "vertex"; name ] -> get_vertex t (Xml.Label.intern t.tbl name)
          | "edge" :: src :: dst :: pairs ->
            let e =
              get_edge t (Xml.Label.intern t.tbl src) (Xml.Label.intern t.tbl dst)
            in
            List.iteri
              (fun level pair ->
                match String.split_on_char ':' pair with
                | [ p; c ] ->
                  (match (int_of_string_opt p, int_of_string_opt c) with
                   | Some p, Some c -> add_at_level e level ~parents:p ~children:c
                   | _ -> malformed i line)
                | _ -> malformed i line)
              pairs
          | _ -> malformed i line)
        lines;
      t)

let of_string ?table s =
  match of_string_result ?table s with
  | Ok t -> t
  | Error e -> invalid_arg ("Kernel.of_string: " ^ Error.message e)

let copy t = of_string ~table:t.tbl (to_string t)

let collapse_levels t =
  let flat = create ~table:t.tbl () in
  (match t.root_label with Some r -> flat.root_label <- Some r | None -> ());
  Hashtbl.iter (fun v () -> get_vertex flat v) t.vertices;
  Hashtbl.iter
    (fun _ e ->
      let e' = get_edge flat e.src e.dst in
      for l = 0 to e.levels - 1 do
        add_at_level e' 0 ~parents:e.p_cnt.(l) ~children:e.c_cnt.(l)
      done)
    t.edges;
  flat

let equal a b = String.equal (to_string a) (to_string b)

let pp ppf t = Format.pp_print_string ppf (to_string t)
