type stats = {
  simple_entries : int;
  zero_entries : int;
  branching_entries : int;
  branching_candidates : int;
  nok_evaluations : int;
}

(* Estimated cardinality of every rooted simple path in one EPT pass: each
   EPT node is a distinct rooted label path, so its card IS the kernel
   estimate of that path. Returns hash -> (estimated card, canonical path). *)
let ept_estimates ~card_threshold kernel =
  let estimates = Hashtbl.create 1024 in
  let traveler = Traveler.create ~card_threshold kernel in
  let stack = ref [] in
  Traveler.iter traveler ~f:(fun event ->
      match event with
      | Traveler.Open info ->
        let h, key =
          match !stack with
          | [] ->
            (Path_hash.extend Path_hash.empty info.label,
             string_of_int info.label)
          | (ph, pkey) :: _ ->
            (Path_hash.extend ph info.label,
             pkey ^ "/" ^ string_of_int info.label)
        in
        stack := (h, key) :: !stack;
        Hashtbl.replace estimates h (info.card, key)
      | Traveler.Close _ ->
        (match !stack with [] -> () | _ :: rest -> stack := rest)
      | Traveler.Eos -> ());
  estimates

(* Queries used to measure actual correlated selectivities: all of the form
   //p[q1]..[qk]/r or //p[q1]..[qk], built directly as ASTs. *)
let pattern_query table ~parent ~predicates ~next =
  let name l = Xpath.Ast.Name (Xml.Label.name table l) in
  let step axis test predicates =
    { Xpath.Ast.axis; test; predicates; value_predicates = [] }
  in
  let preds =
    List.map (fun q -> [ step Xpath.Ast.Child (name q) [] ]) predicates
  in
  let p = step Xpath.Ast.Descendant (name parent) preds in
  match next with
  | Some r -> [ p; step Xpath.Ast.Child (name r) [] ]
  | None -> [ p ]

let build ?(mbp = 1) ?(bsel_threshold = 0.1) ?(card_threshold = 0.5)
    ?(max_branching_candidates = 50_000) ?(zero_entries = true) ~kernel
    ~path_tree ?storage () =
  let het = Het.create () in
  let table = Kernel.table kernel in
  let estimates = ept_estimates ~card_threshold kernel in
  let simple = ref 0 and zero = ref 0 and branching = ref 0 in
  let candidates = ref 0 and nok_evals = ref 0 in

  (* Simple-path entries: actual card and bsel from the path tree, error
     against the kernel estimate read off the EPT. *)
  Pathtree.Path_tree.iter_paths path_tree ~f:(fun labels ~parent node ->
      let hash = Path_hash.of_labels labels in
      let path = Path_hash.key_of_labels labels in
      let est =
        match Hashtbl.find_opt estimates hash with
        | Some (e, key) when key = path ->
          Hashtbl.remove estimates hash;
          e
        | _ -> 0.0
      in
      let actual = node.cardinality in
      let bsel = Pathtree.Path_tree.bsel path_tree ~parent node in
      let error = Float.abs (est -. float_of_int actual) in
      incr simple;
      Het.add_simple het ~hash ~path ~card:actual ~bsel:(Some bsel) ~error);

  (* What remains in [estimates] are false-positive paths: derivable from
     the kernel but absent from the document. A zero-cardinality entry both
     fixes their estimate and stops the traveler from expanding them. *)
  if zero_entries then
    Hashtbl.iter
      (fun hash (est, path) ->
        if est > 0.0 then begin
          incr zero;
          Het.add_simple het ~hash ~path ~card:0 ~bsel:(Some 0.0) ~error:est
        end)
      estimates;

  (* Branching entries need actual evaluation: NoK over the storage. *)
  (match storage with
   | None -> ()
   | Some storage when mbp >= 1 ->
     let ept =
       Matcher.materialize (Traveler.create ~card_threshold kernel)
     in
     let estimate path =
       Matcher.estimate ~table ept (Xpath.Query_tree.of_path path)
     in
     let actual path =
       incr nok_evals;
       Nok.Eval.cardinality storage path
     in
     let seen = Hashtbl.create 256 in
     let consider ~parent_label ~preds ~next =
       if !candidates < max_branching_candidates then begin
         let next_label = match next with Some r -> r | None -> -1 in
         let hash =
           Path_hash.branching ~parent:parent_label ~predicates:preds
             ~next:next_label
         in
         let path =
           Path_hash.branching_key ~parent:parent_label ~predicates:preds
             ~next:next_label
         in
         if not (Hashtbl.mem seen hash) then begin
           Hashtbl.add seen hash ();
           incr candidates;
           (* Correlated bsel: P(p has all predicate children | p has r). *)
           let denom =
             actual (pattern_query table ~parent:parent_label ~predicates:[] ~next)
           in
           if denom > 0 then begin
             let joint =
               actual
                 (pattern_query table ~parent:parent_label ~predicates:preds ~next)
             in
             (* [joint] counts p (or r) nodes under the predicates; both
                queries count the same node kind, so the ratio is the
                conditional selectivity. *)
             let bsel = float_of_int joint /. float_of_int denom in
             let q = pattern_query table ~parent:parent_label ~predicates:preds ~next in
             let err = Float.abs (estimate q -. float_of_int joint) in
             incr branching;
             Het.add_branching het ~hash ~path ~bsel ~error:err
           end
         end
       end
     in
     (* Enumerate label patterns from the path tree: for each internal node,
        low-bsel children become predicates, siblings become the next step. *)
     Pathtree.Path_tree.iter_paths path_tree ~f:(fun _labels ~parent:_ node ->
         let kids = node.children in
         let low =
           List.filter
             (fun (k : Pathtree.Path_tree.node) ->
               Pathtree.Path_tree.bsel path_tree ~parent:(Some node) k
               < bsel_threshold)
             kids
         in
         List.iter
           (fun (q : Pathtree.Path_tree.node) ->
             List.iter
               (fun (r : Pathtree.Path_tree.node) ->
                 if r.label <> q.label then
                   consider ~parent_label:node.label ~preds:[ q.label ]
                     ~next:(Some r.label))
               kids;
             consider ~parent_label:node.label ~preds:[ q.label ] ~next:None;
             if mbp >= 2 then
               List.iter
                 (fun (q2 : Pathtree.Path_tree.node) ->
                   if q2.label <> q.label then begin
                     let preds = [ q.label; q2.label ] in
                     List.iter
                       (fun (r : Pathtree.Path_tree.node) ->
                         if r.label <> q.label && r.label <> q2.label then
                           consider ~parent_label:node.label ~preds
                             ~next:(Some r.label))
                       kids;
                     consider ~parent_label:node.label ~preds ~next:None;
                     if mbp >= 3 then
                       List.iter
                         (fun (q3 : Pathtree.Path_tree.node) ->
                           if q3.label <> q.label && q3.label <> q2.label then
                             List.iter
                               (fun (r : Pathtree.Path_tree.node) ->
                                 if
                                   r.label <> q.label && r.label <> q2.label
                                   && r.label <> q3.label
                                 then
                                   consider ~parent_label:node.label
                                     ~preds:[ q.label; q2.label; q3.label ]
                                     ~next:(Some r.label))
                               kids)
                         kids
                   end)
                 kids)
           low)
   | Some _ -> ());
  ( het,
    { simple_entries = !simple; zero_entries = !zero;
      branching_entries = !branching; branching_candidates = !candidates;
      nok_evaluations = !nok_evals } )

let pp_stats ppf s =
  Format.fprintf ppf
    "HET build: %d simple (+%d zero), %d branching of %d candidates, %d NoK runs"
    s.simple_entries s.zero_entries s.branching_entries s.branching_candidates
    s.nok_evaluations
