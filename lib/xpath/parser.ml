exception Error of { position : int; message : string }

let fail pos fmt =
  Format.kasprintf (fun message -> raise (Error { position = pos; message })) fmt

type state = { input : string; len : int; mutable pos : int }

let peek st = if st.pos < st.len then Some st.input.[st.pos] else None

let skip_space st =
  while
    st.pos < st.len
    && (match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let read_axis st =
  (* Returns [Some axis] when positioned on '/' or '//'. *)
  skip_space st;
  match peek st with
  | Some '/' ->
    st.pos <- st.pos + 1;
    if peek st = Some '/' then begin
      st.pos <- st.pos + 1;
      Some Ast.Descendant
    end
    else Some Ast.Child
  | _ -> None

let read_test st =
  skip_space st;
  match peek st with
  | Some '*' ->
    st.pos <- st.pos + 1;
    Ast.Wildcard
  | Some c when is_name_start c ->
    let start = st.pos in
    while st.pos < st.len && is_name_char st.input.[st.pos] do
      st.pos <- st.pos + 1
    done;
    Ast.Name (String.sub st.input start (st.pos - start))
  | Some c -> fail st.pos "expected a name test or '*', found %C" c
  | None -> fail st.pos "expected a name test or '*', found end of input"

let read_name st =
  skip_space st;
  match peek st with
  | Some c when is_name_start c ->
    let start = st.pos in
    while st.pos < st.len && is_name_char st.input.[st.pos] do
      st.pos <- st.pos + 1
    done;
    String.sub st.input start (st.pos - start)
  | Some c -> fail st.pos "expected a name, found %C" c
  | None -> fail st.pos "expected a name, found end of input"

let read_literal st =
  skip_space st;
  match peek st with
  | Some (('\'' | '"') as q) ->
    st.pos <- st.pos + 1;
    let start = st.pos in
    while st.pos < st.len && st.input.[st.pos] <> q do
      st.pos <- st.pos + 1
    done;
    if st.pos >= st.len then fail start "unterminated string literal";
    let text = String.sub st.input start (st.pos - start) in
    st.pos <- st.pos + 1;
    Ast.Text text
  | Some c when c = '-' || (c >= '0' && c <= '9') ->
    let start = st.pos in
    if c = '-' then st.pos <- st.pos + 1;
    while
      st.pos < st.len
      && (match st.input.[st.pos] with '0' .. '9' | '.' -> true | _ -> false)
    do
      st.pos <- st.pos + 1
    done;
    (match float_of_string_opt (String.sub st.input start (st.pos - start)) with
     | Some x -> Ast.Number x
     | None -> fail start "malformed numeric literal")
  | Some c -> fail st.pos "expected a literal, found %C" c
  | None -> fail st.pos "expected a literal, found end of input"

let read_cmp st =
  skip_space st;
  let two a = st.pos <- st.pos + 2; Some a in
  let one a = st.pos <- st.pos + 1; Some a in
  match peek st with
  | Some '=' -> one Ast.Eq
  | Some '!' when st.pos + 1 < st.len && st.input.[st.pos + 1] = '=' -> two Ast.Ne
  | Some '<' when st.pos + 1 < st.len && st.input.[st.pos + 1] = '=' -> two Ast.Le
  | Some '<' -> one Ast.Lt
  | Some '>' when st.pos + 1 < st.len && st.input.[st.pos + 1] = '=' -> two Ast.Ge
  | Some '>' -> one Ast.Gt
  | _ -> None

let self_dot st =
  (* A bare '.' step (XPath self::node() abbreviation): semantically a no-op
     on the child axis, so it is consumed and dropped. A '.' that starts a
     longer token ('..', '.5', a name containing '.') is left alone and
     rejected by [read_test] as before. *)
  skip_space st;
  if
    st.pos < st.len
    && st.input.[st.pos] = '.'
    && (st.pos + 1 >= st.len || not (is_name_char st.input.[st.pos + 1]))
  then begin
    st.pos <- st.pos + 1;
    true
  end
  else false

(* Inside '[...]': a value predicate is NAME op literal or @NAME op literal;
   anything else is a structural relative path. Try the value form first and
   roll back on mismatch. *)
let read_value_predicate st =
  let saved = st.pos in
  skip_space st;
  let target =
    match peek st with
    | Some '@' ->
      st.pos <- st.pos + 1;
      Some (Ast.Attribute (read_name st))
    | Some c when is_name_start c -> Some (Ast.Child_text (read_name st))
    | _ -> None
  in
  match target with
  | None ->
    st.pos <- saved;
    None
  | Some target ->
    (match read_cmp st with
     | None ->
       (match target with
        | Ast.Attribute _ -> fail st.pos "expected a comparison after '@name'"
        | Ast.Child_text _ ->
          st.pos <- saved;
          None)
     | Some cmp ->
       let literal = read_literal st in
       (match (cmp, literal) with
        | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), Ast.Text _ ->
          fail saved "ordered comparisons require a numeric literal"
        | _ -> ());
       Some { Ast.target; cmp; literal })

let rec read_qualifiers st =
  skip_space st;
  match peek st with
  | Some '[' ->
    st.pos <- st.pos + 1;
    let qualifier =
      match read_value_predicate st with
      | Some vp -> `Value vp
      | None -> `Structural (read_relative st)
    in
    skip_space st;
    (match peek st with
     | Some ']' -> st.pos <- st.pos + 1
     | Some c -> fail st.pos "expected ']', found %C" c
     | None -> fail st.pos "expected ']', found end of input");
    let rest = read_qualifiers st in
    qualifier :: rest
  | _ -> []

and read_step st axis =
  let test = read_test st in
  let qualifiers = read_qualifiers st in
  let predicates =
    List.filter_map (function `Structural p -> Some p | `Value _ -> None) qualifiers
  in
  let value_predicates =
    List.filter_map (function `Value v -> Some v | `Structural _ -> None) qualifiers
  in
  { Ast.axis; test; predicates; value_predicates }

and read_relative st =
  (* First step of a predicate: implicit child axis, or explicit [.//]. *)
  skip_space st;
  let first_axis =
    if st.pos + 3 <= st.len && String.sub st.input st.pos 3 = ".//" then begin
      st.pos <- st.pos + 3;
      Ast.Descendant
    end
    else if st.pos + 2 <= st.len && String.sub st.input st.pos 2 = "./" then begin
      st.pos <- st.pos + 2;
      Ast.Child
    end
    else Ast.Child
  in
  let first = read_step st first_axis in
  let rest = read_rest st in
  first :: rest

and read_rest st =
  match read_axis st with
  | Some Ast.Child when self_dot st -> read_rest st
  | Some axis ->
    let step = read_step st axis in
    let rest = read_rest st in
    step :: rest
  | None -> []

let parse input =
  let st = { input; len = String.length input; pos = 0 } in
  match read_axis st with
  | None -> fail st.pos "a path must start with '/' or '//'"
  | Some axis ->
    let path =
      if axis = Ast.Child && self_dot st then read_rest st
      else
        let first = read_step st axis in
        first :: read_rest st
    in
    if path = [] then
      (* '/.' or '/./.' alone: the document root, which no step selects. *)
      fail st.pos "expected a name test or '*', found end of input";
    skip_space st;
    if st.pos <> st.len then fail st.pos "trailing input after path";
    path

let parse_opt input = match parse input with
  | path -> Some path
  | exception Error _ -> None

type error = { position : int; message : string }

let parse_result input =
  match parse input with
  | path -> Ok path
  | exception Error { position; message } -> Result.Error { position; message }
