(** Recursive-descent parser for the XPath fragment of {!Ast}.

    Grammar (whitespace ignored between tokens):
    {v
    path      ::= ("/" | "//") step (("/" | "//") step)*
    step      ::= test predicate*
    test      ::= NAME | "*"
    predicate ::= "[" relative "]"
    relative  ::= first (("/" | "//") step)*
    first     ::= step | ".//" step
    v}
    A predicate's leading step uses the child axis unless written [.//]. *)

exception Error of { position : int; message : string }

val parse : string -> Ast.t
(** @raise Error on a syntax error. *)

val parse_opt : string -> Ast.t option

type error = { position : int; message : string }

val parse_result : string -> (Ast.t, error) result
(** Like {!parse} but returns the syntax error as a value; never raises. *)
