/* Monotonic clock for Obs: CLOCK_MONOTONIC seconds as a double.
   The OCaml-side external is declared [@@noalloc] with an unboxed float
   return, so the common call compiles to a plain C call with no GC
   interaction; the boxed variant exists only for bytecode. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

double xseed_obs_monotonic_s_unboxed(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

CAMLprim value xseed_obs_monotonic_s(value unit)
{
  return caml_copy_double(xseed_obs_monotonic_s_unboxed(unit));
}
