(** Lightweight, zero-dependency observability layer for the XSEED pipeline.

    The layer has two halves with different cost profiles:

    - {e metrics} — named monotonic counters and log-bucketed histograms held
      in a registry. Handles are resolved once ({!counter}, {!histogram});
      bumping a handle is a plain mutable-field update, cheap enough for hot
      loops. Pipeline stages publish their totals with the [?obs]-optional
      helpers ({!add_to}, {!max_to}, {!observe}), which are no-ops when no
      context is supplied — the compiled-in-but-off default.
    - {e events and spans} — emitted to a pluggable {!type-sink}: [Noop]
      (default; nothing happens, no clock is read), a stderr pretty-printer
      (the CLI's [--trace]), or a JSON-lines channel (the CLI's
      [--metrics-out]). Spans nest and time their body with the wall clock;
      use them at stage granularity, not per node.

    {!module-Json} is a minimal self-contained JSON tree used for the
    JSON-lines sink, snapshots, bench output and the explain report. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact one-line rendering. Floats are emitted so they survive a
      round-trip ([nan] and infinities become [null], JSON having no
      spelling for them). *)

  val to_buffer : Buffer.t -> t -> unit

  val of_string : string -> t
  (** Parse a JSON document (used by tests to round-trip sink output).
      @raise Invalid_argument on malformed input. *)

  val equal : t -> t -> bool
  (** Structural equality; object fields compare order-insensitively. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on other constructors. *)
end

type sink =
  | Noop  (** discard everything; no clock reads, no formatting *)
  | Stderr  (** human-readable lines on stderr, indented by span depth *)
  | Jsonl of out_channel  (** one JSON object per line *)

type t
(** An observability context: a sink plus a metric registry. Contexts are
    independent; a fresh context gives per-run (e.g. per-query) metrics. *)

val create : ?sink:sink -> unit -> t
(** Default sink is [Noop]. *)

val set_sink : t -> sink -> unit
val sink : t -> sink

val enabled : t -> bool
(** [true] when the sink is not [Noop]. *)

val jsonl_file : string -> sink
(** Open [path] for writing and return a JSON-lines sink on it. The channel
    is owned by the context: {!close} closes it. *)

val close : t -> unit
(** Flush the sink; close its channel if it was opened by {!jsonl_file} or
    supplied as [Jsonl]. The sink becomes [Noop]. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter registered under [name], created at zero on first use. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_max : counter -> int -> unit
(** Raise the counter to [v] if [v] is larger (high-water-mark gauges:
    max depth, frontier peaks). *)

val value : counter -> int

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** The histogram registered under [name]. Buckets are base-2 logarithmic
    over non-negative samples, so percentiles are approximate (exact rank
    selection within a factor-of-two bucket, interpolated geometrically). *)

val hobserve : histogram -> float -> unit
val hcount : histogram -> int
val hsum : histogram -> float
val hmean : histogram -> float
val hmax : histogram -> float

val hpercentile : histogram -> float -> float
(** [hpercentile h 0.9] is the approximate 90th percentile; [nan] when the
    histogram is empty. [p] is clamped to [0, 1]. *)

(** {1 Optional-context publishing}

    All of these are no-ops when [?obs] is absent, so instrumented code can
    publish unconditionally. *)

val add_to : ?obs:t -> string -> int -> unit
val max_to : ?obs:t -> string -> int -> unit
val observe : ?obs:t -> string -> float -> unit

(** {1 Events and spans} *)

val now : unit -> float
(** Wall-clock seconds (the clock spans use); for coarse stage timing. *)

val event : ?obs:t -> ?fields:(string * Json.t) list -> string -> unit
(** Emit one event to the sink (nothing on [Noop]). *)

val span : ?obs:t -> string -> (unit -> 'a) -> 'a
(** [span ?obs name f] runs [f]. With a non-[Noop] sink it also emits a
    begin event, times [f] with the wall clock, and emits an end event
    carrying [dur_ms]; nested spans indent the stderr pretty-printer.
    The duration is also recorded in histogram [name ^ ".ms"] so snapshots
    include stage timings. With [Noop] (or no [obs]) the only cost is the
    closure call. Exceptions propagate; the end event is still emitted. *)

(** {1 Snapshots} *)

val snapshot : t -> Json.t
(** All registered metrics, in registration order: counters as integers,
    histograms as [{count, sum, mean, max, p50, p90, p99}] objects. *)

val emit_snapshot : t -> unit
(** Emit {!snapshot} as a ["snapshot"] event to the sink. *)

val reset : t -> unit
(** Zero every registered metric (the registry keeps its names). *)
