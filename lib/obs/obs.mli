(** Lightweight, zero-dependency observability layer for the XSEED pipeline.

    The layer has two halves with different cost profiles:

    - {e metrics} — named monotonic counters, point-in-time gauges and
      log-bucketed histograms held in a registry, optionally carrying a
      label set ({!counter_with} and friends) so one metric family can be
      split per dimension (dataset, cache outcome, …). Handles are resolved
      once ({!counter}, {!gauge}, {!histogram}); bumping a handle is a plain
      mutable-field update, cheap enough for hot loops. Pipeline stages
      publish their totals with the [?obs]-optional helpers ({!add_to},
      {!max_to}, {!set_to}, {!observe}), which are no-ops when no context is
      supplied — the compiled-in-but-off default.
    - {e events and spans} — emitted to a pluggable {!type-sink}: [Noop]
      (default; nothing happens, no clock is read), a stderr pretty-printer
      (the CLI's [--trace]), or a JSON-lines channel (the CLI's
      [--metrics-out]). Spans nest and time their body with the wall clock;
      use them at stage granularity, not per node.

    Registered metrics can be rendered two ways: {!snapshot} (JSON, one
    object) and {!prometheus} (Prometheus text exposition format 0.0.4,
    for a scrape endpoint such as [xseed serve]'s [METRICS] command).

    {!module-Window} is a sliding-window histogram — a ring of
    sub-histograms rotated on a count (or time) budget and merged on read —
    for "over the last N observations" percentiles (the serving engine's
    accuracy-drift monitor). Windows live outside the registry.

    {!module-Json} is a minimal self-contained JSON tree used for the
    JSON-lines sink, snapshots, bench output and the explain report. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact one-line rendering. Floats are emitted so they survive a
      round-trip. JSON has no spelling for [nan] or the infinities, so
      non-finite floats are emitted as [null] — the layer's wire convention
      for "no meaningful number" (e.g. the mean of an empty histogram).
      {!of_string} therefore accepts [null] wherever a number is expected
      (it parses to [Null] like any other [null]), and {!equal} treats a
      non-finite [Float] and [Null] as equal, so
      [of_string (to_string v) = v] holds for every value this module can
      emit, non-finite floats included. *)

  val to_buffer : Buffer.t -> t -> unit

  val of_string : string -> t
  (** Parse a JSON document (used by tests to round-trip sink output).
      @raise Invalid_argument on malformed input. *)

  val equal : t -> t -> bool
  (** Structural equality; object fields compare order-insensitively. A
      non-finite [Float] (nan, ±infinity) equals [Null], matching the
      null-for-non-finite emission convention of {!to_string}. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on other constructors. *)
end

type sink =
  | Noop  (** discard everything; no clock reads, no formatting *)
  | Stderr  (** human-readable lines on stderr, indented by span depth *)
  | Jsonl of out_channel  (** one JSON object per line *)

type t
(** An observability context: a sink plus a metric registry. Contexts are
    independent; a fresh context gives per-run (e.g. per-query) metrics.

    Domain-safety: registry {e shape} (registering new series, iterating
    for {!snapshot}/{!prometheus}/{!reset}/{!merged}) is serialized by an
    internal mutex, so one domain may render a scrape while another is
    still creating series. Bumping an already-resolved handle remains a
    plain mutable-field update — memory-safe but lossy under concurrent
    writers — so writers should not share one context across domains; give
    each domain its own registry and combine them with {!merged}. *)

val create : ?sink:sink -> unit -> t
(** Default sink is [Noop]. *)

val set_sink : t -> sink -> unit
val sink : t -> sink

val enabled : t -> bool
(** [true] when the sink is not [Noop]. *)

val jsonl_file : string -> sink
(** Open [path] for writing and return a JSON-lines sink on it. The channel
    is owned by the context: {!close} closes it. *)

val close : t -> unit
(** Flush the sink; close its channel if it was opened by {!jsonl_file} or
    supplied as [Jsonl]. The sink becomes [Noop]. *)

(** {1 Labels}

    Every metric optionally carries a label set: [(key, value)] pairs that
    split one family into per-dimension series (Prometheus-style). Two
    handles with the same name and the same labels (order-insensitive) are
    the same metric; different label sets under one name are separate
    series of one family, rendered together by {!prometheus}. *)

type labels = (string * string) list

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter registered under [name] (no labels), created at zero on
    first use. *)

val counter_with : t -> string -> labels -> counter
(** The series of family [name] carrying exactly [labels]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_max : counter -> int -> unit
(** Raise the counter to [v] if [v] is larger. Used for high-water-mark
    gauges (max depth, frontier peaks) and for republishing monotone
    totals idempotently (a serving layer pushing lifetime totals before
    every scrape). *)

val value : counter -> int

(** {1 Gauges}

    A gauge is a point-in-time value that can go up or down — cache
    occupancy, window percentiles, hit rates. *)

type gauge

val gauge : t -> string -> gauge
val gauge_with : t -> string -> labels -> gauge
val gset : gauge -> float -> unit
val gvalue : gauge -> float
(** Fresh gauges read [0.0]. *)

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** The histogram registered under [name]. Buckets are base-2 logarithmic
    over non-negative samples, so percentiles are approximate (exact rank
    selection within a factor-of-two bucket, interpolated geometrically). *)

val histogram_with : t -> string -> labels -> histogram

val hobserve : histogram -> float -> unit
val hcount : histogram -> int
val hsum : histogram -> float
val hmean : histogram -> float
val hmax : histogram -> float

val hpercentile : histogram -> float -> float
(** [hpercentile h 0.9] is the approximate 90th percentile; [nan] when the
    histogram is empty. [p] is clamped to [0, 1]. *)

(** {1 Sliding windows}

    A {!Window.t} is a ring of [slots] sub-histograms. Observations land in
    the current slot; after [per_slot] observations (or [rotate_every_s]
    seconds, when given) the ring advances and the oldest slot is cleared,
    so reads always cover the last [slots × per_slot] observations at
    most — a sliding window with slot-granular expiry. Reads merge the
    live slots, so percentiles are computed over the whole window at the
    same factor-of-two accuracy as plain histograms. Windows are not
    registered in a context; callers own them (the drift monitor publishes
    derived gauges instead). *)

module Window : sig
  type t

  val create : ?slots:int -> ?per_slot:int -> ?rotate_every_s:float -> unit -> t
  (** [slots] (default 6) sub-histograms of [per_slot] (default 128)
      observations each. [rotate_every_s] additionally rotates on wall-time
      whenever the current slot has been open at least that long (checked
      on observe; absent by default so no clock is read).
      @raise Invalid_argument when [slots] or [per_slot] < 1. *)

  val observe : t -> float -> unit
  val rotate : t -> unit
  (** Force the ring forward one slot (clearing the slot it lands on). *)

  val count : t -> int
  (** Observations currently inside the window. *)

  val total : t -> int
  (** Lifetime observations, including expired ones. *)

  val mean : t -> float
  val max : t -> float
  val percentile : t -> float -> float
  (** All three are merged-window statistics; [nan] when the window is
      empty. *)
end

(** {1 Optional-context publishing}

    All of these are no-ops when [?obs] is absent, so instrumented code can
    publish unconditionally. *)

val add_to : ?obs:t -> string -> int -> unit
val max_to : ?obs:t -> string -> int -> unit
val set_to : ?obs:t -> string -> float -> unit
(** Gauge set. *)

val observe : ?obs:t -> string -> float -> unit

(** {1 Events and spans} *)

val now : unit -> float
(** Wall-clock seconds (the clock spans use); for coarse stage timing. *)

val event : ?obs:t -> ?fields:(string * Json.t) list -> string -> unit
(** Emit one event to the sink (nothing on [Noop]). *)

val span : ?obs:t -> string -> (unit -> 'a) -> 'a
(** [span ?obs name f] runs [f]. With a non-[Noop] sink it also emits a
    begin event, times [f] with the wall clock, and emits an end event
    carrying [dur_ms]; nested spans indent the stderr pretty-printer.
    The duration is also recorded in histogram [name ^ ".ms"] so snapshots
    include stage timings. With [Noop] (or no [obs]) the only cost is the
    closure call. Exceptions propagate; the end event is still emitted. *)

(** {1 Snapshots} *)

val snapshot : t -> Json.t
(** All registered metrics, in registration order: counters as integers,
    gauges as floats, histograms as
    [{count, sum, mean, max, p50, p90, p99}] objects. Labeled series
    appear under ["name{k=\"v\",…}"] keys. The object always re-parses
    with {!Json.of_string} (non-finite floats emit as [null], per the
    convention documented on {!Json.to_string}). *)

val emit_snapshot : t -> unit
(** Emit {!snapshot} as a ["snapshot"] event to the sink. *)

val prometheus : ?prefix:string -> t -> string
(** Render every registered metric in the Prometheus text exposition
    format, version 0.0.4 (content type
    [text/plain; version=0.0.4; charset=utf-8]). [prefix] (default empty;
    XSEED's exporters pass ["xseed_"]) is prepended to every metric name
    before sanitization; dots and other characters outside
    [[a-zA-Z0-9_:]] become underscores, so ["engine.cache.hits"] exports
    as [xseed_engine_cache_hits]. Each family gets one [# HELP] line
    (carrying the original dotted name) and one [# TYPE] line
    ([counter] / [gauge] / [histogram]), then one sample per label set.
    Histograms render cumulative [_bucket{le="…"}] samples on the base-2
    bucket bounds plus [_sum] and [_count]. Non-finite gauge values use
    the format's [NaN] / [+Inf] / [-Inf] spellings. *)

val reset : t -> unit
(** Zero every registered metric (the registry keeps its names). *)

val merged : t list -> t
(** A fresh context holding the union of the inputs' series, combined
    per series key: counters sum, gauges sum (publish non-additive gauges
    into the merged result afterwards), histograms merge bucket-wise (sums
    add, maxima max, [count] recomputed from the merged buckets so the
    cumulative rendering stays self-consistent). The result's series are
    ordered by series key, so {!snapshot} and {!prometheus} over a merge
    are deterministic regardless of each input's registration order — the
    serving pool's per-shard registries render identically however work
    was scheduled. The inputs are read under their locks and copied; the
    result aliases nothing and has a [Noop] sink.
    @raise Invalid_argument when one series key has different metric kinds
    across inputs. *)
