(** Lightweight, zero-dependency observability layer for the XSEED pipeline.

    The layer has two halves with different cost profiles:

    - {e metrics} — named monotonic counters, point-in-time gauges and
      log-bucketed histograms held in a registry, optionally carrying a
      label set ({!counter_with} and friends) so one metric family can be
      split per dimension (dataset, cache outcome, …). Handles are resolved
      once ({!counter}, {!gauge}, {!histogram}); bumping a handle is a plain
      mutable-field update, cheap enough for hot loops. Pipeline stages
      publish their totals with the [?obs]-optional helpers ({!add_to},
      {!max_to}, {!set_to}, {!observe}), which are no-ops when no context is
      supplied — the compiled-in-but-off default.
    - {e events and spans} — emitted to a pluggable {!type-sink}: [Noop]
      (default; nothing happens, no clock is read), a stderr pretty-printer
      (the CLI's [--trace]), or a JSON-lines channel (the CLI's
      [--metrics-out]). Spans nest and time their body with the wall clock;
      use them at stage granularity, not per node.

    Registered metrics can be rendered two ways: {!snapshot} (JSON, one
    object) and {!prometheus} (Prometheus text exposition format 0.0.4,
    for a scrape endpoint such as [xseed serve]'s [METRICS] command).

    {!module-Window} is a sliding-window histogram — a ring of
    sub-histograms rotated on a count (or time) budget and merged on read —
    for "over the last N observations" percentiles (the serving engine's
    accuracy-drift monitor). Windows live outside the registry.

    {!module-Json} is a minimal self-contained JSON tree used for the
    JSON-lines sink, snapshots, bench output and the explain report. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact one-line rendering. Floats are emitted so they survive a
      round-trip. JSON has no spelling for [nan] or the infinities, so
      non-finite floats are emitted as [null] — the layer's wire convention
      for "no meaningful number" (e.g. the mean of an empty histogram).
      {!of_string} therefore accepts [null] wherever a number is expected
      (it parses to [Null] like any other [null]), and {!equal} treats a
      non-finite [Float] and [Null] as equal, so
      [of_string (to_string v) = v] holds for every value this module can
      emit, non-finite floats included. *)

  val to_buffer : Buffer.t -> t -> unit

  val of_string : string -> t
  (** Parse a JSON document (used by tests to round-trip sink output).
      @raise Invalid_argument on malformed input. *)

  val equal : t -> t -> bool
  (** Structural equality; object fields compare order-insensitively. A
      non-finite [Float] (nan, ±infinity) equals [Null], matching the
      null-for-non-finite emission convention of {!to_string}. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on other constructors. *)
end

type sink =
  | Noop  (** discard everything; no clock reads, no formatting *)
  | Stderr  (** human-readable lines on stderr, indented by span depth *)
  | Jsonl of out_channel  (** one JSON object per line *)

type t
(** An observability context: a sink plus a metric registry. Contexts are
    independent; a fresh context gives per-run (e.g. per-query) metrics.

    Domain-safety: registry {e shape} (registering new series, iterating
    for {!snapshot}/{!prometheus}/{!reset}/{!merged}) is serialized by an
    internal mutex, so one domain may render a scrape while another is
    still creating series. Bumping an already-resolved handle remains a
    plain mutable-field update — memory-safe but lossy under concurrent
    writers — so writers should not share one context across domains; give
    each domain its own registry and combine them with {!merged}. *)

val create : ?sink:sink -> unit -> t
(** Default sink is [Noop]. *)

val set_sink : t -> sink -> unit
val sink : t -> sink

val enabled : t -> bool
(** [true] when the sink is not [Noop]. *)

val jsonl_file : string -> sink
(** Open [path] for writing and return a JSON-lines sink on it. The channel
    is owned by the context: {!close} closes it. *)

val close : t -> unit
(** Flush the sink; close its channel if it was opened by {!jsonl_file} or
    supplied as [Jsonl]. The sink becomes [Noop]. *)

(** {1 Labels}

    Every metric optionally carries a label set: [(key, value)] pairs that
    split one family into per-dimension series (Prometheus-style). Two
    handles with the same name and the same labels (order-insensitive) are
    the same metric; different label sets under one name are separate
    series of one family, rendered together by {!prometheus}. *)

type labels = (string * string) list

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter registered under [name] (no labels), created at zero on
    first use. *)

val counter_with : t -> string -> labels -> counter
(** The series of family [name] carrying exactly [labels]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_max : counter -> int -> unit
(** Raise the counter to [v] if [v] is larger. Used for high-water-mark
    gauges (max depth, frontier peaks) and for republishing monotone
    totals idempotently (a serving layer pushing lifetime totals before
    every scrape). *)

val value : counter -> int

(** {1 Gauges}

    A gauge is a point-in-time value that can go up or down — cache
    occupancy, window percentiles, hit rates. *)

type gauge

val gauge : t -> string -> gauge
val gauge_with : t -> string -> labels -> gauge
val gset : gauge -> float -> unit
val gvalue : gauge -> float
(** Fresh gauges read [0.0]. *)

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** The histogram registered under [name]. Buckets are base-2 logarithmic
    over non-negative samples, so percentiles are approximate (exact rank
    selection within a factor-of-two bucket, interpolated geometrically). *)

val histogram_with : t -> string -> labels -> histogram

val hobserve : histogram -> float -> unit
val hcount : histogram -> int
val hsum : histogram -> float
val hmean : histogram -> float
val hmax : histogram -> float

val hpercentile : histogram -> float -> float
(** [hpercentile h 0.9] is the approximate 90th percentile; [nan] when the
    histogram is empty. [p] is clamped to [0, 1]. *)

(** {1 Sliding windows}

    A {!Window.t} is a ring of [slots] sub-histograms. Observations land in
    the current slot; after [per_slot] observations (or [rotate_every_s]
    seconds, when given) the ring advances and the oldest slot is cleared,
    so reads always cover the last [slots × per_slot] observations at
    most — a sliding window with slot-granular expiry. Reads merge the
    live slots, so percentiles are computed over the whole window at the
    same factor-of-two accuracy as plain histograms. Windows are not
    registered in a context; callers own them (the drift monitor publishes
    derived gauges instead). *)

module Window : sig
  type t

  val create : ?slots:int -> ?per_slot:int -> ?rotate_every_s:float -> unit -> t
  (** [slots] (default 6) sub-histograms of [per_slot] (default 128)
      observations each. [rotate_every_s] additionally rotates on wall-time
      whenever the current slot has been open at least that long (checked
      on observe; absent by default so no clock is read).
      @raise Invalid_argument when [slots] or [per_slot] < 1. *)

  val observe : t -> float -> unit
  val rotate : t -> unit
  (** Force the ring forward one slot (clearing the slot it lands on). *)

  val count : t -> int
  (** Observations currently inside the window. *)

  val total : t -> int
  (** Lifetime observations, including expired ones. *)

  val mean : t -> float
  val max : t -> float
  val percentile : t -> float -> float
  (** All three are merged-window statistics; [nan] when the window is
      empty. *)
end

(** {1 Optional-context publishing}

    All of these are no-ops when [?obs] is absent, so instrumented code can
    publish unconditionally. *)

val add_to : ?obs:t -> string -> int -> unit
val max_to : ?obs:t -> string -> int -> unit
val set_to : ?obs:t -> string -> float -> unit
(** Gauge set. *)

val observe : ?obs:t -> string -> float -> unit

(** {1 Events and spans} *)

val now : unit -> float
(** Wall-clock seconds — for {e timestamps} (sink event lines, trace file
    headers), never for durations: the wall clock jumps under NTP skew. *)

val now_mono : unit -> float
(** Monotonic seconds ([CLOCK_MONOTONIC]) — the clock for every duration
    this layer measures (span timing, window rotation, trace events) and
    for stage timing throughout the pipeline. The origin is arbitrary;
    only differences are meaningful. Reading it does not allocate. *)

val event : ?obs:t -> ?fields:(string * Json.t) list -> string -> unit
(** Emit one event to the sink (nothing on [Noop]). *)

val span : ?obs:t -> string -> (unit -> 'a) -> 'a
(** [span ?obs name f] runs [f]. With a non-[Noop] sink it also emits a
    begin event, times [f] with the monotonic clock, and emits an end event
    carrying [dur_ms]; nested spans indent the stderr pretty-printer
    (the nesting depth is atomic, so pool workers sharing one context
    cannot corrupt it).
    The duration is also recorded in histogram [name ^ ".ms"] so snapshots
    include stage timings. With [Noop] (or no [obs]) the only cost is the
    closure call. Exceptions propagate; the end event is still emitted. *)

(** {1 Snapshots} *)

val snapshot : t -> Json.t
(** All registered metrics, in registration order: counters as integers,
    gauges as floats, histograms as
    [{count, sum, mean, max, p50, p90, p99}] objects. Labeled series
    appear under ["name{k=\"v\",…}"] keys. The object always re-parses
    with {!Json.of_string} (non-finite floats emit as [null], per the
    convention documented on {!Json.to_string}). *)

val emit_snapshot : t -> unit
(** Emit {!snapshot} as a ["snapshot"] event to the sink. *)

val prometheus : ?prefix:string -> t -> string
(** Render every registered metric in the Prometheus text exposition
    format, version 0.0.4 (content type
    [text/plain; version=0.0.4; charset=utf-8]). [prefix] (default empty;
    XSEED's exporters pass ["xseed_"]) is prepended to every metric name
    before sanitization; dots and other characters outside
    [[a-zA-Z0-9_:]] become underscores, so ["engine.cache.hits"] exports
    as [xseed_engine_cache_hits]. Each family gets one [# HELP] line
    (carrying the original dotted name) and one [# TYPE] line
    ([counter] / [gauge] / [histogram]), then one sample per label set.
    Histograms render cumulative [_bucket{le="…"}] samples on the base-2
    bucket bounds plus [_sum] and [_count]. Non-finite gauge values use
    the format's [NaN] / [+Inf] / [-Inf] spellings. *)

val reset : t -> unit
(** Zero every registered metric (the registry keeps its names). *)

val merged : t list -> t
(** A fresh context holding the union of the inputs' series, combined
    per series key: counters sum, gauges sum (publish non-additive gauges
    into the merged result afterwards), histograms merge bucket-wise (sums
    add, maxima max, [count] recomputed from the merged buckets so the
    cumulative rendering stays self-consistent). The result's series are
    ordered by series key, so {!snapshot} and {!prometheus} over a merge
    are deterministic regardless of each input's registration order — the
    serving pool's per-shard registries render identically however work
    was scheduled. The inputs are read under their locks and copied; the
    result aliases nothing and has a [Noop] sink.
    @raise Invalid_argument when one series key has different metric kinds
    across inputs. *)

val merged_labeled : (labels * t) list -> t
(** {!merged}, additionally appending each input's extra labels to every
    series copied from it — the multi-tenant registry merges per-tenant
    engine registries under [[("tenant", name)]] so one scrape exposes
    every tenant's series side by side. Identical label sets after widening
    combine exactly as in {!merged}. *)

(** {1 Causal tracing}

    Low-overhead event tracing for the parallel serving path, exported as
    Chrome trace-event / Perfetto JSON ([chrome://tracing],
    {{:https://ui.perfetto.dev}ui.perfetto.dev}).

    A {!Trace.t} owns a string-intern table and a set of per-thread ring
    {!Trace.buf}s. Each buffer belongs to exactly one writer (a worker
    domain, or a coordinator serialized by its own lock), so the record
    path takes no lock and touches only preallocated arrays — safe inside
    the estimate hot loop. Event names are interned once at setup
    ({!Trace.intern}); recording passes integer ids and monotonic
    timestamps relative to the trace origin ({!Trace.now}). When a ring
    wraps, the oldest events are overwritten — a trace keeps the newest
    [capacity] events per thread.

    {!Trace.to_json} merges all buffers into one [traceEvents] array:
    [pid] is the process, [tid] the registered thread id, timestamps are
    microseconds since the trace origin (the wall clock at the origin is
    carried in [otherData.wall_origin_s]), and each thread's events are
    sorted by timestamp, which Perfetto requires per track. {!Trace.lint}
    validates that contract and is what [xseed trace-lint] runs. *)

module Trace : sig
  type t
  (** A trace session: intern table, origin clocks, registered buffers. *)

  type buf
  (** One thread's ring buffer; written by exactly one domain. *)

  val create : ?capacity:int -> unit -> t
  (** A fresh trace anchored at the current instant. [capacity] (default
      65536) is the per-buffer ring size used when {!register} does not
      override it.
      @raise Invalid_argument when [capacity] < 1. *)

  val intern : t -> string -> int
  (** The id of [name], interning it on first use. Do this at setup; the
      record path wants integers. Domain-safe. *)

  val register : ?capacity:int -> t -> tid:int -> name:string -> buf
  (** A new ring buffer exported under thread id [tid], labelled [name] in
      the Perfetto track list. Domain-safe; the returned buffer must only
      ever be written by one domain at a time. *)

  val now : t -> float
  (** Monotonic seconds since the trace origin — the [ts] every record
      operation expects. *)

  val rel : t -> float -> float
  (** Convert an absolute {!now_mono} reading to trace-relative seconds,
      for call sites that already read the clock for other purposes. *)

  val total : buf -> int
  (** Lifetime events recorded into [buf] (not capped by the ring size —
      the tracing-disabled guard test asserts this stays zero). *)

  val trace : buf -> t

  (** {2 Recording}

      All operations write one ring slot; [ts] is trace-relative seconds
      ({!now}/{!rel}). None of them lock or allocate beyond the boxing of
      their float arguments. *)

  val complete : buf -> name:int -> ts:float -> dur:float -> unit
  (** A Chrome [X] (complete) slice starting at [ts], [dur] seconds long.
      Record it when the slice {e ends} — the exporter re-sorts. *)

  val complete_seq : buf -> name:int -> ts:float -> dur:float -> seq:int -> unit
  (** {!complete} carrying the query's submission sequence number as a
      slice argument, so a Perfetto slice links back to flight records. *)

  val begin_span : buf -> name:int -> ts:float -> unit
  val end_span : buf -> name:int -> ts:float -> unit
  (** Chrome [B]/[E] pairs; must nest per buffer ({!lint} checks). Prefer
      {!complete} — one slot instead of two, and it cannot dangle. *)

  val instant : buf -> name:int -> ts:float -> unit
  val counter : buf -> name:int -> ts:float -> value:float -> unit
  (** A Chrome [C] sample — per-shard GC counters use these. *)

  val flow_start : buf -> name:int -> ts:float -> id:int -> unit
  val flow_step : buf -> name:int -> ts:float -> id:int -> unit
  val flow_end : buf -> name:int -> ts:float -> id:int -> unit
  (** Flow arrows ([s]/[t]/[f]) under one [id] — the pool threads a query's
      submission sequence number through submit → execute → reassemble.
      Flow events should sit inside slices so Perfetto can anchor them. *)

  val async_begin : buf -> name:int -> ts:float -> id:int -> unit
  val async_end : buf -> name:int -> ts:float -> id:int -> unit
  (** Async ([b]/[e]) spans under one [id]: unlike [B]/[E] they may overlap
      freely and may end on a different buffer than they began — the pool's
      queue-wait spans (begin at enqueue on the coordinator, end at dequeue
      on the serving shard). *)

  (** {2 Export} *)

  val to_json : t -> Json.t
  (** The merged trace:
      [{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": ...}],
      with per-thread [thread_name] metadata and every thread's events in
      timestamp order. Safe to call while writers are still recording
      (slots are copied as-is; a torn in-progress slot can at worst
      misplace one event, never corrupt the structure). *)

  val write : t -> string -> unit
  (** {!to_json} serialized to [path], newline-terminated. *)

  val lint : Json.t -> string list
  (** Structural violations in a parsed trace file; [[]] iff well-formed.
      Checks: [traceEvents] is an array of objects carrying
      [ph]/[name]/[pid]/[tid]/[ts]; per-track timestamps never decrease;
      [X] slices carry a non-negative [dur]; [B]/[E] match and nest;
      every flow id that is stepped or ended was started, and every
      started flow id ends; async begin/end counts balance per id. *)
end
