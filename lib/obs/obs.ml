(* Observability: counters, gauges, histograms, sliding windows, spans,
   pluggable sinks, JSON snapshots and Prometheus text exposition. Depends
   only on the stdlib and the unix library shipped with the compiler. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape_to buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let float_repr f =
    (* Shortest rendering that round-trips; JSON has no NaN/infinity, so
       non-finite values are emitted as null (see the .mli convention). *)
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_to buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    to_buffer buf t;
    Buffer.contents buf

  (* A small recursive-descent parser, enough to round-trip the sink's own
     output and to let tests validate JSON-lines files. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = invalid_arg (Printf.sprintf "Json.of_string: %s at %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            (if !pos >= n then fail "dangling escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; incr pos
               | '\\' -> Buffer.add_char buf '\\'; incr pos
               | '/' -> Buffer.add_char buf '/'; incr pos
               | 'n' -> Buffer.add_char buf '\n'; incr pos
               | 't' -> Buffer.add_char buf '\t'; incr pos
               | 'r' -> Buffer.add_char buf '\r'; incr pos
               | 'b' -> Buffer.add_char buf '\b'; incr pos
               | 'f' -> Buffer.add_char buf '\012'; incr pos
               | 'u' ->
                 if !pos + 4 >= n then fail "short \\u escape";
                 let hex = String.sub s (!pos + 1) 4 in
                 let cp =
                   try int_of_string ("0x" ^ hex)
                   with Failure _ -> fail "bad \\u escape"
                 in
                 pos := !pos + 5;
                 if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                 else if cp < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                   Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                 end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
          | c -> Buffer.add_char buf c; incr pos; go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do incr pos done;
      let body = String.sub s start (!pos - start) in
      let is_float =
        String.exists (function '.' | 'e' | 'E' -> true | _ -> false) body
      in
      if is_float then
        match float_of_string_opt body with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt body with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt body with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; List [] end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; items (v :: acc)
            | Some ']' -> incr pos; List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; fields (kv :: acc)
            | Some '}' -> incr pos; Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  (* [to_string] emits non-finite floats as null, so [Float nan] and [Null]
     are the same value on the wire — [equal] honours that, making
     [of_string (to_string v)] an identity for everything we can emit. *)
  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | (Null, Float f | Float f, Null) when not (Float.is_finite f) -> true
    | Bool a, Bool b -> a = b
    | Int a, Int b -> a = b
    | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
    | Int a, Float b | Float b, Int a -> float_of_int a = b
    | String a, String b -> String.equal a b
    | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
    | Obj a, Obj b ->
      let sort = List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) in
      let a = sort a and b = sort b in
      List.length a = List.length b
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           a b
    | _ -> false

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)

(* Monotonic clock (CLOCK_MONOTONIC) for every duration this layer
   measures: spans, window rotation, trace events. Wall clock jumps under
   NTP skew; durations must not. The external is noalloc with an unboxed
   float return so reading it costs a plain C call. *)
external now_mono : unit -> (float[@unboxed])
  = "xseed_obs_monotonic_s" "xseed_obs_monotonic_s_unboxed"
[@@noalloc]

type sink = Noop | Stderr | Jsonl of out_channel

type labels = (string * string) list

(* Canonical (sorted) label rendering; doubles as the registry-key suffix so
   label order never creates duplicate series. *)
let render_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let buf = Buffer.create 32 in
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      String.iter
        (fun c ->
          match c with
          | '\\' -> Buffer.add_string buf "\\\\"
          | '"' -> Buffer.add_string buf "\\\""
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        v;
      Buffer.add_char buf '"')
    sorted;
  Buffer.contents buf

let series_key name labels =
  if labels = [] then name else name ^ "{" ^ render_labels labels ^ "}"

type counter = { cname : string; clabels : labels; mutable n : int }
type gauge = { gname : string; glabels : labels; mutable g : float }

(* Base-2 log buckets over non-negative samples: bucket 0 is [0, 1), bucket
   i >= 1 is [2^(i-1), 2^i). Exact count/sum/max ride along so mean and max
   are not approximated. *)
let hbuckets = 64

type histogram = {
  hname : string;
  hlabels : labels;
  mutable count : int;
  mutable sum : float;
  mutable max : float;
  buckets : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  mutable sink : sink;
  registry : (string, metric) Hashtbl.t;
  mutable order : string list;  (* reverse registration order of series keys *)
  depth : int Atomic.t;
      (* current span nesting, for the pretty sink; atomic because pool
         workers may emit through one shared context concurrently *)
  lock : Mutex.t;  (* guards registry/order shape, not metric bumps *)
}

(* Bumping a resolved handle stays a plain mutable-field update (memory-safe
   under the OCaml 5 model; concurrent bumps may lose increments, which the
   engine avoids by giving each domain its own registry). The mutex only
   serializes registry *shape* changes against iteration, so one domain can
   keep registering new series while another renders a scrape without either
   tripping over a resizing Hashtbl. *)
let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let create ?(sink = Noop) () =
  { sink;
    registry = Hashtbl.create 32;
    order = [];
    depth = Atomic.make 0;
    lock = Mutex.create () }

let set_sink t sink = t.sink <- sink
let sink t = t.sink
let enabled t = t.sink <> Noop

let jsonl_file path = Jsonl (open_out path)

let close t =
  (match t.sink with
   | Jsonl oc -> flush oc; close_out oc
   | Stderr | Noop -> ());
  t.sink <- Noop

let register t key metric =
  Hashtbl.replace t.registry key metric;
  t.order <- key :: t.order

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let wrong_kind what key m =
  invalid_arg (Printf.sprintf "Obs.%s: %s is a %s" what key (kind_name m))

let counter_with t name labels =
  let key = series_key name labels in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.registry key with
      | Some (Counter c) -> c
      | Some m -> wrong_kind "counter" key m
      | None ->
        let c = { cname = name; clabels = labels; n = 0 } in
        register t key (Counter c);
        c)

let counter t name = counter_with t name []

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let set_max c v = if v > c.n then c.n <- v
let value c = c.n

let gauge_with t name labels =
  let key = series_key name labels in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.registry key with
      | Some (Gauge g) -> g
      | Some m -> wrong_kind "gauge" key m
      | None ->
        let g = { gname = name; glabels = labels; g = 0.0 } in
        register t key (Gauge g);
        g)

let gauge t name = gauge_with t name []

let gset g v = g.g <- v
let gvalue g = g.g

let histogram_with t name labels =
  let key = series_key name labels in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.registry key with
      | Some (Histogram h) -> h
      | Some m -> wrong_kind "histogram" key m
      | None ->
        let h =
          { hname = name; hlabels = labels; count = 0; sum = 0.0;
            max = neg_infinity; buckets = Array.make hbuckets 0 }
        in
        register t key (Histogram h);
        h)

let histogram t name = histogram_with t name []

let bucket_of v =
  if v < 1.0 then 0
  else
    let i = 1 + int_of_float (Float.log2 v) in
    if i >= hbuckets then hbuckets - 1 else i

let hobserve h v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v > h.max then h.max <- v;
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1

let hcount h = h.count
let hsum h = h.sum
let hmean h = if h.count = 0 then Float.nan else h.sum /. float_of_int h.count
let hmax h = if h.count = 0 then Float.nan else h.max

(* Rank selection over log buckets, shared by plain histograms and merged
   windows: exact bucket choice, geometric interpolation inside it. *)
let percentile_over ~count ~maxv buckets p =
  if count = 0 then Float.nan
  else begin
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let rank = p *. float_of_int count in
    let rank = if rank < 1.0 then 1.0 else rank in
    let cum = ref 0 and result = ref maxv in
    (try
       for i = 0 to hbuckets - 1 do
         let c = buckets i in
         if c > 0 then begin
           let before = !cum in
           cum := !cum + c;
           if float_of_int !cum >= rank then begin
             (* Linear interpolation inside the bucket's range. *)
             let lo = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - 1)) in
             let hi = if i = 0 then 1.0 else lo *. 2.0 in
             let hi = Float.min hi maxv in
             let frac = (rank -. float_of_int before) /. float_of_int c in
             result := lo +. ((hi -. lo) *. frac);
             raise Exit
           end
         end
       done
     with Exit -> ());
    Float.min !result maxv
  end

let hpercentile h p =
  percentile_over ~count:h.count ~maxv:h.max (Array.get h.buckets) p

(* ------------------------------------------------------------------ *)
(* Sliding windows: a ring of sub-histograms rotated on a count (and
   optionally wall-time) budget; reads merge the live slots. *)

module Window = struct
  type slot = {
    mutable scount : int;
    mutable ssum : float;
    mutable smax : float;
    sbuckets : int array;
  }

  type t = {
    slots : slot array;
    per_slot : int;
    rotate_every_s : float option;
    mutable idx : int;  (* slot receiving observations *)
    mutable opened_at : float;
        (* monotonic clock, only read with rotate_every_s *)
    mutable wtotal : int;  (* lifetime observations *)
  }

  let fresh_slot () =
    { scount = 0; ssum = 0.0; smax = neg_infinity;
      sbuckets = Array.make hbuckets 0 }

  let create ?(slots = 6) ?(per_slot = 128) ?rotate_every_s () =
    if slots < 1 then
      invalid_arg (Printf.sprintf "Obs.Window.create: slots %d < 1" slots);
    if per_slot < 1 then
      invalid_arg (Printf.sprintf "Obs.Window.create: per_slot %d < 1" per_slot);
    { slots = Array.init slots (fun _ -> fresh_slot ());
      per_slot;
      rotate_every_s;
      idx = 0;
      opened_at =
        (match rotate_every_s with
         | Some _ -> now_mono ()
         | None -> 0.0);
      wtotal = 0 }

  let clear_slot s =
    s.scount <- 0;
    s.ssum <- 0.0;
    s.smax <- neg_infinity;
    Array.fill s.sbuckets 0 hbuckets 0

  let rotate t =
    t.idx <- (t.idx + 1) mod Array.length t.slots;
    clear_slot t.slots.(t.idx);
    match t.rotate_every_s with
    | Some _ -> t.opened_at <- now_mono ()
    | None -> ()

  let observe t v =
    let due_by_time =
      match t.rotate_every_s with
      | Some s -> now_mono () -. t.opened_at >= s
      | None -> false
    in
    if t.slots.(t.idx).scount >= t.per_slot || due_by_time then rotate t;
    let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
    let s = t.slots.(t.idx) in
    s.scount <- s.scount + 1;
    s.ssum <- s.ssum +. v;
    if v > s.smax then s.smax <- v;
    s.sbuckets.(bucket_of v) <- s.sbuckets.(bucket_of v) + 1;
    t.wtotal <- t.wtotal + 1

  let count t = Array.fold_left (fun acc s -> acc + s.scount) 0 t.slots
  let total t = t.wtotal

  let mean t =
    let c = count t in
    if c = 0 then Float.nan
    else
      Array.fold_left (fun acc s -> acc +. s.ssum) 0.0 t.slots
      /. float_of_int c

  let max t =
    if count t = 0 then Float.nan
    else
      Array.fold_left
        (fun acc s -> if s.scount > 0 && s.smax > acc then s.smax else acc)
        neg_infinity t.slots

  let percentile t p =
    let c = count t in
    if c = 0 then Float.nan
    else
      let maxv = max t in
      percentile_over ~count:c ~maxv
        (fun i ->
          Array.fold_left (fun acc s -> acc + s.sbuckets.(i)) 0 t.slots)
        p
end

(* ------------------------------------------------------------------ *)
(* Optional-context helpers: no-ops without a context. *)

let add_to ?obs name k =
  match obs with None -> () | Some t -> add (counter t name) k

let max_to ?obs name v =
  match obs with None -> () | Some t -> set_max (counter t name) v

let set_to ?obs name v =
  match obs with None -> () | Some t -> gset (gauge t name) v

let observe ?obs name v =
  match obs with None -> () | Some t -> hobserve (histogram t name) v

(* ------------------------------------------------------------------ *)
(* Events and spans. *)

let now () = Unix.gettimeofday ()

let emit t name fields =
  match t.sink with
  | Noop -> ()
  | Stderr ->
    let b = Buffer.create 80 in
    Buffer.add_string b "[obs] ";
    for _ = 1 to Atomic.get t.depth do Buffer.add_string b "  " done;
    Buffer.add_string b name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char b ' ';
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b
          (match v with Json.String s -> s | v -> Json.to_string v))
      fields;
    Buffer.add_char b '\n';
    prerr_string (Buffer.contents b)
  | Jsonl oc ->
    (* Event timestamps are the one place wall time belongs: they key sink
       lines to real-world time; every duration is monotonic. *)
    let b = Buffer.create 120 in
    Json.to_buffer b
      (Json.Obj
         (("event", Json.String name)
         :: ("ts", Json.Float (now ()))
         :: fields));
    Buffer.add_char b '\n';
    output_string oc (Buffer.contents b)

let event ?obs ?(fields = []) name =
  match obs with None -> () | Some t -> emit t name fields

let span ?obs name f =
  match obs with
  | None -> f ()
  | Some t when t.sink = Noop -> f ()
  | Some t ->
    emit t "span_begin" [ ("name", Json.String name) ];
    Atomic.incr t.depth;
    let t0 = now_mono () in
    let finish () =
      let ms = 1000.0 *. (now_mono () -. t0) in
      Atomic.decr t.depth;
      hobserve (histogram t (name ^ ".ms")) ms;
      emit t "span_end" [ ("name", Json.String name); ("dur_ms", Json.Float ms) ]
    in
    (match f () with
     | result -> finish (); result
     | exception e -> finish (); raise e)

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

let histogram_json h =
  Json.Obj
    [ ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("mean", Json.Float (hmean h));
      ("max", Json.Float (hmax h));
      ("p50", Json.Float (hpercentile h 0.5));
      ("p90", Json.Float (hpercentile h 0.9));
      ("p99", Json.Float (hpercentile h 0.99)) ]

let snapshot t =
  let fields =
    with_lock t (fun () ->
        List.rev_map
          (fun key ->
            match Hashtbl.find t.registry key with
            | Counter c -> (key, Json.Int c.n)
            | Gauge g -> (key, Json.Float g.g)
            | Histogram h -> (key, histogram_json h))
          t.order)
  in
  Json.Obj fields

let emit_snapshot t =
  match t.sink with
  | Noop -> ()
  | _ ->
    (match snapshot t with
     | Json.Obj fields -> emit t "snapshot" fields
     | _ -> ())

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format version 0.0.4). *)

let sanitize_metric_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

(* Prometheus, unlike JSON, has spellings for non-finite values. *)
let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Json.float_repr f

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus ?(prefix = "") t =
  with_lock t @@ fun () ->
  let buf = Buffer.create 1024 in
  (* Group series into families (by exported name) so each family gets
     exactly one HELP/TYPE pair with all its samples beneath — grouping by
     the sanitized name also keeps two dotted names that collapse to the
     same exported spelling from emitting duplicate headers. *)
  let families = Hashtbl.create 16 in
  let fam_order = ref [] in
  List.iter
    (fun key ->
      let m = Hashtbl.find t.registry key in
      let base =
        match m with
        | Counter c -> c.cname
        | Gauge g -> g.gname
        | Histogram h -> h.hname
      in
      let fam = sanitize_metric_name (prefix ^ base) in
      match Hashtbl.find_opt families fam with
      | None ->
        Hashtbl.add families fam (base, [ m ]);
        fam_order := fam :: !fam_order
      | Some (b0, ms) -> Hashtbl.replace families fam (b0, m :: ms))
    (List.rev t.order);
  let sample name labels value =
    Buffer.add_string buf name;
    if labels <> [] then begin
      Buffer.add_char buf '{';
      Buffer.add_string buf (render_labels labels);
      Buffer.add_char buf '}'
    end;
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun fam ->
      let base, rev_members = Hashtbl.find families fam in
      let members = List.rev rev_members in
      let kind =
        match members with
        | Counter _ :: _ -> "counter"
        | Gauge _ :: _ -> "gauge"
        | Histogram _ :: _ -> "histogram"
        | [] -> "untyped"
      in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" fam (escape_help base));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind);
      List.iter
        (fun m ->
          match m with
          | Counter c -> sample fam c.clabels (string_of_int c.n)
          | Gauge g -> sample fam g.glabels (prom_float g.g)
          | Histogram h ->
            (* Cumulative counts on the base-2 bucket bounds, up to the
               highest occupied bucket, then the mandatory +Inf bucket. *)
            let top = ref (-1) in
            Array.iteri (fun i c -> if c > 0 then top := i) h.buckets;
            let cum = ref 0 in
            for i = 0 to !top do
              cum := !cum + h.buckets.(i);
              let le =
                if i = 0 then 1.0 else Float.pow 2.0 (float_of_int i)
              in
              sample (fam ^ "_bucket")
                (("le", prom_float le) :: h.hlabels)
                (string_of_int !cum)
            done;
            sample (fam ^ "_bucket")
              (("le", "+Inf") :: h.hlabels)
              (string_of_int h.count);
            sample (fam ^ "_sum") h.hlabels (prom_float h.sum);
            sample (fam ^ "_count") h.hlabels (string_of_int h.count))
        members)
    (List.rev !fam_order);
  Buffer.contents buf

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ metric ->
          match metric with
          | Counter c -> c.n <- 0
          | Gauge g -> g.g <- 0.0
          | Histogram h ->
            h.count <- 0;
            h.sum <- 0.0;
            h.max <- neg_infinity;
            Array.fill h.buckets 0 hbuckets 0)
        t.registry)

(* Merge several registries into a fresh one with a canonical series order.
   Values are copied under each input's lock (shape-stable), then summed:
   counters and gauges add, histograms merge bucket-wise with [count]
   recomputed from the merged buckets so the rendered cumulative series
   stays self-consistent even if an input was being bumped mid-copy. The
   result's series are ordered by key, so snapshots and Prometheus output
   are deterministic regardless of per-input registration order. *)
let merged_labeled lts =
  let out = create () in
  let copies =
    List.map
      (fun (extra, t) ->
        (* Extra labels append after the series' own (series keys sort the
           set, so the rendered order is canonical either way); the serving
           registry uses this to stamp tenant="…" on a whole registry. *)
        let widen labels = labels @ extra in
        with_lock t (fun () ->
            List.rev_map
              (fun key ->
                match Hashtbl.find t.registry key with
                | Counter c -> `C (c.cname, widen c.clabels, c.n)
                | Gauge g -> `G (g.gname, widen g.glabels, g.g)
                | Histogram h ->
                  `H (h.hname, widen h.hlabels, h.sum, h.max, Array.copy h.buckets))
              t.order))
      lts
  in
  List.iter
    (List.iter (fun m ->
         match m with
         | `C (name, labels, n) -> add (counter_with out name labels) n
         | `G (name, labels, v) ->
           let g = gauge_with out name labels in
           gset g (gvalue g +. v)
         | `H (name, labels, sum, mx, buckets) ->
           let h = histogram_with out name labels in
           h.sum <- h.sum +. sum;
           if mx > h.max then h.max <- mx;
           Array.iteri (fun i c -> h.buckets.(i) <- h.buckets.(i) + c) buckets;
           h.count <- Array.fold_left ( + ) 0 h.buckets))
    copies;
  (* [order] is kept in reverse registration order; storing the keys sorted
     descending makes every reader (which reverses) see ascending key order. *)
  out.order <- List.sort (fun a b -> String.compare b a) out.order;
  out

let merged ts = merged_labeled (List.map (fun t -> ([], t)) ts)

(* ------------------------------------------------------------------ *)
(* Causal tracing: per-domain ring buffers of timestamped events merged
   into one Chrome-trace-event / Perfetto JSON file.

   Design constraints, in order:
   - the record path must be safe to call from a worker domain's hot loop:
     each buffer is written by exactly one domain (no lock, no atomics) and
     a recorded event touches only preallocated arrays — structure-of-arrays
     rather than a record per slot, because OCaml boxes a float written into
     a mixed mutable record;
   - names are interned once at setup time, so the record path handles
     integer ids only;
   - timestamps come from the monotonic clock, as seconds relative to the
     trace's origin [t0]; the wall clock at [t0] is carried in the export
     header so tools can anchor the trace in real time. *)

module Trace = struct
  (* Slot op codes; each maps to one Chrome trace-event phase. *)
  let op_complete = 0 (* X *)
  let op_begin = 1 (* B *)
  let op_end = 2 (* E *)
  let op_instant = 3 (* i *)
  let op_counter = 4 (* C *)
  let op_flow_start = 5 (* s *)
  let op_flow_step = 6 (* t *)
  let op_flow_end = 7 (* f *)
  let op_async_begin = 8 (* b *)
  let op_async_end = 9 (* e *)

  type buf = {
    btrace : trace;
    tid : int;
    tid_name : string;
    bcap : int;
    mutable total : int;  (* lifetime events; slot = total mod bcap *)
    ops : int array;
    names : int array;  (* interned name ids *)
    tss : float array;  (* seconds since t0 *)
    durs : float array;  (* X only *)
    ids : int array;  (* flow/async/seq id; -1 = none *)
    args : float array;  (* C only *)
  }

  and trace = {
    mutable interned : string array;
    mutable n_interned : int;
    itbl : (string, int) Hashtbl.t;
    mutable bufs : buf list;  (* reverse registration order *)
    tlock : Mutex.t;  (* guards interning and buffer registration *)
    t0 : float;  (* monotonic origin *)
    wall0 : float;  (* wall clock read at the same instant as t0 *)
    pid : int;
    default_capacity : int;
  }

  type t = trace

  let with_tlock t f =
    Mutex.lock t.tlock;
    match f () with
    | v ->
      Mutex.unlock t.tlock;
      v
    | exception e ->
      Mutex.unlock t.tlock;
      raise e

  let create ?(capacity = 65536) () =
    if capacity < 1 then
      invalid_arg (Printf.sprintf "Obs.Trace.create: capacity %d < 1" capacity);
    { interned = Array.make 16 "";
      n_interned = 0;
      itbl = Hashtbl.create 16;
      bufs = [];
      tlock = Mutex.create ();
      t0 = now_mono ();
      wall0 = Unix.gettimeofday ();
      pid = Unix.getpid ();
      default_capacity = capacity }

  let intern t name =
    with_tlock t (fun () ->
        match Hashtbl.find_opt t.itbl name with
        | Some id -> id
        | None ->
          let id = t.n_interned in
          if id = Array.length t.interned then begin
            let grown = Array.make (2 * id) "" in
            Array.blit t.interned 0 grown 0 id;
            t.interned <- grown
          end;
          t.interned.(id) <- name;
          t.n_interned <- id + 1;
          Hashtbl.add t.itbl name id;
          id)

  let register ?capacity t ~tid ~name =
    let cap = Option.value capacity ~default:t.default_capacity in
    if cap < 1 then
      invalid_arg (Printf.sprintf "Obs.Trace.register: capacity %d < 1" cap);
    let b =
      { btrace = t;
        tid;
        tid_name = name;
        bcap = cap;
        total = 0;
        ops = Array.make cap 0;
        names = Array.make cap 0;
        tss = Array.make cap 0.0;
        durs = Array.make cap 0.0;
        ids = Array.make cap (-1);
        args = Array.make cap 0.0 }
    in
    with_tlock t (fun () -> t.bufs <- b :: t.bufs);
    b

  let now t = now_mono () -. t.t0
  let rel t mono = mono -. t.t0
  let total b = b.total
  let trace b = b.btrace

  (* The record path: one slot write, no lock (a buf has one writer). *)
  let record b op name ts dur id arg =
    let i = b.total mod b.bcap in
    b.total <- b.total + 1;
    b.ops.(i) <- op;
    b.names.(i) <- name;
    b.tss.(i) <- ts;
    b.durs.(i) <- dur;
    b.ids.(i) <- id;
    b.args.(i) <- arg

  let complete b ~name ~ts ~dur = record b op_complete name ts dur (-1) 0.0

  let complete_seq b ~name ~ts ~dur ~seq = record b op_complete name ts dur seq 0.0

  let begin_span b ~name ~ts = record b op_begin name ts 0.0 (-1) 0.0
  let end_span b ~name ~ts = record b op_end name ts 0.0 (-1) 0.0
  let instant b ~name ~ts = record b op_instant name ts 0.0 (-1) 0.0
  let counter b ~name ~ts ~value = record b op_counter name ts 0.0 (-1) value
  let flow_start b ~name ~ts ~id = record b op_flow_start name ts 0.0 id 0.0
  let flow_step b ~name ~ts ~id = record b op_flow_step name ts 0.0 id 0.0
  let flow_end b ~name ~ts ~id = record b op_flow_end name ts 0.0 id 0.0
  let async_begin b ~name ~ts ~id = record b op_async_begin name ts 0.0 id 0.0
  let async_end b ~name ~ts ~id = record b op_async_end name ts 0.0 id 0.0

  (* ---------------- export ---------------- *)

  let us s = s *. 1e6

  (* The ring holds the newest [min total bcap] events in write order
     starting at [total mod bcap] once wrapped. Write order is not
     timestamp order (an X slice is recorded when it *ends*, stamped with
     its start time), so the exporter stable-sorts each thread's events by
     [ts] — Perfetto requires per-track monotonicity, and stability keeps
     same-stamp events (a B and its nested sibling) in record order. *)
  let live_slots b =
    let n = min b.total b.bcap in
    let start = if b.total <= b.bcap then 0 else b.total mod b.bcap in
    List.init n (fun k -> (start + k) mod b.bcap)

  let event_json t b i =
    let name = t.interned.(b.names.(i)) in
    let base =
      [ ("name", Json.String name);
        ("pid", Json.Int t.pid);
        ("tid", Json.Int b.tid);
        ("ts", Json.Float (us b.tss.(i))) ]
    in
    let ph p = ("ph", Json.String p) in
    let id () = ("id", Json.Int b.ids.(i)) in
    let op = b.ops.(i) in
    if op = op_complete then
      Json.Obj
        (ph "X" :: base
        @ [ ("dur", Json.Float (us b.durs.(i))) ]
        @
        if b.ids.(i) >= 0 then
          [ ("args", Json.Obj [ ("seq", Json.Int b.ids.(i)) ]) ]
        else [])
    else if op = op_begin then Json.Obj (ph "B" :: base)
    else if op = op_end then Json.Obj (ph "E" :: base)
    else if op = op_instant then
      Json.Obj ((ph "i" :: base) @ [ ("s", Json.String "t") ])
    else if op = op_counter then
      Json.Obj
        ((ph "C" :: base)
        @ [ ("args", Json.Obj [ ("value", Json.Float b.args.(i)) ]) ])
    else if op = op_flow_start then
      Json.Obj ((ph "s" :: base) @ [ ("cat", Json.String "flow"); id () ])
    else if op = op_flow_step then
      Json.Obj ((ph "t" :: base) @ [ ("cat", Json.String "flow"); id () ])
    else if op = op_flow_end then
      Json.Obj
        ((ph "f" :: base)
        @ [ ("cat", Json.String "flow"); id (); ("bp", Json.String "e") ])
    else if op = op_async_begin then
      Json.Obj ((ph "b" :: base) @ [ ("cat", Json.String "async"); id () ])
    else Json.Obj ((ph "e" :: base) @ [ ("cat", Json.String "async"); id () ])

  let metadata_json t b =
    Json.Obj
      [ ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int t.pid);
        ("tid", Json.Int b.tid);
        ("args", Json.Obj [ ("name", Json.String b.tid_name) ]) ]

  let to_json t =
    let bufs = with_tlock t (fun () -> List.rev t.bufs) in
    let process_meta =
      Json.Obj
        [ ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int t.pid);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String "xseed") ]) ]
    in
    let per_buf b =
      let slots = live_slots b in
      let sorted =
        List.stable_sort (fun i j -> Float.compare b.tss.(i) b.tss.(j)) slots
      in
      metadata_json t b :: List.map (event_json t b) sorted
    in
    Json.Obj
      [ ("traceEvents", Json.List (process_meta :: List.concat_map per_buf bufs));
        ("displayTimeUnit", Json.String "ms");
        ("otherData", Json.Obj [ ("wall_origin_s", Json.Float t.wall0) ]) ]

  let write t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let buf = Buffer.create 4096 in
        Json.to_buffer buf (to_json t);
        Buffer.add_char buf '\n';
        output_string oc (Buffer.contents buf))

  (* ---------------- linter ---------------- *)

  (* Structural validation of a (parsed) trace file; the list of violations
     is empty iff the file is well-formed. Shared by the exporter's tests,
     [xseed trace-lint] and the trace-smoke CI target, and deliberately
     checks properties Perfetto is strict about: per-track timestamp
     monotonicity, matched B/E nesting, flow ids that resolve, balanced
     async begin/end pairs. *)
  let lint json =
    let errors = ref [] in
    let errf fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
    let num = function
      | Json.Int i -> Some (float_of_int i)
      | Json.Float f -> Some f
      | _ -> None
    in
    (match Json.member "traceEvents" json with
     | None -> errf "missing traceEvents array"
     | Some (Json.List events) ->
       let last_ts = Hashtbl.create 16 in (* (pid,tid) -> ts *)
       let be_stack = Hashtbl.create 16 in (* (pid,tid) -> name list *)
       let flow_start = Hashtbl.create 16 in
       let flow_used = Hashtbl.create 16 in
       let flow_finished = Hashtbl.create 16 in
       let async_open = Hashtbl.create 16 in (* id -> open count *)
       List.iteri
         (fun idx ev ->
           let ctx = Printf.sprintf "event %d" idx in
           match ev with
           | Json.Obj _ ->
             let str k =
               match Json.member k ev with
               | Some (Json.String s) -> Some s
               | _ -> None
             in
             let numf k = Option.bind (Json.member k ev) num in
             (match str "ph" with
              | None -> errf "%s: missing ph" ctx
              | Some "M" -> () (* metadata carries no timestamp contract *)
              | Some ph ->
                let name = str "name" in
                if name = None then errf "%s: missing name" ctx;
                (match (numf "pid", numf "tid", numf "ts") with
                 | Some pid, Some tid, Some ts ->
                   let track = (pid, tid) in
                   (match Hashtbl.find_opt last_ts track with
                    | Some prev when ts < prev ->
                      errf "%s: ts %.3f decreases on tid %g (prev %.3f)" ctx ts
                        tid prev
                    | _ -> ());
                   Hashtbl.replace last_ts track ts;
                   let id_of () =
                     match numf "id" with
                     | Some id -> Some (int_of_float id)
                     | None ->
                       errf "%s: ph %s requires an id" ctx ph;
                       None
                   in
                   (match ph with
                    | "X" ->
                      (match numf "dur" with
                       | Some d when d >= 0.0 -> ()
                       | Some _ -> errf "%s: negative dur" ctx
                       | None -> errf "%s: X event without dur" ctx)
                    | "B" ->
                      let stack =
                        Option.value ~default:[]
                          (Hashtbl.find_opt be_stack track)
                      in
                      Hashtbl.replace be_stack track
                        (Option.value ~default:"?" name :: stack)
                    | "E" ->
                      (match Hashtbl.find_opt be_stack track with
                       | Some (open_name :: rest) ->
                         let this = Option.value ~default:"?" name in
                         if this <> open_name then
                           errf "%s: E %S closes B %S" ctx this open_name;
                         Hashtbl.replace be_stack track rest
                       | Some [] | None -> errf "%s: E without matching B" ctx)
                    | "i" | "C" -> ()
                    | "s" ->
                      Option.iter
                        (fun id -> Hashtbl.replace flow_start id ())
                        (id_of ())
                    | "t" ->
                      Option.iter
                        (fun id -> Hashtbl.replace flow_used id ())
                        (id_of ())
                    | "f" ->
                      Option.iter
                        (fun id -> Hashtbl.replace flow_finished id ())
                        (id_of ())
                    | "b" ->
                      Option.iter
                        (fun id ->
                          let n =
                            Option.value ~default:0
                              (Hashtbl.find_opt async_open id)
                          in
                          Hashtbl.replace async_open id (n + 1))
                        (id_of ())
                    | "e" ->
                      Option.iter
                        (fun id ->
                          match Hashtbl.find_opt async_open id with
                          | Some n when n > 0 ->
                            Hashtbl.replace async_open id (n - 1)
                          | _ -> errf "%s: async end without begin (id %d)" ctx id)
                        (id_of ())
                    | ph -> errf "%s: unknown phase %S" ctx ph)
                 | _ -> errf "%s: missing pid/tid/ts" ctx))
           | _ -> errf "%s: not an object" ctx)
         events;
       Hashtbl.iter
         (fun (pid, tid) stack ->
           if stack <> [] then
             errf "unclosed B span(s) %s on pid %g tid %g"
               (String.concat "," stack) pid tid)
         be_stack;
       Hashtbl.iter
         (fun id () ->
           if not (Hashtbl.mem flow_start id) then
             errf "flow step id %d has no flow start" id)
         flow_used;
       Hashtbl.iter
         (fun id () ->
           if not (Hashtbl.mem flow_start id) then
             errf "flow end id %d has no flow start" id)
         flow_finished;
       Hashtbl.iter
         (fun id () ->
           if not (Hashtbl.mem flow_finished id) then
             errf "flow id %d never reaches a flow end" id)
         flow_start;
       Hashtbl.iter
         (fun id n ->
           if n > 0 then errf "async id %d left %d begin(s) unended" id n)
         async_open
     | Some _ -> errf "traceEvents is not an array");
    List.rev !errors
end
