# Convenience targets; `make ci` is what the GitHub Actions workflow runs.

DUNE ?= dune
XSEED = $(DUNE) exec --no-build bin/xseed.exe --
SMOKE_DIR := $(or $(TMPDIR),/tmp)/xseed-smoke

.PHONY: all build test fmt fuzz-smoke chaos-smoke tcp-smoke smoke trace-smoke audit-smoke stress bench-smoke bench-json ci clean

# Worker-domain count for the stress/serve smoke (the CI matrix sets 1 and 4).
WORKERS ?= 4
STRESS_OPS ?= 10000

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

# Format check only where an ocamlformat binary is available (the pinned
# version lives in .ocamlformat); the build containers don't ship one.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Fault-injection smoke: fixed seeds, ~2400 mutated inputs across XML
# documents, synopsis dumps and query strings. Fails on any uncaught
# exception or NaN estimate; a failure line names the (seed, case) pair.
fuzz-smoke: build
	$(DUNE) exec --no-build test/fault_injection.exe -- --seeds 1,2,3,4 --cases 200 \
	  --only xml,synopsis,query

# Chaos smoke: the serving path's failure model end to end — fault
# injection over the pool/journal/deadline categories, a kill -9 +
# torn-tail + replay crash-recovery proof against a live server, golden
# journal-dump exit codes and a SIGTERM drain. Journals land in
# $(SMOKE_DIR)/chaos for CI to upload.
chaos-smoke: build
	SMOKE_DIR="$(SMOKE_DIR)" \
	  XSEED_BIN=_build/default/bin/xseed.exe \
	  FAULT_BIN=_build/default/test/fault_injection.exe \
	  sh test/chaos_smoke.sh

# TCP smoke: the framed network transport end to end — net-category
# fault injection against live listeners, then one budgeted
# multi-tenant `xseed serve --manifest --port 0` process driven over
# TCP by `xseed client` (handshake, USE tenancy, eviction + journal
# replay, tenant-labeled scrape) and a SIGTERM drain. The Prometheus
# scrape lands in $(SMOKE_DIR)/tcp for CI to upload.
tcp-smoke: build
	SMOKE_DIR="$(SMOKE_DIR)" \
	  XSEED_BIN=_build/default/bin/xseed.exe \
	  FAULT_BIN=_build/default/test/fault_injection.exe \
	  sh test/tcp_smoke.sh

# End-to-end smoke: generate a corpus, build a synopsis, explain a query,
# compare estimates vs actuals with JSON-lines metrics on.
smoke: build
	@mkdir -p $(SMOKE_DIR)
	$(XSEED) generate xmark --scale 60 -o $(SMOKE_DIR)/doc.xml
	$(XSEED) build $(SMOKE_DIR)/doc.xml -o $(SMOKE_DIR)/doc.syn
	$(XSEED) explain $(SMOKE_DIR)/doc.syn "//open_auction[bidder]/price"
	$(XSEED) compare $(SMOKE_DIR)/doc.xml --count 25 \
	  --metrics-out $(SMOKE_DIR)/metrics.jsonl
	@test -s $(SMOKE_DIR)/metrics.jsonl
	@echo "smoke: OK ($(SMOKE_DIR))"

# Feedback-loop smoke: replay a small workload through the serving engine's
# estimate -> execute -> feedback rounds on a tiny corpus and assert the
# per-round q-error median never increases (the paper's Figure 1 loop).
# Then exercise the serve telemetry surface end to end (METRICS scrape,
# flight records, drift summary) and the telemetry/audit-overhead bench
# guards (< 5% median estimate latency vs. an untapped engine, plus the
# audit/offline q-error agreement check).
bench-smoke: build
	@mkdir -p $(SMOKE_DIR)
	$(XSEED) generate xmark --scale 40 -o $(SMOKE_DIR)/bench.xml
	$(XSEED) workload $(SMOKE_DIR)/bench.xml --kind bp --count 40 \
	  > $(SMOKE_DIR)/bench.workload
	$(XSEED) replay $(SMOKE_DIR)/bench.xml $(SMOKE_DIR)/bench.workload \
	  --rounds 2 --budget 8192 --assert-improving
	$(XSEED) build $(SMOKE_DIR)/bench.xml -o $(SMOKE_DIR)/bench.syn
	printf 'ESTIMATE //item\nFEEDBACK //item 12\nMETRICS\nRECENT 5\nDRIFT\n' \
	  | $(XSEED) serve $(SMOKE_DIR)/bench.syn \
	      --telemetry-out $(SMOKE_DIR)/flights.jsonl \
	      > $(SMOKE_DIR)/serve.out
	@grep -q '^# TYPE xseed_engine_cache_misses counter' $(SMOKE_DIR)/serve.out
	@grep -q '^xseed_engine_drift_qerror_p90' $(SMOKE_DIR)/serve.out
	@grep -q '"cache":"miss"' $(SMOKE_DIR)/flights.jsonl
	$(DUNE) exec --no-build bench/main.exe -- --quick telemetry audit
	@echo "bench-smoke: OK"

bench-json: build
	$(DUNE) exec --no-build bench/main.exe -- --quick json

# Causal-trace smoke: serve a mixed request script through a WORKERS-shard
# pool with --trace-out, then re-validate the written Perfetto JSON with
# the trace linter (per-track monotone timestamps, balanced spans, every
# flow arrow resolving) and check the PROFILE verb's one-line breakdown.
trace-smoke: build
	@mkdir -p $(SMOKE_DIR)
	$(XSEED) generate xmark --scale 40 -o $(SMOKE_DIR)/trace.xml
	$(XSEED) build $(SMOKE_DIR)/trace.xml -o $(SMOKE_DIR)/trace.syn
	printf 'BATCH 3\n//item\n//person\n//open_auction[bidder]/price\nPROFILE 2\n//item\n//person\nFEEDBACK //item 12\nESTIMATE //item\n' \
	  | $(XSEED) serve $(SMOKE_DIR)/trace.syn --workers $(WORKERS) \
	      --trace-out $(SMOKE_DIR)/trace.json \
	      > $(SMOKE_DIR)/trace.out
	@grep -q '^OK 2 queue_wait_us ' $(SMOKE_DIR)/trace.out
	$(XSEED) trace-lint $(SMOKE_DIR)/trace.json
	@echo "trace-smoke: OK (WORKERS=$(WORKERS), $(SMOKE_DIR)/trace.json)"

# Shadow-audit smoke: serve a tiny XMark corpus with every query audited
# (--audit-rate 1.0 against the source document), then prove the AUDIT
# verb's true-q-error window is byte-identical to the offline
# `xseed audit` report over the same workload. The JSON-lines
# attribution report lands in $(SMOKE_DIR)/audit for CI to upload.
audit-smoke: build
	@mkdir -p $(SMOKE_DIR)/audit
	$(XSEED) generate xmark --scale 40 -o $(SMOKE_DIR)/audit/doc.xml
	$(XSEED) build $(SMOKE_DIR)/audit/doc.xml -o $(SMOKE_DIR)/audit/doc.syn
	$(XSEED) workload $(SMOKE_DIR)/audit/doc.xml --kind bp --count 25 \
	  > $(SMOKE_DIR)/audit/queries
	{ awk '{print "ESTIMATE " $$0}' $(SMOKE_DIR)/audit/queries; \
	  printf 'AUDIT\n'; } \
	  | $(XSEED) serve $(SMOKE_DIR)/audit/doc.syn --workers $(WORKERS) \
	      --audit-rate 1.0 --audit-doc $(SMOKE_DIR)/audit/doc.xml \
	      > $(SMOKE_DIR)/audit/serve.out
	@grep -q '^OK {"rate":' $(SMOKE_DIR)/audit/serve.out
	$(XSEED) audit $(SMOKE_DIR)/audit/doc.syn $(SMOKE_DIR)/audit/doc.xml \
	  $(SMOKE_DIR)/audit/queries -o $(SMOKE_DIR)/audit/report.jsonl
	@grep -o '"window":{[^}]*}' $(SMOKE_DIR)/audit/serve.out \
	  > $(SMOKE_DIR)/audit/window.served
	@grep -o '"window":{[^}]*}' $(SMOKE_DIR)/audit/report.jsonl \
	  > $(SMOKE_DIR)/audit/window.offline
	diff $(SMOKE_DIR)/audit/window.served $(SMOKE_DIR)/audit/window.offline
	@grep -q '"worst_step"' $(SMOKE_DIR)/audit/report.jsonl
	@echo "audit-smoke: OK (WORKERS=$(WORKERS), $(SMOKE_DIR)/audit/report.jsonl)"

# Multi-domain stress: the pool suite's 4-client mixed-ops run at full scale
# (10k ops per client against a WORKERS-shard pool), then a --workers smoke
# through the CLI line protocol (BATCH framing + merged METRICS scrape).
stress: build
	STRESS_OPS=$(STRESS_OPS) STRESS_WORKERS=$(WORKERS) \
	  $(DUNE) exec --no-build test/test_pool.exe -- test stress
	@mkdir -p $(SMOKE_DIR)
	$(XSEED) generate xmark --scale 40 -o $(SMOKE_DIR)/stress.xml
	$(XSEED) build $(SMOKE_DIR)/stress.xml -o $(SMOKE_DIR)/stress.syn
	printf 'BATCH 3\n//item\nESTIMATE //person\n//item\nFEEDBACK //item 12\nMETRICS\nRECENT 5\nDRIFT\n' \
	  | $(XSEED) serve $(SMOKE_DIR)/stress.syn --workers $(WORKERS) \
	      > $(SMOKE_DIR)/stress.out
	@grep -q '^OK 3' $(SMOKE_DIR)/stress.out
	@grep -q '^xseed_engine_cache_misses' $(SMOKE_DIR)/stress.out
	@if [ "$(WORKERS)" -gt 1 ]; then \
	  grep -q '^xseed_engine_pool_workers $(WORKERS)' $(SMOKE_DIR)/stress.out; \
	fi
	@echo "stress: OK (WORKERS=$(WORKERS))"

ci: fmt build test fuzz-smoke chaos-smoke tcp-smoke smoke bench-smoke trace-smoke audit-smoke stress

clean:
	$(DUNE) clean
	rm -rf $(SMOKE_DIR)
