(* Differential-testing oracle suite.

   Three oracles, each comparing the estimator against an independent
   source of truth:

   - a total-function oracle: over random documents and queries (well-formed
     or hostile), estimation never raises and never returns NaN, infinity,
     or a negative;
   - an exactness oracle: simple linear paths covered by a HET simple entry
     must estimate the NoK operator's exact cardinality — the HET override
     replaces the kernel approximation with recorded truth;
   - a pool-vs-engine oracle: the serving pool, over the same synopsis,
     must return bit-identical floats to a single engine for every query,
     including after an identical feedback observation on both. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Random documents: small label alphabet so paths collide and recur. *)

let gen_doc_string rand =
  let open QCheck in
  let buf = Buffer.create 256 in
  let label r = String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 4 r)) in
  let rec emit depth r =
    let l = label r in
    Buffer.add_string buf ("<" ^ l ^ ">");
    if depth < 4 then begin
      let kids = Gen.int_bound (4 - depth) r in
      for _ = 1 to kids do
        emit (depth + 1) r
      done
    end;
    Buffer.add_string buf ("</" ^ l ^ ">")
  in
  Buffer.add_string buf "<r>";
  let top = 1 + Gen.int_bound 5 rand in
  for _ = 1 to top do
    emit 1 rand
  done;
  Buffer.add_string buf "</r>";
  Buffer.contents buf

let gen_query_string rand =
  let open QCheck in
  match Gen.int_bound 6 rand with
  | 0 ->
    (* hostile: raw noise *)
    Gen.string_size ~gen:Gen.printable (Gen.int_bound 30) rand
  | 1 -> ""
  | 2 ->
    (* very deep linear path *)
    "/" ^ String.concat "/" (List.init (1 + Gen.int_bound 80 rand) (fun _ -> "a"))
  | _ ->
    let step r =
      let name =
        if Gen.int_bound 6 r = 0 then "*"
        else String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 5 r))
      in
      let pred =
        if Gen.int_bound 3 r = 0 then
          "[" ^ String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 5 r)) ^ "]"
        else ""
      in
      (if Gen.int_bound 4 r = 0 then "//" else "/") ^ name ^ pred
    in
    (if Gen.int_bound 2 rand = 0 then "/r" else "")
    ^ String.concat "" (List.init (1 + Gen.int_bound 5 rand) (fun _ -> step rand))

(* Oracle 1: estimate_result is total — no exception, no NaN/negative. *)
let prop_never_raises =
  QCheck.Test.make ~count:300 ~name:"estimator total on random doc x query"
    (QCheck.make (fun rand -> (gen_doc_string rand, gen_query_string rand)))
    (fun (doc, query) ->
      let kernel = Core.Builder.of_string doc in
      let estimator = Core.Estimator.create ~het:(Core.Het.create ()) kernel in
      match Core.Estimator.estimate_string_result estimator query with
      | Error _ -> true  (* a typed error is a valid total answer *)
      | Ok o ->
        Float.is_finite o.Core.Estimator.value && o.Core.Estimator.value >= 0.0
      | exception e ->
        QCheck.Test.fail_reportf "raised %s on doc=%S query=%S"
          (Printexc.to_string e) doc query)

(* The engine wrapper inherits totality (cache + canonicalization layers). *)
let prop_engine_never_raises =
  QCheck.Test.make ~count:200 ~name:"engine total on random doc x query"
    (QCheck.make (fun rand ->
         (gen_doc_string rand,
          List.init 8 (fun _ -> gen_query_string rand))))
    (fun (doc, queries) ->
      let kernel = Core.Builder.of_string doc in
      let engine =
        Engine.create (Core.Estimator.create ~het:(Core.Het.create ()) kernel)
      in
      List.for_all
        (fun q ->
          match Engine.estimate engine q with
          | Error _ -> true
          | Ok s ->
            Float.is_finite s.Engine.outcome.Core.Estimator.value
            && s.Engine.outcome.Core.Estimator.value >= 0.0
          | exception e ->
            QCheck.Test.fail_reportf "engine raised %s on %S"
              (Printexc.to_string e) q)
        queries)

(* ------------------------------------------------------------------ *)
(* Oracle 2: HET-covered simple paths are exact. *)

let exactness_on doc =
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, stats = Core.Het_builder.build ~kernel ~path_tree () in
  checkb "some simple entries built" true (stats.Core.Het_builder.simple_entries > 0);
  let estimator = Core.Estimator.create ~het kernel in
  let storage =
    Nok.Storage.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let queries = Datagen.Workload.all_simple_paths path_tree in
  checkb "workload non-empty" true (queries <> []);
  List.iter
    (fun ast ->
      let actual = Nok.Eval.cardinality storage ast in
      match Core.Estimator.estimate_result estimator ast with
      | Error e ->
        Alcotest.failf "estimate %s: %s" (Xpath.Ast.to_string ast)
          (Core.Error.to_string e)
      | Ok o ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "HET-exact %s" (Xpath.Ast.to_string ast))
          (float_of_int actual) o.Core.Estimator.value)
    queries

let test_het_simple_paths_exact_paper () =
  exactness_on Datagen.Paper_example.document

let test_het_simple_paths_exact_random () =
  (* Deterministic pseudo-random documents, same oracle. *)
  let rng = Datagen.Rng.create ~seed:42 in
  for _ = 1 to 5 do
    let buf = Buffer.create 256 in
    let rec emit depth =
      let l = String.make 1 (Char.chr (Char.code 'a' + Datagen.Rng.int rng 5)) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 4 then
        for _ = 1 to Datagen.Rng.int rng (5 - depth) do
          emit (depth + 1)
        done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    Buffer.add_string buf "<r>";
    for _ = 1 to 1 + Datagen.Rng.int rng 4 do
      emit 1
    done;
    Buffer.add_string buf "</r>";
    exactness_on (Buffer.contents buf)
  done

(* ------------------------------------------------------------------ *)
(* Oracle 3: the pool is bit-identical to a single engine. *)

let bits = Int64.bits_of_float

let build_stack doc =
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  (path_tree, Core.Estimator.create ~het kernel)

let pool_queries path_tree =
  let rng = Datagen.Rng.create ~seed:7 in
  List.map Xpath.Ast.to_string
    (Datagen.Workload.all_simple_paths path_tree
    @ Datagen.Workload.branching path_tree ~rng ~count:10 ()
    @ Datagen.Workload.complex path_tree ~rng ~count:10 ())

let engine_value engine q =
  match Engine.estimate engine q with
  | Ok s -> s.Engine.outcome.Core.Estimator.value
  | Error e -> Alcotest.failf "engine %s: %s" q (Core.Error.to_string e)

let pool_value pool q =
  match Engine.Pool.estimate pool q with
  | Ok r -> r.Engine.Serve.value
  | Error e -> Alcotest.failf "pool %s: %s" q (Core.Error.to_string e)

let test_pool_bit_identical () =
  let doc = Datagen.Paper_example.document in
  (* Two independent synopsis stacks over the same document: feedback on
     one side must not leak into the other. *)
  let path_tree, engine_est = build_stack doc in
  let _, pool_est = build_stack doc in
  let engine = Engine.create engine_est in
  let pool = Engine.Pool.create ~workers:2 pool_est in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries = pool_queries path_tree in
  List.iter
    (fun q ->
      Alcotest.(check int64)
        (Printf.sprintf "bit-identical %s" q)
        (bits (engine_value engine q))
        (bits (pool_value pool q)))
    queries;
  (* Batch replies are in submission order and identical too. *)
  let batch = Engine.Pool.estimate_batch pool queries in
  List.iter2
    (fun q reply ->
      match reply with
      | Ok r ->
        Alcotest.(check int64)
          (Printf.sprintf "batch bit-identical %s" q)
          (bits (engine_value engine q))
          (bits r.Engine.Serve.value)
      | Error e -> Alcotest.failf "batch %s: %s" q (Core.Error.to_string e))
    queries batch;
  (* One identical feedback observation on both sides; the pool drains,
     refines and bumps its epoch — estimates must still agree bit for bit. *)
  let fq = List.hd queries in
  let wrong_actual = 10 * (1 + int_of_float (engine_value engine fq)) in
  let epoch_before = Engine.Pool.epoch pool in
  (match Engine.feedback engine fq ~actual:wrong_actual with
   | Ok (_, fb) -> checkb "engine refined" true fb.Engine.Feedback.refined
   | Error e -> Alcotest.failf "engine feedback: %s" (Core.Error.to_string e));
  (match Engine.Pool.feedback pool fq ~actual:wrong_actual with
   | Ok fb -> checkb "pool refined" true fb.Engine.Feedback.refined
   | Error e -> Alcotest.failf "pool feedback: %s" (Core.Error.to_string e));
  checki "refining feedback bumps the epoch" (epoch_before + 1)
    (Engine.Pool.epoch pool);
  List.iter
    (fun q ->
      Alcotest.(check int64)
        (Printf.sprintf "post-feedback bit-identical %s" q)
        (bits (engine_value engine q))
        (bits (pool_value pool q)))
    queries

let () =
  let qtests = List.map QCheck_alcotest.to_alcotest
      [ prop_never_raises; prop_engine_never_raises ]
  in
  Alcotest.run "differential"
    [ ("totality", List.map (fun t -> t) qtests);
      ( "het-exactness",
        [ Alcotest.test_case "paper example" `Quick
            test_het_simple_paths_exact_paper;
          Alcotest.test_case "random documents" `Quick
            test_het_simple_paths_exact_random ] );
      ( "pool-vs-engine",
        [ Alcotest.test_case "bit-identical" `Quick test_pool_bit_identical ]
      ) ]
