(* Differential-testing oracle suite.

   Three oracles, each comparing the estimator against an independent
   source of truth:

   - a total-function oracle: over random documents and queries (well-formed
     or hostile), estimation never raises and never returns NaN, infinity,
     or a negative;
   - an exactness oracle: simple linear paths covered by a HET simple entry
     must estimate the NoK operator's exact cardinality — the HET override
     replaces the kernel approximation with recorded truth;
   - a pool-vs-engine oracle: the serving pool, over the same synopsis,
     must return bit-identical floats to a single engine for every query,
     including after an identical feedback observation on both. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Random documents: small label alphabet so paths collide and recur. *)

let gen_doc_string rand =
  let open QCheck in
  let buf = Buffer.create 256 in
  let label r = String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 4 r)) in
  let rec emit depth r =
    let l = label r in
    Buffer.add_string buf ("<" ^ l ^ ">");
    if depth < 4 then begin
      let kids = Gen.int_bound (4 - depth) r in
      for _ = 1 to kids do
        emit (depth + 1) r
      done
    end;
    Buffer.add_string buf ("</" ^ l ^ ">")
  in
  Buffer.add_string buf "<r>";
  let top = 1 + Gen.int_bound 5 rand in
  for _ = 1 to top do
    emit 1 rand
  done;
  Buffer.add_string buf "</r>";
  Buffer.contents buf

let gen_query_string rand =
  let open QCheck in
  match Gen.int_bound 6 rand with
  | 0 ->
    (* hostile: raw noise *)
    Gen.string_size ~gen:Gen.printable (Gen.int_bound 30) rand
  | 1 -> ""
  | 2 ->
    (* very deep linear path *)
    "/" ^ String.concat "/" (List.init (1 + Gen.int_bound 80 rand) (fun _ -> "a"))
  | _ ->
    let step r =
      let name =
        if Gen.int_bound 6 r = 0 then "*"
        else String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 5 r))
      in
      let pred =
        if Gen.int_bound 3 r = 0 then
          "[" ^ String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 5 r)) ^ "]"
        else ""
      in
      (if Gen.int_bound 4 r = 0 then "//" else "/") ^ name ^ pred
    in
    (if Gen.int_bound 2 rand = 0 then "/r" else "")
    ^ String.concat "" (List.init (1 + Gen.int_bound 5 rand) (fun _ -> step rand))

(* Oracle 1: estimate_result is total — no exception, no NaN/negative. *)
let prop_never_raises =
  QCheck.Test.make ~count:300 ~name:"estimator total on random doc x query"
    (QCheck.make (fun rand -> (gen_doc_string rand, gen_query_string rand)))
    (fun (doc, query) ->
      let kernel = Core.Builder.of_string doc in
      let estimator = Core.Estimator.create ~het:(Core.Het.create ()) kernel in
      match Core.Estimator.estimate_string_result estimator query with
      | Error _ -> true  (* a typed error is a valid total answer *)
      | Ok o ->
        Float.is_finite o.Core.Estimator.value && o.Core.Estimator.value >= 0.0
      | exception e ->
        QCheck.Test.fail_reportf "raised %s on doc=%S query=%S"
          (Printexc.to_string e) doc query)

(* The engine wrapper inherits totality (cache + canonicalization layers). *)
let prop_engine_never_raises =
  QCheck.Test.make ~count:200 ~name:"engine total on random doc x query"
    (QCheck.make (fun rand ->
         (gen_doc_string rand,
          List.init 8 (fun _ -> gen_query_string rand))))
    (fun (doc, queries) ->
      let kernel = Core.Builder.of_string doc in
      let engine =
        Engine.create (Core.Estimator.create ~het:(Core.Het.create ()) kernel)
      in
      List.for_all
        (fun q ->
          match Engine.estimate engine q with
          | Error _ -> true
          | Ok s ->
            Float.is_finite s.Engine.outcome.Core.Estimator.value
            && s.Engine.outcome.Core.Estimator.value >= 0.0
          | exception e ->
            QCheck.Test.fail_reportf "engine raised %s on %S"
              (Printexc.to_string e) q)
        queries)

(* ------------------------------------------------------------------ *)
(* Oracle 2: HET-covered simple paths are exact. *)

let exactness_on doc =
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, stats = Core.Het_builder.build ~kernel ~path_tree () in
  checkb "some simple entries built" true (stats.Core.Het_builder.simple_entries > 0);
  let estimator = Core.Estimator.create ~het kernel in
  let storage =
    Nok.Storage.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let queries = Datagen.Workload.all_simple_paths path_tree in
  checkb "workload non-empty" true (queries <> []);
  List.iter
    (fun ast ->
      let actual = Nok.Eval.cardinality storage ast in
      match Core.Estimator.estimate_result estimator ast with
      | Error e ->
        Alcotest.failf "estimate %s: %s" (Xpath.Ast.to_string ast)
          (Core.Error.to_string e)
      | Ok o ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "HET-exact %s" (Xpath.Ast.to_string ast))
          (float_of_int actual) o.Core.Estimator.value)
    queries

let test_het_simple_paths_exact_paper () =
  exactness_on Datagen.Paper_example.document

let test_het_simple_paths_exact_random () =
  (* Deterministic pseudo-random documents, same oracle. *)
  let rng = Datagen.Rng.create ~seed:42 in
  for _ = 1 to 5 do
    let buf = Buffer.create 256 in
    let rec emit depth =
      let l = String.make 1 (Char.chr (Char.code 'a' + Datagen.Rng.int rng 5)) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 4 then
        for _ = 1 to Datagen.Rng.int rng (5 - depth) do
          emit (depth + 1)
        done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    Buffer.add_string buf "<r>";
    for _ = 1 to 1 + Datagen.Rng.int rng 4 do
      emit 1
    done;
    Buffer.add_string buf "</r>";
    exactness_on (Buffer.contents buf)
  done

(* ------------------------------------------------------------------ *)
(* Oracle 3: the pool is bit-identical to a single engine. *)

let bits = Int64.bits_of_float

let build_stack doc =
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  (path_tree, Core.Estimator.create ~het kernel)

let pool_queries path_tree =
  let rng = Datagen.Rng.create ~seed:7 in
  List.map Xpath.Ast.to_string
    (Datagen.Workload.all_simple_paths path_tree
    @ Datagen.Workload.branching path_tree ~rng ~count:10 ()
    @ Datagen.Workload.complex path_tree ~rng ~count:10 ())

let engine_value engine q =
  match Engine.estimate engine q with
  | Ok s -> s.Engine.outcome.Core.Estimator.value
  | Error e -> Alcotest.failf "engine %s: %s" q (Core.Error.to_string e)

let pool_value pool q =
  match Engine.Pool.estimate pool q with
  | Ok r -> r.Engine.Serve.value
  | Error e -> Alcotest.failf "pool %s: %s" q (Core.Error.to_string e)

let test_pool_bit_identical () =
  let doc = Datagen.Paper_example.document in
  (* Two independent synopsis stacks over the same document: feedback on
     one side must not leak into the other. *)
  let path_tree, engine_est = build_stack doc in
  let _, pool_est = build_stack doc in
  let engine = Engine.create engine_est in
  let pool = Engine.Pool.create ~workers:2 pool_est in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries = pool_queries path_tree in
  List.iter
    (fun q ->
      Alcotest.(check int64)
        (Printf.sprintf "bit-identical %s" q)
        (bits (engine_value engine q))
        (bits (pool_value pool q)))
    queries;
  (* Batch replies are in submission order and identical too. *)
  let batch = Engine.Pool.estimate_batch pool queries in
  List.iter2
    (fun q reply ->
      match reply with
      | Ok r ->
        Alcotest.(check int64)
          (Printf.sprintf "batch bit-identical %s" q)
          (bits (engine_value engine q))
          (bits r.Engine.Serve.value)
      | Error e -> Alcotest.failf "batch %s: %s" q (Core.Error.to_string e))
    queries batch;
  (* One identical feedback observation on both sides; the pool drains,
     refines and bumps its epoch — estimates must still agree bit for bit. *)
  let fq = List.hd queries in
  let wrong_actual = 10 * (1 + int_of_float (engine_value engine fq)) in
  let epoch_before = Engine.Pool.epoch pool in
  (match Engine.feedback engine fq ~actual:wrong_actual with
   | Ok (_, fb) -> checkb "engine refined" true fb.Engine.Feedback.refined
   | Error e -> Alcotest.failf "engine feedback: %s" (Core.Error.to_string e));
  (match Engine.Pool.feedback pool fq ~actual:wrong_actual with
   | Ok fb -> checkb "pool refined" true fb.Engine.Feedback.refined
   | Error e -> Alcotest.failf "pool feedback: %s" (Core.Error.to_string e));
  checki "refining feedback bumps the epoch" (epoch_before + 1)
    (Engine.Pool.epoch pool);
  List.iter
    (fun q ->
      Alcotest.(check int64)
        (Printf.sprintf "post-feedback bit-identical %s" q)
        (bits (engine_value engine q))
        (bits (pool_value pool q)))
    queries

(* The same oracle under chunked dispatch, stealing and affinity routing,
   on hostile inputs: random documents, a query mix that includes
   malformed and degenerate spellings, a pool configured so batches split
   into many small chunks (workers > chunk plan slots, chunk_target 3)
   and every batch routed to one preferred shard so the others must
   steal. Errors must agree by kind, values bit for bit, including after
   an identical feedback observation bumps the pool's epoch. *)

let rng_doc rng =
  let buf = Buffer.create 256 in
  let rec emit depth =
    let l = String.make 1 (Char.chr (Char.code 'a' + Datagen.Rng.int rng 5)) in
    Buffer.add_string buf ("<" ^ l ^ ">");
    if depth < 4 then
      for _ = 1 to Datagen.Rng.int rng (5 - depth) do
        emit (depth + 1)
      done;
    Buffer.add_string buf ("</" ^ l ^ ">")
  in
  Buffer.add_string buf "<r>";
  for _ = 1 to 1 + Datagen.Rng.int rng 4 do
    emit 1
  done;
  Buffer.add_string buf "</r>";
  Buffer.contents buf

let hostile_queries path_tree =
  let rng = Datagen.Rng.create ~seed:13 in
  let valid =
    List.map Xpath.Ast.to_string
      (Datagen.Workload.all_simple_paths path_tree
      @ Datagen.Workload.branching path_tree ~rng ~count:8 ())
  in
  let hostile =
    [ ""; "/r["; "///"; "/r//*[z"; "$%#@!"; "//*"; "/*/*/*";
      "/" ^ String.concat "/" (List.init 60 (fun _ -> "a")) ]
  in
  (* Interleave so hostile slots land mid-chunk, not in a block. *)
  let rec weave = function
    | [], rest | rest, [] -> rest
    | a :: xs, b :: ys -> a :: b :: weave (xs, ys)
  in
  weave (valid, hostile) @ valid

let check_agree ~label engine reply q =
  let expected = Engine.estimate engine q in
  match (expected, reply) with
  | Ok s, Ok (r : Engine.Serve.estimate_reply) ->
    Alcotest.(check int64)
      (Printf.sprintf "%s bit-identical %S" label q)
      (bits s.Engine.outcome.Core.Estimator.value)
      (bits r.Engine.Serve.value)
  | Error e1, Error e2 ->
    checkb
      (Printf.sprintf "%s same error kind %S" label q)
      true
      (Core.Error.kind e1 = Core.Error.kind e2)
  | Ok _, Error e ->
    Alcotest.failf "%s: pool refused %S the engine served: %s" label q
      (Core.Error.to_string e)
  | Error e, Ok _ ->
    Alcotest.failf "%s: pool served %S the engine refused: %s" label q
      (Core.Error.to_string e)

let test_pool_chunked_hostile_bit_identical () =
  let rng = Datagen.Rng.create ~seed:99 in
  for round = 1 to 3 do
    let doc = rng_doc rng in
    let path_tree, engine_est = build_stack doc in
    let _, pool_est = build_stack doc in
    let engine = Engine.create engine_est in
    let pool = Engine.Pool.create ~workers:4 ~chunk_target:3 pool_est in
    Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
    let queries = hostile_queries path_tree in
    let label = Printf.sprintf "round %d" round in
    (* Affinity-routed singles agree... *)
    List.iter
      (fun q ->
        check_agree ~label engine (Engine.Pool.estimate ~affinity:round pool q) q)
      queries;
    (* ...and an affinity-routed batch (all chunks planned onto one shard,
       the other three must steal) agrees slot for slot in submission
       order. *)
    let batch = Engine.Pool.estimate_batch ~affinity:round pool queries in
    checki (label ^ " batch width") (List.length queries) (List.length batch);
    List.iter2 (fun q reply -> check_agree ~label:(label ^ " batch") engine reply q)
      queries batch;
    (* One identical feedback on both sides: the pool drains it on a worker
       domain, refines, bumps its epoch — and must still agree bit for bit
       with the engine that refined in-line. *)
    let fq =
      List.find
        (fun q -> match Engine.estimate engine q with Ok _ -> true | Error _ -> false)
        queries
    in
    let wrong_actual = 10 * (1 + int_of_float (engine_value engine fq)) in
    let epoch_before = Engine.Pool.epoch pool in
    (match Engine.feedback engine fq ~actual:wrong_actual with
     | Ok _ -> ()
     | Error e ->
       Alcotest.failf "%s engine feedback: %s" label (Core.Error.to_string e));
    (match Engine.Pool.feedback pool fq ~actual:wrong_actual with
     | Ok _ -> ()
     | Error e ->
       Alcotest.failf "%s pool feedback: %s" label (Core.Error.to_string e));
    checkb (label ^ " epoch bumped or kept") true
      (Engine.Pool.epoch pool >= epoch_before);
    let batch2 = Engine.Pool.estimate_batch ~affinity:round pool queries in
    List.iter2
      (fun q reply -> check_agree ~label:(label ^ " post-feedback") engine reply q)
      queries batch2
  done

(* Mid-batch deadline expiry under chunked dispatch. One worker, one
   8-slot chunk, a 50 ms budget measured from the chunk's enqueue: slots
   before the gated query are served within budget (and must match the
   engine bit for bit), the gated slot and everything after it expire
   while the worker is parked, and the refusals must not disturb
   submission order or later traffic. *)

type gate = {
  g_lock : Mutex.t;
  g_cond : Condition.t;
  mutable g_entered : bool;
  mutable g_released : bool;
}

let gate () =
  { g_lock = Mutex.create (); g_cond = Condition.create ();
    g_entered = false; g_released = false }

let gate_hook g = function
  | "//sleepy" ->
    Mutex.lock g.g_lock;
    g.g_entered <- true;
    Condition.broadcast g.g_cond;
    while not g.g_released do Condition.wait g.g_cond g.g_lock done;
    Mutex.unlock g.g_lock;
    false
  | _ -> false

let test_pool_deadline_mid_batch () =
  let doc = Datagen.Paper_example.document in
  let path_tree, engine_est = build_stack doc in
  let _, pool_est = build_stack doc in
  let engine = Engine.create engine_est in
  let g = gate () in
  let deadline_s = 0.05 in
  let pool =
    Engine.Pool.create ~workers:1 ~chunk_target:8 ~deadline_s
      ~chaos:(gate_hook g) pool_est
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let fast =
    List.map Xpath.Ast.to_string (Datagen.Workload.all_simple_paths path_tree)
  in
  let q0 = List.nth fast 0 and q1 = List.nth fast 1 in
  let queries = [ q0; q1; "//sleepy"; q0; q1; q0; q1; q0 ] in
  let batcher =
    Domain.spawn (fun () -> Engine.Pool.estimate_batch pool queries)
  in
  (* The worker served slots 0-1 and is now parked inside slot 2; hold it
     past the whole chunk's budget before letting go. *)
  Mutex.lock g.g_lock;
  while not g.g_entered do Condition.wait g.g_cond g.g_lock done;
  Mutex.unlock g.g_lock;
  Unix.sleepf (5.0 *. deadline_s);
  Mutex.lock g.g_lock;
  g.g_released <- true;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_lock;
  let batch = Domain.join batcher in
  checki "all slots answered" 8 (List.length batch);
  List.iteri
    (fun i reply ->
      match reply with
      | Ok (r : Engine.Serve.estimate_reply) ->
        if i >= 2 then Alcotest.failf "slot %d served after expiry" i;
        Alcotest.(check int64)
          (Printf.sprintf "pre-expiry slot %d bit-identical" i)
          (bits (engine_value engine (List.nth queries i)))
          (bits r.Engine.Serve.value)
      | Error e ->
        if i < 2 then
          Alcotest.failf "pre-expiry slot %d refused: %s" i
            (Core.Error.to_string e);
        checkb
          (Printf.sprintf "slot %d expired with ERR timeout" i)
          true
          (Core.Error.kind e = Core.Error.Timeout))
    batch;
  checki "six slots timed out" 6 (Engine.Pool.timeout_total pool);
  (* The pool is unharmed: fresh traffic still agrees with the engine. *)
  List.iter
    (fun q ->
      Alcotest.(check int64)
        (Printf.sprintf "post-expiry bit-identical %s" q)
        (bits (engine_value engine q))
        (bits (pool_value pool q)))
    fast

let () =
  let qtests = List.map QCheck_alcotest.to_alcotest
      [ prop_never_raises; prop_engine_never_raises ]
  in
  Alcotest.run "differential"
    [ ("totality", List.map (fun t -> t) qtests);
      ( "het-exactness",
        [ Alcotest.test_case "paper example" `Quick
            test_het_simple_paths_exact_paper;
          Alcotest.test_case "random documents" `Quick
            test_het_simple_paths_exact_random ] );
      ( "pool-vs-engine",
        [ Alcotest.test_case "bit-identical" `Quick test_pool_bit_identical;
          Alcotest.test_case "chunked + stolen + affinity on hostile inputs"
            `Quick test_pool_chunked_hostile_bit_identical;
          Alcotest.test_case "mid-batch deadline expiry" `Quick
            test_pool_deadline_mid_batch ]
      ) ]
