(* Robustness suite: golden error kinds/positions for malformed XML and
   XPath, synopsis file corruption (truncation, bit flips, CRC sweep),
   version negotiation, resource limits, and estimator guard rails. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Malformed XML: every entry is (input, expected byte position, message
   fragment). All must fail with a [`Malformed] parse error — never an
   exception — at exactly the recorded position. *)

let bad_xml =
  [ ("", 0, "no root element");
    ("   ", 3, "no root element");
    ("text only", 0, "text outside the root element");
    ("<", 1, "dangling '<' at end of input");
    ("<a", 2, "unterminated start tag");
    ("<a>", 3, "unclosed element");
    ("<a></b>", 7, "mismatched closing tag");
    ("<a><b></a>", 10, "mismatched closing tag");
    ("<a></a><b></b>", 8, "content after the root element");
    ("<a></a>trailing", 7, "text outside the root element");
    ("<a attr></a>", 7, "expected '='");
    ("<a x=1></a>", 5, "expected quoted attribute value");
    ("<a x=\"1></a>", 8, "'<' in attribute value");
    ("</a>", 4, "no open element");
    ("<1a></1a>", 1, "unexpected character '1'");
    ("<a>&unknown;</a>", 4, "unknown entity");
    ("<a>&#xZZ;</a>", 4, "bad character reference");
    ("<a>&#x110000;</a>", 4, "out of range");
    ("<a>&#xD800;</a>", 4, "surrogate character reference");
    ("<a>&#xDFFF;</a>", 4, "surrogate character reference");
    ("<a>& b</a>", 4, "unterminated entity reference");
    ("<a><!-- unterminated </a>", 7, "unterminated construct");
    ("<a><![CDATA[ unterminated </a>", 12, "unterminated CDATA section");
    ("<a><?pi unterminated </a>", 5, "unterminated construct");
    ("<a></ a>", 5, "expected a name");
    ("<a/ >", 3, "expected '>'");
    ("<a><b/></a", 10, "expected '>'");
    ("<a><b></b></a></a>", 18, "no open element");
    ("<>x</>", 1, "unexpected character '>'");
    ("<a></a", 6, "expected '>'") ]

let test_bad_xml () =
  List.iter
    (fun (input, position, fragment) ->
      match Xml.Sax.fold_result input ~init:() ~f:(fun () _ -> ()) with
      | Ok () -> Alcotest.failf "%S parsed successfully" input
      | Error e ->
        checkb (Printf.sprintf "%S kind" input) true (e.Xml.Sax.kind = `Malformed);
        checki (Printf.sprintf "%S position" input) position e.Xml.Sax.position;
        checkb
          (Printf.sprintf "%S message mentions %S (got %S)" input fragment
             e.Xml.Sax.message)
          true
          (contains ~sub:fragment e.Xml.Sax.message))
    bad_xml

(* Near misses of the surrogate range must still parse. *)
let test_surrogate_boundaries () =
  match Xml.Sax.fold_result "<a>&#xD7FF;&#xE000;</a>" ~init:() ~f:(fun () _ -> ())
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "boundary codepoints rejected: %s" e.Xml.Sax.message

(* ------------------------------------------------------------------ *)
(* Malformed XPath: (input, expected byte position, message fragment). *)

let bad_xpath =
  [ ("", 0, "must start with");
    ("/", 1, "expected a name test");
    ("//", 2, "expected a name test");
    ("a", 0, "must start with");
    ("/a[", 3, "expected a name test");
    ("/a[]", 3, "expected a name test");
    ("/a[b", 4, "expected ']'");
    ("/a]", 2, "trailing input");
    ("/a[@x=]", 6, "expected a literal");
    ("/a[@x!]", 5, "expected a comparison");
    ("/a[x=1", 6, "expected ']'");
    ("/a/", 3, "expected a name test");
    ("/a[='v']", 3, "expected a name test");
    ("/a[@]", 4, "expected a name");
    ("/a[x='unterminated]", 6, "unterminated string literal");
    ("/a b", 3, "trailing input") ]

let test_bad_xpath () =
  List.iter
    (fun (input, position, fragment) ->
      match Xpath.Parser.parse_result input with
      | Ok _ -> Alcotest.failf "%S parsed successfully" input
      | Error e ->
        checki (Printf.sprintf "%S position" input) position
          e.Xpath.Parser.position;
        checkb
          (Printf.sprintf "%S message mentions %S (got %S)" input fragment
             e.Xpath.Parser.message)
          true
          (contains ~sub:fragment e.Xpath.Parser.message))
    bad_xpath

(* ------------------------------------------------------------------ *)
(* Resource limits *)

let test_limits () =
  let parse ~limits s = Xml.Sax.fold_result ~limits s ~init:() ~f:(fun () _ -> ()) in
  let expect_limit name result =
    match result with
    | Error { Xml.Sax.kind = `Limit; _ } -> ()
    | Error e -> Alcotest.failf "%s: expected `Limit, got %s" name e.Xml.Sax.message
    | Ok () -> Alcotest.failf "%s: parsed successfully" name
  in
  let deep = String.concat "" (List.init 20 (fun i -> Printf.sprintf "<e%d>" i)) in
  expect_limit "depth"
    (parse ~limits:{ Xml.Sax.default_limits with max_depth = 10 } deep);
  expect_limit "input bytes"
    (parse ~limits:{ Xml.Sax.default_limits with max_input_bytes = 4 } "<a></a>");
  expect_limit "text length"
    (parse
       ~limits:{ Xml.Sax.default_limits with max_text_length = 4 }
       "<a>hello world</a>");
  expect_limit "attribute length"
    (parse
       ~limits:{ Xml.Sax.default_limits with max_attribute_length = 2 }
       "<a x=\"abcdef\"/>");
  expect_limit "entity length"
    (parse
       ~limits:{ Xml.Sax.default_limits with max_entity_length = 4 }
       "<a>&aVeryLongEntity;</a>");
  (* the same documents parse with default limits (except the entity, which
     is genuinely unknown) *)
  (match parse ~limits:Xml.Sax.default_limits deep with
   | Error { Xml.Sax.message; _ } ->
     (* 20 unclosed elements is malformed, but not a limit error *)
     checkb "deep doc fails on well-formedness, not limits" true
       (String.length message > 0)
   | Ok () -> Alcotest.fail "unclosed elements accepted")

(* ------------------------------------------------------------------ *)
(* Synopsis corruption *)

let small_doc = "<r><a>x</a><a>y</a><b><a>z</a></b></r>"

let small_synopsis =
  lazy (Core.Synopsis.build ~with_het:true ~with_values:true small_doc)

let expect_corrupt name contents =
  match Core.Synopsis.of_string_result contents with
  | Error e ->
    checkb
      (Printf.sprintf "%s kind (got %s)" name (Core.Error.to_string e))
      true
      (Core.Error.kind e = Core.Error.Corrupt_synopsis)
  | Ok _ -> Alcotest.failf "%s: loaded successfully" name

(* Flip every single payload byte of a v2 dump: each one must be caught by
   the section CRC (or, for the rare flip that damages structure first, by
   any other corruption error) — never accepted, never an exception. *)
let test_v2_crc_sweep () =
  let dump = Core.Synopsis.to_string (Lazy.force small_synopsis) in
  let payload_start =
    let marker = "end\n" in
    let rec find i =
      if String.sub dump i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    find 0
  in
  for i = payload_start to String.length dump - 1 do
    let b = Bytes.of_string dump in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    expect_corrupt (Printf.sprintf "flip payload byte %d" i) (Bytes.to_string b)
  done

let test_v2_truncation () =
  let dump = Core.Synopsis.to_string (Lazy.force small_synopsis) in
  (* every strict prefix must be rejected *)
  let step = max 1 (String.length dump / 97) in
  let i = ref 0 in
  while !i < String.length dump do
    expect_corrupt
      (Printf.sprintf "truncate at %d" !i)
      (String.sub dump 0 !i);
    i := !i + step
  done;
  expect_corrupt "trailing garbage" (dump ^ "x")

let test_v1_truncation () =
  expect_corrupt "v1 header only" "xseed-synopsis v1\n";
  expect_corrupt "v1 empty kernel" "xseed-synopsis v1\n---kernel---\n";
  expect_corrupt "v1 half a kernel line"
    "xseed-synopsis v1\nr\n---kernel---\nxseed-kernel v1\nroot r\nvertex";
  expect_corrupt "not a synopsis" "garbage";
  expect_corrupt "empty file" ""

let test_v1_compat () =
  let syn = Lazy.force small_synopsis in
  let v1 = Core.Synopsis.to_string ~version:`V1 syn in
  match Core.Synopsis.of_string_result v1 with
  | Error e -> Alcotest.failf "v1 round trip failed: %s" (Core.Error.to_string e)
  | Ok loaded ->
    checki "v1 vertices"
      (Core.Kernel.vertex_count (Core.Synopsis.kernel syn))
      (Core.Kernel.vertex_count (Core.Synopsis.kernel loaded));
    checkb "v1 has het" true (Core.Synopsis.het loaded <> None);
    checkb "v1 has values" true (Core.Synopsis.values loaded <> None);
    (* v1 cannot persist the threshold: documents the default fallback *)
    check (Alcotest.float 0.0) "v1 card_threshold" 0.5
      (Core.Synopsis.card_threshold loaded)

let test_v2_round_trip () =
  let syn =
    Core.Synopsis.build ~with_het:true ~with_values:true ~card_threshold:3.5
      small_doc
  in
  match Core.Synopsis.of_string_result (Core.Synopsis.to_string syn) with
  | Error e -> Alcotest.failf "v2 round trip failed: %s" (Core.Error.to_string e)
  | Ok loaded ->
    check (Alcotest.float 0.0) "v2 card_threshold preserved" 3.5
      (Core.Synopsis.card_threshold loaded);
    checkb "v2 has het" true (Core.Synopsis.het loaded <> None);
    checkb "v2 has values" true (Core.Synopsis.values loaded <> None);
    List.iter
      (fun q ->
        check (Alcotest.float 1e-9) q
          (Core.Estimator.estimate_string (Core.Synopsis.estimator syn) q)
          (Core.Estimator.estimate_string (Core.Synopsis.estimator loaded) q))
      [ "/r/a"; "//a"; "/r/b[a]"; "//*" ]

(* A label that contains a v1 section-marker string mis-splits the v1 file
   (documented limitation: the scan-for-marker design cannot tell payload
   from frame). The failure must still be a structured error, and v2 must
   load the same synopsis exactly. *)
let test_marker_label_regression () =
  let doc = "<r><a---values--->x</a---values---></r>" in
  let syn = Core.Synopsis.build ~with_het:false ~with_values:false doc in
  (match Core.Synopsis.of_string_result (Core.Synopsis.to_string ~version:`V1 syn)
   with
   | Error e ->
     checkb "v1 marker collision is Corrupt_synopsis" true
       (Core.Error.kind e = Core.Error.Corrupt_synopsis)
   | Ok _ -> Alcotest.fail "v1 marker collision load unexpectedly succeeded");
  match Core.Synopsis.of_string_result (Core.Synopsis.to_string syn) with
  | Error e -> Alcotest.failf "v2 marker label failed: %s" (Core.Error.to_string e)
  | Ok loaded ->
    checki "v2 marker label vertices" 2
      (Core.Kernel.vertex_count (Core.Synopsis.kernel loaded));
    check (Alcotest.float 1e-9) "v2 marker label estimate" 1.0
      (Core.Estimator.estimate_string
         (Core.Synopsis.estimator loaded)
         "//a---values---")

(* Sub-synopsis deserializers reject non-finite statistics that would
   poison estimates. *)
let test_non_finite_statistics () =
  (match Core.Het.of_string_result "xseed-het v1\nsimple 1 5 nan 0.0\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "HET accepted a NaN bsel");
  (match Core.Het.of_string_result "xseed-het v1\nbranching 1 inf 0.0\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "HET accepted an infinite bsel");
  match Core.Value_synopsis.of_string_result "junk" with
  | Error e ->
    checkb "values junk is Corrupt_synopsis" true
      (Core.Error.kind e = Core.Error.Corrupt_synopsis)
  | Ok _ -> Alcotest.fail "value synopsis accepted junk"

(* ------------------------------------------------------------------ *)
(* Estimator guard rails *)

let test_estimator_guards () =
  let est = Core.Synopsis.estimator (Lazy.force small_synopsis) in
  (* unknown labels: reported, never interned, estimate is plain zero *)
  (match Core.Estimator.estimate_string_result est "/r/zzz[qqq]" with
   | Error e -> Alcotest.failf "unknown label errored: %s" (Core.Error.to_string e)
   | Ok o ->
     check (Alcotest.float 0.0) "unknown label estimate" 0.0
       o.Core.Estimator.value;
     check
       (Alcotest.list Alcotest.string)
       "unknown labels" [ "zzz"; "qqq" ] o.Core.Estimator.unknown_labels);
  let table = Core.Kernel.table (Core.Estimator.kernel est) in
  checkb "unknown name not interned" true (Xml.Label.find_opt table "zzz" = None);
  (* malformed queries come back as errors with the right kind *)
  (match Core.Estimator.estimate_result est [] with
   | Error e ->
     checkb "empty query kind" true (Core.Error.kind e = Core.Error.Malformed_query)
   | Ok _ -> Alcotest.fail "empty query estimated");
  (match Core.Estimator.estimate_string_result est "/r[" with
   | Error e ->
     checkb "syntax error kind" true
       (Core.Error.kind e = Core.Error.Malformed_query);
     checkb "syntax error position" true (Core.Error.position e = Some 3)
   | Ok _ -> Alcotest.fail "bad query estimated");
  (let wide =
     "/r" ^ String.concat "" (List.init 70 (fun _ -> "[a]"))
   in
   match Core.Estimator.estimate_string_result est wide with
   | Error e ->
     checkb "oversized query kind" true
       (Core.Error.kind e = Core.Error.Malformed_query)
   | Ok _ -> Alcotest.fail ">62-node query estimated");
  (* degenerate value clamping *)
  checkb "nan clamps to 0" true (Core.Estimator.clamp_estimate Float.nan = (0.0, 1));
  checkb "inf clamps to max_float" true
    (Core.Estimator.clamp_estimate Float.infinity = (Float.max_float, 1));
  checkb "negative clamps to 0" true (Core.Estimator.clamp_estimate (-3.0) = (0.0, 1));
  checkb "finite passes through" true (Core.Estimator.clamp_estimate 42.0 = (42.0, 0));
  let obs = Obs.create () in
  ignore (Core.Estimator.clamp_estimate ~obs Float.nan);
  checki "clamp counter" 1
    (Obs.value (Obs.counter obs "estimator.degenerate_clamps"))

(* ------------------------------------------------------------------ *)
(* Error type and CRC-32 primitives *)

let test_error_exit_codes () =
  let code k = Core.Error.exit_code (Core.Error.make k "m") in
  checki "malformed xml" 65 (code Core.Error.Malformed_xml);
  checki "malformed query" 65 (code Core.Error.Malformed_query);
  checki "corrupt synopsis" 65 (code Core.Error.Corrupt_synopsis);
  checki "limit" 65 (code Core.Error.Limit_exceeded);
  checki "missing file" 66 (code Core.Error.Missing_file);
  checki "io" 74 (code Core.Error.Io_error);
  checki "internal" 70 (code Core.Error.Internal)

let test_crc32 () =
  (* standard CRC-32 check value *)
  checki "check value" 0xCBF43926 (Core.Crc32.digest "123456789");
  checki "empty" 0 (Core.Crc32.digest "");
  let h = Core.Crc32.to_hex (Core.Crc32.digest "xseed") in
  checkb "hex round trip" true
    (Core.Crc32.of_hex h = Some (Core.Crc32.digest "xseed"));
  checkb "bad hex rejected" true (Core.Crc32.of_hex "xyzw1234" = None);
  checkb "short hex rejected" true (Core.Crc32.of_hex "1234" = None)

let () =
  Alcotest.run "robustness"
    [ ( "xml",
        [ Alcotest.test_case "bad documents (golden positions)" `Quick
            test_bad_xml;
          Alcotest.test_case "surrogate boundaries" `Quick
            test_surrogate_boundaries;
          Alcotest.test_case "resource limits" `Quick test_limits ] );
      ( "xpath",
        [ Alcotest.test_case "bad queries (golden positions)" `Quick
            test_bad_xpath ] );
      ( "synopsis",
        [ Alcotest.test_case "v2 CRC sweep" `Quick test_v2_crc_sweep;
          Alcotest.test_case "v2 truncation" `Quick test_v2_truncation;
          Alcotest.test_case "v1 truncation" `Quick test_v1_truncation;
          Alcotest.test_case "v1 backward compatibility" `Quick test_v1_compat;
          Alcotest.test_case "v2 round trip" `Quick test_v2_round_trip;
          Alcotest.test_case "v1 marker-label limitation, v2 fix" `Quick
            test_marker_label_regression;
          Alcotest.test_case "non-finite statistics rejected" `Quick
            test_non_finite_statistics ] );
      ( "estimator",
        [ Alcotest.test_case "guard rails" `Quick test_estimator_guards ] );
      ( "error",
        [ Alcotest.test_case "exit codes" `Quick test_error_exit_codes;
          Alcotest.test_case "crc32" `Quick test_crc32 ] ) ]
