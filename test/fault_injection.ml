(* Fault-injection harness: mutate well-formed XML documents, synopsis
   dumps and query strings with seeded random corruptions, and assert that
   every library entry point answers with [Error _] — never an uncaught
   exception, never a NaN estimate.

   Deterministic: all randomness comes from [Datagen.Rng] streams derived
   from the --seeds list, so a failing (seed, case) pair reproduces exactly.
   `make fuzz-smoke` runs the fixed configuration wired into CI. *)

let failures = ref 0
let total = ref 0

let fail_case ~category ~seed ~case fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL [%s seed=%d case=%d] %s\n%!" category seed case msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Mutations *)

let flip_bit rng s =
  let b = Bytes.of_string s in
  let i = Datagen.Rng.int rng (Bytes.length b) in
  Bytes.set b i
    (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Datagen.Rng.int rng 8)));
  Bytes.to_string b

let truncate rng s = String.sub s 0 (Datagen.Rng.int rng (String.length s))

let delete_chunk rng s =
  let n = String.length s in
  let i = Datagen.Rng.int rng n in
  let len = min (n - i) (1 + Datagen.Rng.int rng 64) in
  String.sub s 0 i ^ String.sub s (i + len) (n - i - len)

let overwrite_chunk rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let i = Datagen.Rng.int rng n in
  let len = min (n - i) (1 + Datagen.Rng.int rng 16) in
  for j = i to i + len - 1 do
    Bytes.set b j (Char.chr (Datagen.Rng.int rng 256))
  done;
  Bytes.to_string b

(* Copy a random chunk to a random position: the mutation most likely to
   manufacture duplicate or out-of-place v1 section markers. *)
let splice rng s =
  let n = String.length s in
  let i = Datagen.Rng.int rng n and j = Datagen.Rng.int rng n in
  let len = min (n - i) (1 + Datagen.Rng.int rng 32) in
  String.sub s 0 j ^ String.sub s i len ^ String.sub s j (n - j)

let mutate_once rng s =
  if String.length s = 0 then s
  else
    match Datagen.Rng.int rng 5 with
    | 0 -> flip_bit rng s
    | 1 -> truncate rng s
    | 2 -> delete_chunk rng s
    | 3 -> overwrite_chunk rng s
    | _ -> splice rng s

let mutate rng s =
  let rounds = 1 + Datagen.Rng.int rng 3 in
  let rec go s k = if k = 0 then s else go (mutate_once rng s) (k - 1) in
  go s rounds

(* ------------------------------------------------------------------ *)
(* Base material: small well-formed inputs to corrupt. *)

let docs =
  lazy
    [| Datagen.Paper_example.document;
       Datagen.Xmark.generate ~seed:11 ~items:8 ();
       Datagen.Dblp.generate ~seed:12 ~records:10 ();
       Datagen.Treebank.generate ~seed:13 ~sentences:6 () |]

let good_synopsis =
  lazy
    (Core.Synopsis.build ~with_het:true ~with_values:true
       Datagen.Paper_example.document)

let synopsis_dumps =
  lazy
    (let syn = Lazy.force good_synopsis in
     [| Core.Synopsis.to_string ~version:`V2 syn;
        Core.Synopsis.to_string ~version:`V1 syn |])

(* Queries derived from the paper document's own paths, so label names are
   right without hard-coding them, plus generic shapes. *)
let queries =
  lazy
    (let pt = Pathtree.Path_tree.of_string Datagen.Paper_example.document in
     let simple = Datagen.Workload.all_simple_paths pt in
     let take n l =
       List.filteri (fun i _ -> i < n) l |> List.map Xpath.Ast.to_string
     in
     Array.of_list (take 6 simple @ [ "/*"; "//*"; "//*[*]" ]))

let limits =
  { Xml.Sax.default_limits with
    max_depth = 500;
    max_attribute_length = 4096;
    max_text_length = 1 lsl 16;
    max_input_bytes = 1 lsl 22 }

(* An estimator over a (possibly corrupt but loadable) synopsis, with a
   small EPT cap so a corrupted card_threshold cannot stall the run. *)
let estimator_of syn =
  Core.Estimator.create
    ~card_threshold:(Core.Synopsis.card_threshold syn)
    ~max_ept_nodes:50_000
    ?het:(Core.Synopsis.het syn)
    ?values:(Core.Synopsis.values syn)
    (Core.Synopsis.kernel syn)

let check_estimates ~category ~seed ~case est =
  Array.iter
    (fun q ->
      match Core.Estimator.estimate_string_result est q with
      | Ok o ->
        if Float.is_nan o.Core.Estimator.value || o.Core.Estimator.value < 0.0
        then
          fail_case ~category ~seed ~case "estimate of %s is %h" q
            o.Core.Estimator.value
      | Error _ -> ()
      | exception e ->
        fail_case ~category ~seed ~case "exception estimating %s: %s" q
          (Printexc.to_string e))
    (Lazy.force queries)

(* ------------------------------------------------------------------ *)
(* Categories *)

let xml_case rng ~seed ~case =
  incr total;
  let category = "xml" in
  let doc = mutate rng (Datagen.Rng.choose rng (Lazy.force docs)) in
  (match Xml.Sax.fold_result ~limits doc ~init:0 ~f:(fun n _ -> n + 1) with
   | Ok _ | Error _ -> ()
   | exception e ->
     fail_case ~category ~seed ~case "Sax.fold_result raised %s"
       (Printexc.to_string e));
  (* Full synopsis construction is heavier; exercise it on small inputs. *)
  if String.length doc < 2048 then
    match Core.Synopsis.build_result ~with_het:true ~with_values:true doc with
    | Ok _ | Error _ -> ()
    | exception e ->
      fail_case ~category ~seed ~case "Synopsis.build_result raised %s"
        (Printexc.to_string e)

let synopsis_case rng ~seed ~case =
  incr total;
  let category = "synopsis" in
  let dump = mutate rng (Datagen.Rng.choose rng (Lazy.force synopsis_dumps)) in
  match Core.Synopsis.of_string_result dump with
  | Error _ -> ()
  | Ok syn -> check_estimates ~category ~seed ~case (estimator_of syn)
  | exception e ->
    fail_case ~category ~seed ~case "Synopsis.of_string_result raised %s"
      (Printexc.to_string e)

let query_case rng ~seed ~case =
  incr total;
  let category = "query" in
  let q = mutate rng (Datagen.Rng.choose rng (Lazy.force queries)) in
  match Xpath.Parser.parse_result q with
  | Error _ -> ()
  | Ok _ -> (
    let est = estimator_of (Lazy.force good_synopsis) in
    match Core.Estimator.estimate_string_result est q with
    | Ok o ->
      if Float.is_nan o.Core.Estimator.value || o.Core.Estimator.value < 0.0
      then
        fail_case ~category ~seed ~case "estimate of %s is %h" q
          o.Core.Estimator.value
    | Error _ -> ()
    | exception e ->
      fail_case ~category ~seed ~case "exception estimating %s: %s" q
        (Printexc.to_string e))
  | exception e ->
    fail_case ~category ~seed ~case "Parser.parse_result raised %s"
      (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Serving-path categories: worker kills, journal corruption, deadline
   storms. These drive Engine.Pool / Engine.Journal rather than the
   estimator, asserting the failure-model invariants of DESIGN.md §13:
   every submitted slot is answered (a killed worker never hangs a
   batch), restarts equal injected kills, corrupted journals scan
   without raising and truncate to a clean prefix, and under a deadline
   storm every reply is Ok or a protocol error — never an escaped
   exception. *)

let pool_estimator =
  lazy
    (let syn = Lazy.force good_synopsis in
     Core.Estimator.create
       ?het:(Core.Synopsis.het syn)
       ?values:(Core.Synopsis.values syn)
       (Core.Synopsis.kernel syn))

let pool_case rng ~seed ~case =
  incr total;
  let category = "pool" in
  let queries = Lazy.force queries in
  let victim = Datagen.Rng.choose rng queries in
  let kill_budget = Datagen.Rng.int rng 3 (* 0, 1 or 2 kills *) in
  let budget = Atomic.make kill_budget in
  let kills = Atomic.make 0 in
  let chaos q =
    if q = victim && Atomic.fetch_and_add budget (-1) > 0 then begin
      Atomic.incr kills;
      true
    end
    else false
  in
  let workers = 1 + Datagen.Rng.int rng 2 in
  match Engine.Pool.create ~workers ~chaos (Lazy.force pool_estimator) with
  | exception e ->
    fail_case ~category ~seed ~case "Pool.create raised %s"
      (Printexc.to_string e)
  | pool ->
    Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
    (* Submit the victim enough times to exhaust the kill budget and trip
       quarantine when the budget is 2, interleaved with bystanders. *)
    let batch =
      List.concat_map
        (fun q -> [ q; victim ])
        (Array.to_list (Array.sub queries 0 (min 3 (Array.length queries))))
    in
    (match Engine.Pool.estimate_batch pool batch with
     | replies ->
       (* Every slot answered: completing the batch already proves no
          hang; now none may be an exception carrier or a NaN. *)
       List.iteri
         (fun slot reply ->
           match reply with
           | Ok r ->
             if Float.is_nan r.Engine.Serve.value then
               fail_case ~category ~seed ~case "slot %d is NaN" slot
           | Error _ -> ())
         replies
     | exception e ->
       fail_case ~category ~seed ~case "estimate_batch raised %s"
         (Printexc.to_string e));
    let killed = Atomic.get kills in
    if Engine.Pool.worker_restarts pool <> killed then
      fail_case ~category ~seed ~case "%d kills but %d restarts" killed
        (Engine.Pool.worker_restarts pool);
    if kill_budget >= 2 && killed >= 2
       && Engine.Pool.quarantined_count pool <> 1
    then
      fail_case ~category ~seed ~case
        "victim killed twice but %d queries quarantined"
        (Engine.Pool.quarantined_count pool);
    (* The pool keeps serving after any injected deaths. *)
    match Engine.Pool.estimate pool "/*" with
    | Ok _ | Error _ -> ()
    | exception e ->
      fail_case ~category ~seed ~case "post-kill estimate raised %s"
        (Printexc.to_string e)

let journal_image =
  lazy
    (Engine.Journal.to_string
       (Array.to_list (Lazy.force queries)
       |> List.mapi (fun i q -> { Engine.Journal.query = q; actual = i + 1 })))

let journal_scratch =
  lazy
    (let path = Filename.temp_file "xseed_fault_journal" ".wal" in
     at_exit (fun () -> if Sys.file_exists path then Sys.remove path);
     path)

let journal_case rng ~seed ~case =
  incr total;
  let category = "journal" in
  let image = mutate rng (Lazy.force journal_image) in
  match Engine.Journal.scan_string image with
  | Error _ -> ()
  | exception e ->
    fail_case ~category ~seed ~case "scan_string raised %s"
      (Printexc.to_string e)
  | Ok s ->
    (* The valid prefix must be self-consistent: truncating there rescans
       clean with the same frames — the truncation rule is a fixpoint. *)
    (match
       Engine.Journal.scan_string (String.sub image 0 s.Engine.Journal.valid_bytes)
     with
     | Ok s' ->
       if s'.Engine.Journal.tail <> Engine.Journal.Clean
          || s'.Engine.Journal.frames <> s.Engine.Journal.frames
       then
         fail_case ~category ~seed ~case
           "truncation to valid_bytes=%d is not a clean fixpoint"
           s.Engine.Journal.valid_bytes
     | Error e ->
       fail_case ~category ~seed ~case "truncated prefix unscannable: %s"
         (Core.Error.to_string e)
     | exception e ->
       fail_case ~category ~seed ~case "truncated rescan raised %s"
         (Printexc.to_string e));
    (* recover must repair the same image on disk. *)
    let path = Lazy.force journal_scratch in
    let oc = open_out_bin path in
    output_string oc image;
    close_out oc;
    (match Engine.Journal.recover path with
     | Ok _ -> (
       match Engine.Journal.scan_file path with
       | Ok s' when s'.Engine.Journal.tail = Engine.Journal.Clean -> ()
       | Ok _ -> fail_case ~category ~seed ~case "recover left a dirty tail"
       | Error e ->
         fail_case ~category ~seed ~case "post-recover scan: %s"
           (Core.Error.to_string e))
     | Error _ -> ()
     | exception e ->
       fail_case ~category ~seed ~case "recover raised %s"
         (Printexc.to_string e))

let deadline_case rng ~seed ~case =
  incr total;
  let category = "deadline" in
  (* A storm: a deadline that is usually already spent, a tiny admission
     queue, a random shed policy and more clients than workers. *)
  let expired = Datagen.Rng.int rng 4 < 3 in
  let deadline_s = if expired then -1e-9 else 60.0 in
  let shed_policy =
    if Datagen.Rng.int rng 2 = 0 then `Block else `Shed_newest
  in
  match
    Engine.Pool.create ~workers:2 ~queue_capacity:4 ~deadline_s ~shed_policy
      (Lazy.force pool_estimator)
  with
  | exception e ->
    fail_case ~category ~seed ~case "Pool.create raised %s"
      (Printexc.to_string e)
  | pool ->
    Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
    let queries = Lazy.force queries in
    let batch =
      List.init 12 (fun _ -> Datagen.Rng.choose rng queries)
    in
    let clients =
      List.init 3 (fun _ ->
          Domain.spawn (fun () -> Engine.Pool.estimate_batch pool batch))
    in
    List.iter
      (fun d ->
        match Domain.join d with
        | replies ->
          List.iter
            (fun reply ->
              match reply with
              | Ok r ->
                if expired then
                  fail_case ~category ~seed ~case
                    "expired deadline but a slot was served";
                if Float.is_nan r.Engine.Serve.value then
                  fail_case ~category ~seed ~case "NaN under storm"
              | Error e -> (
                match Core.Error.kind e with
                | Core.Error.Timeout | Core.Error.Overloaded -> ()
                | _ ->
                  fail_case ~category ~seed ~case "unexpected error: %s"
                    (Core.Error.to_string e)))
            replies
        | exception e ->
          fail_case ~category ~seed ~case "client raised %s"
            (Printexc.to_string e))
      clients;
    if expired
       && Engine.Pool.timeout_total pool + Engine.Pool.shed_total pool < 36
    then
      fail_case ~category ~seed ~case "refusal counters undercount: %d+%d < 36"
        (Engine.Pool.timeout_total pool)
        (Engine.Pool.shed_total pool)

(* ------------------------------------------------------------------ *)

(* net: the framed TCP transport under hostile bytes. Codec cases mutate
   valid frames and must never raise out of the pure decoder; live cases
   aim attack connections (garbage, oversized headers, bad CRCs, mid-frame
   disconnects, slow-loris dribbles) at a loopback server and then prove
   the server still answers a clean client — every violation ends in one
   ERR frame or a clean close, never a hang, never an exception. *)

let net_codec_case rng ~seed ~case =
  let category = "net" in
  incr total;
  let qs = Lazy.force queries in
  let payload =
    match Datagen.Rng.int rng 3 with
    | 0 -> qs.(Datagen.Rng.int rng (Array.length qs))
    | 1 ->
      String.init
        (Datagen.Rng.int rng 64)
        (fun _ -> Char.chr (Datagen.Rng.int rng 256))
    | _ -> "BATCH 2\n//a\n//b"
  in
  let corrupt = mutate rng (Net.Frame.encode_string payload) in
  (match
     Net.Frame.decode ~max_payload:4096 (Bytes.of_string corrupt) ~off:0
       ~len:(String.length corrupt)
   with
   | Net.Frame.Frame { payload = p; consumed } ->
     (* A mutation that still decodes (e.g. truncation to a valid prefix)
        must at least be internally consistent. *)
     if
       consumed > String.length corrupt
       || String.length p + Net.Frame.header_bytes <> consumed
     then
       fail_case ~category ~seed ~case "inconsistent decode: consumed %d"
         consumed
   | Net.Frame.Need_more | Net.Frame.Too_large _ | Net.Frame.Crc_mismatch -> ()
   | exception e ->
     fail_case ~category ~seed ~case "decode raised %s" (Printexc.to_string e));
  match Net.Frame.parse_hello (mutate rng Net.Frame.hello) with
  | Ok _ | Error _ -> ()
  | exception e ->
    fail_case ~category ~seed ~case "parse_hello raised %s"
      (Printexc.to_string e)

let net_engine_server () =
  Engine.server (Engine.create (estimator_of (Lazy.force good_synopsis)))

let net_live_case rng ~seed ~case =
  let category = "net" in
  incr total;
  let server = net_engine_server () in
  match
    Net.Server.create
      { Net.Server.default_config with
        Net.Server.port = 0;
        idle_timeout_s = Some 0.1;
        max_frame_bytes = 2048 }
  with
  | Error e ->
    fail_case ~category ~seed ~case "listen: %s" (Core.Error.to_string e)
  | Ok srv ->
    let domain =
      Domain.spawn (fun () ->
          Net.Server.run srv
            ~make_session:(fun () -> (server, fun _ _ -> None))
            ())
    in
    let port = Net.Server.port srv in
    Fun.protect
      ~finally:(fun () ->
        Net.Server.stop srv;
        Domain.join domain)
    @@ fun () ->
    let send fd s =
      try ignore (Unix.write_substring fd s 0 (String.length s))
      with Unix.Unix_error _ -> ()
    in
    (* Bounded drain: the server either answers (one ERR frame) or closes;
       the receive timeout turns a would-be hang into a visible FAIL via
       the health check below rather than stalling the harness. *)
    let drain fd =
      let buf = Bytes.create 4096 in
      try
        while Unix.read fd buf 0 4096 > 0 do
          ()
        done
      with Unix.Unix_error _ -> ()
    in
    let attack kind =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5;
            (match kind with
             | 0 ->
               (* raw garbage, no handshake *)
               send fd
                 (String.init
                    (1 + Datagen.Rng.int rng 64)
                    (fun _ -> Char.chr (Datagen.Rng.int rng 256)))
             | 1 ->
               (* header claiming a 4 GiB payload *)
               send fd "\xff\xff\xff\xff\x00\x00\x00\x00"
             | 2 ->
               (* clean HELLO, then a CRC-failing frame *)
               send fd (Net.Frame.encode_string Net.Frame.hello);
               let f = Bytes.of_string (Net.Frame.encode_string "PING") in
               Bytes.set f Net.Frame.header_bytes 'Z';
               send fd (Bytes.to_string f)
             | 3 ->
               (* mid-frame disconnect *)
               send fd (Net.Frame.encode_string Net.Frame.hello);
               let f = Net.Frame.encode_string "ESTIMATE //a" in
               send fd
                 (String.sub f 0 (1 + Datagen.Rng.int rng (String.length f - 1)))
             | 4 ->
               (* slow-loris: dribble header bytes, then abandon *)
               send fd "\x00\x00";
               Unix.sleepf 0.05;
               send fd "\x01"
             | _ ->
               (* a mutated but plausible handshake+request exchange *)
               send fd
                 (mutate rng
                    (Net.Frame.encode_string Net.Frame.hello
                    ^ Net.Frame.encode_string "PING")));
            drain fd
          with Unix.Unix_error _ -> ())
    in
    attack (Datagen.Rng.int rng 6);
    attack (Datagen.Rng.int rng 6);
    (* Whatever the attacks did, a clean client must still be served. *)
    (match Net.Client.connect ~port () with
     | Error e ->
       fail_case ~category ~seed ~case "post-attack connect: %s"
         (Core.Error.to_string e)
     | Ok c ->
       Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
       (match Net.Client.request c "PING" with
        | Ok "OK pong" -> ()
        | Ok other ->
          fail_case ~category ~seed ~case "post-attack PING answered %S" other
        | Error e ->
          fail_case ~category ~seed ~case "post-attack PING: %s"
            (Core.Error.to_string e)))

(* ------------------------------------------------------------------ *)

let all_categories =
  [ "xml"; "synopsis"; "query"; "pool"; "journal"; "deadline"; "net" ]

let () =
  let seeds = ref [ 1; 2; 3; 4 ] in
  let cases = ref 200 in
  let only = ref all_categories in
  Arg.parse
    [ ( "--seeds",
        Arg.String
          (fun s ->
            seeds := List.map int_of_string (String.split_on_char ',' s)),
        "S1,S2,... comma-separated RNG seeds" );
      ("--cases", Arg.Set_int cases, "N mutation cases per seed per category");
      ( "--only",
        Arg.String
          (fun s ->
            let picked = String.split_on_char ',' s in
            List.iter
              (fun c ->
                if not (List.mem c all_categories) then
                  raise
                    (Arg.Bad
                       (Printf.sprintf "unknown category %s (known: %s)" c
                          (String.concat "," all_categories))))
              picked;
            only := picked),
        "C1,C2,... restrict to these categories (xml,synopsis,query,pool,journal,deadline,net)"
      ) ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fault_injection [--seeds 1,2,3,4] [--cases 200] [--only xml,pool,...]";
  let want c = List.mem c !only in
  (* The serving-path categories spin up a pool per case; keep their
     per-category case count bounded so a big --cases sweep of the
     mutation categories does not turn into thousands of domain spawns. *)
  let pool_cases = min !cases 25 in
  (* Live net cases bind a fresh listener per case; bound them harder
     still — the codec half of the category runs at full --cases. *)
  let net_live_cases = min !cases 8 in
  List.iter
    (fun seed ->
      (* Streams are split in a fixed order so a category's cases are
         byte-identical for a given seed whatever --only selects. *)
      let rng = Datagen.Rng.create ~seed in
      let xml_rng = Datagen.Rng.split rng in
      let syn_rng = Datagen.Rng.split rng in
      let query_rng = Datagen.Rng.split rng in
      let pool_rng = Datagen.Rng.split rng in
      let journal_rng = Datagen.Rng.split rng in
      let deadline_rng = Datagen.Rng.split rng in
      let net_rng = Datagen.Rng.split rng in
      for case = 1 to !cases do
        if want "xml" then xml_case xml_rng ~seed ~case;
        if want "synopsis" then synopsis_case syn_rng ~seed ~case;
        if want "query" then query_case query_rng ~seed ~case;
        if want "journal" then journal_case journal_rng ~seed ~case;
        if want "net" then net_codec_case net_rng ~seed ~case;
        if case <= pool_cases then begin
          if want "pool" then pool_case pool_rng ~seed ~case;
          if want "deadline" then deadline_case deadline_rng ~seed ~case
        end;
        if want "net" && case <= net_live_cases then
          net_live_case net_rng ~seed ~case
      done)
    !seeds;
  Printf.printf "fault-injection: %d cases, %d failures\n%!" !total !failures;
  exit (if !failures > 0 then 1 else 0)
