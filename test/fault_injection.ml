(* Fault-injection harness: mutate well-formed XML documents, synopsis
   dumps and query strings with seeded random corruptions, and assert that
   every library entry point answers with [Error _] — never an uncaught
   exception, never a NaN estimate.

   Deterministic: all randomness comes from [Datagen.Rng] streams derived
   from the --seeds list, so a failing (seed, case) pair reproduces exactly.
   `make fuzz-smoke` runs the fixed configuration wired into CI. *)

let failures = ref 0
let total = ref 0

let fail_case ~category ~seed ~case fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL [%s seed=%d case=%d] %s\n%!" category seed case msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Mutations *)

let flip_bit rng s =
  let b = Bytes.of_string s in
  let i = Datagen.Rng.int rng (Bytes.length b) in
  Bytes.set b i
    (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Datagen.Rng.int rng 8)));
  Bytes.to_string b

let truncate rng s = String.sub s 0 (Datagen.Rng.int rng (String.length s))

let delete_chunk rng s =
  let n = String.length s in
  let i = Datagen.Rng.int rng n in
  let len = min (n - i) (1 + Datagen.Rng.int rng 64) in
  String.sub s 0 i ^ String.sub s (i + len) (n - i - len)

let overwrite_chunk rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let i = Datagen.Rng.int rng n in
  let len = min (n - i) (1 + Datagen.Rng.int rng 16) in
  for j = i to i + len - 1 do
    Bytes.set b j (Char.chr (Datagen.Rng.int rng 256))
  done;
  Bytes.to_string b

(* Copy a random chunk to a random position: the mutation most likely to
   manufacture duplicate or out-of-place v1 section markers. *)
let splice rng s =
  let n = String.length s in
  let i = Datagen.Rng.int rng n and j = Datagen.Rng.int rng n in
  let len = min (n - i) (1 + Datagen.Rng.int rng 32) in
  String.sub s 0 j ^ String.sub s i len ^ String.sub s j (n - j)

let mutate_once rng s =
  if String.length s = 0 then s
  else
    match Datagen.Rng.int rng 5 with
    | 0 -> flip_bit rng s
    | 1 -> truncate rng s
    | 2 -> delete_chunk rng s
    | 3 -> overwrite_chunk rng s
    | _ -> splice rng s

let mutate rng s =
  let rounds = 1 + Datagen.Rng.int rng 3 in
  let rec go s k = if k = 0 then s else go (mutate_once rng s) (k - 1) in
  go s rounds

(* ------------------------------------------------------------------ *)
(* Base material: small well-formed inputs to corrupt. *)

let docs =
  lazy
    [| Datagen.Paper_example.document;
       Datagen.Xmark.generate ~seed:11 ~items:8 ();
       Datagen.Dblp.generate ~seed:12 ~records:10 ();
       Datagen.Treebank.generate ~seed:13 ~sentences:6 () |]

let good_synopsis =
  lazy
    (Core.Synopsis.build ~with_het:true ~with_values:true
       Datagen.Paper_example.document)

let synopsis_dumps =
  lazy
    (let syn = Lazy.force good_synopsis in
     [| Core.Synopsis.to_string ~version:`V2 syn;
        Core.Synopsis.to_string ~version:`V1 syn |])

(* Queries derived from the paper document's own paths, so label names are
   right without hard-coding them, plus generic shapes. *)
let queries =
  lazy
    (let pt = Pathtree.Path_tree.of_string Datagen.Paper_example.document in
     let simple = Datagen.Workload.all_simple_paths pt in
     let take n l =
       List.filteri (fun i _ -> i < n) l |> List.map Xpath.Ast.to_string
     in
     Array.of_list (take 6 simple @ [ "/*"; "//*"; "//*[*]" ]))

let limits =
  { Xml.Sax.default_limits with
    max_depth = 500;
    max_attribute_length = 4096;
    max_text_length = 1 lsl 16;
    max_input_bytes = 1 lsl 22 }

(* An estimator over a (possibly corrupt but loadable) synopsis, with a
   small EPT cap so a corrupted card_threshold cannot stall the run. *)
let estimator_of syn =
  Core.Estimator.create
    ~card_threshold:(Core.Synopsis.card_threshold syn)
    ~max_ept_nodes:50_000
    ?het:(Core.Synopsis.het syn)
    ?values:(Core.Synopsis.values syn)
    (Core.Synopsis.kernel syn)

let check_estimates ~category ~seed ~case est =
  Array.iter
    (fun q ->
      match Core.Estimator.estimate_string_result est q with
      | Ok o ->
        if Float.is_nan o.Core.Estimator.value || o.Core.Estimator.value < 0.0
        then
          fail_case ~category ~seed ~case "estimate of %s is %h" q
            o.Core.Estimator.value
      | Error _ -> ()
      | exception e ->
        fail_case ~category ~seed ~case "exception estimating %s: %s" q
          (Printexc.to_string e))
    (Lazy.force queries)

(* ------------------------------------------------------------------ *)
(* Categories *)

let xml_case rng ~seed ~case =
  incr total;
  let category = "xml" in
  let doc = mutate rng (Datagen.Rng.choose rng (Lazy.force docs)) in
  (match Xml.Sax.fold_result ~limits doc ~init:0 ~f:(fun n _ -> n + 1) with
   | Ok _ | Error _ -> ()
   | exception e ->
     fail_case ~category ~seed ~case "Sax.fold_result raised %s"
       (Printexc.to_string e));
  (* Full synopsis construction is heavier; exercise it on small inputs. *)
  if String.length doc < 2048 then
    match Core.Synopsis.build_result ~with_het:true ~with_values:true doc with
    | Ok _ | Error _ -> ()
    | exception e ->
      fail_case ~category ~seed ~case "Synopsis.build_result raised %s"
        (Printexc.to_string e)

let synopsis_case rng ~seed ~case =
  incr total;
  let category = "synopsis" in
  let dump = mutate rng (Datagen.Rng.choose rng (Lazy.force synopsis_dumps)) in
  match Core.Synopsis.of_string_result dump with
  | Error _ -> ()
  | Ok syn -> check_estimates ~category ~seed ~case (estimator_of syn)
  | exception e ->
    fail_case ~category ~seed ~case "Synopsis.of_string_result raised %s"
      (Printexc.to_string e)

let query_case rng ~seed ~case =
  incr total;
  let category = "query" in
  let q = mutate rng (Datagen.Rng.choose rng (Lazy.force queries)) in
  match Xpath.Parser.parse_result q with
  | Error _ -> ()
  | Ok _ -> (
    let est = estimator_of (Lazy.force good_synopsis) in
    match Core.Estimator.estimate_string_result est q with
    | Ok o ->
      if Float.is_nan o.Core.Estimator.value || o.Core.Estimator.value < 0.0
      then
        fail_case ~category ~seed ~case "estimate of %s is %h" q
          o.Core.Estimator.value
    | Error _ -> ()
    | exception e ->
      fail_case ~category ~seed ~case "exception estimating %s: %s" q
        (Printexc.to_string e))
  | exception e ->
    fail_case ~category ~seed ~case "Parser.parse_result raised %s"
      (Printexc.to_string e)

(* ------------------------------------------------------------------ *)

let () =
  let seeds = ref [ 1; 2; 3; 4 ] in
  let cases = ref 200 in
  Arg.parse
    [ ( "--seeds",
        Arg.String
          (fun s ->
            seeds := List.map int_of_string (String.split_on_char ',' s)),
        "S1,S2,... comma-separated RNG seeds" );
      ("--cases", Arg.Set_int cases, "N mutation cases per seed per category")
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fault_injection [--seeds 1,2,3,4] [--cases 200]";
  List.iter
    (fun seed ->
      let rng = Datagen.Rng.create ~seed in
      let xml_rng = Datagen.Rng.split rng in
      let syn_rng = Datagen.Rng.split rng in
      let query_rng = Datagen.Rng.split rng in
      for case = 1 to !cases do
        xml_case xml_rng ~seed ~case;
        synopsis_case syn_rng ~seed ~case;
        query_case query_rng ~seed ~case
      done)
    !seeds;
  Printf.printf "fault-injection: %d cases, %d failures\n%!" !total !failures;
  exit (if !failures > 0 then 1 else 0)
