(* Estimation tests: matcher semantics against the paper's Examples 3-5,
   HET construction and effect, budget adaptivity, feedback, and exactness
   properties on random documents. *)

let parse = Xpath.Parser.parse

let paper_kernel = lazy (Core.Builder.of_string Datagen.Paper_example.document)

let kernel_estimate ?card_threshold kernel q =
  let est = Core.Estimator.create ?card_threshold kernel in
  Core.Estimator.estimate est (parse q)

(* ------------------------------------------------------------------ *)
(* Example 3 and friends: simple paths on the paper document. *)

let test_example3 () =
  let k = Lazy.force paper_kernel in
  let check q expected =
    Alcotest.(check (float 1e-9)) q expected (kernel_estimate k q)
  in
  check "/a" 1.0;
  check "/a/c" 2.0;
  check "/a/c/s" 5.0;
  check "/a/c/s/s" 2.0;
  check "/a/c/s/s/t" 1.0;  (* the paper's Example 3 result *)
  check "/a/c/s/s/s" 2.0;
  check "/a/c/s/s/s/p" 3.0;
  check "/a/t" 1.0;
  check "/a/c/p" 3.0;
  check "/a/c/s/p" 9.0

let test_nonexistent_paths () =
  let k = Lazy.force paper_kernel in
  Alcotest.(check (float 1e-9)) "/a/zzz" 0.0 (kernel_estimate k "/a/zzz");
  Alcotest.(check (float 1e-9)) "/zzz" 0.0 (kernel_estimate k "/zzz");
  (* Derivable from the kernel? (a,c,p) exists; (a,p) does not. *)
  Alcotest.(check (float 1e-9)) "/a/p" 0.0 (kernel_estimate k "/a/p");
  Alcotest.(check (float 1e-9)) "/c root mismatch" 0.0 (kernel_estimate k "/c")

let test_descendant_queries () =
  let k = Lazy.force paper_kernel in
  let check q expected =
    Alcotest.(check (float 1e-6)) q expected (kernel_estimate k q)
  in
  (* //s: all s EPT nodes: 5 + 2 + 2 = 9 (exact). *)
  check "//s" 9.0;
  (* //s//s: s nodes with an s ancestor: 2 + 2 = 4 (exact). *)
  check "//s//s" 4.0;
  (* //s//s//p: Observation 3: 2 + 3 = 5 (exact). *)
  check "//s//s//p" 5.0;
  (* //p: 3 + 9 + 2 + 3 = 17 (exact). *)
  check "//p" 17.0;
  check "//c//t" 5.0

let test_wildcard_queries () =
  let k = Lazy.force paper_kernel in
  Alcotest.(check (float 1e-6)) "/a/*" 4.0 (kernel_estimate k "/a/*");
  Alcotest.(check (float 1e-6)) "//*" 36.0 (kernel_estimate k "//*");
  Alcotest.(check (float 1e-6)) "/a/c/*" 10.0 (kernel_estimate k "/a/c/*")

let test_branching_queries () =
  let k = Lazy.force paper_kernel in
  (* /a/c[t]/s : bsel(c/t) = 1, so exactly |/a/c/s| = 5. *)
  Alcotest.(check (float 1e-6)) "/a/c[t]/s" 5.0 (kernel_estimate k "/a/c[t]/s");
  (* /a/c/s[t]/p : paper formula 9 x bsel(s/t at level 0) = 9 x 0.4 = 3.6
     (actual is 4; the error is the independence assumption). *)
  Alcotest.(check (float 1e-6)) "/a/c/s[t]/p" 3.6 (kernel_estimate k "/a/c/s[t]/p");
  (* Predicate on the result node. *)
  Alcotest.(check (float 1e-6)) "/a/c/s[t][p]" 2.0 (kernel_estimate k "/a/c/s[t][p]")

(* ------------------------------------------------------------------ *)
(* Examples 4 and 5: the Figure 4 kernel, built directly. *)

let figure4_kernel () =
  let table = Xml.Label.create_table () in
  let k = Core.Kernel.create ~table () in
  let l n = Xml.Label.intern table n in
  let edge src dst p c =
    let e = Core.Kernel.get_edge k (l src) (l dst) in
    Core.Kernel.add_at_level e 0 ~parents:p ~children:c
  in
  Core.Kernel.set_root k (l "a");
  Core.Kernel.get_vertex k (l "a");
  edge "a" "b" 1 3;
  edge "a" "c" 1 4;
  edge "b" "d" 2 5;
  edge "c" "d" 3 9;
  edge "d" "e" 3 20;
  edge "d" "f" 4 50;
  k

let test_example4 () =
  (* |b/d/e| = 20 x 5/14 = 7.142857 (ancestor independence assumption). *)
  let k = figure4_kernel () in
  Alcotest.(check (float 1e-4)) "//b/d/e" (20.0 *. 5.0 /. 14.0)
    (kernel_estimate k "//b/d/e");
  Alcotest.(check (float 1e-4)) "//c/d/e" (20.0 *. 9.0 /. 14.0)
    (kernel_estimate k "//c/d/e");
  (* The two estimates decompose the total exactly. *)
  Alcotest.(check (float 1e-4)) "//d/e" 20.0 (kernel_estimate k "//d/e")

let test_example5 () =
  (* |b/d[f]/e| = 20 x 5/14 x 4/14 = 2.0408... (sibling independence). *)
  let k = figure4_kernel () in
  Alcotest.(check (float 1e-4)) "//b/d[f]/e"
    (20.0 *. (5.0 /. 14.0) *. (4.0 /. 14.0))
    (kernel_estimate k "//b/d[f]/e")

(* ------------------------------------------------------------------ *)
(* A concrete document realizing the Figure 4 kernel, with correlations the
   kernel cannot see: all e children live under b-side d nodes, and e/f
   co-occur. Used to test HET effectiveness end to end. *)

let figure4_doc =
  let d_with s = "<d>" ^ s ^ "</d>" in
  let rep n s = String.concat "" (List.init n (fun _ -> s)) in
  "<a>"
  (* b side: 3 b nodes, 2 with d children (2 + 3 = 5 d total). *)
  ^ ("<b>" ^ d_with (rep 10 "<e/>" ^ rep 20 "<f/>") ^ d_with (rep 6 "<e/>" ^ rep 10 "<f/>") ^ "</b>")
  ^ ("<b>" ^ d_with (rep 4 "<e/>" ^ rep 10 "<f/>") ^ d_with "" ^ d_with "" ^ "</b>")
  ^ "<b/>"
  (* c side: 4 c nodes, 3 with d children (3 x 3 = 9 d total); one d has the
     remaining 10 f. *)
  ^ ("<c>" ^ d_with (rep 10 "<f/>") ^ d_with "" ^ d_with "" ^ "</c>")
  ^ ("<c>" ^ d_with "" ^ d_with "" ^ d_with "" ^ "</c>")
  ^ ("<c>" ^ d_with "" ^ d_with "" ^ d_with "" ^ "</c>")
  ^ "<c/>" ^ "</a>"

let test_figure4_doc_matches_kernel () =
  let k = Core.Builder.of_string figure4_doc in
  Alcotest.(check string) "document realizes Figure 4"
    (Core.Kernel.to_string (figure4_kernel ()))
    (Core.Kernel.to_string k)

let build_full ?mbp ?bsel_threshold doc =
  let table = Xml.Label.create_table () in
  let kernel = Core.Builder.of_string ~table doc in
  let path_tree = Pathtree.Path_tree.of_string ~table doc in
  let storage = Nok.Storage.of_string ~table doc in
  let het, stats =
    Core.Het_builder.build ?mbp ?bsel_threshold ~kernel ~path_tree ~storage ()
  in
  (kernel, het, stats, storage)

let test_het_fixes_simple_paths () =
  let kernel, het, _stats, storage = build_full figure4_doc in
  let with_het = Core.Estimator.create ~het kernel in
  let without = Core.Estimator.create kernel in
  let actual q = float_of_int (Nok.Eval.cardinality storage (parse q)) in
  (* Kernel alone splits e across b and c parents; the HET must restore the
     exact cardinalities. *)
  Alcotest.(check (float 1e-4)) "kernel-only /a/b/d/e" (20.0 *. 5.0 /. 14.0)
    (Core.Estimator.estimate without (parse "/a/b/d/e"));
  Alcotest.(check (float 1e-9)) "HET /a/b/d/e exact" (actual "/a/b/d/e")
    (Core.Estimator.estimate with_het (parse "/a/b/d/e"));
  Alcotest.(check (float 1e-9)) "HET /a/c/d/e exact (zero)" 0.0
    (Core.Estimator.estimate with_het (parse "/a/c/d/e"));
  Alcotest.(check (float 1e-9)) "HET /a/c/d/f exact" (actual "/a/c/d/f")
    (Core.Estimator.estimate with_het (parse "/a/c/d/f"))

let test_het_correlated_bsel () =
  (* bsel(e)=3/14 > 0.1, so raise the threshold so d[e]/f is captured. *)
  let kernel, het, _stats, storage = build_full ~bsel_threshold:0.5 figure4_doc in
  let with_het = Core.Estimator.create ~het kernel in
  let without = Core.Estimator.create kernel in
  let q = "//d[e]/f" in
  let actual = float_of_int (Nok.Eval.cardinality storage (parse q)) in
  let err_with = Float.abs (Core.Estimator.estimate with_het (parse q) -. actual) in
  let err_without = Float.abs (Core.Estimator.estimate without (parse q) -. actual) in
  Alcotest.(check bool)
    (Printf.sprintf "correlated bsel helps (%.2f vs %.2f, actual %.0f)"
       err_with err_without actual)
    true (err_with < err_without)

let test_het_builder_stats () =
  let _, _, stats, _ = build_full ~bsel_threshold:0.5 figure4_doc in
  (* Paths: a, a/b, a/b/d, a/b/d/e, a/b/d/f, a/c, a/c/d, a/c/d/f. *)
  Alcotest.(check int) "simple entries = path tree size" 8 stats.simple_entries;
  Alcotest.(check bool) "has branching entries" true (stats.branching_entries > 0);
  Alcotest.(check bool) "ran NoK" true (stats.nok_evaluations > 0)

let test_het_mbp3 () =
  (* 3BP patterns (paper: "for 2BP and 3BP HET we need to change
     AGGREGATED-BSEL as well"): the builder enumerates triples and the
     matcher resolves them through pair/single fallbacks. *)
  let doc =
    "<r>" ^ String.concat ""
      (List.init 30 (fun i ->
           "<n>" ^ (if i mod 2 = 0 then "<a/>" else "")
           ^ (if i mod 3 = 0 then "<b/>" else "")
           ^ (if i mod 5 = 0 then "<c/>" else "")
           ^ "<d/></n>"))
    ^ "</r>"
  in
  let table = Xml.Label.create_table () in
  let kernel = Core.Builder.of_string ~table doc in
  let path_tree = Pathtree.Path_tree.of_string ~table doc in
  let storage = Nok.Storage.of_string ~table doc in
  let het2, s2 =
    Core.Het_builder.build ~mbp:2 ~bsel_threshold:0.9 ~kernel ~path_tree ~storage ()
  in
  let het3, s3 =
    Core.Het_builder.build ~mbp:3 ~bsel_threshold:0.9 ~kernel ~path_tree ~storage ()
  in
  Alcotest.(check bool) "mbp 3 adds patterns" true
    (s3.branching_entries > s2.branching_entries);
  ignore het2;
  (* With the full-MBP table the triple-predicate query is exact. *)
  let est = Core.Estimator.create ~het:het3 kernel in
  let q = parse "//n[a][b][c]/d" in
  let actual = float_of_int (Nok.Eval.cardinality storage q) in
  Alcotest.(check (float 1e-6)) "triple-predicate exact" actual
    (Core.Estimator.estimate est q)

let test_het_zero_entries_kill_false_positives () =
  (* Document where the kernel derives a false path: <a><b><c/></b><b/></a>
     plus <x><b/></x>-style sharing. Construct: b appears under a and under
     d; c appears under the first kind only. Kernel derives /a/d/b/c as
     plausible. *)
  let doc = "<a><b><c/><c/></b><d><b/></d></a>" in
  let kernel, het, stats, _ = build_full doc in
  let with_het = Core.Estimator.create ~het kernel in
  let without = Core.Estimator.create kernel in
  Alcotest.(check bool) "kernel overestimates /a/d/b/c" true
    (Core.Estimator.estimate without (parse "/a/d/b/c") > 0.0);
  Alcotest.(check (float 1e-9)) "HET kills the false positive" 0.0
    (Core.Estimator.estimate with_het (parse "/a/d/b/c"));
  Alcotest.(check bool) "zero entries recorded" true (stats.zero_entries > 0)

let test_het_budget () =
  let _, het, _, _ = build_full ~bsel_threshold:0.5 figure4_doc in
  let full = Core.Het.active_count het in
  Alcotest.(check bool) "has entries" true (full > 0);
  Core.Het.set_budget het ~bytes:32;
  Alcotest.(check bool) "budget shrinks actives" true (Core.Het.active_count het < full);
  Alcotest.(check bool) "fits budget" true (Core.Het.size_in_bytes het <= 32);
  Core.Het.set_budget het ~bytes:0;
  Alcotest.(check int) "zero budget" 0 (Core.Het.active_count het);
  Core.Het.unlimited_budget het;
  Alcotest.(check int) "unlimited restores" full (Core.Het.active_count het)

let test_het_budget_prefers_large_errors () =
  let het = Core.Het.create () in
  Core.Het.add_simple het ~hash:1 ~card:10 ~bsel:None ~error:100.0;
  Core.Het.add_simple het ~hash:2 ~card:20 ~bsel:None ~error:1.0;
  Core.Het.add_simple het ~hash:3 ~card:30 ~bsel:None ~error:50.0;
  Core.Het.set_budget het ~bytes:(2 * Core.Het.simple_entry_bytes);
  Alcotest.(check bool) "keeps worst error" true
    (Core.Het.lookup_simple het 1 <> None);
  Alcotest.(check bool) "keeps second worst" true
    (Core.Het.lookup_simple het 3 <> None);
  Alcotest.(check bool) "drops smallest" true (Core.Het.lookup_simple het 2 = None)

let test_het_serialization () =
  let _, het, _, _ = build_full ~bsel_threshold:0.5 figure4_doc in
  let again = Core.Het.of_string (Core.Het.to_string het) in
  Alcotest.(check int) "entry counts" (Core.Het.total_count het)
    (Core.Het.total_count again);
  Alcotest.(check string) "stable dump" (Core.Het.to_string het)
    (Core.Het.to_string again)

let test_feedback () =
  let kernel = figure4_kernel () in
  let het = Core.Het.create () in
  let est = Core.Estimator.create ~het kernel in
  let q = parse "/a/b/d/e" in
  Alcotest.(check (float 1e-4)) "before feedback" (20.0 *. 5.0 /. 14.0)
    (Core.Estimator.estimate est q);
  ignore (Core.Estimator.record_feedback est q ~actual:20);
  Alcotest.(check (float 1e-9)) "after feedback exact" 20.0
    (Core.Estimator.estimate est q)

let test_feedback_branching () =
  let kernel = figure4_kernel () in
  let het = Core.Het.create () in
  let est = Core.Estimator.create ~het kernel in
  let q = parse "//d[e]/f" in
  let before = Core.Estimator.estimate est q in
  ignore (Core.Estimator.record_feedback est q ~actual:40);
  let after = Core.Estimator.estimate est q in
  Alcotest.(check bool)
    (Printf.sprintf "feedback improves branching (%.2f -> %.2f, actual 40)"
       before after)
    true
    (Float.abs (after -. 40.0) < Float.abs (before -. 40.0))

(* ------------------------------------------------------------------ *)
(* Synopsis facade *)

let test_synopsis_build_and_estimate () =
  let syn = Core.Synopsis.build Datagen.Paper_example.document in
  Alcotest.(check (float 1e-9)) "estimate" 1.0
    (Core.Synopsis.estimate syn "/a/c/s/s/t");
  Alcotest.(check bool) "size accounted" true (Core.Synopsis.size_in_bytes syn > 0)

let test_synopsis_budget () =
  let syn = Core.Synopsis.build ~bsel_threshold:0.5 figure4_doc in
  let unlimited = Core.Synopsis.size_in_bytes syn in
  let budget = Core.Synopsis.kernel_size_in_bytes syn + 48 in
  Core.Synopsis.set_budget syn ~bytes:budget;
  Alcotest.(check bool) "fits" true (Core.Synopsis.size_in_bytes syn <= budget);
  Alcotest.(check bool) "smaller than unlimited" true
    (Core.Synopsis.size_in_bytes syn < unlimited)

let test_synopsis_serialization () =
  (* The round trip must preserve estimates exactly — including HET lookups,
     which depend on label interning order surviving the dump. *)
  let syn = Core.Synopsis.build ~bsel_threshold:0.5 figure4_doc in
  let again = Core.Synopsis.of_string (Core.Synopsis.to_string syn) in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9)) q (Core.Synopsis.estimate syn q)
        (Core.Synopsis.estimate again q))
    [ "/a/b/d/e"; "/a/c/d/f"; "//d[e]/f"; "//d/e"; "/a/b" ];
  Alcotest.(check int) "sizes preserved" (Core.Synopsis.size_in_bytes syn)
    (Core.Synopsis.size_in_bytes again);
  Alcotest.(check bool) "garbage rejected" true
    (match Core.Synopsis.of_string "nonsense" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_synopsis_without_het () =
  let syn = Core.Synopsis.build ~with_het:false Datagen.Paper_example.document in
  Alcotest.(check bool) "no het" true (Core.Synopsis.het syn = None);
  Alcotest.(check (float 1e-9)) "still estimates" 5.0
    (Core.Synopsis.estimate syn "/a/c/s")

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_doc =
  let open QCheck in
  let labels = [| "a"; "b"; "c"; "d" |] in
  let gen rand =
    let buf = Buffer.create 256 in
    let rec node depth =
      let l = labels.(Gen.int_bound (Array.length labels - 1) rand) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 5 then
        for _ = 1 to Gen.int_bound 3 rand do node (depth + 1) done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    node 0;
    Buffer.contents buf
  in
  make ~print:(fun d -> d) gen

let prop_sp_exact_with_het =
  (* With an unbudgeted HET every simple-path estimate is exact. *)
  QCheck.Test.make ~count:100 ~name:"SP exact with full HET" gen_doc (fun doc ->
      let table = Xml.Label.create_table () in
      let kernel = Core.Builder.of_string ~table doc in
      let path_tree = Pathtree.Path_tree.of_string ~table doc in
      let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
      let est = Core.Estimator.create ~het kernel in
      let ept = Core.Estimator.ept est in
      List.for_all
        (fun (labels, card) ->
          let steps =
            List.map
              (fun l ->
                { Xpath.Ast.axis = Xpath.Ast.Child;
                  test = Xpath.Ast.Name (Xml.Label.name table l);
                  predicates = []; value_predicates = [] })
              labels
          in
          let e = Core.Estimator.estimate_on est ept steps in
          Float.abs (e -. float_of_int card) < 1e-6)
        (Pathtree.Path_tree.all_simple_paths path_tree))

let prop_estimates_finite_nonnegative =
  let gen_query =
    QCheck.make
      ~print:(fun q -> q)
      (fun rand ->
        let labels = [| "a"; "b"; "c"; "d"; "*" |] in
        let axis () = if QCheck.Gen.int_bound 2 rand = 0 then "//" else "/" in
        let test () = labels.(QCheck.Gen.int_bound 4 rand) in
        let n = 1 + QCheck.Gen.int_bound 3 rand in
        String.concat ""
          (List.init n (fun i ->
               axis () ^ test ()
               ^ if i = n - 1 || QCheck.Gen.int_bound 3 rand > 0 then ""
                 else "[" ^ test () ^ "]")))
  in
  QCheck.Test.make ~count:200 ~name:"estimates are finite and >= 0"
    (QCheck.pair gen_doc gen_query) (fun (doc, q) ->
      let kernel = Core.Builder.of_string doc in
      let est = Core.Estimator.create kernel in
      let v = Core.Estimator.estimate est (parse q) in
      Float.is_finite v && v >= 0.0)

let gen_nonrecursive_doc =
  (* Labels chosen by depth, so no label repeats along a rooted path. *)
  let open QCheck in
  let gen rand =
    let buf = Buffer.create 256 in
    let rec node depth =
      let l = Printf.sprintf "l%d%c" depth (Char.chr (Char.code 'a' + Gen.int_bound 1 rand)) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 5 then
        for _ = 1 to Gen.int_bound 3 rand do node (depth + 1) done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    node 0;
    Buffer.contents buf
  in
  make ~print:(fun d -> d) gen

let prop_descendant_single_step_exact =
  (* On a non-recursive document with no pruning, the kernel estimates //x
     exactly for every label: forward selectivities of the paths reaching a
     vertex sum to 1, so EPT cards per label sum to the document total.
     (This conservation breaks under recursion, where paths at different
     recursion levels share the fsel normalization - hence the restricted
     generator.) *)
  QCheck.Test.make ~count:100 ~name:"//label exact on non-recursive docs"
    gen_nonrecursive_doc (fun doc ->
      let tree = Xml.Tree.of_string doc in
      let kernel = Core.Builder.of_string ~table:tree.table doc in
      let est = Core.Estimator.create ~card_threshold:0.0 kernel in
      let storage = Nok.Storage.of_tree tree in
      List.for_all
        (fun (l, _) ->
          let q = [ { Xpath.Ast.axis = Xpath.Ast.Descendant;
                      test = Xpath.Ast.Name (Xml.Label.name tree.table l);
                      predicates = []; value_predicates = [] } ]
          in
          let e = Core.Estimator.estimate est q in
          let a = float_of_int (Nok.Eval.cardinality storage q) in
          Float.abs (e -. a) < 1e-6 *. Float.max 1.0 a)
        (Xml.Tree.label_counts tree))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sp_exact_with_het; prop_estimates_finite_nonnegative;
      prop_descendant_single_step_exact ]

let () =
  Alcotest.run "estimator"
    [
      ( "simple paths",
        [
          Alcotest.test_case "example 3" `Quick test_example3;
          Alcotest.test_case "nonexistent paths" `Quick test_nonexistent_paths;
        ] );
      ( "complex queries",
        [
          Alcotest.test_case "descendant" `Quick test_descendant_queries;
          Alcotest.test_case "wildcard" `Quick test_wildcard_queries;
          Alcotest.test_case "branching" `Quick test_branching_queries;
        ] );
      ( "figure 4",
        [
          Alcotest.test_case "example 4" `Quick test_example4;
          Alcotest.test_case "example 5" `Quick test_example5;
          Alcotest.test_case "document realizes kernel" `Quick
            test_figure4_doc_matches_kernel;
        ] );
      ( "het",
        [
          Alcotest.test_case "fixes simple paths" `Quick test_het_fixes_simple_paths;
          Alcotest.test_case "correlated bsel" `Quick test_het_correlated_bsel;
          Alcotest.test_case "builder stats" `Quick test_het_builder_stats;
          Alcotest.test_case "mbp 3" `Quick test_het_mbp3;
          Alcotest.test_case "zero entries" `Quick
            test_het_zero_entries_kill_false_positives;
          Alcotest.test_case "budget" `Quick test_het_budget;
          Alcotest.test_case "budget ranking" `Quick test_het_budget_prefers_large_errors;
          Alcotest.test_case "serialization" `Quick test_het_serialization;
          Alcotest.test_case "feedback simple" `Quick test_feedback;
          Alcotest.test_case "feedback branching" `Quick test_feedback_branching;
        ] );
      ( "synopsis",
        [
          Alcotest.test_case "build and estimate" `Quick test_synopsis_build_and_estimate;
          Alcotest.test_case "budget" `Quick test_synopsis_budget;
          Alcotest.test_case "serialization" `Quick test_synopsis_serialization;
          Alcotest.test_case "without het" `Quick test_synopsis_without_het;
        ] );
      ("properties", props);
    ]
