#!/bin/sh
# TCP smoke for the framed network transport and the multi-tenant
# registry (DESIGN.md §14).
#
# Four acts, all deterministic:
#   1. fault injection over the net category: mutated/truncated frames,
#      bad CRCs, oversized headers, mid-frame disconnects and slow-loris
#      dribbles against live loopback listeners;
#   2. one `xseed serve --manifest --port 0` process hosting three
#      tenants under a memory budget smaller than the sum of their
#      synopses, driven over TCP by `xseed client`: handshake, PING,
#      VERSION, USE tenancy, ESTIMATE/BATCH, FEEDBACK whose refinement
#      survives an eviction + journal-replay round trip bit-identically;
#   3. a tenant-labeled METRICS scrape, fetched twice in a row to prove
#      quiet scrapes are byte-identical; one copy lands in SMOKE_DIR as
#      the CI artifact;
#   4. a SIGTERM drain that exits 0 after flushing tenant journals.
#
# Invoked as `make tcp-smoke`; XSEED_BIN and SMOKE_DIR come from the
# Makefile.
set -eu

XSEED=${XSEED_BIN:-_build/default/bin/xseed.exe}
FAULT=${FAULT_BIN:-_build/default/test/fault_injection.exe}
DIR=${SMOKE_DIR:-${TMPDIR:-/tmp}/xseed-smoke}/tcp
mkdir -p "$DIR"
rm -rf "$DIR/journals"
mkdir -p "$DIR/journals"

say() { echo "tcp-smoke: $*"; }

# ---------------------------------------------------------------- act 1
say "fault injection (net: hostile frames against live listeners)"
$FAULT --seeds 1,2,3,4 --cases 60 --only net

# ---------------------------------------------------------------- act 2
say "three tenants under one budget"
$XSEED generate dblp --scale 60 -o "$DIR/biblio.xml" >/dev/null
$XSEED generate xmark --scale 40 -o "$DIR/auctions.xml" >/dev/null
$XSEED generate treebank --scale 30 -o "$DIR/trees.xml" >/dev/null
# The registry charges each tenant's logical Synopsis.size_in_bytes to
# the budget, which `xseed build` reports as "(<N> bytes in memory)".
sum=0
for t in biblio auctions trees; do
  $XSEED build "$DIR/$t.xml" -o "$DIR/$t.syn" > "$DIR/build.$t.out"
  bytes=$(sed -n 's/.*(\([0-9]*\) bytes in memory).*/\1/p' "$DIR/build.$t.out")
  sum=$((sum + bytes))
done
cat > "$DIR/manifest" <<EOF
# tenant  synopsis (paths relative to this manifest)
biblio biblio.syn
auctions auctions.syn
trees trees.syn
EOF

# A budget strictly under the sum of the three synopses, so serving all
# three tenants forces LRU evictions; still >= the largest single one.
budget=$((sum - 1))

$XSEED serve --manifest "$DIR/manifest" --port 0 \
  --memory-budget "$budget" --journal-dir "$DIR/journals" \
  > /dev/null 2> "$DIR/serve.err" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

i=0
while ! grep -q 'listening on' "$DIR/serve.err" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 200 ] && { say "server never announced its port"; exit 1; }
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve.err")
say "server on port $PORT (budget ${budget}B < ${sum}B of synopses)"
grep -q 'registry: 3 tenants' "$DIR/serve.err"

client() { $XSEED client --port "$PORT" 2>/dev/null; }

# Protocol surface + a feedback refinement on the biblio tenant.
printf 'PING\nVERSION\nUSE biblio\nESTIMATE /dblp/article/author\nFEEDBACK /dblp/article/author 999\nESTIMATE /dblp/article/author\n' \
  | client > "$DIR/c1.out"
grep -q '^OK pong$' "$DIR/c1.out"
grep -q '^OK xseed .* protocol ' "$DIR/c1.out"
grep -q '^OK biblio loaded' "$DIR/c1.out"
refined=$(sed -n '6p' "$DIR/c1.out")
case $refined in OK\ *) ;; *) say "refined estimate was '$refined'"; exit 1;; esac

# Touch the other two tenants: the budget forces biblio out (LRU), which
# must flush its feedback journal on the way to disk.
printf 'USE auctions\nESTIMATE //item\nBATCH 2\n//item\n//person\nUSE trees\nESTIMATE //S/NP\nTENANTS\n' \
  | client > "$DIR/c2.out"
grep -q '^OK auctions loaded' "$DIR/c2.out"
grep -q '^OK trees loaded' "$DIR/c2.out"
grep -q '^OK 3$' "$DIR/c2.out"
grep -q 'paged-out' "$DIR/c2.out"
test -s "$DIR/journals/biblio.wal"
$XSEED journal-dump "$DIR/journals/biblio.wal" > "$DIR/wal.out" 2>&1
grep -q '"query":"/dblp/article/author","actual":999' "$DIR/wal.out"

# Page biblio back in: the journal replays and the refined estimate comes
# back bit-identical to the pre-eviction answer.
printf 'USE biblio\nESTIMATE /dblp/article/author\nSTATS\n' \
  | client > "$DIR/c3.out"
reloaded=$(sed -n '2p' "$DIR/c3.out")
[ "$reloaded" = "$refined" ] || {
  say "estimate after journal replay was '$reloaded', want '$refined'"
  exit 1
}
grep -q '"journal_replayed":[1-9]' "$DIR/c3.out"
grep -q '"evictions":[1-9]' "$DIR/c3.out"

# ---------------------------------------------------------------- act 3
say "tenant-labeled scrape, byte-identical when quiet"
printf 'METRICS\nMETRICS\n' | client > "$DIR/scrape2.out"
lines=$(wc -l < "$DIR/scrape2.out")
half=$((lines / 2))
[ $((half * 2)) -eq "$lines" ] || { say "odd scrape line count $lines"; exit 1; }
head -n "$half" "$DIR/scrape2.out" > "$DIR/scrape.prom"
tail -n "$half" "$DIR/scrape2.out" > "$DIR/scrape.b"
cmp -s "$DIR/scrape.prom" "$DIR/scrape.b" || {
  say "back-to-back quiet scrapes differ"; exit 1
}
# biblio is certainly resident (just USEd); paged-out tenants export no
# per-tenant series, which is itself part of the contract.
grep -q 'tenant="biblio"' "$DIR/scrape.prom"
grep -q '^xseed_registry_tenants_registered 3$' "$DIR/scrape.prom"
grep -q '^xseed_registry_evictions [1-9]' "$DIR/scrape.prom"

# ---------------------------------------------------------------- act 4
say "graceful drain on SIGTERM"
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
code=$?
set -e
trap - EXIT
[ "$code" -eq 0 ] || { say "drained server exited $code (want 0)"; exit 1; }
grep -q 'drained in-flight work and flushed state' "$DIR/serve.err"

say "OK ($DIR, scrape artifact: $DIR/scrape.prom)"
