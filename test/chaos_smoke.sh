#!/bin/sh
# Chaos smoke for the serving path's failure model (DESIGN.md §13).
#
# Three acts, all deterministic:
#   1. fault-injection over the pool/journal/deadline categories (worker
#      kills, mutated journal images, deadline storms);
#   2. the crash-recovery proof on a live server: feedbacks journalled
#      with fsync=always, the process SIGKILLed, the journal given a
#      torn tail (the kill-mid-append residue), and a restarted server
#      must truncate, replay both observations and keep serving;
#   3. golden exit codes for `xseed journal-dump` (0 on clean and torn
#      tails, 74 on mid-file corruption) and a SIGTERM drain that exits 0
#      after flushing.
#
# Invoked as `make chaos-smoke`; XSEED and SMOKE_DIR come from the
# Makefile. The journal files are left in SMOKE_DIR for CI to upload.
set -eu

# Direct binary paths: the kill -9 / SIGTERM choreography needs the PID
# of xseed itself, not of a `dune exec` wrapper.
XSEED=${XSEED_BIN:-_build/default/bin/xseed.exe}
FAULT=${FAULT_BIN:-_build/default/test/fault_injection.exe}
DIR=${SMOKE_DIR:-${TMPDIR:-/tmp}/xseed-smoke}/chaos
mkdir -p "$DIR"
rm -f "$DIR"/feed.wal "$DIR"/torn.wal "$DIR"/corrupt.wal

say() { echo "chaos-smoke: $*"; }

# Wait until file $1 contains at least $2 lines matching $3, or die
# after ~20s.
await() {
  i=0
  while n=$(grep -c "$3" "$1" 2>/dev/null || true); [ "${n:-0}" -lt "$2" ]; do
    i=$((i + 1))
    [ "$i" -gt 200 ] && { say "timed out waiting for $2 x $3 in $1"; exit 1; }
    sleep 0.1
  done
}
await_replies() { await "$1" "$2" '^OK\|^ERR'; }
await_ready() { await "$1" 1 'loaded'; }

# ---------------------------------------------------------------- act 1
say "fault injection (pool, journal, deadline)"
$FAULT --seeds 1,2,3,4 --cases 60 --only pool,journal,deadline

# ---------------------------------------------------------------- act 2
say "crash recovery (kill -9 + torn tail + replay)"
$XSEED generate xmark --scale 20 -o "$DIR/doc.xml" >/dev/null
$XSEED build "$DIR/doc.xml" -o "$DIR/doc.syn" >/dev/null

rm -f "$DIR/in.fifo"
mkfifo "$DIR/in.fifo"
$XSEED serve "$DIR/doc.syn" --journal "$DIR/feed.wal" --journal-fsync always \
  < "$DIR/in.fifo" > "$DIR/serve1.out" 2> "$DIR/serve1.err" &
SERVE_PID=$!
# Hold the fifo open so the server blocks on the next line, mid-session.
exec 3> "$DIR/in.fifo"
await_ready "$DIR/serve1.err"
printf 'FEEDBACK //item 12\nFEEDBACK //person 5\n' >&3
await_replies "$DIR/serve1.out" 2
# Both feedbacks acknowledged, hence fsynced. Now the power goes out.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null && { say "SIGKILLed server exited 0?"; exit 1; } || true
exec 3>&-

$XSEED journal-dump "$DIR/feed.wal" > "$DIR/dump1.out"
grep -q '"query":"//item","actual":12' "$DIR/dump1.out"
grep -q '"query":"//person","actual":5' "$DIR/dump1.out"

# The kill-mid-append residue: a frame header that runs past EOF.
printf '\000\000\000\040\336\255' >> "$DIR/feed.wal"
$XSEED journal-dump "$DIR/feed.wal" > /dev/null 2> "$DIR/dump2.err"
grep -q 'torn tail' "$DIR/dump2.err"

# Restart: the server must truncate the torn tail, replay both
# observations and answer from the recovered state.
printf 'STATS\n' | $XSEED serve "$DIR/doc.syn" --journal "$DIR/feed.wal" \
  > "$DIR/serve2.out" 2> "$DIR/serve2.err"
grep -q 'replayed 2 feedback entries' "$DIR/serve2.err"
grep -q '"seen":2' "$DIR/serve2.out"
# And the file is clean again for the next lifetime.
$XSEED journal-dump "$DIR/feed.wal" 2> "$DIR/dump3.err"
grep -q 'clean tail' "$DIR/dump3.err"

# ---------------------------------------------------------------- act 3
say "journal-dump golden exit codes"
# Torn tail (truncated mid-frame): recoverable, exit 0.
wal_bytes=$(wc -c < "$DIR/feed.wal")
head -c "$((wal_bytes - 1))" "$DIR/feed.wal" > "$DIR/torn.wal"
if $XSEED journal-dump "$DIR/torn.wal" > /dev/null 2>&1; then :; else
  say "journal-dump exited $? on a torn tail (want 0)"; exit 1
fi
# Mid-file corruption: data loss beyond the tail, exit 74 (EX_IOERR).
cp "$DIR/feed.wal" "$DIR/corrupt.wal"
printf 'X' | dd of="$DIR/corrupt.wal" bs=1 seek=12 conv=notrunc 2>/dev/null
set +e
$XSEED journal-dump "$DIR/corrupt.wal" > /dev/null 2>&1
code=$?
set -e
[ "$code" -eq 74 ] || { say "journal-dump exited $code on corruption (want 74)"; exit 1; }

say "graceful drain on SIGTERM"
rm -f "$DIR/in.fifo"
mkfifo "$DIR/in.fifo"
$XSEED serve "$DIR/doc.syn" --workers 2 --journal "$DIR/feed.wal" \
  < "$DIR/in.fifo" > "$DIR/drain.out" 2> "$DIR/drain.err" &
SERVE_PID=$!
exec 3> "$DIR/in.fifo"
await_ready "$DIR/drain.err"
printf 'ESTIMATE //item\n' >&3
await_replies "$DIR/drain.out" 1
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
code=$?
set -e
exec 3>&-
[ "$code" -eq 0 ] || { say "drained server exited $code (want 0)"; exit 1; }
grep -q 'drained in-flight work and flushed state' "$DIR/drain.err"

say "OK ($DIR)"
