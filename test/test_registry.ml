(* Multi-tenant synopsis registry: LRU paging under a global memory budget,
   journal flush/replay across evictions, the USE/LOAD/TENANTS session
   protocol, and the acceptance bar for the whole feature — estimates
   served through a budget-constrained registry are bit-identical to
   dedicated single-tenant engines over the same synopses. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixtures: three corpora of distinct sizes, written as synopsis files. *)

let temp_dir () =
  let path = Filename.temp_file "xseed_registry" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let docs =
  lazy
    [ ("paper", Datagen.Paper_example.document);
      ("dblp", Datagen.Dblp.generate ~seed:7 ~records:60 ());
      ("xmark", Datagen.Xmark.generate ~seed:7 ~items:40 ()) ]

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* dir with <name>.syn per corpus; returns [(name, path, syn)]. *)
let fixture_dir () =
  let dir = temp_dir () in
  let tenants =
    List.map
      (fun (name, doc) ->
        let syn = Core.Synopsis.build doc in
        let path = Filename.concat dir (name ^ ".syn") in
        write_file path (Core.Synopsis.to_string syn);
        (name, path, syn))
      (Lazy.force docs)
  in
  (dir, tenants)

let size_of tenants name =
  let _, _, syn = List.find (fun (n, _, _) -> n = name) tenants in
  Core.Synopsis.size_in_bytes syn

let registry_of ?memory_budget ?het_budget ?journal_dir tenants =
  let reg = Engine.Registry.create ?memory_budget ?het_budget ?journal_dir () in
  List.iter
    (fun (name, path, _) ->
      match Engine.Registry.register reg ~name ~path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "register %s: %s" name (Core.Error.to_string e))
    tenants;
  reg

let use_ok reg name =
  match Engine.Registry.use reg name with
  | Ok how -> how
  | Error e -> Alcotest.failf "USE %s: %s" name (Core.Error.to_string e)

let resident_names reg =
  List.filter_map
    (fun (name, size) -> if size <> None then Some name else None)
    (Engine.Registry.tenants reg)

(* One protocol request through a registry session (payload lines for
   BATCH-style verbs are not needed here). *)
let req session line =
  match
    Engine.Serve.handle_request
      ~extra:(Engine.Registry.extra session)
      (Engine.Registry.server session)
      ~read_line:(fun () -> None)
      line
  with
  | Some response -> response
  | None -> Alcotest.failf "no response to %S" line

(* ------------------------------------------------------------------ *)
(* Registration and manifest *)

let test_register_validation () =
  let dir, tenants = fixture_dir () in
  ignore dir;
  let reg = registry_of tenants in
  List.iter
    (fun bad ->
      match
        Engine.Registry.register reg ~name:bad ~path:"/nonexistent.syn"
      with
      | Ok () -> Alcotest.failf "name %S accepted" bad
      | Error e ->
        checkb
          (Printf.sprintf "%S is malformed" bad)
          true
          (Core.Error.kind e = Core.Error.Malformed_query))
    [ ""; "."; ".."; "a b"; "a/b"; "caf\xc3\xa9" ];
  (match Engine.Registry.register reg ~name:"dblp" ~path:"/other.syn" with
   | Ok () -> Alcotest.fail "duplicate name accepted"
   | Error _ -> ());
  (* A valid name with the full allowed alphabet registers fine (the file
     need not exist until first USE). *)
  (match Engine.Registry.register reg ~name:"T-1_x.y" ~path:"/later.syn" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "valid name refused: %s" (Core.Error.to_string e));
  checki "registered" 4 (Engine.Registry.registered_count reg);
  checki "nothing resident yet" 0 (Engine.Registry.resident_count reg);
  Engine.Registry.close reg

let test_manifest () =
  let dir, _tenants = fixture_dir () in
  let manifest = Filename.concat dir "manifest.txt" in
  (* Relative paths resolve against the manifest's own directory. *)
  write_file manifest
    "# tenants for the registry test\n\n\
     paper paper.syn\n\
     dblp dblp.syn\n\
     xmark xmark.syn\n";
  let reg = Engine.Registry.create () in
  (match Engine.Registry.load_manifest reg manifest with
   | Ok n -> checki "three tenants" 3 n
   | Error e -> Alcotest.failf "manifest: %s" (Core.Error.to_string e));
  checks "sorted names" "dblp,paper,xmark"
    (String.concat "," (List.map fst (Engine.Registry.tenants reg)));
  checkb "USE pages in" true (use_ok reg "paper" = `Loaded);
  checkb "second USE is resident" true (use_ok reg "paper" = `Resident);
  (match Engine.Registry.load_manifest reg "/nonexistent/manifest" with
   | Ok _ -> Alcotest.fail "missing manifest accepted"
   | Error e ->
     checkb "missing-file" true (Core.Error.kind e = Core.Error.Missing_file));
  Engine.Registry.close reg

(* ------------------------------------------------------------------ *)
(* LRU paging under the budget *)

let test_lru_eviction_order () =
  let _dir, tenants = fixture_dir () in
  let total =
    List.fold_left
      (fun acc (_, _, syn) -> acc + Core.Synopsis.size_in_bytes syn)
      0 tenants
  in
  (* Any two synopses fit; all three never do. *)
  let budget = total - 1 in
  let reg = registry_of ~memory_budget:budget tenants in
  ignore (use_ok reg "paper");
  ignore (use_ok reg "dblp");
  ignore (use_ok reg "xmark");
  (* paper was least recently used: it pages out first. *)
  checks "paper evicted" "dblp,xmark"
    (String.concat "," (resident_names reg));
  checki "one eviction" 1 (Engine.Registry.evictions reg);
  (* Refresh dblp, then bring paper back: xmark is now the LRU victim. *)
  checkb "dblp still resident" true (use_ok reg "dblp" = `Resident);
  checkb "paper pages back in" true (use_ok reg "paper" = `Loaded);
  checks "xmark evicted" "dblp,paper"
    (String.concat "," (resident_names reg));
  checki "two evictions" 2 (Engine.Registry.evictions reg);
  checki "four page-ins" 4 (Engine.Registry.page_ins reg);
  Engine.Registry.close reg;
  checki "close evicts the rest" 0 (Engine.Registry.resident_count reg)

let test_memory_accounting () =
  let _dir, tenants = fixture_dir () in
  let budget = size_of tenants "dblp" + size_of tenants "xmark" + 1 in
  let reg = registry_of ~memory_budget:budget tenants in
  let audit () =
    let sum =
      List.fold_left
        (fun acc (_, size) -> acc + Option.value size ~default:0)
        0
        (Engine.Registry.tenants reg)
    in
    checki "resident_bytes = sum of resident sizes" sum
      (Engine.Registry.resident_bytes reg);
    checkb "within budget" true (Engine.Registry.resident_bytes reg <= budget)
  in
  List.iter
    (fun name ->
      ignore (use_ok reg name);
      audit ())
    [ "paper"; "dblp"; "xmark"; "paper"; "xmark"; "dblp" ];
  Engine.Registry.close reg;
  checki "empty after close" 0 (Engine.Registry.resident_bytes reg)

let test_oversized_tenant () =
  let _dir, tenants = fixture_dir () in
  let budget = size_of tenants "xmark" - 1 in
  let reg = registry_of ~memory_budget:budget tenants in
  (match Engine.Registry.use reg "xmark" with
   | Ok _ -> Alcotest.fail "oversized tenant paged in"
   | Error e ->
     checkb "limit-exceeded" true
       (Core.Error.kind e = Core.Error.Limit_exceeded);
     checkb "names the live limit" true
       (let marker = Printf.sprintf "limit=%d" budget in
        let msg = Core.Error.message e in
        let ml = String.length marker in
        let n = String.length msg in
        let rec scan i =
          i + ml <= n && (String.sub msg i ml = marker || scan (i + 1))
        in
        scan 0));
  checki "nothing resident" 0 (Engine.Registry.resident_count reg);
  Engine.Registry.close reg

(* ------------------------------------------------------------------ *)
(* Eviction round trips preserve learned state via the journal *)

let test_journal_flush_and_replay () =
  let dir, tenants = fixture_dir () in
  let wal_dir = Filename.concat dir "wal" in
  Sys.mkdir wal_dir 0o700;
  (* Budget holds exactly one tenant at a time: every USE of another
     tenant evicts the current one. *)
  let budget =
    List.fold_left (fun acc (n, _, _) -> max acc (size_of tenants n)) 0 tenants
  in
  let reg =
    registry_of ~memory_budget:budget ~journal_dir:wal_dir tenants
  in
  let session = Engine.Registry.session reg in
  let server = Engine.Registry.server session in
  checks "USE dblp" "OK dblp loaded" (req session "USE dblp");
  (* A child-only absolute path: the one shape HET feedback refines, so
     the round trip has learned state to lose. *)
  let query = "/dblp/article/author" in
  let before =
    match server.Engine.Serve.estimate query with
    | Ok r -> r.Engine.Serve.value
    | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e)
  in
  (match server.Engine.Serve.feedback query ~actual:999 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
  let after =
    match server.Engine.Serve.estimate query with
    | Ok r -> r.Engine.Serve.value
    | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e)
  in
  (* Evict dblp by using another tenant; its journal must hit the disk
     before the engine is released. *)
  checks "USE xmark evicts dblp" "OK xmark loaded" (req session "USE xmark");
  checkb "dblp paged out" true
    (not (List.mem "dblp" (resident_names reg)));
  let wal = Filename.concat wal_dir "dblp.wal" in
  checkb "journal flushed to disk" true (Sys.file_exists wal);
  (match Engine.Journal.scan_file wal with
   | Ok scan ->
     checki "one durable feedback entry" 1 (List.length scan.Engine.Journal.entries);
     checkb "clean tail" true (scan.Engine.Journal.tail = Engine.Journal.Clean)
   | Error e -> Alcotest.failf "scan: %s" (Core.Error.to_string e));
  (* Page dblp back in: the journal replays through the feedback path, so
     the refined estimate survives the round trip bit-for-bit. *)
  checks "USE dblp reloads" "OK dblp loaded" (req session "USE dblp");
  checkb "journal replayed" true (Engine.Registry.journal_replayed reg >= 1);
  let reloaded =
    match server.Engine.Serve.estimate query with
    | Ok r -> r.Engine.Serve.value
    | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e)
  in
  checkb "refinement survived the round trip" true (reloaded = after);
  checkb "feedback actually changed the estimate" true (before <> after);
  Engine.Registry.close reg

(* ------------------------------------------------------------------ *)
(* Acceptance: registry estimates are bit-identical to dedicated engines *)

let dedicated_engine syn =
  let estimator =
    Core.Estimator.create
      ~card_threshold:(Core.Synopsis.card_threshold syn)
      ?het:(Core.Synopsis.het syn)
      ?values:(Core.Synopsis.values syn)
      (Core.Synopsis.kernel syn)
  in
  Engine.create estimator

let queries_of = function
  | "paper" -> [ "/A/B"; "//B"; "/A//C" ]
  | "dblp" -> [ "//article"; "//article/author"; "/dblp/article/title" ]
  | _ -> [ "//item"; "//person"; "//item/name" ]

let test_differential_vs_dedicated () =
  let _dir, tenants = fixture_dir () in
  let total =
    List.fold_left
      (fun acc (_, _, syn) -> acc + Core.Synopsis.size_in_bytes syn)
      0 tenants
  in
  (* The acceptance bar: one process hosts all three tenants under a
     budget smaller than the sum of the synopses, interleaving USEs so
     evictions actually happen mid-workload. *)
  let reg = registry_of ~memory_budget:(total - 1) tenants in
  let session = Engine.Registry.session reg in
  let server = Engine.Registry.server session in
  let dedicated =
    List.map (fun (name, _, syn) -> (name, dedicated_engine syn)) tenants
  in
  for _round = 1 to 2 do
    List.iter
      (fun (name, _, _) ->
        checkb "USE ok" true
          (let r = req session ("USE " ^ name) in
           String.length r >= 2 && String.sub r 0 2 = "OK");
        let engine = List.assoc name dedicated in
        List.iter
          (fun q ->
            let via_registry =
              match server.Engine.Serve.estimate q with
              | Ok r -> r.Engine.Serve.value
              | Error e ->
                Alcotest.failf "registry %s %s: %s" name q
                  (Core.Error.to_string e)
            in
            let via_dedicated =
              match Engine.estimate engine q with
              | Ok s -> s.Engine.outcome.Core.Estimator.value
              | Error e ->
                Alcotest.failf "dedicated %s %s: %s" name q
                  (Core.Error.to_string e)
            in
            checkb
              (Printf.sprintf "%s %s bit-identical" name q)
              true
              (via_registry = via_dedicated))
          (queries_of name))
      tenants
  done;
  checkb "evictions happened mid-workload" true
    (Engine.Registry.evictions reg > 0);
  Engine.Registry.close reg

(* ------------------------------------------------------------------ *)
(* USE racing eviction across domains *)

let test_concurrent_use_during_evict () =
  let _dir, tenants = fixture_dir () in
  (* Budget fits roughly one tenant, so every domain's USE keeps evicting
     the others' residents while they serve. The registry lock must make
     each USE+estimate atomic: no half-released engine is ever observed. *)
  let budget =
    List.fold_left (fun acc (n, _, _) -> max acc (size_of tenants n)) 0 tenants
  in
  let reg = registry_of ~memory_budget:budget tenants in
  let failures = Atomic.make 0 in
  (* Start barrier: all domains begin hammering together so USEs really do
     race evictions instead of running back to back. *)
  let start = Atomic.make 0 in
  let n_domains = List.length tenants in
  let domains =
    List.map
      (fun (name, _, _) ->
        Domain.spawn (fun () ->
            Atomic.incr start;
            while Atomic.get start < n_domains do
              Domain.cpu_relax ()
            done;
            let session = Engine.Registry.session reg in
            let server = Engine.Registry.server session in
            let q = List.hd (queries_of name) in
            let expected = ref None in
            for _i = 1 to 30 do
              (match Engine.Registry.use reg name with
               | Ok _ -> ()
               | Error _ -> Atomic.incr failures);
              ignore (req session ("USE " ^ name) : string);
              match server.Engine.Serve.estimate q with
              | Ok r ->
                (match !expected with
                 | None -> expected := Some r.Engine.Serve.value
                 | Some v ->
                   if v <> r.Engine.Serve.value then Atomic.incr failures)
              | Error _ -> Atomic.incr failures
            done))
      tenants
  in
  List.iter Domain.join domains;
  checki "no failed or unstable ops" 0 (Atomic.get failures);
  checkb "budget still holds" true
    (Engine.Registry.resident_bytes reg <= budget);
  (* paper and dblp can coexist under the budget, so the floor is the
     xmark swaps — at least one eviction must have happened. *)
  checkb "evictions were exercised" true (Engine.Registry.evictions reg > 0);
  Engine.Registry.close reg

(* ------------------------------------------------------------------ *)
(* Session protocol: USE / LOAD / TENANTS through the serve layer *)

let test_session_protocol () =
  let dir, tenants = fixture_dir () in
  let reg = registry_of tenants in
  let session = Engine.Registry.session reg in
  checks "PING works tenant-less" "OK pong" (req session "PING");
  checks "VERSION works tenant-less"
    (Printf.sprintf "OK xseed %s protocol %d" Engine.Serve.version
       Engine.Serve.protocol_version)
    (req session "VERSION");
  checks "no tenant selected"
    "ERR malformed-query no tenant selected (USE <tenant>)"
    (req session "ESTIMATE //article");
  checks "unknown tenant"
    "ERR malformed-query unknown tenant \"nope\" (LOAD <tenant> <path> first)"
    (req session "USE nope");
  checks "USE with junk"
    "ERR malformed-query USE expects exactly one tenant name"
    (req session "USE dblp extra");
  checks "TENANTS before loading" "OK 3\ndblp paged-out\npaper paged-out\nxmark paged-out"
    (req session "TENANTS");
  checks "USE loads" "OK dblp loaded" (req session "USE dblp");
  checks "USE again is resident" "OK dblp resident" (req session "USE dblp");
  checkb "active tenant tracked" true
    (Engine.Registry.active session = Some "dblp");
  (* LOAD registers + pages in but does not switch the session. *)
  let extra_path = Filename.concat dir "paper.syn" in
  checks "LOAD new tenant"
    (Printf.sprintf "OK extra loaded %d"
       (size_of tenants "paper"))
    (req session (Printf.sprintf "LOAD extra %s" extra_path));
  checkb "LOAD does not switch the session" true
    (Engine.Registry.active session = Some "dblp");
  checkb "estimate routes to the active tenant" true
    (let r = req session "ESTIMATE //article" in
     String.length r >= 2 && String.sub r 0 2 = "OK");
  (* Core verbs still work untouched behind the extra handler. *)
  checkb "unknown verb is one ERR" true
    (let r = req session "NONSENSE" in
     String.length r >= 3 && String.sub r 0 3 = "ERR");
  Engine.Registry.close reg

(* ------------------------------------------------------------------ *)
(* Tenant-labeled metrics: deterministic scrapes *)

let contains ~needle hay =
  let nl = String.length needle and n = String.length hay in
  let rec scan i = i + nl <= n && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_metrics_tenant_labels () =
  let _dir, tenants = fixture_dir () in
  let reg = registry_of tenants in
  let session = Engine.Registry.session reg in
  ignore (req session "USE dblp" : string);
  ignore (req session "ESTIMATE //article" : string);
  ignore (req session "USE xmark" : string);
  ignore (req session "ESTIMATE //item" : string);
  let scrape = Engine.Registry.metrics_text reg in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "scrape has %s" needle) true
        (contains ~needle scrape))
    [ "tenant=\"dblp\"";
      "tenant=\"xmark\"";
      "xseed_engine_cache_misses{tenant=\"dblp\"}";
      "xseed_registry_tenants_registered 3";
      "xseed_registry_tenants_resident 2";
      "xseed_registry_page_ins 2";
      "xseed_registry_evictions 0" ];
  (* A quiet registry scrapes byte-identically: publishes are idempotent
     and series render in sorted order. *)
  checks "quiet scrapes byte-identical" scrape
    (Engine.Registry.metrics_text reg);
  checks "and again via the session server" scrape
    ((Engine.Registry.server session).Engine.Serve.metrics_text ());
  (* Flight records carry the tenant that served them. *)
  (match (Engine.Registry.server session).Engine.Serve.recent None with
   | Ok (r :: _) ->
     checkb "flight record is tenant-stamped" true
       (r.Engine.Flight_recorder.tenant = Some "xmark")
   | Ok [] -> Alcotest.fail "no flight records"
   | Error e -> Alcotest.failf "recent: %s" (Core.Error.to_string e));
  (* ... and the RECENT protocol rendering carries it too. *)
  let recent = req session "RECENT 5" in
  checkb "RECENT reply is tenant-stamped" true
    (contains ~needle:"\"tenant\":\"xmark\"" recent);
  Engine.Registry.close reg

(* ------------------------------------------------------------------ *)
(* Shadow auditing through the registry: manifest doc= fields arm a
   per-tenant auditor at page-in; tenants without a document never audit;
   eviction shuts the auditor down and re-page-in re-arms it. *)

let test_manifest_doc_audit () =
  let dir, _tenants = fixture_dir () in
  (* Source documents beside the synopses, named by relative doc= paths. *)
  List.iter
    (fun (name, doc) ->
      write_file (Filename.concat dir (name ^ ".xml")) doc)
    (Lazy.force docs);
  let manifest = Filename.concat dir "manifest.txt" in
  write_file manifest
    "# audited and unaudited tenants\n\
     xmark xmark.syn doc=xmark.xml\n\
     dblp dblp.syn\n";
  let reg = Engine.Registry.create ~audit_rate:1.0 () in
  (match Engine.Registry.load_manifest reg manifest with
   | Ok n -> checki "two tenants" 2 n
   | Error e -> Alcotest.failf "manifest: %s" (Core.Error.to_string e));
  let session = Engine.Registry.session reg in
  ignore (req session "USE xmark" : string);
  ignore (req session "ESTIMATE //item" : string);
  ignore (req session "ESTIMATE /site/people/person" : string);
  let audit = req session "AUDIT" in
  checkb "AUDIT answers for a doc-backed tenant" true
    (String.length audit > 4 && String.sub audit 0 4 = "OK {");
  checkb "both estimates audited at rate 1.0" true
    (contains ~needle:"\"completed\":2" audit);
  (* The AUDIT verb drained, so the attribution records are visible in the
     tenant's RECENT stream, tenant-stamped. *)
  let recent = req session "RECENT 10" in
  checkb "audit record in RECENT" true
    (contains ~needle:"\"cache\":\"audit\"" recent);
  checkb "attribution payload in RECENT" true
    (contains ~needle:"\"audit\":{" recent);
  checkb "audit record is tenant-stamped" true
    (contains ~needle:"\"tenant\":\"xmark\"" recent);
  (* Audit series land in the tenant-labeled registry scrape. *)
  let scrape = Engine.Registry.metrics_text reg in
  checkb "audit counter scraped with the tenant label" true
    (contains ~needle:"xseed_engine_audit_completed{tenant=\"xmark\"} 2"
       scrape);
  (* A tenant without a doc= never audits. *)
  ignore (req session "USE dblp" : string);
  let disabled = req session "AUDIT" in
  checkb "AUDIT refused without a document" true
    (contains ~needle:"ERR internal auditing is disabled" disabled);
  (* Eviction shuts the auditor down; re-page-in arms a fresh one. *)
  checkb "evict xmark" true (Engine.Registry.evict reg "xmark");
  ignore (req session "USE xmark" : string);
  ignore (req session "ESTIMATE //item" : string);
  let audit2 = req session "AUDIT" in
  checkb "fresh auditor after re-page-in" true
    (contains ~needle:"\"completed\":1" audit2);
  Engine.Registry.close reg

let () =
  Alcotest.run "registry"
    [ ( "registration",
        [ Alcotest.test_case "name validation" `Quick test_register_validation;
          Alcotest.test_case "manifest" `Quick test_manifest ] );
      ( "paging",
        [ Alcotest.test_case "LRU eviction order" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
          Alcotest.test_case "oversized tenant refused" `Quick
            test_oversized_tenant ] );
      ( "durability",
        [ Alcotest.test_case "journal flush and replay" `Quick
            test_journal_flush_and_replay ] );
      ( "differential",
        [ Alcotest.test_case "bit-identical vs dedicated engines" `Quick
            test_differential_vs_dedicated ] );
      ( "concurrency",
        [ Alcotest.test_case "USE racing eviction" `Quick
            test_concurrent_use_during_evict ] );
      ( "protocol",
        [ Alcotest.test_case "USE/LOAD/TENANTS session" `Quick
            test_session_protocol ] );
      ( "metrics",
        [ Alcotest.test_case "tenant labels, deterministic scrape" `Quick
            test_metrics_tenant_labels ] );
      ( "audit",
        [ Alcotest.test_case "manifest doc= arms per-tenant auditors" `Quick
            test_manifest_doc_audit ] )
    ]
