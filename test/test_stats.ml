(* Metric tests: RMSE/NRMSE per the paper's definitions, R², OPD. *)

let test_perfect_estimates () =
  let s = Stats.Metrics.summarize [ (1.0, 1.0); (5.0, 5.0); (10.0, 10.0) ] in
  Alcotest.(check (float 1e-12)) "rmse" 0.0 s.rmse;
  Alcotest.(check (float 1e-12)) "nrmse" 0.0 s.nrmse;
  Alcotest.(check (float 1e-12)) "r2" 1.0 s.r_squared;
  Alcotest.(check (float 1e-12)) "opd" 1.0 s.opd

let test_rmse_definition () =
  (* sqrt(((2-1)^2 + (3-5)^2)/2) = sqrt(2.5). *)
  let s = Stats.Metrics.summarize [ (2.0, 1.0); (3.0, 5.0) ] in
  Alcotest.(check (float 1e-12)) "rmse" (sqrt 2.5) s.rmse;
  (* NRMSE = RMSE / mean actual = sqrt(2.5)/3. *)
  Alcotest.(check (float 1e-12)) "nrmse" (sqrt 2.5 /. 3.0) s.nrmse;
  Alcotest.(check (float 1e-12)) "mean actual" 3.0 s.mean_actual;
  Alcotest.(check (float 1e-12)) "max err" 2.0 s.max_abs_error

let test_opd () =
  (* Actuals 1 < 2 < 3; estimates reverse one pair. *)
  let s = Stats.Metrics.summarize [ (1.0, 1.0); (5.0, 2.0); (4.0, 3.0) ] in
  (* pairs: (1,2) ok, (1,3) ok, (2,3) reversed -> 2/3. *)
  Alcotest.(check (float 1e-12)) "opd" (2.0 /. 3.0) s.opd

let test_opd_ties () =
  let s = Stats.Metrics.summarize [ (2.0, 1.0); (2.0, 5.0) ] in
  Alcotest.(check (float 1e-12)) "tie counts half" 0.5 s.opd

let test_all_zero_actuals () =
  let s = Stats.Metrics.summarize [ (1.0, 0.0); (0.0, 0.0) ] in
  Alcotest.(check bool) "nrmse infinite" true (s.nrmse = Float.infinity)

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.summarize: empty workload")
    (fun () -> ignore (Stats.Metrics.summarize []))

let test_q_error () =
  (* max(est/act, act/est) with +1 smoothing: q(0,0)=1, q(1,3)=2, symmetric. *)
  Alcotest.(check (float 1e-12)) "both empty" 1.0 (Stats.Metrics.q_error 0.0 0.0);
  Alcotest.(check (float 1e-12)) "underestimate" 2.0 (Stats.Metrics.q_error 1.0 3.0);
  Alcotest.(check (float 1e-12)) "symmetric" (Stats.Metrics.q_error 3.0 1.0)
    (Stats.Metrics.q_error 1.0 3.0);
  Alcotest.(check (float 1e-12)) "empty result stays finite" 101.0
    (Stats.Metrics.q_error 100.0 0.0);
  (* Negative inputs (defensive) clamp to zero. *)
  Alcotest.(check (float 1e-12)) "negative clamped" 1.0
    (Stats.Metrics.q_error (-5.0) 0.0)

let test_q_error_summary () =
  (* q-errors: (0,0)->1, (3,1)->2, (5,1)->3, (7,1)->4, (19,1)->10. *)
  let s =
    Stats.Metrics.summarize
      [ (0.0, 0.0); (3.0, 1.0); (5.0, 1.0); (7.0, 1.0); (19.0, 1.0) ]
  in
  Alcotest.(check (float 1e-12)) "median" 3.0 s.q_error_median;
  Alcotest.(check (float 1e-12)) "p90" 10.0 s.q_error_p90;
  Alcotest.(check (float 1e-12)) "max" 10.0 s.q_error_max

let test_opd_sampled () =
  (* Above the exact cutoff OPD switches to pair sampling; a perfectly
     ordered workload must still score ~1 and stay fast. *)
  let pairs = List.init 5000 (fun i -> (float_of_int i, float_of_int i)) in
  let s = Stats.Metrics.summarize pairs in
  Alcotest.(check (float 1e-9)) "sampled opd of perfect order" 1.0 s.opd

let test_r_squared_baseline () =
  (* Estimating the mean for every query gives R² = 0. *)
  let s = Stats.Metrics.summarize [ (2.0, 1.0); (2.0, 3.0) ] in
  Alcotest.(check (float 1e-12)) "r2 of mean predictor" 0.0 s.r_squared

let prop_rmse_nonnegative =
  let open QCheck in
  let gen_pairs =
    list_of_size (Gen.int_range 1 50)
      (pair (float_range 0.0 1000.0) (float_range 0.0 1000.0))
  in
  Test.make ~count:300 ~name:"metrics well-formed" gen_pairs (fun pairs ->
      let s = Stats.Metrics.summarize pairs in
      s.rmse >= 0.0
      && s.max_abs_error >= 0.0
      && s.opd >= 0.0 && s.opd <= 1.0
      && s.r_squared <= 1.0)

let prop_rmse_scale =
  let open QCheck in
  let gen_pairs =
    list_of_size (Gen.int_range 1 50)
      (pair (float_range 0.0 100.0) (float_range 0.0 100.0))
  in
  Test.make ~count:300 ~name:"rmse scales linearly" gen_pairs (fun pairs ->
      let s1 = Stats.Metrics.rmse pairs in
      let s2 = Stats.Metrics.rmse (List.map (fun (e, a) -> (2.0 *. e, 2.0 *. a)) pairs) in
      Float.abs (s2 -. (2.0 *. s1)) < 1e-6 *. Float.max 1.0 s2)

let props = List.map QCheck_alcotest.to_alcotest [ prop_rmse_nonnegative; prop_rmse_scale ]

let () =
  Alcotest.run "stats"
    [
      ( "metrics",
        [
          Alcotest.test_case "perfect" `Quick test_perfect_estimates;
          Alcotest.test_case "rmse definition" `Quick test_rmse_definition;
          Alcotest.test_case "opd" `Quick test_opd;
          Alcotest.test_case "opd ties" `Quick test_opd_ties;
          Alcotest.test_case "all zero actuals" `Quick test_all_zero_actuals;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "q-error" `Quick test_q_error;
          Alcotest.test_case "q-error summary" `Quick test_q_error_summary;
          Alcotest.test_case "opd sampled" `Quick test_opd_sampled;
          Alcotest.test_case "r2 baseline" `Quick test_r_squared_baseline;
        ] );
      ("properties", props);
    ]
