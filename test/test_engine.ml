(* Serving engine: canonicalization, the LRU estimate cache, HET collision
   handling, the feedback loop, and the serve line protocol. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Canonicalization *)

let key_text q =
  match Engine.Canonical.of_string q with
  | Ok k -> k.Engine.Canonical.text
  | Error e -> Alcotest.failf "canonical %s: %s" q (Core.Error.to_string e)

let key_hash q =
  match Engine.Canonical.of_string q with
  | Ok k -> k.Engine.Canonical.hash
  | Error e -> Alcotest.failf "canonical %s: %s" q (Core.Error.to_string e)

(* Equivalent spellings must share one cache slot: text AND hash agree. *)
let test_canonical_equivalent () =
  List.iter
    (fun (a, b) ->
      checks (Printf.sprintf "%s ~ %s" a b) (key_text a) (key_text b);
      checki (Printf.sprintf "%s ~ %s (hash)" a b) (key_hash a) (key_hash b))
    [ ("/a[c][b]", "/a[b][c]");  (* predicate order *)
      ("/a[b][b]", "/a[b]");  (* duplicated predicate *)
      ("/a[b[d]][b[c]]", "/a[b[c]][b[d]]");  (* nested predicate order *)
      (" / a / b ", "/a/b");  (* whitespace *)
      ("/a/./b", "/a/b");  (* redundant self step *)
      ("/./a", "/a");
      ("/a/.", "/a");
      ("/a/.//b", "/a//b");
      ("/a[./c]", "/a[c]");  (* self step opening a predicate *)
      ("/a[x='v'][b]", "/a[b][x='v']");  (* value vs structural order *)
      ("/a[@y=2][@x=1]", "/a[@x=1][@y=2]") ]

let test_canonical_distinct () =
  List.iter
    (fun (a, b) ->
      checkb (Printf.sprintf "%s <> %s" a b) false (key_text a = key_text b))
    [ ("/a/b", "/a//b");
      ("/a[b]", "/a[c]");
      ("/a[b]/c", "/a/b/c");
      ("/a[x=1]", "/a[x=2]");
      ("/a", "//a") ]

let gen_ast : Xpath.Ast.t QCheck.arbitrary =
  let open QCheck in
  let gen_test rand =
    if Gen.int_bound 5 rand = 0 then Xpath.Ast.Wildcard
    else
      Xpath.Ast.Name
        (String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 4 rand)))
  in
  let gen_axis rand =
    if Gen.int_bound 3 rand = 0 then Xpath.Ast.Descendant else Xpath.Ast.Child
  in
  let rec gen_path depth len rand =
    List.init len (fun _ ->
        let predicates =
          if depth >= 2 then []
          else
            List.init (Gen.int_bound 2 rand) (fun _ ->
                gen_path (depth + 1) (1 + Gen.int_bound 1 rand) rand)
        in
        { Xpath.Ast.axis = gen_axis rand; test = gen_test rand; predicates;
          value_predicates = [] })
  in
  make ~print:Xpath.Ast.to_string (fun rand ->
      gen_path 0 (1 + Gen.int_bound 3 rand) rand)

let prop_canonical_idempotent =
  QCheck.Test.make ~count:500 ~name:"canonicalize idempotent" gen_ast (fun q ->
      let c = Engine.Canonical.canonicalize q in
      Xpath.Ast.equal (Engine.Canonical.canonicalize c) c)

(* pp/parse round trips land on the same key as the original AST. *)
let prop_canonical_round_trip =
  QCheck.Test.make ~count:500 ~name:"parse (to_string q) same key" gen_ast
    (fun q ->
      let k = Engine.Canonical.of_ast q in
      let k' =
        Engine.Canonical.of_ast (Xpath.Parser.parse (Xpath.Ast.to_string q))
      in
      Engine.Canonical.equal k k' && k.Engine.Canonical.hash = k'.Engine.Canonical.hash)

(* Reordering predicates anywhere in the tree never changes the key. *)
let prop_canonical_predicate_order =
  let rec rev_preds path =
    List.map
      (fun (s : Xpath.Ast.step) ->
        { s with Xpath.Ast.predicates = List.rev_map rev_preds s.predicates })
      path
  in
  QCheck.Test.make ~count:500 ~name:"predicate order irrelevant" gen_ast
    (fun q ->
      Engine.Canonical.equal (Engine.Canonical.of_ast q)
        (Engine.Canonical.of_ast (rev_preds q)))

(* ------------------------------------------------------------------ *)
(* LRU cache *)

let test_lru_capacity_and_eviction_order () =
  let c = Engine.Lru_cache.create ~capacity:3 in
  Engine.Lru_cache.put c "a" 1;
  Engine.Lru_cache.put c "b" 2;
  Engine.Lru_cache.put c "c" 3;
  checki "full" 3 (Engine.Lru_cache.length c);
  (* Touch "a" so "b" is now the LRU entry. *)
  checkb "a hit" true (Engine.Lru_cache.find c "a" = Some 1);
  Engine.Lru_cache.put c "d" 4;
  checki "still bounded" 3 (Engine.Lru_cache.length c);
  checkb "b evicted" false (Engine.Lru_cache.mem c "b");
  checkb "a kept" true (Engine.Lru_cache.mem c "a");
  checkb "c kept" true (Engine.Lru_cache.mem c "c");
  checkb "d kept" true (Engine.Lru_cache.mem c "d");
  (* Evict twice more: LRU order is now c, a, d. *)
  Engine.Lru_cache.put c "e" 5;
  Engine.Lru_cache.put c "f" 6;
  checkb "c evicted second" false (Engine.Lru_cache.mem c "c");
  checkb "a evicted third" false (Engine.Lru_cache.mem c "a");
  checkb "d survives" true (Engine.Lru_cache.mem c "d");
  let k = Engine.Lru_cache.counters c in
  checki "evictions" 3 k.Engine.Lru_cache.evictions

let test_lru_counters_balance () =
  let c = Engine.Lru_cache.create ~capacity:2 in
  let lookups = ref 0 in
  let find key =
    incr lookups;
    ignore (Engine.Lru_cache.find c key)
  in
  find "x";
  Engine.Lru_cache.put c "x" 10;
  find "x";
  find "y";
  Engine.Lru_cache.put c "y" 20;
  Engine.Lru_cache.put c "z" 30;
  find "x";
  (* x was evicted by z *)
  let k = Engine.Lru_cache.counters c in
  checki "hits + misses = lookups" !lookups
    (k.Engine.Lru_cache.hits + k.Engine.Lru_cache.misses);
  checki "hits" 1 k.Engine.Lru_cache.hits;
  checki "misses" 3 k.Engine.Lru_cache.misses;
  checki "insertions" 3 k.Engine.Lru_cache.insertions;
  checki "evictions" 1 k.Engine.Lru_cache.evictions

let test_lru_refresh_and_invalidate () =
  let c = Engine.Lru_cache.create ~capacity:2 in
  Engine.Lru_cache.put c "a" 1;
  Engine.Lru_cache.put c "b" 2;
  Engine.Lru_cache.put c "a" 11;  (* refresh: value + recency, no eviction *)
  checkb "refreshed" true (Engine.Lru_cache.find c "a" = Some 11);
  Engine.Lru_cache.put c "c" 3;
  checkb "b was LRU after refresh" false (Engine.Lru_cache.mem c "b");
  Engine.Lru_cache.remove c "a";
  checkb "removed" false (Engine.Lru_cache.mem c "a");
  Engine.Lru_cache.clear c;
  checki "cleared" 0 (Engine.Lru_cache.length c);
  let k = Engine.Lru_cache.counters c in
  (* remove a (1) + clear of the single remaining entry c (1) *)
  checki "invalidations" 2 k.Engine.Lru_cache.invalidations;
  checki "evictions" 1 k.Engine.Lru_cache.evictions;
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru_cache.create: capacity 0 < 1") (fun () ->
      ignore (Engine.Lru_cache.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* HET collisions: two distinct paths forced onto one hash must coexist. *)

let test_het_forced_collision () =
  let lookup het path = Core.Het.lookup_simple het ~path 42 in
  let build order =
    let het = Core.Het.create () in
    List.iter
      (fun (path, card) ->
        Core.Het.add_simple het ~path ~hash:42 ~card ~bsel:None ~error:1.0)
      order;
    het
  in
  let check_both het tag =
    checkb (tag ^ ": first path answers") true
      (lookup het "1/2" = Some (10, None));
    checkb (tag ^ ": second path answers") true
      (lookup het "3/4" = Some (99, None));
    checkb (tag ^ ": stranger path misses") true (lookup het "5/6" = None)
  in
  let het = build [ ("1/2", 10); ("3/4", 99) ] in
  check_both het "insertion order A";
  checki "both retained" 2 (Core.Het.total_count het);
  checkb "collisions counted" true
    ((Core.Het.counters het).Core.Het.collisions > 0);
  (* Insertion order must not matter. *)
  check_both (build [ ("3/4", 99); ("1/2", 10) ]) "insertion order B";
  (* The dump round-trips both entries. *)
  (match Core.Het.of_string_result (Core.Het.to_string het) with
   | Ok het' ->
     check_both het' "after round trip";
     checki "round trip keeps both" 2 (Core.Het.total_count het')
   | Error e -> Alcotest.failf "round trip: %s" (Core.Error.to_string e));
  (* Same hash AND same path: a plain replace, as before. *)
  let het = build [ ("1/2", 10); ("1/2", 77); ("3/4", 99) ] in
  checkb "same path replaces" true (lookup het "1/2" = Some (77, None));
  checki "no duplicate binding" 2 (Core.Het.total_count het)

let test_het_legacy_pathless () =
  let het = Core.Het.create () in
  Core.Het.add_simple het ~hash:7 ~card:5 ~bsel:None ~error:0.0;
  checkb "pathless entry answers a pathed lookup" true
    (Core.Het.lookup_simple het ~path:"1/5" 7 = Some (5, None));
  checkb "and a pathless lookup" true
    (Core.Het.lookup_simple het 7 = Some (5, None))

(* ------------------------------------------------------------------ *)
(* Engine: cache behavior and the feedback loop *)

(* 8 'a' children: 4 carry <b/>, 4 carry <c/> — b and c never co-occur, so
   independence overestimates /r/a[b]/c (actual 0) until feedback fixes it. *)
let correlated_doc =
  "<r>" ^ String.concat ""
    (List.init 8 (fun i -> if i < 4 then "<a><b/></a>" else "<a><c/></a>"))
  ^ "</r>"

let engine_over doc =
  let kernel = Core.Builder.of_string doc in
  let het = Core.Het.create () in
  let estimator = Core.Estimator.create ~het kernel in
  Engine.create estimator

let served_value engine q =
  match Engine.estimate engine q with
  | Ok s -> s.Engine.outcome.Core.Estimator.value
  | Error e -> Alcotest.failf "estimate %s: %s" q (Core.Error.to_string e)

let served_status engine q =
  match Engine.estimate engine q with
  | Ok s -> s.Engine.status
  | Error e -> Alcotest.failf "estimate %s: %s" q (Core.Error.to_string e)

let test_engine_cache_hit_miss () =
  let engine = engine_over correlated_doc in
  checkb "first is a miss" true
    (served_status engine "/r/a" = Core.Explain.Miss);
  checkb "repeat is a hit" true (served_status engine "/r/a" = Core.Explain.Hit);
  checkb "equivalent spelling hits" true
    (served_status engine " / r / ./ a" = Core.Explain.Hit);
  checkb "different query misses" true
    (served_status engine "/r/a/b" = Core.Explain.Miss);
  let c = Engine.cache_counters engine in
  checki "hits" 2 c.Engine.Lru_cache.hits;
  checki "misses" 2 c.Engine.Lru_cache.misses;
  (match Engine.estimate engine "/r[" with
   | Ok _ -> Alcotest.fail "bad query served"
   | Error e ->
     checkb "parse error kind" true
       (Core.Error.kind e = Core.Error.Malformed_query));
  (* Errors are not cached and do not disturb the counters' balance. *)
  let c = Engine.cache_counters engine in
  checki "error not counted" 2 (c.Engine.Lru_cache.hits + c.Engine.Lru_cache.hits - 2)

let test_engine_feedback_refines () =
  let engine = engine_over correlated_doc in
  let q = "/r/a[b]/c" in
  let e1 = served_value engine q in
  checkb "independence overestimates" true (e1 > 0.5);
  (match Engine.feedback engine q ~actual:0 with
   | Ok (served, fb) ->
     checkb "judged the served estimate" true
       (served.Engine.outcome.Core.Estimator.value = e1);
     checkb "q-error over threshold" true
       (fb.Engine.Feedback.q_error >= Engine.qerror_threshold engine);
     checkb "refined" true fb.Engine.Feedback.refined
   | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
  checki "one refinement" 1 (Engine.feedback_rounds engine);
  (* Refinement invalidated the cache: recompute against the refreshed HET. *)
  checkb "cache cleared" true (served_status engine q = Core.Explain.Miss);
  let e2 = served_value engine q in
  checkb "estimate corrected" true (e2 < e1);
  checkb "now near the truth" true
    (Engine.Feedback.q_error ~estimate:e2 ~actual:0
     < Engine.Feedback.q_error ~estimate:e1 ~actual:0)

let test_engine_feedback_simple_path () =
  let engine = engine_over correlated_doc in
  let q = "/r/a/b" in
  let e1 = served_value engine q in
  (* Pretend execution saw something wildly different: the exact-cardinality
     entry must take over on the next request. *)
  (match Engine.feedback engine q ~actual:40 with
   | Ok (_, fb) -> checkb "refined" true fb.Engine.Feedback.refined
   | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
  checkb "exact entry answers" true (served_value engine q = 40.0);
  checkb "it changed the estimate" true (e1 <> 40.0);
  (* A good estimate is left alone: no refinement, cache intact. *)
  (match Engine.feedback engine q ~actual:40 with
   | Ok (_, fb) -> checkb "kept" false fb.Engine.Feedback.refined
   | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
  checki "still one refinement" 1 (Engine.feedback_rounds engine);
  checki "feedback observations" 2 (Engine.feedback_seen engine);
  checkb "cache survives a kept observation" true
    (served_status engine q = Core.Explain.Hit)

let test_engine_batch_and_explain () =
  let engine = engine_over correlated_doc in
  (match Engine.estimate_batch engine [ "/r/a"; "/r["; "/r/a" ] with
   | [ Ok _; Error e; Ok hit ] ->
     checkb "batch error kind" true
       (Core.Error.kind e = Core.Error.Malformed_query);
     checkb "batch shares the cache" true (hit.Engine.status = Core.Explain.Hit)
   | _ -> Alcotest.fail "batch shape");
  (match Engine.explain engine "/r/a/b" with
   | Ok r ->
     checkb "uncached query explains as miss" true
       (r.Core.Explain.cache = Core.Explain.Miss);
     checki "no rounds yet" 0 r.Core.Explain.feedback_rounds
   | Error e -> Alcotest.failf "explain: %s" (Core.Error.to_string e));
  ignore (served_value engine "/r/a/b");
  (match Engine.feedback engine "/r/a[b]/c" ~actual:0 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
  ignore (served_value engine "/r/a/b");
  (match Engine.explain engine "/r/./a/b" with
   | Ok r ->
     checkb "cached (canonicalized) query explains as hit" true
       (r.Core.Explain.cache = Core.Explain.Hit);
     checki "rounds reported" 1 r.Core.Explain.feedback_rounds
   | Error e -> Alcotest.failf "explain: %s" (Core.Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Serve protocol *)

let handle engine line =
  match Engine.Protocol.handle_line engine line with
  | Some resp -> resp
  | None -> Alcotest.failf "no response to %S" line

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_protocol_ok () =
  let engine = engine_over correlated_doc in
  checkb "blank ignored" true (Engine.Protocol.handle_line engine "  " = None);
  let r = handle engine "ESTIMATE /r/a" in
  checks "estimate miss" "OK 8.00 miss" r;
  checks "estimate hit" "OK 8.00 hit" (handle engine "ESTIMATE /r/./a");
  checkb "feedback kept" true (starts_with "OK " (handle engine "FEEDBACK /r/a 8"));
  checkb "feedback refined" true
    (starts_with "OK " (handle engine "FEEDBACK /r/a[b]/c 0"));
  let stats = handle engine "STATS" in
  checkb "stats ok" true (starts_with "OK {" stats);
  let json =
    Obs.Json.of_string (String.sub stats 3 (String.length stats - 3))
  in
  checkb "stats json has cache" true (Obs.Json.member "cache" json <> None);
  checkb "stats json has feedback" true
    (Obs.Json.member "feedback" json <> None);
  let explain = handle engine "EXPLAIN /r/a" in
  checkb "explain ok" true (starts_with "OK {" explain);
  ignore
    (Obs.Json.of_string (String.sub explain 3 (String.length explain - 3)));
  (* Health-check verbs: synopsis-free, identical over every transport. *)
  checks "PING" "OK pong" (handle engine "PING");
  checks "VERSION"
    (Printf.sprintf "OK xseed %s protocol %d" Engine.Serve.version
       Engine.Serve.protocol_version)
    (handle engine "VERSION");
  checkb "PING takes no argument" true
    (starts_with "ERR malformed-query" (handle engine "PING now"));
  checkb "VERSION takes no argument" true
    (starts_with "ERR malformed-query" (handle engine "VERSION 2"))

let test_protocol_errors () =
  let engine = engine_over correlated_doc in
  List.iter
    (fun (line, expected_prefix) ->
      let r = handle engine line in
      checkb
        (Printf.sprintf "%S -> %s (got %s)" line expected_prefix r)
        true
        (starts_with expected_prefix r))
    [ ("ESTIMATE", "ERR malformed-query");
      ("ESTIMATE /r[", "ERR malformed-query");
      ("ESTIMATE r/a", "ERR malformed-query");
      ("FEEDBACK /r/a", "ERR malformed-query");
      ("FEEDBACK /r/a twelve", "ERR malformed-query");
      ("FEEDBACK /r/a -5", "ERR malformed-query");
      ("FEEDBACK 12", "ERR malformed-query");
      ("FEEDBACK /r[ 12", "ERR malformed-query");
      ("STATS now", "ERR malformed-query");
      ("EXPLAIN", "ERR malformed-query");
      ("BOGUS /r/a", "ERR malformed-query");
      ("estimate /r/a", "ERR malformed-query") ];
  (* Whatever arrives, the handler answers with one line and never raises. *)
  List.iter
    (fun line ->
      match Engine.Protocol.handle_line engine line with
      | None -> ()
      | Some r ->
        checkb
          (Printf.sprintf "one-line OK/ERR for %S" line)
          true
          ((starts_with "OK " r || starts_with "ERR " r)
          && not (String.contains r '\n')))
    [ "\x00\x01"; "ESTIMATE " ^ String.make 5000 '['; "FEEDBACK  1";
      "ESTIMATE //" ^ String.concat "//" (List.init 70 (fun _ -> "a")); "OK";
      "ERR"; "FEEDBACK /r/a 99999999999999999999999";
      (* Telemetry verbs with malformed arguments must stay one-line ERRs
         (their well-formed spellings are the protocol's only multi-line
         responses). *)
      "METRICS x"; "RECENT abc"; "RECENT -1"; "RECENT 1 2"; "DRIFT now";
      "metrics"; "RECENT 999999999999999999999999";
      (* Malformed BATCH counts fail with a single ERR line before any
         payload would be consumed. *)
      "BATCH"; "BATCH -1"; "BATCH abc"; "BATCH 1 2"; "BATCH 10001";
      "BATCH 999999999999999999999999"; "batch 2" ]

(* ------------------------------------------------------------------ *)
(* BATCH framing *)

(* Drive Serve.handle_request with a scripted payload source, counting how
   many payload lines were actually consumed. *)
let serve_handle server ?(payload = []) line =
  let remaining = ref payload in
  let reads = ref 0 in
  let read_line () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      incr reads;
      remaining := rest;
      Some l
  in
  ((match Engine.Serve.handle_request server ~read_line line with
    | Some r -> r
    | None -> Alcotest.failf "no response to %S" line),
   reads)

let test_protocol_batch () =
  let engine = engine_over correlated_doc in
  let server = Engine.server engine in
  (* Payload lines with and without the ESTIMATE prefix; the repeat is a
     cache hit. *)
  let r, reads =
    serve_handle server ~payload:[ "ESTIMATE /r/a"; "/r/./a"; "/r/a/b" ]
      "BATCH 3"
  in
  checks "batch golden" "OK 3\nOK 8.00 miss\nOK 8.00 hit\nOK 4.00 miss" r;
  checki "exactly 3 payload lines read" 3 !reads;
  let r, _ = serve_handle server "BATCH 0" in
  checks "empty batch" "OK 0" r;
  (* A bad query fails only its own slot. *)
  let r, _ = serve_handle server ~payload:[ "/r["; "/r/a" ] "BATCH 2" in
  (match String.split_on_char '\n' r with
   | [ head; slot0; slot1 ] ->
     checks "batch head" "OK 2" head;
     checkb "bad slot is a one-line ERR" true
       (starts_with "ERR malformed-query" slot0);
     checks "good slot still answered" "OK 8.00 hit" slot1
   | _ -> Alcotest.failf "unexpected batch shape %S" r);
  (* EOF inside the frame: missing slots answer with io-error lines. *)
  let r, _ = serve_handle server ~payload:[ "/r/a" ] "BATCH 3" in
  (match String.split_on_char '\n' r with
   | [ head; slot0; slot1; slot2 ] ->
     checks "frame head still OK n" "OK 3" head;
     checks "present slot answered" "OK 8.00 hit" slot0;
     checkb "missing slots are io errors" true
       (starts_with "ERR io-error" slot1 && starts_with "ERR io-error" slot2)
   | _ -> Alcotest.failf "unexpected EOF-batch shape %S" r);
  (* Malformed counts consume nothing. *)
  List.iter
    (fun line ->
      let r, reads = serve_handle server ~payload:[ "/r/a" ] line in
      checkb
        (Printf.sprintf "%S -> one-line ERR (got %S)" line r)
        true
        (starts_with "ERR malformed-query" r && not (String.contains r '\n'));
      checki (Printf.sprintf "%S consumed no payload" line) 0 !reads)
    [ "BATCH"; "BATCH -7"; "BATCH x"; "BATCH 10001";
      Printf.sprintf "BATCH %d" (Engine.Serve.max_batch + 1) ];
  (* Engine.Protocol.handle_line has no payload source at all: every slot
     reports end of input. *)
  checks "handle_line BATCH has no payload source" "OK 1\nERR io-error unexpected end of input inside BATCH"
    (handle engine "BATCH 1")

(* The hard cap is configurable per server: ~max_batch lowers it and the
   ERR diagnostic names the active limit. *)
let test_protocol_max_batch () =
  let engine = engine_over correlated_doc in
  let server = Engine.server engine in
  let handle_with ~max_batch ?(payload = []) line =
    let remaining = ref payload in
    let read_line () =
      match !remaining with
      | [] -> None
      | l :: rest ->
        remaining := rest;
        Some l
    in
    match Engine.Serve.handle_request server ~max_batch ~read_line line with
    | Some r -> r
    | None -> Alcotest.failf "no response to %S" line
  in
  (* At the limit: served. *)
  let r = handle_with ~max_batch:2 ~payload:[ "/r/a"; "/r/a/b" ] "BATCH 2" in
  checkb "BATCH at the limit is served" true (starts_with "OK 2" r);
  (* One over: refused with a one-line ERR naming the configured limit. *)
  let r = handle_with ~max_batch:2 ~payload:[ "/r/a" ] "BATCH 3" in
  checkb "BATCH over the limit refused" true
    (starts_with "ERR malformed-query" r && not (String.contains r '\n'));
  checkb "diagnostic names the limit" true
    (let has needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     has "limit=2" r && has "--max-batch" r);
  (* PROFILE shares the cap. *)
  let r = handle_with ~max_batch:2 "PROFILE 3" in
  checkb "PROFILE over the limit refused" true
    (starts_with "ERR malformed-query" r);
  (* The default is the documented constant. *)
  checki "default max_batch" 10_000 Engine.Serve.max_batch

(* A deadline on the single engine: a negative budget is already spent, so
   the first (uncached) estimate refuses deterministically. *)
let test_engine_deadline () =
  let kernel = Core.Builder.of_string correlated_doc in
  let estimator = Core.Estimator.create ~het:(Core.Het.create ()) kernel in
  Alcotest.check_raises "NaN deadline rejected"
    (Invalid_argument "Engine.create: deadline_s must not be NaN") (fun () ->
      ignore (Engine.create ~deadline_s:Float.nan estimator));
  let engine = Engine.create ~deadline_s:(-1.0) estimator in
  (match Engine.estimate engine "/r/a" with
   | Ok _ -> Alcotest.fail "expired request was served"
   | Error e ->
     checkb "ERR timeout" true (Core.Error.kind e = Core.Error.Timeout);
     checki "timeout exits 75" 75 (Core.Error.exit_code e));
  checki "timed_out counted" 1 (Engine.timed_out engine);
  (* Refusals leave a flight record and surface in STATS. *)
  checkb "timeout leaves a flight record" true
    (match Engine.recorder engine with
     | None -> false
     | Some rec_ ->
       List.exists
         (fun (r : Engine.Flight_recorder.record) ->
           r.Engine.Flight_recorder.cache = Engine.Flight_recorder.Timed_out)
         (Engine.Flight_recorder.recent rec_));
  match Engine.stats_json engine with
  | Obs.Json.Obj fields ->
    checkb "stats_json has timeouts" true
      (List.assoc "timeouts" fields = Obs.Json.Int 1)
  | _ -> Alcotest.fail "stats_json not an object"

(* ------------------------------------------------------------------ *)
(* PROFILE framing: BATCH-like payload, single breakdown line. *)

(* The reply shape is fixed; the timing digits are not. Split the line into
   its golden skeleton (labels and zero-valued stages) and check execute
   fields are parseable non-negative numbers. *)
let profile_fields line =
  String.split_on_char ' ' line
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | Some i ->
           Some
             ( String.sub tok 0 i,
               String.sub tok (i + 1) (String.length tok - i - 1) )
         | None -> None)

let test_protocol_profile () =
  let engine = engine_over correlated_doc in
  let server = Engine.server engine in
  let r, reads =
    serve_handle server ~payload:[ "ESTIMATE /r/a"; "/r/a/b"; "/r/a" ]
      "PROFILE 3"
  in
  checkb "single-line reply" true (not (String.contains r '\n'));
  checkb "headline counts queries" true (starts_with "OK 3 queue_wait_us " r);
  checki "exactly 3 payload lines read" 3 !reads;
  (* On a single engine queue-wait and reassemble are structurally zero;
     execute percentiles are positive and ordered. *)
  let fields = profile_fields r in
  checki "three stages x three percentiles plus refusals and steals" 12
    (List.length fields);
  List.iteri
    (fun i (k, v) ->
      let stage = i / 3 in
      let v = float_of_string v in
      checkb (Printf.sprintf "%s parses non-negative" k) true (v >= 0.0);
      if stage <> 1 then
        checkb (Printf.sprintf "%s zero on single engine" k) true (v = 0.0))
    fields;
  (match List.map (fun (_, v) -> float_of_string v) fields with
   | [ _; _; _; e50; e90; e99; _; _; _; _timeout; _shed; steals ] ->
     checkb "execute percentiles ordered" true (e50 <= e90 && e90 <= e99);
     checkb "execute measured" true (e99 > 0.0);
     checkb "single engine never steals" true (steals = 0.0)
   | _ -> Alcotest.fail "unexpected field count");
  (* A bad query is timed like any other — the reply is a timing summary. *)
  let r, _ = serve_handle server ~payload:[ "/r["; "/r/a" ] "PROFILE 2" in
  checkb "errors do not fail the run" true (starts_with "OK 2 " r);
  let r, _ = serve_handle server "PROFILE 0" in
  checks "empty profile is all zeros"
    "OK 0 queue_wait_us p50=0.0 p90=0.0 p99=0.0 execute_us p50=0.0 p90=0.0 \
     p99=0.0 reassemble_us p50=0.0 p90=0.0 p99=0.0 timeout=0 shed=0 steals=0"
    r;
  (* EOF inside the frame: one ERR line, not n. *)
  let r, _ = serve_handle server ~payload:[ "/r/a" ] "PROFILE 3" in
  checkb "truncated frame is one io-error" true
    (starts_with "ERR io-error" r && not (String.contains r '\n'));
  (* Malformed counts consume nothing. *)
  List.iter
    (fun line ->
      let r, reads = serve_handle server ~payload:[ "/r/a" ] line in
      checkb
        (Printf.sprintf "%S -> one-line ERR (got %S)" line r)
        true
        (starts_with "ERR malformed-query" r && not (String.contains r '\n'));
      checki (Printf.sprintf "%S consumed no payload" line) 0 !reads)
    [ "PROFILE"; "PROFILE -2"; "PROFILE x";
      Printf.sprintf "PROFILE %d" (Engine.Serve.max_batch + 1) ]

(* ------------------------------------------------------------------ *)
(* Engine tracing: with ?trace the request path records slices; without it
   the trace session never sees a single ring write. *)

let test_engine_tracing () =
  let kernel = Core.Builder.of_string correlated_doc in
  let mk trace =
    Engine.create ?trace
      (Core.Estimator.create ~het:(Core.Het.create ()) kernel)
  in
  let tr = Obs.Trace.create () in
  let traced = mk (Some tr) in
  ignore (Engine.estimate traced "/r/a" : _ result);
  ignore (Engine.estimate traced "/r/a" : _ result);
  ignore (Engine.feedback traced "/r/a" ~actual:8 : _ result);
  ignore (Engine.explain traced "/r/a/b" : _ result);
  let json = Obs.Trace.to_json tr in
  let names =
    match Obs.Json.member "traceEvents" json with
    | Some (Obs.Json.List evs) ->
      List.filter_map
        (fun e ->
          match (Obs.Json.member "ph" e, Obs.Json.member "name" e) with
          | Some (Obs.Json.String "X"), Some (Obs.Json.String n) -> Some n
          | _ -> None)
        evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  List.iter
    (fun expected ->
      checkb (Printf.sprintf "%s slice recorded" expected) true
        (List.mem expected names))
    [ "estimate"; "canonicalize"; "pipeline"; "feedback"; "explain" ];
  checkb "trace lints clean" true (Obs.Trace.lint json = []);
  (* An untraced engine sharing the session would be a bug; a fresh session
     next to an untraced engine stays completely empty. *)
  let tr2 = Obs.Trace.create () in
  let plain = mk None in
  ignore (Engine.estimate plain "/r/a" : _ result);
  (match Obs.Json.member "traceEvents" (Obs.Trace.to_json tr2) with
   | Some (Obs.Json.List evs) ->
     checki "no trace -> zero ring writes" 0
       (List.length
          (List.filter
             (fun e ->
               Obs.Json.member "ph" e <> Some (Obs.Json.String "M"))
             evs))
   | _ -> Alcotest.fail "traceEvents missing")

(* ------------------------------------------------------------------ *)
(* The pool behind the same protocol (--workers N). Exact estimate values
   are deterministic across workers; cache statuses are not (they depend on
   which shard served the query), so goldens here never depend on a repeat
   being a hit. *)

let test_protocol_pool () =
  let kernel = Core.Builder.of_string correlated_doc in
  let pool =
    Engine.Pool.create ~workers:4
      (Core.Estimator.create ~het:(Core.Het.create ()) kernel)
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let server = Engine.Pool.server pool in
  let r, _ = serve_handle server "ESTIMATE /r/a" in
  checks "first estimate misses everywhere" "OK 8.00 miss" r;
  let r, _ = serve_handle server "ESTIMATE /r/./a" in
  checkb "repeat value exact, status shard-dependent" true
    (starts_with "OK 8.00 " r);
  let r, _ = serve_handle server ~payload:[ "/r/a"; "/r/a/b"; "/r/a" ] "BATCH 3" in
  (match String.split_on_char '\n' r with
   | [ head; s0; s1; s2 ] ->
     checks "pool batch head" "OK 3" head;
     checkb "slot values deterministic" true
       (starts_with "OK 8.00 " s0 && starts_with "OK 4.00 " s1
       && starts_with "OK 8.00 " s2)
   | _ -> Alcotest.failf "unexpected pool batch shape %S" r);
  let r, _ = serve_handle server "FEEDBACK /r/a 8" in
  checkb "pool feedback answers" true (starts_with "OK " r);
  let stats, _ = serve_handle server "STATS" in
  checkb "pool stats ok" true (starts_with "OK {" stats);
  let json =
    Obs.Json.of_string (String.sub stats 3 (String.length stats - 3))
  in
  (match Obs.Json.member "pool" json with
   | Some (Obs.Json.Obj fields) ->
     checkb "stats.pool.workers" true
       (List.assoc_opt "workers" fields = Some (Obs.Json.Int 4))
   | _ -> Alcotest.fail "STATS lacks a pool object");
  (* METRICS: deterministic merge — quiet re-scrape is byte-identical and
     series appear in sorted runs. *)
  let m1, _ = serve_handle server "METRICS" in
  let m2, _ = serve_handle server "METRICS" in
  checks "quiet scrapes identical" m1 m2;
  checkb "pool gauge present" true
    (let needle = "xseed_engine_pool_workers 4" in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length m1 && (String.sub m1 i n = needle || go (i + 1))
     in
     go 0);
  (* RECENT merges the shard rings: everything served so far, newest
     submission first with strictly decreasing sequence numbers. *)
  let r, _ = serve_handle server "RECENT" in
  (match String.split_on_char '\n' r with
   | head :: rows ->
     checkb "recent head" true (starts_with "OK " head);
     checki "one row per record" (List.length rows)
       (int_of_string (String.sub head 3 (String.length head - 3)));
     let seqs =
       List.map
         (fun row ->
           match Obs.Json.member "seq" (Obs.Json.of_string row) with
           | Some (Obs.Json.Int s) -> s
           | _ -> Alcotest.failf "row lacks seq: %S" row)
         rows
     in
     checkb "strictly decreasing seq" true
       (List.for_all2 ( > ) (List.filteri (fun i _ -> i < List.length seqs - 1) seqs)
          (List.tl seqs))
   | [] -> Alcotest.fail "empty RECENT response");
  let r, _ = serve_handle server "RECENT 2" in
  checkb "recent clipped" true (starts_with "OK 2\n" r);
  let r, _ = serve_handle server "DRIFT" in
  checkb "pool drift json" true (starts_with "OK {" r);
  let r, _ = serve_handle server "EXPLAIN /r/a" in
  checkb "pool explain json" true (starts_with "OK {" r)

(* ------------------------------------------------------------------ *)
(* Serving telemetry: flight recorder, drift monitor, scrape commands *)

let test_flight_recorder_ring () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Flight_recorder.create: capacity 0 < 1") (fun () ->
      ignore (Engine.Flight_recorder.create ~capacity:0 ()));
  let fr = Engine.Flight_recorder.create ~capacity:3 () in
  checki "empty" 0 (List.length (Engine.Flight_recorder.recent fr));
  for i = 0 to 4 do
    ignore
      (Engine.Flight_recorder.record fr
         ~query:(Printf.sprintf "/q%d" i)
         ~hash:i ~cache:Engine.Flight_recorder.Miss
         ~estimate:(float_of_int i) ~canonicalize_s:1e-6 ~ept_s:2e-6
         ~match_s:3e-6 ~ept_nodes:10 ~frontier_peak:2 ~degenerate_clamps:0
         ~het_hits:1 ~feedback_round:0
        : Engine.Flight_recorder.record)
  done;
  checki "lifetime total" 5 (Engine.Flight_recorder.total fr);
  let recent = Engine.Flight_recorder.recent fr in
  checki "ring keeps capacity" 3 (List.length recent);
  Alcotest.(check (list string))
    "newest first, oldest overwritten" [ "/q4"; "/q3"; "/q2" ]
    (List.map (fun r -> r.Engine.Flight_recorder.query) recent);
  checki "recent ~n clips" 2
    (List.length (Engine.Flight_recorder.recent ~n:2 fr));
  checki "recent over-asks are clipped" 3
    (List.length (Engine.Flight_recorder.recent ~n:50 fr));
  let j = Engine.Flight_recorder.to_json (List.hd recent) in
  checkb "record json re-parses" true
    (Obs.Json.equal j (Obs.Json.of_string (Obs.Json.to_string j)));
  checkb "stage times serialized" true
    ((match Obs.Json.member "wall_us" j with
      | Some (Obs.Json.Obj _) -> true
      | _ -> false))

let test_drift_monitor () =
  let d = Engine.Drift.create ~slots:2 ~per_slot:4 ~p90_threshold:4.0 () in
  checkb "qerror symmetric" true
    (Engine.Drift.qerror ~estimate:3.0 ~actual:15
    = Engine.Drift.qerror ~estimate:15.0 ~actual:3);
  checkb "empty p90 nan" true (Float.is_nan (Engine.Drift.p90 d));
  (* Accurate feedback: no alert. *)
  for _ = 1 to 3 do
    ignore (Engine.Drift.observe d ~estimate:10.0 ~actual:10 : float)
  done;
  checki "no alert on accurate window" 0 (Engine.Drift.alerts d);
  checkb "not alerting" false (Engine.Drift.alerting d);
  (* A burst of bad estimates drives window p90 over 4: exactly one edge. *)
  for _ = 1 to 6 do
    ignore (Engine.Drift.observe d ~estimate:1.0 ~actual:100 : float)
  done;
  checki "edge-triggered once" 1 (Engine.Drift.alerts d);
  checkb "alerting latched" true (Engine.Drift.alerting d);
  (* Window slides past the bad stretch: re-arms, then a second edge. *)
  for _ = 1 to 8 do
    ignore (Engine.Drift.observe d ~estimate:10.0 ~actual:10 : float)
  done;
  checkb "re-armed after recovery" false (Engine.Drift.alerting d);
  for _ = 1 to 8 do
    ignore (Engine.Drift.observe d ~estimate:1.0 ~actual:100 : float)
  done;
  checki "second edge counted" 2 (Engine.Drift.alerts d);
  (* Estimate-volume / hit-rate ride the same window. *)
  Engine.Drift.note_estimate d ~cache_hit:true;
  Engine.Drift.note_estimate d ~cache_hit:false;
  checki "window estimates" 2 (Engine.Drift.window_estimates d);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Engine.Drift.hit_rate d);
  let j = Engine.Drift.to_json d in
  checkb "drift json has p90" true (Obs.Json.member "qerror_p90" j <> None)

let test_engine_flight_records () =
  let engine = engine_over correlated_doc in
  ignore (served_value engine "/r/a");
  ignore (served_value engine "/r/./a");
  (match Engine.explain engine "/r/a/b" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "explain: %s" (Core.Error.to_string e));
  let fr =
    match Engine.recorder engine with
    | Some fr -> fr
    | None -> Alcotest.fail "telemetry on by default"
  in
  (match Engine.Flight_recorder.recent fr with
   | [ explained; hit; miss ] ->
     checks "explain recorded" "/r/a/b" explained.Engine.Flight_recorder.query;
     checkb "explain has stage times" true
       (explained.Engine.Flight_recorder.ept_s > 0.0
       && explained.Engine.Flight_recorder.match_s > 0.0);
     checkb "hit recorded" true
       (hit.Engine.Flight_recorder.cache = Engine.Flight_recorder.Hit);
     checki "hit visits no EPT nodes" 0 hit.Engine.Flight_recorder.ept_nodes;
     checkb "miss recorded" true
       (miss.Engine.Flight_recorder.cache = Engine.Flight_recorder.Miss);
     checkb "miss has nonzero stage timings" true
       (miss.Engine.Flight_recorder.total_s > 0.0);
     checkb "miss visited the EPT" true
       (miss.Engine.Flight_recorder.ept_nodes > 0
       && miss.Engine.Flight_recorder.frontier_peak > 0)
   | rs -> Alcotest.failf "expected 3 flight records, got %d" (List.length rs));
  (* The on_record callback sees records as they are written. *)
  let seen = ref [] in
  Engine.set_on_record engine (fun r ->
      seen := r.Engine.Flight_recorder.query :: !seen);
  ignore (served_value engine "/r/a/c");
  Alcotest.(check (list string)) "callback streamed" [ "/r/a/c" ] !seen

let test_engine_telemetry_off () =
  let kernel = Core.Builder.of_string correlated_doc in
  let estimator = Core.Estimator.create ~het:(Core.Het.create ()) kernel in
  let engine = Engine.create ~telemetry:false estimator in
  ignore (served_value engine "/r/a");
  checkb "no recorder" true (Engine.recorder engine = None);
  checkb "no drift monitor" true (Engine.drift engine = None);
  checkb "RECENT refused in one line" true
    (starts_with "ERR " (handle engine "RECENT")
    && not (String.contains (handle engine "RECENT") '\n'));
  checkb "DRIFT refused" true (starts_with "ERR " (handle engine "DRIFT"));
  (* METRICS still serves engine totals from the private registry. *)
  checkb "METRICS still works" true
    (starts_with "# HELP" (handle engine "METRICS"))

(* Compact structural lint for Prometheus text format 0.0.4 (mirrors the
   fuller one in test_obs.ml; test executables do not share modules). *)
let prometheus_lint text =
  let valid_name n =
    n <> ""
    && (match n.[0] with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
        | _ -> false)
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         n
  in
  let typed = Hashtbl.create 16 and seen = Hashtbl.create 64 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if line.[0] = '#' then (
        match String.split_on_char ' ' line with
        | "#" :: kw :: name :: _ when kw = "HELP" || kw = "TYPE" ->
          checkb (Printf.sprintf "comment name ok: %s" line) true
            (valid_name name);
          if kw = "TYPE" then Hashtbl.replace typed name ()
        | _ -> Alcotest.failf "malformed comment %S" line)
      else
        let sample =
          match String.index_opt line ' ' with
          | Some i -> String.sub line 0 i
          | None -> Alcotest.failf "sample without value %S" line
        in
        let name =
          match String.index_opt sample '{' with
          | Some i -> String.sub sample 0 i
          | None -> sample
        in
        checkb (Printf.sprintf "sample name ok: %s" name) true
          (valid_name name);
        checkb (Printf.sprintf "no duplicate sample: %s" sample) false
          (Hashtbl.mem seen sample);
        Hashtbl.add seen sample ();
        let strip sfx n =
          if Filename.check_suffix n sfx then Filename.chop_suffix n sfx else n
        in
        let family = strip "_bucket" (strip "_sum" (strip "_count" name)) in
        checkb (Printf.sprintf "typed family: %s" name) true
          (Hashtbl.mem typed name || Hashtbl.mem typed family))
    (String.split_on_char '\n' text)

let test_protocol_metrics () =
  let engine = engine_over correlated_doc in
  ignore (handle engine "ESTIMATE /r/a");
  ignore (handle engine "ESTIMATE /r/a");
  ignore (handle engine "FEEDBACK /r/a[b]/c 0");
  let text = handle engine "METRICS" in
  checkb "prometheus payload, no OK header" true (starts_with "# HELP" text);
  prometheus_lint text;
  List.iter
    (fun needle ->
      checkb
        (Printf.sprintf "metrics mention %s" needle)
        true
        (let nl = String.length needle and hl = String.length text in
         let rec go i =
           i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
         in
         go 0))
    [ "xseed_engine_cache_hits"; "xseed_engine_cache_misses";
      "xseed_engine_feedback_seen"; "xseed_engine_drift_qerror_p90";
      "xseed_engine_flight_records"; "# TYPE xseed_engine_cache_size gauge" ];
  (* Scrapes are idempotent: totals must not inflate on re-publish. *)
  checks "second scrape identical" text (handle engine "METRICS")

let test_protocol_recent_and_drift () =
  let engine = engine_over correlated_doc in
  ignore (handle engine "ESTIMATE /r/a");
  ignore (handle engine "ESTIMATE /r/a");
  ignore (handle engine "FEEDBACK /r/a 8");
  (match String.split_on_char '\n' (handle engine "RECENT 2") with
   | header :: lines ->
     checks "RECENT header counts records" "OK 2" header;
     checki "exactly that many lines" 2 (List.length lines);
     List.iter
       (fun l ->
         match Obs.Json.member "query" (Obs.Json.of_string l) with
         | Some (Obs.Json.String "/r/a") -> ()
         | _ -> Alcotest.failf "unexpected flight line %S" l)
       lines
   | [] -> Alcotest.fail "empty RECENT response");
  (match String.split_on_char '\n' (handle engine "RECENT 0") with
   | [ header ] -> checks "RECENT 0" "OK 0" header
   | _ -> Alcotest.fail "RECENT 0 must be a bare header");
  let drift = handle engine "DRIFT" in
  checkb "DRIFT ok json" true (starts_with "OK {" drift);
  let j = Obs.Json.of_string (String.sub drift 3 (String.length drift - 3)) in
  checkb "one feedback observation in window" true
    (Obs.Json.member "window_observations" j = Some (Obs.Json.Int 1));
  checkb "estimate volume tracked" true
    (Obs.Json.member "window_estimates" j = Some (Obs.Json.Int 3));
  checkb "p90 present" true (Obs.Json.member "qerror_p90" j <> None)

(* ------------------------------------------------------------------ *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_canonical_idempotent; prop_canonical_round_trip;
      prop_canonical_predicate_order ]

let () =
  Alcotest.run "engine"
    [ ( "canonical",
        Alcotest.test_case "equivalent spellings" `Quick
          test_canonical_equivalent
        :: Alcotest.test_case "distinct queries" `Quick test_canonical_distinct
        :: props );
      ( "lru",
        [ Alcotest.test_case "capacity + eviction order" `Quick
            test_lru_capacity_and_eviction_order;
          Alcotest.test_case "counters balance" `Quick
            test_lru_counters_balance;
          Alcotest.test_case "refresh + invalidate" `Quick
            test_lru_refresh_and_invalidate ] );
      ( "het",
        [ Alcotest.test_case "forced collision" `Quick
            test_het_forced_collision;
          Alcotest.test_case "legacy pathless entries" `Quick
            test_het_legacy_pathless ] );
      ( "engine",
        [ Alcotest.test_case "cache hit/miss" `Quick test_engine_cache_hit_miss;
          Alcotest.test_case "feedback refines" `Quick
            test_engine_feedback_refines;
          Alcotest.test_case "simple-path feedback" `Quick
            test_engine_feedback_simple_path;
          Alcotest.test_case "batch + explain" `Quick
            test_engine_batch_and_explain ] );
      ( "protocol",
        [ Alcotest.test_case "well-formed requests" `Quick test_protocol_ok;
          Alcotest.test_case "malformed requests" `Quick test_protocol_errors;
          Alcotest.test_case "BATCH framing" `Quick test_protocol_batch;
          Alcotest.test_case "configurable max_batch" `Quick
            test_protocol_max_batch;
          Alcotest.test_case "engine deadline" `Quick test_engine_deadline;
          Alcotest.test_case "PROFILE framing" `Quick test_protocol_profile;
          Alcotest.test_case "engine tracing" `Quick test_engine_tracing;
          Alcotest.test_case "pool server (--workers)" `Quick
            test_protocol_pool ] );
      ( "telemetry",
        [ Alcotest.test_case "flight recorder ring" `Quick
            test_flight_recorder_ring;
          Alcotest.test_case "drift monitor" `Quick test_drift_monitor;
          Alcotest.test_case "engine flight records" `Quick
            test_engine_flight_records;
          Alcotest.test_case "telemetry off" `Quick test_engine_telemetry_off;
          Alcotest.test_case "METRICS scrape" `Quick test_protocol_metrics;
          Alcotest.test_case "RECENT + DRIFT" `Quick
            test_protocol_recent_and_drift ] )
    ]
