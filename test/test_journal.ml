(* The crash-safe feedback journal: frame/scan round-trips, the
   truncation rule under torn and corrupt tails (including an exhaustive
   cut-point and byte-flip sweep over a real image), writer durability
   across reopen, recover's truncate-on-disk behaviour, the wrap_server
   interposition, and the headline crash-recovery proof — a journal with
   a torn tail replayed into a fresh engine converges to the same learned
   state (bit-identical estimates, hence the same q-error median) as an
   uninterrupted run. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let entries =
  [ { Engine.Journal.query = "/site/regions"; actual = 6 };
    { Engine.Journal.query = "//item[quantity]"; actual = 217 };
    { Engine.Journal.query = "/site/people/person"; actual = 25_500 } ]

let with_temp f =
  let path = Filename.temp_file "xseed_journal" ".wal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let scan_ok image =
  match Engine.Journal.scan_string image with
  | Ok s -> s
  | Error e -> Alcotest.failf "scan_string: %s" (Core.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Format round-trips *)

let test_roundtrip () =
  let image = Engine.Journal.to_string entries in
  checkb "starts with magic" true
    (String.length image > 8 && String.sub image 0 8 = Engine.Journal.magic);
  let s = scan_ok image in
  checkb "entries round-trip" true (s.Engine.Journal.entries = entries);
  checki "frames" 3 s.Engine.Journal.frames;
  checki "valid_bytes covers the image" (String.length image)
    s.Engine.Journal.valid_bytes;
  checkb "clean tail" true (s.Engine.Journal.tail = Engine.Journal.Clean);
  (* to_string is magic + concatenated frames. *)
  checks "image is magic + frames"
    (Engine.Journal.magic
    ^ String.concat "" (List.map Engine.Journal.frame entries))
    image

let test_empty_and_bad_magic () =
  let s = scan_ok "" in
  checki "empty journal has no frames" 0 s.Engine.Journal.frames;
  checkb "empty journal is clean" true
    (s.Engine.Journal.tail = Engine.Journal.Clean);
  let s = scan_ok Engine.Journal.magic in
  checki "header-only has no frames" 0 s.Engine.Journal.frames;
  checkb "header-only is clean" true
    (s.Engine.Journal.tail = Engine.Journal.Clean);
  (match Engine.Journal.scan_string "GARBAGE!" with
   | Ok _ -> Alcotest.fail "bad magic accepted"
   | Error e ->
     checkb "bad magic is a data error" true
       (Core.Error.kind e = Core.Error.Corrupt_synopsis));
  match Engine.Journal.scan_string "XSE" with
  | Ok _ -> Alcotest.fail "short magic accepted"
  | Error _ -> ()

(* Every possible crash point mid-append leaves a torn tail that scans to
   the longest valid frame prefix; truncating there rescans clean. *)
let test_torn_tail_sweep () =
  let image = Engine.Journal.to_string entries in
  let magic_len = String.length Engine.Journal.magic in
  let boundaries =
    (* byte offset where each frame starts, plus end-of-image *)
    List.rev
      (List.fold_left
         (fun acc e ->
           match acc with
           | off :: _ ->
             (off + String.length (Engine.Journal.frame e)) :: acc
           | [] -> assert false)
         [ magic_len ] entries)
  in
  for cut = magic_len to String.length image - 1 do
    let s = scan_ok (String.sub image 0 cut) in
    if List.mem cut boundaries then
      checkb "cut on a frame boundary is clean" true
        (s.Engine.Journal.tail = Engine.Journal.Clean)
    else begin
      (match s.Engine.Journal.tail with
       | Engine.Journal.Torn off ->
         checki "torn offset is the last boundary before the cut"
           (List.fold_left
              (fun best b -> if b <= cut then max best b else best)
              magic_len boundaries)
           off
       | _ -> Alcotest.failf "cut at %d not torn" cut);
      (* valid prefix decodes a prefix of the entries... *)
      checkb "decoded entries are a prefix" true
        (s.Engine.Journal.entries
        = List.filteri
            (fun i _ -> i < s.Engine.Journal.frames)
            entries);
      (* ...and truncating at valid_bytes rescans clean. *)
      let s' =
        scan_ok (String.sub image 0 s.Engine.Journal.valid_bytes)
      in
      checkb "truncated image is clean" true
        (s'.Engine.Journal.tail = Engine.Journal.Clean);
      checki "truncation loses nothing valid" s.Engine.Journal.frames
        s'.Engine.Journal.frames
    end
  done

(* Flipping any single byte after the magic never makes scan_string raise
   or read past the mutation: the scan stops at or before the damaged
   frame, and truncating to valid_bytes always rescans clean. *)
let test_byte_flip_sweep () =
  let image = Engine.Journal.to_string entries in
  for i = String.length Engine.Journal.magic to String.length image - 1 do
    let mutated = Bytes.of_string image in
    Bytes.set mutated i (Char.chr (Char.code (Bytes.get mutated i) lxor 0xFF));
    let s = scan_ok (Bytes.to_string mutated) in
    checkb "flip never yields a clean full image" true
      (s.Engine.Journal.frames < 3
      || s.Engine.Journal.tail <> Engine.Journal.Clean
      || s.Engine.Journal.entries <> entries);
    let s' =
      scan_ok (String.sub (Bytes.to_string mutated) 0 s.Engine.Journal.valid_bytes)
    in
    checkb "valid prefix is self-consistent" true
      (s'.Engine.Journal.tail = Engine.Journal.Clean
      && s'.Engine.Journal.frames = s.Engine.Journal.frames)
  done

let test_mid_file_corruption () =
  let image = Engine.Journal.to_string entries in
  (* Damage the payload of the second frame: fully present, CRC fails. *)
  let f1 = String.length (Engine.Journal.frame (List.nth entries 0)) in
  let second_payload = String.length Engine.Journal.magic + f1 + 8 in
  let mutated = Bytes.of_string image in
  Bytes.set mutated second_payload 'X';
  let s = scan_ok (Bytes.to_string mutated) in
  (match s.Engine.Journal.tail with
   | Engine.Journal.Corrupt off ->
     checki "corrupt frame located" (String.length Engine.Journal.magic + f1) off
   | _ -> Alcotest.fail "mid-file corruption not flagged Corrupt");
  checki "only the first frame survives" 1 s.Engine.Journal.frames;
  checki "valid_bytes stops before the bad frame"
    (String.length Engine.Journal.magic + f1)
    s.Engine.Journal.valid_bytes

(* ------------------------------------------------------------------ *)
(* Writer *)

let test_writer_roundtrip () =
  with_temp @@ fun path ->
  (match Engine.Journal.open_append ~fsync:`Always path with
   | Error e -> Alcotest.failf "open_append: %s" (Core.Error.to_string e)
   | Ok w ->
     List.iter
       (fun e ->
         match Engine.Journal.append w e with
         | Ok () -> ()
         | Error err -> Alcotest.failf "append: %s" (Core.Error.to_string err))
       entries;
     checki "appended counter" 3 (Engine.Journal.appended w);
     Engine.Journal.close w;
     Engine.Journal.close w (* idempotent *));
  (match Engine.Journal.scan_file path with
   | Ok s ->
     checkb "file round-trips" true (s.Engine.Journal.entries = entries);
     checkb "file is clean" true (s.Engine.Journal.tail = Engine.Journal.Clean)
   | Error e -> Alcotest.failf "scan_file: %s" (Core.Error.to_string e));
  (* Reopen and extend: magic is not rewritten, history is kept. *)
  (match Engine.Journal.open_append ~fsync:`Never path with
   | Error e -> Alcotest.failf "reopen: %s" (Core.Error.to_string e)
   | Ok w ->
     (match Engine.Journal.append w { Engine.Journal.query = "//x"; actual = 1 } with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append: %s" (Core.Error.to_string e));
     checki "appended excludes history" 1 (Engine.Journal.appended w);
     Engine.Journal.close w);
  match Engine.Journal.scan_file path with
  | Ok s -> checki "four frames after reopen" 4 s.Engine.Journal.frames
  | Error e -> Alcotest.failf "rescan: %s" (Core.Error.to_string e)

let test_open_append_refuses_bad_magic () =
  with_temp @@ fun path ->
  write_file path "not a journal at all";
  match Engine.Journal.open_append path with
  | Ok _ -> Alcotest.fail "open_append accepted a non-journal"
  | Error e ->
    checkb "refused as data error" true
      (Core.Error.kind e = Core.Error.Corrupt_synopsis)

let test_recover () =
  (* Missing file: nothing to recover, serving may start cold. *)
  let missing = Filename.temp_file "xseed_journal" ".wal" in
  Sys.remove missing;
  (match Engine.Journal.recover missing with
   | Ok s ->
     checki "missing file is empty" 0 s.Engine.Journal.frames;
     checkb "missing file not created" false (Sys.file_exists missing)
   | Error e -> Alcotest.failf "recover missing: %s" (Core.Error.to_string e));
  (* Torn tail: recover truncates the file on disk. *)
  with_temp @@ fun path ->
  let image = Engine.Journal.to_string entries in
  let torn = image ^ String.sub (Engine.Journal.frame (List.hd entries)) 0 5 in
  write_file path torn;
  (match Engine.Journal.recover path with
   | Ok s ->
     checki "all complete frames recovered" 3 s.Engine.Journal.frames;
     (match s.Engine.Journal.tail with
      | Engine.Journal.Torn off -> checki "torn at image end" (String.length image) off
      | _ -> Alcotest.fail "expected torn tail")
   | Error e -> Alcotest.failf "recover torn: %s" (Core.Error.to_string e));
  (match Engine.Journal.scan_file path with
   | Ok s ->
     checkb "file truncated clean" true
       (s.Engine.Journal.tail = Engine.Journal.Clean);
     checki "no frames lost" 3 s.Engine.Journal.frames
   | Error e -> Alcotest.failf "rescan: %s" (Core.Error.to_string e));
  (* And appends now extend a clean journal. *)
  match Engine.Journal.open_append path with
  | Error e -> Alcotest.failf "open after recover: %s" (Core.Error.to_string e)
  | Ok w ->
    (match Engine.Journal.append w { Engine.Journal.query = "//y"; actual = 2 } with
     | Ok () -> ()
     | Error e -> Alcotest.failf "append: %s" (Core.Error.to_string e));
    Engine.Journal.close w;
    (match Engine.Journal.scan_file path with
     | Ok s ->
       checki "extended cleanly" 4 s.Engine.Journal.frames;
       checkb "still clean" true (s.Engine.Journal.tail = Engine.Journal.Clean)
     | Error e -> Alcotest.failf "final scan: %s" (Core.Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Serving integration *)

let build_engine () =
  let doc = Datagen.Paper_example.document in
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  (path_tree, Engine.create (Core.Estimator.create ~het kernel))

let test_wrap_server () =
  with_temp @@ fun path ->
  let _, engine = build_engine () in
  match Engine.Journal.open_append path with
  | Error e -> Alcotest.failf "open_append: %s" (Core.Error.to_string e)
  | Ok w ->
    let server = Engine.Journal.wrap_server w (Engine.server engine) in
    (* Estimates pass through untouched and unjournalled. *)
    (match server.Engine.Serve.estimate "/site/regions" with
     | Ok _ -> ()
     | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e));
    checki "estimate not journalled" 0 (Engine.Journal.appended w);
    (* A successful feedback is appended before the reply. *)
    (match server.Engine.Serve.feedback "/site/regions" ~actual:6 with
     | Ok _ -> ()
     | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
    checki "feedback journalled" 1 (Engine.Journal.appended w);
    (* A failing feedback (syntax error) is not journalled. *)
    (match server.Engine.Serve.feedback "///" ~actual:1 with
     | Ok _ -> Alcotest.fail "bad query accepted"
     | Error _ -> ());
    checki "failed feedback not journalled" 1 (Engine.Journal.appended w);
    Engine.Journal.close w;
    (match Engine.Journal.scan_file path with
     | Ok s ->
       checkb "journal holds the observation" true
         (s.Engine.Journal.entries
         = [ { Engine.Journal.query = "/site/regions"; actual = 6 } ])
     | Error e -> Alcotest.failf "scan: %s" (Core.Error.to_string e))

(* The crash-recovery proof. An uninterrupted engine A applies feedbacks
   f1..fn. Engine B journals f1..fk and then "dies" (we fabricate its
   journal: k complete frames plus a torn half-frame, the kill -9
   residue). A fresh engine C recovers the journal, replays it, and
   applies the remaining feedbacks. A and C must then agree bit-for-bit
   on every probe estimate — hence on any q-error median computed from
   them. *)
let test_crash_recovery_equivalence () =
  with_temp @@ fun path ->
  let path_tree, engine_a = build_engine () in
  let queries =
    List.map Xpath.Ast.to_string
      (Datagen.Workload.all_simple_paths path_tree)
  in
  checkb "enough workload queries" true (List.length queries >= 6);
  let feedbacks =
    List.filteri (fun i _ -> i < 6) queries
    |> List.mapi (fun i q -> (q, ((i + 2) * 97) mod 1000 + 1))
  in
  let apply engine (q, actual) =
    match Engine.feedback engine q ~actual with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "feedback %s: %s" q (Core.Error.to_string e)
  in
  (* A: the uninterrupted run. *)
  List.iter (apply engine_a) feedbacks;
  (* B's journal: the first 3 observations plus a torn tail. *)
  let k = 3 in
  let journalled =
    List.filteri (fun i _ -> i < k) feedbacks
    |> List.map (fun (query, actual) -> { Engine.Journal.query; actual })
  in
  let torn_tail =
    String.sub
      (Engine.Journal.frame { Engine.Journal.query = "//lost"; actual = 9 })
      0 7
  in
  write_file path (Engine.Journal.to_string journalled ^ torn_tail);
  (* C: recover, replay, continue. *)
  let _, engine_c = build_engine () in
  (match Engine.Journal.recover path with
   | Error e -> Alcotest.failf "recover: %s" (Core.Error.to_string e)
   | Ok s ->
     checki "replayable frames" k s.Engine.Journal.frames;
     checkb "tail was torn" true
       (match s.Engine.Journal.tail with
        | Engine.Journal.Torn _ -> true
        | _ -> false);
     List.iter
       (fun { Engine.Journal.query; actual } ->
         apply engine_c (query, actual))
       s.Engine.Journal.entries);
  List.iteri
    (fun i fb -> if i >= k then apply engine_c fb)
    feedbacks;
  (* Same learned state: identical feedback totals and bit-identical
     estimates over the whole workload. *)
  checki "feedback_seen matches" (Engine.feedback_seen engine_a)
    (Engine.feedback_seen engine_c);
  checki "feedback_rounds matches" (Engine.feedback_rounds engine_a)
    (Engine.feedback_rounds engine_c);
  List.iter
    (fun q ->
      match (Engine.estimate engine_a q, Engine.estimate engine_c q) with
      | Ok a, Ok c ->
        checkb
          (Printf.sprintf "estimate for %s identical after recovery" q)
          true
          (Float.equal a.Engine.outcome.Core.Estimator.value
             c.Engine.outcome.Core.Estimator.value)
      | Error e, _ | _, Error e ->
        Alcotest.failf "estimate %s: %s" q (Core.Error.to_string e))
    queries;
  (* The q-error medians against the observed actuals are therefore equal
     — state it directly for the record. *)
  let median engine =
    let qerrs =
      List.map
        (fun (q, actual) ->
          match Engine.estimate engine q with
          | Ok s ->
            let est = Float.max s.Engine.outcome.Core.Estimator.value 1. in
            let act = float_of_int actual in
            Float.max (est /. act) (act /. est)
          | Error e -> Alcotest.failf "median: %s" (Core.Error.to_string e))
        feedbacks
      |> List.sort compare
    in
    List.nth qerrs (List.length qerrs / 2)
  in
  checkb "post-recovery q-error median equals uninterrupted run" true
    (Float.equal (median engine_a) (median engine_c))

let () =
  Alcotest.run "journal"
    [ ( "format",
        [ Alcotest.test_case "frame round-trip" `Quick test_roundtrip;
          Alcotest.test_case "empty and bad magic" `Quick
            test_empty_and_bad_magic;
          Alcotest.test_case "torn-tail sweep" `Quick test_torn_tail_sweep;
          Alcotest.test_case "byte-flip sweep" `Quick test_byte_flip_sweep;
          Alcotest.test_case "mid-file corruption" `Quick
            test_mid_file_corruption ] );
      ( "writer",
        [ Alcotest.test_case "append and reopen" `Quick test_writer_roundtrip;
          Alcotest.test_case "refuses bad magic" `Quick
            test_open_append_refuses_bad_magic;
          Alcotest.test_case "recover truncates" `Quick test_recover ] );
      ( "serving",
        [ Alcotest.test_case "wrap_server journals feedback" `Quick
            test_wrap_server;
          Alcotest.test_case "crash recovery equivalence" `Quick
            test_crash_recovery_equivalence ] ) ]
