(* Shadow accuracy auditor: the deterministic sampler, per-step error
   attribution, the engine/pool AUDIT surface, audit-driven feedback, and
   served-vs-offline float agreement (the invariant the audit smoke's
   window diff relies on). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let doc = Datagen.Xmark.generate ~seed:77 ~items:30 ()
let storage () = Nok.Storage.of_string ~with_values:true doc

let synopsis () =
  Core.Synopsis.build ~with_het:true ~with_values:false ~bsel_threshold:0.1
    ~card_threshold:0.5 doc

let estimator_of syn =
  Core.Estimator.create
    ~card_threshold:(Core.Synopsis.card_threshold syn)
    ?het:(Core.Synopsis.het syn)
    ?values:(Core.Synopsis.values syn)
    (Core.Synopsis.kernel syn)

(* A fresh estimator per call: the Loaded source hands the auditor private
   property, so tests must never share one with the serving side. *)
let fresh_estimator () = estimator_of (synopsis ())

let canon q =
  let ast = Engine.Canonical.canonicalize (Xpath.Parser.parse q) in
  (ast, Engine.Canonical.of_ast ast)

let jfield name = function
  | Obs.Json.Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> Alcotest.failf "no %S field" name)
  | _ -> Alcotest.failf "expected an object around %S" name

let jint name j =
  match jfield name j with
  | Obs.Json.Int i -> i
  | _ -> Alcotest.failf "field %S is not an int" name

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler_exact_rates () =
  let seed = 0x5eed in
  for hash = -50 to 50 do
    checkb "rate 0 selects nothing" false
      (Engine.Auditor.in_sample ~seed ~rate:0.0 (hash * 7919));
    checkb "rate 1 selects everything" true
      (Engine.Auditor.in_sample ~seed ~rate:1.0 (hash * 7919))
  done

let test_sampler_rate_monotone_fraction () =
  (* A coarse sanity check that intermediate rates select roughly the
     requested fraction of hash space (the sampler is a fixed hash
     partition, not a per-query coin flip). *)
  let n = 20_000 in
  let hits rate =
    let c = ref 0 in
    for h = 1 to n do
      if Engine.Auditor.in_sample ~seed:1 ~rate h then incr c
    done;
    float_of_int !c /. float_of_int n
  in
  let f25 = hits 0.25 and f75 = hits 0.75 in
  checkb "~25% at rate 0.25" true (f25 > 0.2 && f25 < 0.3);
  checkb "~75% at rate 0.75" true (f75 > 0.7 && f75 < 0.8)

let qcheck_sampler_permutation_invariant =
  QCheck.Test.make ~count:200
    ~name:"sampler: same subset regardless of arrival order"
    QCheck.(triple small_nat (int_bound 100) (small_list int))
    (fun (seed, pct, hashes) ->
      let rate = float_of_int pct /. 100.0 in
      let subset l =
        List.sort_uniq compare
          (List.filter (Engine.Auditor.in_sample ~seed ~rate) l)
      in
      let forward = subset hashes
      and reversed = subset (List.rev hashes)
      and doubled = subset (hashes @ hashes) in
      forward = reversed && forward = doubled
      && (pct <> 0 || forward = [])
      && (pct <> 100 || forward = List.sort_uniq compare hashes))

(* ------------------------------------------------------------------ *)
(* Attribution arithmetic *)

let test_audit_one_attribution () =
  let estimator = fresh_estimator () in
  let ept = lazy (Core.Estimator.ept estimator) in
  let storage = storage () in
  let ast, _key = canon "//open_auction[bidder]/price" in
  let estimate =
    match Core.Estimator.estimate_result_on estimator ept ast with
    | Ok o -> o.Core.Estimator.value
    | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e)
  in
  match Engine.Auditor.audit_one ~estimator ~ept ~storage ~estimate ast with
  | Error msg -> Alcotest.failf "audit_one: %s" msg
  | Ok a ->
    checki "one step report per canonical step" (List.length ast)
      (List.length a.Engine.Auditor.steps);
    let last = List.nth a.Engine.Auditor.steps (List.length ast - 1) in
    checki "full query's actual is the last prefix's"
      last.Engine.Auditor.actual a.Engine.Auditor.actual;
    checkb "headline q-error is Drift.qerror of the served estimate" true
      (a.Engine.Auditor.qerror
      = Engine.Drift.qerror ~estimate ~actual:a.Engine.Auditor.actual);
    (match a.Engine.Auditor.worst with
     | None -> Alcotest.fail "no worst step"
     | Some w ->
       List.iter
         (fun (s : Engine.Auditor.step_report) ->
           checkb "worst step has the largest contribution" true
             (w.Engine.Auditor.contribution >= s.Engine.Auditor.contribution))
         a.Engine.Auditor.steps);
    List.iteri
      (fun i (s : Engine.Auditor.step_report) ->
        checki "indices are 1-based and ordered" (i + 1)
          s.Engine.Auditor.index)
      a.Engine.Auditor.steps

let test_audit_one_too_large () =
  let estimator = fresh_estimator () in
  let ept = lazy (Core.Estimator.ept estimator) in
  let storage = storage () in
  let deep =
    "/" ^ String.concat "/" (List.init 70 (fun _ -> "site"))
  in
  let ast, _ = canon deep in
  match
    Engine.Auditor.audit_one ~estimator ~ept ~storage ~estimate:1.0 ast
  with
  | Ok _ -> Alcotest.fail "70-step query must exceed the 62-step bitmasks"
  | Error msg ->
    (* Whichever side trips first (the matcher's 62-node bitset or the NoK
       evaluator's step cap), the failure is data, not an exception. *)
    if
      not (contains_sub ~sub:"bitset" msg)
      && not (contains_sub ~sub:"step limit" msg)
    then Alcotest.failf "error does not name a limit: %S" msg

(* ------------------------------------------------------------------ *)
(* Engine surface *)

let queries =
  [ "/site/people/person"; "//open_auction[bidder]/price"; "//item";
    "/site/regions//item[location]"; "//person[emailaddress]" ]

let with_engine_auditor ?(feedback = false) ?(rate = 1.0) f =
  let engine =
    Engine.create ~qerror_threshold:2.0 (estimator_of (synopsis ()))
  in
  let auditor =
    Engine.Auditor.create ~feedback ~rate
      (Engine.Auditor.Loaded
         { estimator = fresh_estimator (); storage = storage () })
  in
  Engine.set_auditor engine auditor;
  Fun.protect
    ~finally:(fun () -> Engine.Auditor.shutdown auditor)
    (fun () -> f engine auditor)

let test_engine_audit_e2e () =
  with_engine_auditor @@ fun engine auditor ->
  List.iter
    (fun q ->
      match Engine.estimate engine q with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "estimate %s: %s" q (Core.Error.to_string e))
    queries;
  checkb "settles" true (Engine.Auditor.settle auditor);
  Engine.drain_audits engine;
  let reply =
    match Engine.audit_reply engine with
    | Ok j -> j
    | Error e -> Alcotest.failf "AUDIT: %s" (Core.Error.to_string e)
  in
  checki "every served query audited at rate 1.0" (List.length queries)
    (jint "completed" reply);
  checki "nothing shed" 0 (jint "shed" reply);
  checki "no audit errors" 0 (jint "errors" reply);
  checki "backlog empty after settle" 0 (jint "backlog" reply);
  checki "window covers every audit" (List.length queries)
    (jint "count" (jfield "window" reply));
  (* The attribution records land in the flight ring as Audited records. *)
  let fr = match Engine.recorder engine with
    | Some fr -> fr
    | None -> Alcotest.fail "telemetry should be on"
  in
  let audited =
    List.filter
      (fun (r : Engine.Flight_recorder.record) ->
        r.Engine.Flight_recorder.cache = Engine.Flight_recorder.Audited)
      (Engine.Flight_recorder.recent fr)
  in
  checki "one Audited flight record per audit" (List.length queries)
    (List.length audited);
  List.iter
    (fun (r : Engine.Flight_recorder.record) ->
      match r.Engine.Flight_recorder.audit with
      | None -> Alcotest.fail "Audited record without attribution payload"
      | Some a ->
        checkb "attribution q-error is positive" true
          (a.Engine.Flight_recorder.audit_qerror >= 1.0))
    audited

let test_engine_audit_disabled () =
  let engine = Engine.create (estimator_of (synopsis ())) in
  (match Engine.audit_reply engine with
   | Ok _ -> Alcotest.fail "AUDIT must fail without an auditor"
   | Error e ->
     checkb "internal error" true
       (contains_sub ~sub:"auditing is disabled" (Core.Error.to_string e)));
  (match Engine.Protocol.handle_line engine "AUDIT" with
   | Some reply ->
     checkb "protocol ERR" true (String.length reply >= 3
                                && String.sub reply 0 3 = "ERR")
   | None -> Alcotest.fail "AUDIT must answer")

let test_protocol_audit () =
  with_engine_auditor @@ fun engine _auditor ->
  (match Engine.Protocol.handle_line engine "ESTIMATE //item" with
   | Some r ->
     checkb "estimate ok" true (String.length r > 2 && String.sub r 0 2 = "OK")
   | None -> Alcotest.fail "ESTIMATE must answer");
  (match Engine.Protocol.handle_line engine "AUDIT extra" with
   | Some r ->
     checkb "AUDIT takes no argument" true
       (String.length r >= 3 && String.sub r 0 3 = "ERR")
   | None -> Alcotest.fail "must answer");
  match Engine.Protocol.handle_line engine "AUDIT" with
  | Some r ->
    checkb "AUDIT answers OK json" true
      (String.length r > 4 && String.sub r 0 4 = "OK {")
  | None -> Alcotest.fail "AUDIT must answer"

(* Audit-driven feedback: a served estimate that ground truth disproves
   must refine the HET through the same q-error gate client FEEDBACK
   uses — exercised by lying to the sampler about the served estimate. *)
let test_audit_feedback_refines () =
  with_engine_auditor ~feedback:true @@ fun engine auditor ->
  let ast, key = canon "/site/people/person" in
  Engine.Auditor.sample auditor ~query:key.Engine.Canonical.text
    ~hash:key.Engine.Canonical.hash ~ast ~estimate:1_000_000.0;
  checkb "settles" true (Engine.Auditor.settle auditor);
  checki "no refinement before the drain" 0 (Engine.feedback_rounds engine);
  Engine.drain_audits engine;
  checki "the lie refined the HET" 1 (Engine.feedback_rounds engine);
  let reply =
    match Engine.audit_reply engine with
    | Ok j -> j
    | Error e -> Alcotest.failf "AUDIT: %s" (Core.Error.to_string e)
  in
  checki "refinement counted" 1 (jint "refined" reply)

let test_audit_feedback_off_never_refines () =
  with_engine_auditor ~feedback:false @@ fun engine auditor ->
  let ast, key = canon "/site/people/person" in
  Engine.Auditor.sample auditor ~query:key.Engine.Canonical.text
    ~hash:key.Engine.Canonical.hash ~ast ~estimate:1_000_000.0;
  checkb "settles" true (Engine.Auditor.settle auditor);
  Engine.drain_audits engine;
  checki "observation only, no refinement" 0 (Engine.feedback_rounds engine)

(* ------------------------------------------------------------------ *)
(* Served vs offline agreement (what the audit smoke diffs). *)

let test_background_equals_offline () =
  let serve_est = estimator_of (synopsis ()) in
  let ept = lazy (Core.Estimator.ept serve_est) in
  let st = storage () in
  let auditor =
    Engine.Auditor.create ~rate:1.0
      ~queue_capacity:(List.length queries + 1)
      (Engine.Auditor.Loaded
         { estimator = fresh_estimator (); storage = storage () })
  in
  Fun.protect ~finally:(fun () -> Engine.Auditor.shutdown auditor)
  @@ fun () ->
  let offline = ref [] in
  List.iter
    (fun q ->
      let ast, key = canon q in
      let estimate =
        match Core.Estimator.estimate_result_on serve_est ept ast with
        | Ok o -> o.Core.Estimator.value
        | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e)
      in
      Engine.Auditor.sample auditor ~query:key.Engine.Canonical.text
        ~hash:key.Engine.Canonical.hash ~ast ~estimate;
      match
        Engine.Auditor.audit_one ~estimator:serve_est ~ept ~storage:st
          ~estimate ast
      with
      | Ok a -> offline := a :: !offline
      | Error msg -> Alcotest.failf "offline audit: %s" msg)
    queries;
  checkb "settles" true (Engine.Auditor.settle auditor);
  let background = ref [] in
  Engine.Auditor.drain auditor (fun a -> background := a :: !background);
  let background = List.rev !background and offline = List.rev !offline in
  checki "every sample audited" (List.length offline)
    (List.length background);
  List.iter2
    (fun (a : Engine.Auditor.audited) (b : Engine.Auditor.audited) ->
      checks "same canonical query" b.Engine.Auditor.query
        a.Engine.Auditor.query;
      checki "same exact cardinality" b.Engine.Auditor.actual
        a.Engine.Auditor.actual;
      checkb "float-equal q-error" true
        (a.Engine.Auditor.qerror = b.Engine.Auditor.qerror))
    background offline;
  let window l =
    Obs.Json.to_string
      (Engine.Auditor.window_json
         (Array.of_list (List.map (fun a -> a.Engine.Auditor.qerror) l)))
  in
  checks "byte-identical window rendering" (window offline)
    (window background)

(* ------------------------------------------------------------------ *)
(* Pool surface *)

let test_pool_audit () =
  let auditor =
    Engine.Auditor.create ~rate:1.0 ~queue_capacity:64
      (Engine.Auditor.Loaded
         { estimator = fresh_estimator (); storage = storage () })
  in
  let pool =
    Engine.Pool.create ~workers:2 ~auditor (estimator_of (synopsis ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Engine.Pool.shutdown pool;
      Engine.Auditor.shutdown auditor)
  @@ fun () ->
  List.iter
    (fun q ->
      match Engine.Pool.estimate pool q with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "pool %s: %s" q (Core.Error.to_string e))
    queries;
  let reply =
    match (Engine.Pool.server pool).Engine.Serve.audit () with
    | Ok j -> j
    | Error e -> Alcotest.failf "pool AUDIT: %s" (Core.Error.to_string e)
  in
  checki "every pool-served query audited" (List.length queries)
    (jint "completed" reply);
  checki "window count matches" (List.length queries)
    (jint "count" (jfield "window" reply));
  (* The fold-back wrote Audited records into the coordinator ring. *)
  let audited =
    List.filter
      (fun (r : Engine.Flight_recorder.record) ->
        r.Engine.Flight_recorder.cache = Engine.Flight_recorder.Audited)
      (Engine.Pool.recent pool)
  in
  checki "Audited records merged into RECENT" (List.length queries)
    (List.length audited)

let test_pool_audit_disabled () =
  let pool = Engine.Pool.create ~workers:2 (estimator_of (synopsis ())) in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  match (Engine.Pool.server pool).Engine.Serve.audit () with
  | Ok _ -> Alcotest.fail "pool AUDIT must fail without an auditor"
  | Error e ->
    checkb "internal error" true
      (contains_sub ~sub:"auditing is disabled" (Core.Error.to_string e))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "auditor"
    [ ( "sampler",
        [ Alcotest.test_case "rate 0 / rate 1 exact" `Quick
            test_sampler_exact_rates;
          Alcotest.test_case "intermediate-rate fractions" `Quick
            test_sampler_rate_monotone_fraction;
          QCheck_alcotest.to_alcotest qcheck_sampler_permutation_invariant ] );
      ( "attribution",
        [ Alcotest.test_case "per-step reports" `Quick
            test_audit_one_attribution;
          Alcotest.test_case "NoK limit as data" `Quick
            test_audit_one_too_large ] );
      ( "engine",
        [ Alcotest.test_case "AUDIT end to end" `Quick test_engine_audit_e2e;
          Alcotest.test_case "disabled without an auditor" `Quick
            test_engine_audit_disabled;
          Alcotest.test_case "protocol AUDIT verb" `Quick test_protocol_audit;
          Alcotest.test_case "audit feedback refines" `Quick
            test_audit_feedback_refines;
          Alcotest.test_case "no feedback without the flag" `Quick
            test_audit_feedback_off_never_refines ] );
      ( "agreement",
        [ Alcotest.test_case "background = offline (float)" `Quick
            test_background_equals_offline ] );
      ( "pool",
        [ Alcotest.test_case "pool AUDIT end to end" `Quick test_pool_audit;
          Alcotest.test_case "pool AUDIT disabled" `Quick
            test_pool_audit_disabled ] ) ]
