(* The serving pool: sharded work-queue semantics (chunk dispatch, work
   stealing), epoch-based invalidation, deterministic scheduling tests, and
   a multi-domain stress run.

   The scheduling tests lean on two pinned protocol rules to stay
   deterministic without sleeps: (1) a lone chunk that [split] refuses
   (length 1, the granularity floor) is never stolen, so a rendezvous
   query routed to one shard as a length-1 chunk parks exactly that
   shard's worker; (2) thieves take from the tail while owners pop the
   head, so the head chunk of a parked shard's deque is always the one
   left behind. [STRESS_OPS] scales the per-client op count (default 800
   for `dune runtest`; `make stress` runs 10_000). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* Work queue *)

let no_split _ = None

(* Chunks stand in as (lo, hi) ranges in the queue-level tests; the split
   mirrors the pool's: keep the leading (ceil) half, donate the rest, and
   refuse below 2 slots. *)
let split_range (lo, hi) =
  if hi - lo < 2 then None
  else
    let mid = lo + ((hi - lo + 1) / 2) in
    Some ((lo, mid), (mid, hi))

let test_queue_fifo () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Work_queue.create: capacity 0 < 1") (fun () ->
      ignore
        (Engine.Work_queue.create ~shards:1 ~capacity:0 ()
          : int Engine.Work_queue.t));
  Alcotest.check_raises "shards >= 1"
    (Invalid_argument "Work_queue.create: shards 0 < 1") (fun () ->
      ignore
        (Engine.Work_queue.create ~shards:0 ~capacity:4 ()
          : int Engine.Work_queue.t));
  let q = Engine.Work_queue.create ~shards:1 ~capacity:4 () in
  checki "capacity" 4 (Engine.Work_queue.capacity q);
  checki "shards" 1 (Engine.Work_queue.shards q);
  checki "empty" 0 (Engine.Work_queue.length q);
  Alcotest.check_raises "shard range checked"
    (Invalid_argument "Work_queue: shard 5 out of range [0,1)") (fun () ->
      ignore (Engine.Work_queue.push q ~shard:5 0 : bool));
  for i = 1 to 4 do
    checkb "push accepted" true (Engine.Work_queue.push q ~shard:0 i)
  done;
  checki "full" 4 (Engine.Work_queue.length q);
  checkb "pop 1" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some (1, None));
  checkb "push 5 after pop" true (Engine.Work_queue.push q ~shard:0 5);
  (* FIFO across the ring seam *)
  List.iter
    (fun expect ->
      checkb "fifo order" true
        (Engine.Work_queue.pop q ~shard:0 ~split:no_split
        = Some (expect, None)))
    [ 2; 3; 4; 5 ]

let test_queue_close_drains () =
  let q = Engine.Work_queue.create ~shards:1 ~capacity:4 () in
  checkb "push a" true (Engine.Work_queue.push q ~shard:0 "a");
  checkb "push b" true (Engine.Work_queue.push q ~shard:0 "b");
  Engine.Work_queue.close q;
  checkb "closed" true (Engine.Work_queue.closed q);
  checkb "push refused" false (Engine.Work_queue.push q ~shard:0 "c");
  checkb "drains a" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some ("a", None));
  checkb "drains b" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some ("b", None));
  checkb "then None" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = None);
  checkb "still None" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = None)

(* Producers block on a full deque until consumers make room; close wakes
   everyone. Run to completion = no deadlock. *)
let test_queue_concurrent () =
  let q = Engine.Work_queue.create ~shards:1 ~capacity:2 () in
  let n = 500 in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to n - 1 do
              ignore (Engine.Work_queue.push q ~shard:0 ((p * n) + i) : bool)
            done))
  in
  let seen = Array.make (2 * n) false in
  let consumed = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        let rec loop () =
          match Engine.Work_queue.pop q ~shard:0 ~split:no_split with
          | None -> ()
          | Some (v, _) ->
            seen.(v) <- true;
            incr consumed;
            loop ()
        in
        loop ())
  in
  List.iter Domain.join producers;
  Engine.Work_queue.close q;
  Domain.join consumer;
  checki "all consumed" (2 * n) !consumed;
  checkb "every item exactly once" true (Array.for_all Fun.id seen)

(* The steal protocol, stepped through where every transition is visible:
   own head first; a victim with >= 2 chunks donates its tail whole; a
   victim down to its last divisible chunk is halved; a lone chunk that
   split refuses is never stolen. *)
let test_queue_steal_protocol () =
  let q = Engine.Work_queue.create ~shards:3 ~capacity:4 () in
  let pop shard = Engine.Work_queue.pop q ~shard ~split:split_range in
  (* Own deque first, even when another shard's deque is longer. *)
  checkb "push own" true (Engine.Work_queue.push q ~shard:1 (10, 12));
  checkb "push 0a" true (Engine.Work_queue.push q ~shard:0 (0, 2));
  checkb "push 0b" true (Engine.Work_queue.push q ~shard:0 (2, 4));
  (match pop 1 with
   | Some ((10, 12), None) -> ()
   | _ -> Alcotest.fail "owner must serve its own head before stealing");
  checki "no steal for an own pop" 0
    (Engine.Work_queue.stats q).Engine.Work_queue.steals;
  (* A victim holding >= 2 chunks donates its tail chunk whole. *)
  (match pop 1 with
   | Some ((2, 4), Some 0) -> ()
   | _ -> Alcotest.fail "thief should take shard 0's tail chunk whole");
  checki "one steal" 1 (Engine.Work_queue.stats q).Engine.Work_queue.steals;
  (* A victim down to its last divisible chunk is only relieved of half:
     the keep-half returns to the victim's deque. *)
  (match pop 2 with
   | Some ((1, 2), Some 0) -> ()
   | _ -> Alcotest.fail "thief should take the trailing half of (0,2)");
  checki "split counts as a steal" 2
    (Engine.Work_queue.stats q).Engine.Work_queue.steals;
  checki "keep-half stays reachable" 1 (Engine.Work_queue.length q);
  (* The surviving (0,1) chunk is below the granularity floor: a thief
     blocks rather than taking it. The wait counter ticking under the lock
     is the rendezvous proving the steal was refused. *)
  let thief = Domain.spawn (fun () -> pop 1) in
  while (Engine.Work_queue.stats q).Engine.Work_queue.pop_waits = 0 do
    Domain.cpu_relax ()
  done;
  checki "lone unsplittable chunk never stolen" 2
    (Engine.Work_queue.stats q).Engine.Work_queue.steals;
  (* The owner drains it head-first... *)
  (match pop 0 with
   | Some ((0, 1), None) -> ()
   | _ -> Alcotest.fail "owner should pop its own lone chunk");
  (* ...and close wakes the starved thief into the drained exit. *)
  Engine.Work_queue.close q;
  checkb "starved thief sees drained close" true (Domain.join thief = None)

(* Regression: close lands while a lone unsplittable chunk is still queued
   and a thief is already asleep; the owner's post-close drain must re-wake
   the thief (the close broadcast alone is not enough — the thief re-waits
   when it finds only the chunk it may not take). *)
let test_queue_close_wakes_starved_thief () =
  let q = Engine.Work_queue.create ~shards:2 ~capacity:2 () in
  checkb "push lone" true (Engine.Work_queue.push q ~shard:0 (0, 1));
  let thief =
    Domain.spawn (fun () -> Engine.Work_queue.pop q ~shard:1 ~split:split_range)
  in
  while (Engine.Work_queue.stats q).Engine.Work_queue.pop_waits = 0 do
    Domain.cpu_relax ()
  done;
  Engine.Work_queue.close q;
  (match Engine.Work_queue.pop q ~shard:0 ~split:split_range with
   | Some ((0, 1), None) -> ()
   | _ -> Alcotest.fail "owner drains the closed queue");
  checkb "thief wakes after the post-close drain" true
    (Domain.join thief = None)

(* With stealing disabled a worker only ever sees its own deque: closed +
   own deque empty = None even while other shards still hold work. *)
let test_queue_steal_disabled () =
  let q = Engine.Work_queue.create ~steal:false ~shards:2 ~capacity:2 () in
  checkb "push other" true (Engine.Work_queue.push q ~shard:0 (0, 4));
  let idle =
    Domain.spawn (fun () -> Engine.Work_queue.pop q ~shard:1 ~split:split_range)
  in
  while (Engine.Work_queue.stats q).Engine.Work_queue.pop_waits = 0 do
    Domain.cpu_relax ()
  done;
  checki "no steal with stealing off" 0
    (Engine.Work_queue.stats q).Engine.Work_queue.steals;
  Engine.Work_queue.close q;
  checkb "idle shard exits without the other's work" true
    (Domain.join idle = None);
  checkb "owner still drains its own" true
    (Engine.Work_queue.pop q ~shard:0 ~split:split_range = Some ((0, 4), None))

(* ------------------------------------------------------------------ *)
(* Drift shard accounting (regression: per-shard records must sum into the
   DRIFT summary, and rotation must clear every shard's landing slot in
   lockstep with the owner's window). *)

let test_drift_shards_sum () =
  let d = Engine.Drift.create ~slots:3 ~per_slot:2 () in
  let s1 = Engine.Drift.register_shard d in
  let s2 = Engine.Drift.register_shard d in
  Engine.Drift.note_estimate d ~cache_hit:false;
  for _ = 1 to 5 do Engine.Drift.note_shard s1 ~cache_hit:true done;
  for _ = 1 to 3 do Engine.Drift.note_shard s2 ~cache_hit:false done;
  checki "shard volumes" 5 (Engine.Drift.shard_estimates s1);
  checki "window = own + shards" (1 + 5 + 3) (Engine.Drift.window_estimates d);
  checki "hits = shard hits" 5 (Engine.Drift.window_hits d);
  (* 2 observations fill a slot; 6 roll the 3-slot window over entirely,
     expiring the volumes above with the slots they were counted in. *)
  for _ = 1 to 6 do
    ignore (Engine.Drift.observe d ~estimate:1.0 ~actual:1 : float)
  done;
  for _ = 1 to 2 do
    ignore (Engine.Drift.observe d ~estimate:1.0 ~actual:1 : float)
  done;
  checki "old shard volumes expired with their slots" 0
    (Engine.Drift.shard_estimates s1 + Engine.Drift.shard_estimates s2);
  Engine.Drift.note_shard s1 ~cache_hit:false;
  checki "fresh shard counts land in the live window" 1
    (Engine.Drift.shard_estimates s1);
  match Engine.Drift.to_json d with
  | Obs.Json.Obj fields ->
    checkb "summary volume covers shards" true
      (List.assoc "window_estimates" fields
      = Obs.Json.Int (Engine.Drift.window_estimates d))
  | _ -> Alcotest.fail "drift summary not an object"

(* ------------------------------------------------------------------ *)
(* Chunk plan: the pure partition function, QCheck-pinned. *)

let prop_plan_partition =
  QCheck.Test.make ~count:500
    ~name:"plan_chunks partitions [0,n) exactly, in order"
    QCheck.(triple (int_bound 200) (int_range 1 8) (int_range 1 16))
    (fun (n, workers, chunk_target) ->
      let plan = Engine.Pool.plan_chunks ~n ~workers ~chunk_target () in
      let count = Array.length plan in
      (* Count law: never more chunks than slots, at least one per worker
         (for parallelism), near chunk_target slots each. *)
      let expect_count =
        if n <= 0 then 0
        else min n (max workers ((n + chunk_target - 1) / chunk_target))
      in
      if count <> expect_count then
        QCheck.Test.fail_reportf "n=%d workers=%d target=%d: %d chunks, not %d"
          n workers chunk_target count expect_count;
      (* Exact contiguous cover: every index exactly once, in order. *)
      let next = ref 0 in
      Array.iter
        (fun (lo, hi, shard) ->
          if lo <> !next then
            QCheck.Test.fail_reportf "gap/overlap: chunk starts at %d, not %d"
              lo !next;
          if hi <= lo then QCheck.Test.fail_reportf "empty chunk at %d" lo;
          if shard < 0 || shard >= workers then
            QCheck.Test.fail_reportf "shard %d out of [0,%d)" shard workers;
          next := hi)
        plan;
      if !next <> max 0 n then
        QCheck.Test.fail_reportf "cover ends at %d, not %d" !next n;
      (* Sizes differ by at most one, longer chunks first; round-robin
         placement without affinity. *)
      let sizes = Array.map (fun (lo, hi, _) -> hi - lo) plan in
      for i = 1 to count - 1 do
        if sizes.(i) > sizes.(i - 1) then
          QCheck.Test.fail_reportf "short chunk before long at %d" i
      done;
      if count > 0 && sizes.(0) - sizes.(count - 1) > 1 then
        QCheck.Test.fail_reportf "chunk sizes differ by more than one";
      Array.iteri
        (fun i (_, _, shard) ->
          if shard <> i mod workers then
            QCheck.Test.fail_reportf "chunk %d on shard %d, not %d" i shard
              (i mod workers))
        plan;
      true)

let prop_plan_affinity =
  QCheck.Test.make ~count:200
    ~name:"affinity plans every chunk onto the preferred shard"
    QCheck.(quad (int_range 1 200) (int_range 1 8) (int_range 1 16) small_nat)
    (fun (n, workers, chunk_target, p) ->
      let preferred = p mod workers in
      let plan =
        Engine.Pool.plan_chunks ~n ~workers ~chunk_target ~preferred ()
      in
      Array.for_all (fun (_, _, shard) -> shard = preferred) plan)

let test_plan_chunks_edges () =
  checki "n=0 plans nothing" 0
    (Array.length (Engine.Pool.plan_chunks ~n:0 ~workers:4 ~chunk_target:8 ()));
  (match Engine.Pool.plan_chunks ~n:1 ~workers:4 ~chunk_target:8 () with
   | [| (0, 1, 0) |] -> ()
   | _ -> Alcotest.fail "n=1 is one length-1 chunk on shard 0");
  (* n < workers: one slot per chunk, never an empty chunk. *)
  let p = Engine.Pool.plan_chunks ~n:3 ~workers:8 ~chunk_target:1 () in
  checki "n < workers plans n chunks" 3 (Array.length p);
  Array.iteri
    (fun i (lo, hi, shard) ->
      checki "lo" i lo;
      checki "hi" (i + 1) hi;
      checki "round-robin shard" i shard)
    p;
  (* Longer chunks first: 10 slots over 4 chunks is 3,3,2,2. *)
  let sizes =
    Array.map
      (fun (lo, hi, _) -> hi - lo)
      (Engine.Pool.plan_chunks ~n:10 ~workers:4 ~chunk_target:8 ())
  in
  checkb "sizes 3,3,2,2" true (sizes = [| 3; 3; 2; 2 |])

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let build_pool ?(workers = 2) ?chunk_target doc =
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  let estimator = Core.Estimator.create ~het kernel in
  (path_tree, Engine.Pool.create ~workers ?chunk_target estimator)

let test_pool_lifecycle () =
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Pool.create: workers 0 < 1") (fun () ->
      ignore
        (Engine.Pool.create ~workers:0
           (Core.Estimator.create
              (Core.Builder.of_string Datagen.Paper_example.document))));
  Alcotest.check_raises "chunk_target >= 1"
    (Invalid_argument "Pool.create: chunk_target 0 < 1") (fun () ->
      ignore
        (Engine.Pool.create ~workers:1 ~chunk_target:0
           (Core.Estimator.create
              (Core.Builder.of_string Datagen.Paper_example.document))));
  let _, pool = build_pool ~workers:2 Datagen.Paper_example.document in
  checki "workers" 2 (Engine.Pool.workers pool);
  checki "chunk_target default" 8 (Engine.Pool.chunk_target pool);
  checki "epoch starts at 0" 0 (Engine.Pool.epoch pool);
  (match Engine.Pool.estimate pool "/site/regions" with
   | Ok r -> checkb "finite" true (Float.is_finite r.Engine.Serve.value)
   | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e));
  (match Engine.Pool.estimate pool "/site[" with
   | Ok _ -> Alcotest.fail "bad query served"
   | Error e ->
     checkb "typed parse error" true
       (Core.Error.kind e = Core.Error.Malformed_query));
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool;  (* idempotent *)
  (match Engine.Pool.estimate pool "/site" with
   | Ok _ -> Alcotest.fail "served after shutdown"
   | Error e ->
     checkb "shutdown error" true (Core.Error.kind e = Core.Error.Internal))

let test_pool_invalidate_bumps_epoch () =
  let _, pool = build_pool Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let e0 = Engine.Pool.epoch pool in
  Engine.Pool.invalidate pool;
  checki "invalidate bumps" (e0 + 1) (Engine.Pool.epoch pool);
  (* Estimates still work after invalidation (caches repopulate). *)
  match Engine.Pool.estimate pool "/site/regions" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-invalidate: %s" (Core.Error.to_string e)

let expect_singles pool queries =
  List.map
    (fun q ->
      match Engine.Pool.estimate pool q with
      | Ok r -> r.Engine.Serve.value
      | Error e -> Alcotest.failf "single %s: %s" q (Core.Error.to_string e))
    queries

let check_replies ~expected replies =
  List.iteri
    (fun i reply ->
      match reply with
      | Ok r ->
        Alcotest.(check int64)
          (Printf.sprintf "slot %d" i)
          (bits (List.nth expected i))
          (bits r.Engine.Serve.value)
      | Error e -> Alcotest.failf "slot %d: %s" i (Core.Error.to_string e))
    replies

let test_pool_batch_order () =
  let path_tree, pool = build_pool Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries =
    List.map Xpath.Ast.to_string (Datagen.Workload.all_simple_paths path_tree)
  in
  (* Sequential singles establish the expected values... *)
  let expected = expect_singles pool queries in
  (* ...then one batch (larger than the worker count, including repeats)
     must return them in submission order. *)
  let batch = Engine.Pool.estimate_batch pool (queries @ queries) in
  checki "batch size" (2 * List.length queries) (List.length batch);
  check_replies ~expected:(expected @ expected) batch

(* Random batch shapes against sequential singles: submission order and
   bit-identity hold for every n (0, 1, n < workers, n >> workers) with
   chunking and stealing on. Fixed seed, one pool. *)
let test_pool_batch_random_shapes () =
  let path_tree, pool =
    build_pool ~workers:3 ~chunk_target:2 Datagen.Paper_example.document
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries =
    Array.of_list
      (List.map Xpath.Ast.to_string
         (Datagen.Workload.all_simple_paths path_tree))
  in
  let expected =
    Array.map
      (fun q ->
        match Engine.Pool.estimate pool q with
        | Ok r -> r.Engine.Serve.value
        | Error e -> Alcotest.failf "single %s: %s" q (Core.Error.to_string e))
      queries
  in
  let rng = Datagen.Rng.create ~seed:42 in
  for round = 1 to 50 do
    (* Cover the edges deterministically, then random widths. *)
    let n =
      match round with
      | 1 -> 0
      | 2 -> 1
      | 3 -> 2 (* n < workers *)
      | _ -> Datagen.Rng.int rng 40
    in
    let idx =
      List.init n (fun _ -> Datagen.Rng.int rng (Array.length queries))
    in
    let batch =
      Engine.Pool.estimate_batch pool (List.map (fun i -> queries.(i)) idx)
    in
    checki (Printf.sprintf "round %d size" round) n (List.length batch);
    List.iteri
      (fun slot reply ->
        let i = List.nth idx slot in
        match reply with
        | Ok r ->
          Alcotest.(check int64)
            (Printf.sprintf "round %d slot %d (%s)" round slot queries.(i))
            (bits expected.(i))
            (bits r.Engine.Serve.value)
        | Error e ->
          Alcotest.failf "round %d slot %d: %s" round slot
            (Core.Error.to_string e))
      batch
  done

(* ------------------------------------------------------------------ *)
(* Work-queue contention stats. The queue counts a wait (and starts its
   clock) under the lock *before* sleeping, so polling [stats] until
   [push_waits]/[pop_waits] ticks is a deterministic rendezvous with a
   blocked domain — no sleeps, no flakes. *)

let test_queue_stats () =
  let q = Engine.Work_queue.create ~shards:1 ~capacity:2 () in
  let s0 = Engine.Work_queue.stats q in
  checki "fresh pushes" 0 s0.Engine.Work_queue.pushes;
  checki "fresh pops" 0 s0.Engine.Work_queue.pops;
  checki "fresh steals" 0 s0.Engine.Work_queue.steals;
  checki "fresh high-water" 0 s0.Engine.Work_queue.max_occupancy;
  checkb "push 1" true (Engine.Work_queue.push q ~shard:0 1);
  checkb "push 2" true (Engine.Work_queue.push q ~shard:0 2);
  let s1 = Engine.Work_queue.stats q in
  checki "two pushes" 2 s1.Engine.Work_queue.pushes;
  checki "high-water follows occupancy" 2 s1.Engine.Work_queue.max_occupancy;
  checki "uncontended pushes never wait" 0 s1.Engine.Work_queue.push_waits;
  let producer = Domain.spawn (fun () -> Engine.Work_queue.push q ~shard:0 3) in
  while (Engine.Work_queue.stats q).Engine.Work_queue.push_waits = 0 do
    Domain.cpu_relax ()
  done;
  checkb "pop releases the blocked producer" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some (1, None));
  checkb "blocked push lands" true (Domain.join producer);
  let s2 = Engine.Work_queue.stats q in
  checki "blocked push counted once" 1 s2.Engine.Work_queue.push_waits;
  checkb "producer blocking time accumulates" true
    (s2.Engine.Work_queue.push_wait_s > 0.0);
  (* Symmetric consumer-side wait on an empty ring. *)
  checkb "drain 2" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some (2, None));
  checkb "drain 3" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some (3, None));
  let consumer =
    Domain.spawn (fun () -> Engine.Work_queue.pop q ~shard:0 ~split:no_split)
  in
  while (Engine.Work_queue.stats q).Engine.Work_queue.pop_waits = 0 do
    Domain.cpu_relax ()
  done;
  checkb "push releases the blocked consumer" true
    (Engine.Work_queue.push q ~shard:0 9);
  checkb "blocked pop sees the push" true
    (Domain.join consumer = Some (9, None));
  let s3 = Engine.Work_queue.stats q in
  checki "all pushes counted" 4 s3.Engine.Work_queue.pushes;
  checki "all pops counted" 4 s3.Engine.Work_queue.pops;
  checki "no steals on a single shard" 0 s3.Engine.Work_queue.steals;
  checki "blocked pop counted once" 1 s3.Engine.Work_queue.pop_waits;
  checkb "consumer blocking time accumulates" true
    (s3.Engine.Work_queue.pop_wait_s > 0.0)

(* ------------------------------------------------------------------ *)
(* PROFILE: per-stage percentiles over one measured batch, and the
   protocol spelling of the same. *)

let serve_handle server ?(payload = []) line =
  let remaining = ref payload in
  let read_line () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      Some l
  in
  match Engine.Serve.handle_request server ~read_line line with
  | Some r -> r
  | None -> Alcotest.failf "no response to %S" line

let test_pool_profile () =
  let _, pool = build_pool ~workers:4 Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries =
    List.init 12 (fun i -> if i mod 2 = 0 then "/site/regions" else "/site")
  in
  (match Engine.Pool.profile pool queries with
   | Error e -> Alcotest.failf "profile: %s" (Core.Error.to_string e)
   | Ok p ->
     checki "every query measured" 12 p.Engine.Serve.profiled;
     let ordered (s : Engine.Serve.stage_percentiles) =
       0.0 <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99
     in
     checkb "queue-wait percentiles ordered" true
       (ordered p.Engine.Serve.queue_wait_us);
     checkb "execute percentiles ordered" true
       (ordered p.Engine.Serve.execute_us);
     checkb "reassemble percentiles ordered" true
       (ordered p.Engine.Serve.reassemble_us);
     checkb "execute time is measured" true
       (p.Engine.Serve.execute_us.Engine.Serve.p99 > 0.0);
     checkb "steal delta is non-negative" true (p.Engine.Serve.steals >= 0));
  (* The protocol verb frames like BATCH (count, then payload lines) and
     answers in one line; a bad query is timed, not failed. *)
  let server = Engine.Pool.server pool in
  let r =
    serve_handle server
      ~payload:[ "/site/regions"; "/site"; "/site[" ]
      "PROFILE 3"
  in
  checkb "single-line reply" true (not (String.contains r '\n'));
  checkb "profile reply shape" true
    (String.starts_with ~prefix:"OK 3 queue_wait_us " r);
  match String.split_on_char ' ' r with
  | "OK" :: "3" :: rest ->
    let kvs = List.filter (fun tok -> String.contains tok '=') rest in
    checki "twelve stage fields" 12 (List.length kvs);
    checkb "steal delta reported" true
      (List.exists (String.starts_with ~prefix:"steals=") kvs);
    List.iter
      (fun tok ->
        let i = String.index tok '=' in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        match float_of_string_opt v with
        | Some f ->
          checkb (tok ^ " is a finite stage time") true
            (Float.is_finite f && f >= 0.0)
        | None -> Alcotest.failf "unparseable field %S" tok)
      kvs
  | _ -> Alcotest.failf "unexpected PROFILE reply %S" r

(* ------------------------------------------------------------------ *)
(* Causal trace: a traced 4-worker pool exports a lint-clean Perfetto
   trace whose slices land on the right tracks and whose flows resolve. *)

let trace_events json =
  match Obs.Json.member "traceEvents" json with
  | Some (Obs.Json.List evs) -> evs
  | _ -> Alcotest.fail "trace without traceEvents"

let ev_str field ev =
  match Obs.Json.member field ev with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let ev_int field ev =
  match Obs.Json.member field ev with
  | Some (Obs.Json.Int n) -> Some n
  | Some (Obs.Json.Float f) -> Some (int_of_float f)
  | _ -> None

let count pred evs = List.length (List.filter pred evs)

let test_pool_trace () =
  let path_tree =
    Pathtree.Path_tree.of_string Datagen.Paper_example.document
  in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table
      Datagen.Paper_example.document
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  let estimator = Core.Estimator.create ~het kernel in
  let tr = Obs.Trace.create () in
  let pool = Engine.Pool.create ~workers:4 ~trace:tr estimator in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  (* 16 queries at the default chunk_target 8 over 4 workers plan as
     exactly 4 chunks (min 16 (max 4 (ceil 16/8))). *)
  let queries =
    List.init 16 (fun i -> if i mod 2 = 0 then "/site/regions" else "/site")
  in
  checki "batch answered" 16
    (List.length (Engine.Pool.estimate_batch pool queries));
  (match Engine.Pool.feedback pool "/site/regions" ~actual:3 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
  (match Engine.Pool.explain pool "/site/regions" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "explain: %s" (Core.Error.to_string e));
  let json = Obs.Trace.to_json tr in
  (match Obs.Trace.lint json with
   | [] -> ()
   | problems ->
     Alcotest.failf "pool trace lint: %s" (String.concat "; " problems));
  let evs = trace_events json in
  let named ph name ev =
    ev_str "ph" ev = Some ph && ev_str "name" ev = Some name
  in
  checki "one dispatch instant per planned chunk" 4
    (count (named "i" "chunk_dispatch") evs);
  let executes = List.filter (named "X" "execute") evs in
  (* At least one execute slice per chunk; steal-splits mint extra chunks,
     each with its own slice. *)
  checkb "execute slices cover the chunks" true (List.length executes >= 4);
  checkb "execute slices live on shard tracks" true
    (List.for_all
       (fun ev ->
         match ev_int "tid" ev with
         | Some tid -> tid >= 1 && tid <= 4
         | None -> false)
       executes);
  checkb "coordinator frames the batch" true
    (count (named "X" "batch_submit") evs >= 1
    && count (named "X" "batch_gather") evs >= 1);
  let flows_started = count (fun ev -> ev_str "ph" ev = Some "s") evs in
  checki "one flow per planned chunk" 4 flows_started;
  checki "every flow lands" flows_started
    (count (fun ev -> ev_str "ph" ev = Some "f") evs);
  checki "queue-wait spans balance"
    (count (fun ev -> ev_str "ph" ev = Some "b") evs)
    (count (fun ev -> ev_str "ph" ev = Some "e") evs);
  checkb "gc counters sampled" true
    (count (fun ev -> ev_str "ph" ev = Some "C") evs > 0);
  checki "drained feedback traced" 1 (count (named "X" "feedback") evs);
  checki "drained explain traced" 1 (count (named "X" "explain") evs);
  checki "coordinator + 4 shard name rows" 5
    (count
       (fun ev ->
         ev_str "ph" ev = Some "M" && ev_str "name" ev = Some "thread_name")
       evs)

(* ------------------------------------------------------------------ *)
(* Contention telemetry surfaces in the merged exposition and STATS. *)

(* A metrics exposition parses iff every non-comment line is
   "name{labels} value" with a finite value and names are sorted runs
   grouped by series (the deterministic-merge contract). *)
let lint_prometheus text =
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "torn metrics line: %S" line
        | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          (* NaN is legal exposition (empty drift window); a torn line is
             not parseable at all. *)
          (match float_of_string_opt v with
           | Some _ -> ()
           | None -> Alcotest.failf "unparseable value in %S" line)
      end)
    lines

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_pool_telemetry_metrics () =
  let _, pool = build_pool ~workers:2 Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  ignore
    (Engine.Pool.estimate_batch pool (List.init 8 (fun _ -> "/site/regions"))
      : (Engine.Serve.estimate_reply, Core.Error.t) result list);
  let text = Engine.Pool.metrics_text pool in
  lint_prometheus text;
  List.iter
    (fun needle -> checkb needle true (contains ~needle text))
    [ "xseed_engine_pool_queue_wait_us_count";
      "xseed_engine_pool_batch_chunk_count";
      "xseed_engine_pool_queue_pushes";
      "xseed_engine_pool_queue_max_occupancy";
      "xseed_engine_pool_steals_total";
      "xseed_engine_pool_affinity_hits";
      "xseed_engine_gc_minor_words{shard=\"0\"}";
      "xseed_engine_gc_minor_words{shard=\"1\"}";
      "xseed_engine_pool_busy_fraction{shard=\"0\"}";
      "xseed_engine_pool_busy_fraction{shard=\"1\"}" ];
  (* Scrape self-observability: the first scrape latches its own duration,
     and after fresh traffic the next scrape publishes it. Once published,
     a quiet re-scrape re-emits the latched values byte-for-byte (asserted
     wholesale by the stress run's quiet-scrape law). *)
  ignore
    (Engine.Pool.estimate pool "/site/regions"
      : (Engine.Serve.estimate_reply, Core.Error.t) result);
  let text2 = Engine.Pool.metrics_text pool in
  List.iter
    (fun needle -> checkb needle true (contains ~needle text2))
    [ "xseed_scrape_total 1"; "xseed_scrape_duration_seconds" ];
  (* STATS mirrors the queue's contention counters. *)
  match Engine.Pool.stats_json pool with
  | Obs.Json.Obj fields ->
    (match List.assoc_opt "pool" fields with
     | Some (Obs.Json.Obj pf) ->
       List.iter
         (fun k -> checkb ("pool stats has " ^ k) true (List.mem_assoc k pf))
         [ "chunk_target"; "queue_pushes"; "queue_pops"; "queue_steals";
           "queue_push_waits"; "queue_pop_waits"; "queue_push_wait_s";
           "queue_pop_wait_s"; "queue_max_occupancy"; "affinity_hits" ];
       (match List.assoc "queue_pushes" pf with
        | Obs.Json.Int n ->
          (* Chunked dispatch: the 8-query batch planned 2 chunks (one per
             worker) and the single estimate one more — pushes count
             chunks, not slots. *)
          checkb "batch traffic counted in chunks" true (n >= 3)
        | _ -> Alcotest.fail "queue_pushes not an int");
       (match List.assoc "chunk_target" pf with
        | Obs.Json.Int n -> checki "chunk_target surfaced" 8 n
        | _ -> Alcotest.fail "chunk_target not an int")
     | _ -> Alcotest.fail "stats without pool object")
  | _ -> Alcotest.fail "stats_json not an object"

(* ------------------------------------------------------------------ *)
(* Deterministic work stealing. A chaos gate blocks the preferred shard's
   worker inside a designated query; the sleeper travels as a lone
   length-1 chunk (never stolen), so exactly that worker parks while the
   other shard steals the rest of an affinity-routed batch. *)

type gate = {
  g_lock : Mutex.t;
  g_cond : Condition.t;
  mutable g_entered : bool;
  mutable g_released : bool;
}

let gate () =
  { g_lock = Mutex.create (); g_cond = Condition.create ();
    g_entered = false; g_released = false }

let gate_hook g = function
  | "//sleepy" ->
    Mutex.lock g.g_lock;
    g.g_entered <- true;
    Condition.broadcast g.g_cond;
    while not g.g_released do Condition.wait g.g_cond g.g_lock done;
    Mutex.unlock g.g_lock;
    false (* then serve normally *)
  | _ -> false

let gate_await_entered g =
  Mutex.lock g.g_lock;
  while not g.g_entered do Condition.wait g.g_cond g.g_lock done;
  Mutex.unlock g.g_lock

let gate_release g =
  Mutex.lock g.g_lock;
  g.g_released <- true;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_lock

let paper_estimator () =
  let doc = Datagen.Paper_example.document in
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  Core.Estimator.create ~het kernel

(* The smallest client token whose affinity hash lands on [shard]. *)
let affinity_for pool ~shard =
  let rec go a =
    if Engine.Pool.preferred_shard pool ~affinity:a = shard then a
    else go (a + 1)
  in
  go 0

(* chunk_target 1: every slot is its own lone chunk. The parked shard's
   deque fills with 12 unsplittable chunks; the idle shard steals the 11
   tail chunks (whole) and the head chunk — protected by the granularity
   floor — waits for its planned shard. Exactly 11 steals, zero lost or
   duplicated replies, submission order preserved. *)
let test_pool_work_stealing () =
  let g = gate () in
  let pool =
    Engine.Pool.create ~workers:2 ~chunk_target:1 ~queue_capacity:64
      ~chaos:(gate_hook g) (paper_estimator ())
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let aff = affinity_for pool ~shard:0 in
  let queries =
    List.init 12 (fun i -> if i mod 3 = 0 then "/site" else "/site/regions")
  in
  let expected = expect_singles pool queries in
  checki "no steals yet" 0 (Engine.Pool.steals_total pool);
  (* Park shard 0 inside the gate on a lone length-1 chunk. *)
  let sleeper =
    Domain.spawn (fun () -> Engine.Pool.estimate ~affinity:aff pool "//sleepy")
  in
  gate_await_entered g;
  let batcher =
    Domain.spawn (fun () ->
        Engine.Pool.estimate_batch ~affinity:aff pool queries)
  in
  (* Rendezvous: the idle shard steals every chunk above the granularity
     floor; the count is exact, so spinning to 11 is spinning to done. *)
  while Engine.Pool.steals_total pool < 11 do Domain.cpu_relax () done;
  checki "exactly the stealable chunks stolen" 11
    (Engine.Pool.steals_total pool);
  gate_release g;
  (match Domain.join sleeper with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "sleepy: %s" (Core.Error.to_string e));
  let batch = Domain.join batcher in
  checki "no lost or duplicated replies" 12 (List.length batch);
  check_replies ~expected batch;
  checki "steal count stable after completion" 11
    (Engine.Pool.steals_total pool);
  (* Affinity accounting: only the chunks the preferred shard itself
     served count — the sleeper and the floor-protected head chunk. *)
  checki "affinity hits" 2 (Engine.Pool.affinity_hits pool);
  checki "no worker died" 0 (Engine.Pool.worker_restarts pool)

(* Splitting the victim's last chunk: 8 slots at chunk_target 8 over 2
   workers plan as two 4-slot chunks on the parked shard. The thief takes
   one whole, then halves the survivor twice (4 -> 2 -> 1) until slot 0
   alone sits below the granularity floor: exactly 3 steals on every
   interleaving, and the split halves must not lose, duplicate or reorder
   any slot. *)
let test_pool_steal_split () =
  let g = gate () in
  let pool =
    Engine.Pool.create ~workers:2 ~chunk_target:8 ~queue_capacity:64
      ~chaos:(gate_hook g) (paper_estimator ())
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let aff = affinity_for pool ~shard:0 in
  let queries =
    List.init 8 (fun i ->
        if i mod 2 = 0 then "/site/regions" else "/site/people")
  in
  let expected = expect_singles pool queries in
  let sleeper =
    Domain.spawn (fun () -> Engine.Pool.estimate ~affinity:aff pool "//sleepy")
  in
  gate_await_entered g;
  let batcher =
    Domain.spawn (fun () ->
        Engine.Pool.estimate_batch ~affinity:aff pool queries)
  in
  while Engine.Pool.steals_total pool < 3 do Domain.cpu_relax () done;
  checki "one whole steal, then two splits" 3 (Engine.Pool.steals_total pool);
  gate_release g;
  (match Domain.join sleeper with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "sleepy: %s" (Core.Error.to_string e));
  let batch = Domain.join batcher in
  checki "all slots answered" 8 (List.length batch);
  check_replies ~expected batch;
  checki "splits never double-serve" 3 (Engine.Pool.steals_total pool)

(* ------------------------------------------------------------------ *)
(* Stress: 4 client domains x STRESS_OPS mixed operations, fixed seed,
   per-client affinity routing — so batches pile chunks onto one shard and
   the other workers exercise the steal path under real contention. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s ->
    (match int_of_string_opt s with
     | Some n when n > 0 -> n
     | _ -> invalid_arg (name ^ " must be a positive integer"))
  | None -> default

let stress_ops () = env_int "STRESS_OPS" 800
let stress_workers () = env_int "STRESS_WORKERS" 4

let test_pool_stress () =
  let ops = stress_ops () in
  let clients = 4 in
  let doc = Datagen.Xmark.generate ~seed:11 ~items:30 () in
  let path_tree, pool =
    build_pool ~workers:(stress_workers ()) ~chunk_target:2 doc
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let server = Engine.Pool.server pool in
  let queries =
    Array.of_list
      (List.map Xpath.Ast.to_string
         (let rng = Datagen.Rng.create ~seed:5 in
          Datagen.Workload.all_simple_paths path_tree
          @ Datagen.Workload.branching path_tree ~rng ~count:20 ()))
  in
  let failures = Atomic.make 0 in
  let epoch_regressions = Atomic.make 0 in
  let client c =
    let rng = Datagen.Rng.create ~seed:(100 + c) in
    let last_epoch = ref 0 in
    let ok_value (r : Engine.Serve.estimate_reply) =
      Float.is_finite r.Engine.Serve.value && r.Engine.Serve.value >= 0.0
    in
    for _ = 1 to ops do
      (* Epoch reads from client domains must be monotone non-decreasing. *)
      let e = Engine.Pool.epoch pool in
      if e < !last_epoch then Atomic.incr epoch_regressions;
      last_epoch := e;
      match Datagen.Rng.int rng 100 with
      | n when n < 55 ->
        let q = queries.(Datagen.Rng.int rng (Array.length queries)) in
        (match Engine.Pool.estimate ~affinity:c pool q with
         | Ok r -> if not (ok_value r) then Atomic.incr failures
         | Error _ -> Atomic.incr failures)
      | n when n < 70 ->
        (* Affinity-routed batch: every chunk plans onto this client's
           preferred shard, so idle shards must steal to finish it. *)
        let width = 2 + Datagen.Rng.int rng 6 in
        let batch =
          List.init width (fun _ ->
              queries.(Datagen.Rng.int rng (Array.length queries)))
        in
        List.iter
          (fun reply ->
            match reply with
            | Ok r -> if not (ok_value r) then Atomic.incr failures
            | Error _ -> Atomic.incr failures)
          (Engine.Pool.estimate_batch ~affinity:c pool batch)
      | n when n < 80 ->
        let q = queries.(Datagen.Rng.int rng (Array.length queries)) in
        (match
           Engine.Pool.feedback pool q ~actual:(Datagen.Rng.int rng 50)
         with
         | Ok _ -> ()
         | Error _ -> Atomic.incr failures)
      | n when n < 90 -> ignore (Engine.Pool.stats_json pool : Obs.Json.t)
      | _ -> lint_prometheus (Engine.Pool.metrics_text pool)
    done
  in
  let domains = List.init clients (fun c -> Domain.spawn (fun () -> client c)) in
  List.iter Domain.join domains;
  checki "no failed operations" 0 (Atomic.get failures);
  checki "no epoch regressions" 0 (Atomic.get epoch_regressions);
  (* Post-run audits, quiesced. *)
  let merged = Engine.Pool.cache_counters pool in
  let per_shard = Engine.Pool.shard_cache_counters pool in
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 per_shard in
  checki "hits sum" merged.Engine.Lru_cache.hits
    (sum (fun c -> c.Engine.Lru_cache.hits));
  checki "misses sum" merged.Engine.Lru_cache.misses
    (sum (fun c -> c.Engine.Lru_cache.misses));
  checki "insertions sum" merged.Engine.Lru_cache.insertions
    (sum (fun c -> c.Engine.Lru_cache.insertions));
  checki "evictions sum" merged.Engine.Lru_cache.evictions
    (sum (fun c -> c.Engine.Lru_cache.evictions));
  checkb "some traffic was served" true
    (merged.Engine.Lru_cache.hits + merged.Engine.Lru_cache.misses > 0);
  checkb "steal and affinity counters never regress" true
    (Engine.Pool.steals_total pool >= 0
    && Engine.Pool.affinity_hits pool >= 0);
  (* Quiet pool: two scrapes must be byte-identical (no torn/duplicated
     series, idempotent republication). *)
  let m1 = Engine.Pool.metrics_text pool in
  let m2 = Engine.Pool.metrics_text pool in
  lint_prometheus m1;
  checks "quiet scrapes identical" m1 m2;
  (* Per-shard drift volumes sum into the DRIFT summary. As long as no
     window slot has expired (observations fit in slots x per_slot), the
     summed window volume must equal every estimate the shards served plus
     the feedback path's own notes — records from 4 worker rings and the
     coordinator reconciling exactly. *)
  (match Engine.Pool.drift pool with
   | None -> Alcotest.fail "stress pool has telemetry"
   | Some d ->
     let v =
       match Obs.Json.member "window_estimates" (Engine.Drift.to_json d) with
       | Some (Obs.Json.Int v) -> v
       | _ -> Alcotest.fail "DRIFT summary lacks window_estimates"
     in
     checki "drift summary = window volume" (Engine.Drift.window_estimates d) v;
     if Engine.Pool.feedback_seen pool <= 6 * 64 then
       checki "shard volumes sum to all served traffic"
         (merged.Engine.Lru_cache.hits + merged.Engine.Lru_cache.misses
         + Engine.Pool.feedback_seen pool)
         v);
  (* The protocol front door still answers coherently. *)
  (match server.Engine.Serve.stats_json () with
   | Obs.Json.Obj fields -> checkb "stats has pool" true (List.mem_assoc "pool" fields)
   | _ -> Alcotest.fail "stats_json not an object")

(* ------------------------------------------------------------------ *)
(* Close racing blocked producers/consumers. The wait counters tick under
   the queue lock before the domain sleeps, so spinning on them is a
   deterministic rendezvous with a domain that is provably blocked inside
   push/pop when close lands. *)

let test_queue_close_vs_blocked_push () =
  let q = Engine.Work_queue.create ~shards:1 ~capacity:1 () in
  checkb "fill" true (Engine.Work_queue.push q ~shard:0 1);
  let producer = Domain.spawn (fun () -> Engine.Work_queue.push q ~shard:0 2) in
  while (Engine.Work_queue.stats q).Engine.Work_queue.push_waits = 0 do
    Domain.cpu_relax ()
  done;
  (* The producer is asleep inside push; close must wake it and refuse. *)
  Engine.Work_queue.close q;
  checkb "blocked push returns false on close" false (Domain.join producer);
  checkb "pre-close item drains" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some (1, None));
  checkb "refused item was never enqueued" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = None);
  (* try_push answers `Closed without blocking. *)
  checkb "try_push sees closed" true
    (Engine.Work_queue.try_push q ~shard:0 3 = `Closed)

let test_queue_close_vs_blocked_pop () =
  let q = Engine.Work_queue.create ~shards:1 ~capacity:1 () in
  let consumer =
    Domain.spawn (fun () -> Engine.Work_queue.pop q ~shard:0 ~split:no_split)
  in
  while (Engine.Work_queue.stats q).Engine.Work_queue.pop_waits = 0 do
    Domain.cpu_relax ()
  done;
  (* The consumer is asleep inside pop on an empty ring; close wakes it
     into the drained-and-closed case. *)
  Engine.Work_queue.close q;
  checkb "blocked pop returns None on close" true (Domain.join consumer = None)

let test_queue_try_push () =
  let q = Engine.Work_queue.create ~shards:2 ~capacity:2 () in
  checkb "try_push 1" true (Engine.Work_queue.try_push q ~shard:0 1 = `Ok);
  checkb "try_push 2" true (Engine.Work_queue.try_push q ~shard:0 2 = `Ok);
  checkb "try_push full" true (Engine.Work_queue.try_push q ~shard:0 3 = `Full);
  (* Capacity is per shard deque: the other shard still admits. *)
  checkb "other shard admits" true
    (Engine.Work_queue.try_push q ~shard:1 9 = `Ok);
  let s = Engine.Work_queue.stats q in
  checki "refused push not counted" 3 s.Engine.Work_queue.pushes;
  checkb "pop makes room" true
    (Engine.Work_queue.pop q ~shard:0 ~split:no_split = Some (1, None));
  checkb "try_push after pop" true
    (Engine.Work_queue.try_push q ~shard:0 3 = `Ok)

(* ------------------------------------------------------------------ *)
(* Failure handling: deadlines, shedding, supervision, quarantine. *)

(* A negative deadline is already exceeded at dequeue, so every request is
   refused deterministically — no sleeps, no clock races. *)
let test_pool_deadline () =
  let pool =
    Engine.Pool.create ~workers:2 ~deadline_s:(-1.0) (paper_estimator ())
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries = [ "/site/regions"; "/site"; "/site/people" ] in
  List.iter
    (fun reply ->
      match reply with
      | Ok _ -> Alcotest.fail "expired request was served"
      | Error e ->
        checkb "ERR timeout" true (Core.Error.kind e = Core.Error.Timeout);
        checki "timeout exits 75" 75 (Core.Error.exit_code e))
    (Engine.Pool.estimate_batch pool queries);
  checki "timeout_total counts refused slots" 3
    (Engine.Pool.timeout_total pool);
  (* The refusals are visible in PROFILE and in the flight records. *)
  (match Engine.Pool.profile pool queries with
   | Ok p ->
     checki "profile reports timeouts" 3 p.Engine.Serve.timed_out;
     checki "profile reports no sheds" 0 p.Engine.Serve.shed
   | Error e -> Alcotest.failf "profile: %s" (Core.Error.to_string e));
  checkb "timeouts leave flight records" true
    (List.exists
       (fun (r : Engine.Flight_recorder.record) ->
         r.Engine.Flight_recorder.cache = Engine.Flight_recorder.Timed_out)
       (Engine.Pool.recent pool));
  (* Failure counters surface in STATS. *)
  match Engine.Pool.stats_json pool with
  | Obs.Json.Obj fields ->
    (match List.assoc "pool" fields with
     | Obs.Json.Obj pf ->
       checkb "stats has timeout_total" true
         (List.assoc "timeout_total" pf = Obs.Json.Int 6)
       (* 3 from the batch + 3 from the profile run *)
     | _ -> Alcotest.fail "pool stats not an object")
  | _ -> Alcotest.fail "stats_json not an object"

(* Shed-newest under chunked dispatch: chunk_target 1 keeps the
   chunk-per-query mapping, so overflowing a capacity-1 deque behind a
   gated worker sheds exactly the two chunks (= two slots) that do not
   fit, deterministically. *)
let test_pool_shed_newest () =
  let g = gate () in
  let pool =
    Engine.Pool.create ~workers:1 ~queue_capacity:1 ~chunk_target:1
      ~shed_policy:`Shed_newest ~chaos:(gate_hook g) (paper_estimator ())
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  (* Occupy the only worker inside the gate... *)
  let sleeper = Domain.spawn (fun () -> Engine.Pool.estimate pool "//sleepy") in
  gate_await_entered g;
  (* ...then overflow the capacity-1 deque: slot 0 is admitted, slots 1-2
     must be shed (newest first) without blocking. *)
  let batcher =
    Domain.spawn (fun () ->
        Engine.Pool.estimate_batch pool [ "/site"; "/site"; "/site" ])
  in
  while Engine.Pool.shed_total pool < 2 do Domain.cpu_relax () done;
  checki "exactly two sheds" 2 (Engine.Pool.shed_total pool);
  gate_release g;
  (match Domain.join sleeper with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "sleepy: %s" (Core.Error.to_string e));
  (match Domain.join batcher with
   | [ first; second; third ] ->
     (match first with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "admitted slot: %s" (Core.Error.to_string e));
     List.iter
       (fun reply ->
         match reply with
         | Ok _ -> Alcotest.fail "shed slot was served"
         | Error e ->
           checkb "ERR overloaded" true
             (Core.Error.kind e = Core.Error.Overloaded);
           checki "overloaded exits 75" 75 (Core.Error.exit_code e);
           (* The shed diagnostic names the live queue capacity in the
              unified limit= form. *)
           checkb "names limit=1" true
             (let msg = Core.Error.message e in
              let needle = "limit=1" in
              let nl = String.length needle and n = String.length msg in
              let rec scan i =
                i + nl <= n && (String.sub msg i nl = needle || scan (i + 1))
              in
              scan 0))
       [ second; third ]
   | replies -> Alcotest.failf "unexpected batch size %d" (List.length replies));
  checkb "sheds leave flight records" true
    (List.exists
       (fun (r : Engine.Flight_recorder.record) ->
         r.Engine.Flight_recorder.cache = Engine.Flight_recorder.Shed)
       (Engine.Pool.recent pool))

(* One injected worker death: the in-flight slot answers ERR internal (the
   batch never hangs), the worker restarts in place, and the pool keeps
   serving. A second death of the same query quarantines it. *)
let test_pool_supervision () =
  let kills = Atomic.make 0 in
  let chaos q =
    if q = "//kill" then begin
      Atomic.incr kills;
      true
    end
    else false
  in
  let pool = Engine.Pool.create ~workers:1 ~chaos (paper_estimator ()) in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  (* First crash: answered, restarted, not yet quarantined. *)
  (match Engine.Pool.estimate pool "//kill" with
   | Ok _ -> Alcotest.fail "killed query was served"
   | Error e ->
     checkb "ERR internal" true (Core.Error.kind e = Core.Error.Internal);
     checkb "diagnostic names the crash" true
       (let msg = Core.Error.message e in
        let has needle =
          let nl = String.length needle and ml = String.length msg in
          let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
          go 0
        in
        has "died" && has "restarted"));
  checki "one restart" 1 (Engine.Pool.worker_restarts pool);
  checki "not yet quarantined" 0 (Engine.Pool.quarantined_count pool);
  (* The restarted worker still serves. *)
  (match Engine.Pool.estimate pool "/site/regions" with
   | Ok r -> checkb "finite" true (Float.is_finite r.Engine.Serve.value)
   | Error e -> Alcotest.failf "post-restart: %s" (Core.Error.to_string e));
  (* Second crash of the same query: quarantined. *)
  (match Engine.Pool.estimate pool "//kill" with
   | Ok _ -> Alcotest.fail "killed query was served"
   | Error e ->
     checkb "second crash is internal" true
       (Core.Error.kind e = Core.Error.Internal));
  checki "two restarts" 2 (Engine.Pool.worker_restarts pool);
  checki "quarantined after two kills" 1 (Engine.Pool.quarantined_count pool);
  (* Third submission is refused at dequeue without executing: the chaos
     hook never fires again. *)
  (match Engine.Pool.estimate pool "//kill" with
   | Ok _ -> Alcotest.fail "quarantined query was served"
   | Error e ->
     checkb "quarantine is internal" true
       (Core.Error.kind e = Core.Error.Internal));
  checki "no third kill" 2 (Atomic.get kills);
  checki "no third restart" 2 (Engine.Pool.worker_restarts pool);
  (* Untouched queries keep working around the quarantine. *)
  match Engine.Pool.estimate pool "/site" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-quarantine: %s" (Core.Error.to_string e)

(* A worker killed mid-chunk: the already-served slots keep their answers,
   the unserved remainder of the chunk answers ERR internal, and the batch
   still completes in submission order. chunk_target 8 with one worker
   puts slots 0-7 in one chunk with the kill at slot 4. *)
let test_pool_supervision_mid_chunk () =
  let chaos q = q = "//kill" in
  let pool =
    Engine.Pool.create ~workers:1 ~chunk_target:8 ~chaos (paper_estimator ())
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries =
    [ "/site"; "/site/regions"; "/site/people"; "/site";
      "//kill"; "/site/regions"; "/site"; "/site/people" ]
  in
  let batch = Engine.Pool.estimate_batch pool queries in
  checki "all slots answered" 8 (List.length batch);
  List.iteri
    (fun i reply ->
      match (i, reply) with
      | i, Ok r when i < 4 ->
        checkb (Printf.sprintf "slot %d served before the crash" i) true
          (Float.is_finite r.Engine.Serve.value)
      | i, Ok _ -> Alcotest.failf "slot %d served after the crash" i
      | i, Error e when i < 4 ->
        Alcotest.failf "pre-crash slot %d failed: %s" i
          (Core.Error.to_string e)
      | _, Error e ->
        checkb "post-crash slots answer internal" true
          (Core.Error.kind e = Core.Error.Internal))
    batch;
  checki "one restart" 1 (Engine.Pool.worker_restarts pool);
  (* The pool keeps serving after the mid-chunk recovery. *)
  match Engine.Pool.estimate pool "/site" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-crash estimate: %s" (Core.Error.to_string e)

let () =
  Alcotest.run "pool"
    [ ( "work-queue",
        [ Alcotest.test_case "fifo ring" `Quick test_queue_fifo;
          Alcotest.test_case "close drains" `Quick test_queue_close_drains;
          Alcotest.test_case "concurrent producers" `Quick test_queue_concurrent;
          Alcotest.test_case "steal protocol" `Quick test_queue_steal_protocol;
          Alcotest.test_case "close wakes starved thief" `Quick
            test_queue_close_wakes_starved_thief;
          Alcotest.test_case "stealing disabled" `Quick
            test_queue_steal_disabled;
          Alcotest.test_case "contention stats" `Quick test_queue_stats;
          Alcotest.test_case "try_push never blocks" `Quick test_queue_try_push;
          Alcotest.test_case "close vs blocked push" `Quick
            test_queue_close_vs_blocked_push;
          Alcotest.test_case "close vs blocked pop" `Quick
            test_queue_close_vs_blocked_pop
        ] );
      ( "chunk-plan",
        [ QCheck_alcotest.to_alcotest prop_plan_partition;
          QCheck_alcotest.to_alcotest prop_plan_affinity;
          Alcotest.test_case "edge cases" `Quick test_plan_chunks_edges ] );
      ( "drift",
        [ Alcotest.test_case "shard accounting" `Quick test_drift_shards_sum ] );
      ( "pool",
        [ Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "invalidate bumps epoch" `Quick
            test_pool_invalidate_bumps_epoch;
          Alcotest.test_case "batch order" `Quick test_pool_batch_order;
          Alcotest.test_case "random batch shapes" `Quick
            test_pool_batch_random_shapes;
          Alcotest.test_case "profile stages" `Quick test_pool_profile;
          Alcotest.test_case "causal trace" `Quick test_pool_trace;
          Alcotest.test_case "deadline refusals" `Quick test_pool_deadline;
          Alcotest.test_case "shed-newest overload" `Quick
            test_pool_shed_newest;
          Alcotest.test_case "supervision and quarantine" `Quick
            test_pool_supervision;
          Alcotest.test_case "supervision mid-chunk" `Quick
            test_pool_supervision_mid_chunk;
          Alcotest.test_case "telemetry metrics" `Quick
            test_pool_telemetry_metrics ] );
      ( "stealing",
        [ Alcotest.test_case "deterministic steal of lone chunks" `Quick
            test_pool_work_stealing;
          Alcotest.test_case "splitting the last chunk" `Quick
            test_pool_steal_split ] );
      ("stress", [ Alcotest.test_case "4-domain mixed ops" `Slow test_pool_stress ])
    ]
