(* The serving pool: work-queue semantics, epoch-based invalidation, and a
   multi-domain stress run.

   The stress test drives a pool with 4 client domains issuing a fixed-seed
   mix of ESTIMATE / FEEDBACK / STATS / METRICS requests and then audits
   the global invariants the pool promises: no exception escapes, the
   Prometheus exposition never tears (parses, and a quiet re-scrape is
   byte-identical), the epoch each client observes is monotone
   non-decreasing, merged cache counters equal the per-shard sums, and
   per-shard drift volumes sum to the DRIFT summary. [STRESS_OPS] scales
   the per-client op count (default 800 for `dune runtest`; `make stress`
   runs 10_000). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Work queue *)

let test_queue_fifo () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Work_queue.create: capacity 0 < 1") (fun () ->
      ignore (Engine.Work_queue.create ~capacity:0));
  let q = Engine.Work_queue.create ~capacity:4 in
  checki "capacity" 4 (Engine.Work_queue.capacity q);
  checki "empty" 0 (Engine.Work_queue.length q);
  for i = 1 to 4 do
    checkb "push accepted" true (Engine.Work_queue.push q i)
  done;
  checki "full" 4 (Engine.Work_queue.length q);
  checkb "pop 1" true (Engine.Work_queue.pop q = Some 1);
  checkb "push 5 after pop" true (Engine.Work_queue.push q 5);
  (* FIFO across the ring seam *)
  List.iter
    (fun expect -> checkb "fifo order" true (Engine.Work_queue.pop q = Some expect))
    [ 2; 3; 4; 5 ]

let test_queue_close_drains () =
  let q = Engine.Work_queue.create ~capacity:4 in
  checkb "push a" true (Engine.Work_queue.push q "a");
  checkb "push b" true (Engine.Work_queue.push q "b");
  Engine.Work_queue.close q;
  checkb "closed" true (Engine.Work_queue.closed q);
  checkb "push refused" false (Engine.Work_queue.push q "c");
  checkb "drains a" true (Engine.Work_queue.pop q = Some "a");
  checkb "drains b" true (Engine.Work_queue.pop q = Some "b");
  checkb "then None" true (Engine.Work_queue.pop q = None);
  checkb "still None" true (Engine.Work_queue.pop q = None)

(* Producers block on a full queue until consumers make room; close wakes
   everyone. Run to completion = no deadlock. *)
let test_queue_concurrent () =
  let q = Engine.Work_queue.create ~capacity:2 in
  let n = 500 in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to n - 1 do
              ignore (Engine.Work_queue.push q ((p * n) + i) : bool)
            done))
  in
  let seen = Array.make (2 * n) false in
  let consumed = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        let rec loop () =
          match Engine.Work_queue.pop q with
          | None -> ()
          | Some v ->
            seen.(v) <- true;
            incr consumed;
            loop ()
        in
        loop ())
  in
  List.iter Domain.join producers;
  Engine.Work_queue.close q;
  Domain.join consumer;
  checki "all consumed" (2 * n) !consumed;
  checkb "every item exactly once" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Drift shard accounting (regression: per-shard records must sum into the
   DRIFT summary, and rotation must clear every shard's landing slot in
   lockstep with the owner's window). *)

let test_drift_shards_sum () =
  let d = Engine.Drift.create ~slots:3 ~per_slot:2 () in
  let s1 = Engine.Drift.register_shard d in
  let s2 = Engine.Drift.register_shard d in
  Engine.Drift.note_estimate d ~cache_hit:false;
  for _ = 1 to 5 do Engine.Drift.note_shard s1 ~cache_hit:true done;
  for _ = 1 to 3 do Engine.Drift.note_shard s2 ~cache_hit:false done;
  checki "shard volumes" 5 (Engine.Drift.shard_estimates s1);
  checki "window = own + shards" (1 + 5 + 3) (Engine.Drift.window_estimates d);
  checki "hits = shard hits" 5 (Engine.Drift.window_hits d);
  (* 2 observations fill a slot; 6 roll the 3-slot window over entirely,
     expiring the volumes above with the slots they were counted in. *)
  for _ = 1 to 6 do
    ignore (Engine.Drift.observe d ~estimate:1.0 ~actual:1 : float)
  done;
  for _ = 1 to 2 do
    ignore (Engine.Drift.observe d ~estimate:1.0 ~actual:1 : float)
  done;
  checki "old shard volumes expired with their slots" 0
    (Engine.Drift.shard_estimates s1 + Engine.Drift.shard_estimates s2);
  Engine.Drift.note_shard s1 ~cache_hit:false;
  checki "fresh shard counts land in the live window" 1
    (Engine.Drift.shard_estimates s1);
  match Engine.Drift.to_json d with
  | Obs.Json.Obj fields ->
    checkb "summary volume covers shards" true
      (List.assoc "window_estimates" fields
      = Obs.Json.Int (Engine.Drift.window_estimates d))
  | _ -> Alcotest.fail "drift summary not an object"

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let build_pool ?(workers = 2) doc =
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  let estimator = Core.Estimator.create ~het kernel in
  (path_tree, Engine.Pool.create ~workers estimator)

let test_pool_lifecycle () =
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Pool.create: workers 0 < 1") (fun () ->
      ignore
        (Engine.Pool.create ~workers:0
           (Core.Estimator.create
              (Core.Builder.of_string Datagen.Paper_example.document))));
  let _, pool = build_pool ~workers:2 Datagen.Paper_example.document in
  checki "workers" 2 (Engine.Pool.workers pool);
  checki "epoch starts at 0" 0 (Engine.Pool.epoch pool);
  (match Engine.Pool.estimate pool "/site/regions" with
   | Ok r -> checkb "finite" true (Float.is_finite r.Engine.Serve.value)
   | Error e -> Alcotest.failf "estimate: %s" (Core.Error.to_string e));
  (match Engine.Pool.estimate pool "/site[" with
   | Ok _ -> Alcotest.fail "bad query served"
   | Error e ->
     checkb "typed parse error" true
       (Core.Error.kind e = Core.Error.Malformed_query));
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool;  (* idempotent *)
  (match Engine.Pool.estimate pool "/site" with
   | Ok _ -> Alcotest.fail "served after shutdown"
   | Error e ->
     checkb "shutdown error" true (Core.Error.kind e = Core.Error.Internal))

let test_pool_invalidate_bumps_epoch () =
  let _, pool = build_pool Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let e0 = Engine.Pool.epoch pool in
  Engine.Pool.invalidate pool;
  checki "invalidate bumps" (e0 + 1) (Engine.Pool.epoch pool);
  (* Estimates still work after invalidation (caches repopulate). *)
  match Engine.Pool.estimate pool "/site/regions" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-invalidate: %s" (Core.Error.to_string e)

let test_pool_batch_order () =
  let path_tree, pool = build_pool Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries =
    List.map Xpath.Ast.to_string (Datagen.Workload.all_simple_paths path_tree)
  in
  (* Sequential singles establish the expected values... *)
  let expected =
    List.map
      (fun q ->
        match Engine.Pool.estimate pool q with
        | Ok r -> r.Engine.Serve.value
        | Error e -> Alcotest.failf "single %s: %s" q (Core.Error.to_string e))
      queries
  in
  (* ...then one batch (larger than the worker count, including repeats)
     must return them in submission order. *)
  let batch = Engine.Pool.estimate_batch pool (queries @ queries) in
  checki "batch size" (2 * List.length queries) (List.length batch);
  List.iteri
    (fun i reply ->
      let q = List.nth queries (i mod List.length queries) in
      let e = List.nth expected (i mod List.length queries) in
      match reply with
      | Ok r ->
        Alcotest.(check int64)
          (Printf.sprintf "slot %d (%s)" i q)
          (Int64.bits_of_float e)
          (Int64.bits_of_float r.Engine.Serve.value)
      | Error err -> Alcotest.failf "slot %d: %s" i (Core.Error.to_string err))
    batch

(* ------------------------------------------------------------------ *)
(* Work-queue contention stats. The queue counts a wait (and starts its
   clock) under the lock *before* sleeping, so polling [stats] until
   [push_waits]/[pop_waits] ticks is a deterministic rendezvous with a
   blocked domain — no sleeps, no flakes. *)

let test_queue_stats () =
  let q = Engine.Work_queue.create ~capacity:2 in
  let s0 = Engine.Work_queue.stats q in
  checki "fresh pushes" 0 s0.Engine.Work_queue.pushes;
  checki "fresh pops" 0 s0.Engine.Work_queue.pops;
  checki "fresh high-water" 0 s0.Engine.Work_queue.max_occupancy;
  checkb "push 1" true (Engine.Work_queue.push q 1);
  checkb "push 2" true (Engine.Work_queue.push q 2);
  let s1 = Engine.Work_queue.stats q in
  checki "two pushes" 2 s1.Engine.Work_queue.pushes;
  checki "high-water follows occupancy" 2 s1.Engine.Work_queue.max_occupancy;
  checki "uncontended pushes never wait" 0 s1.Engine.Work_queue.push_waits;
  let producer = Domain.spawn (fun () -> Engine.Work_queue.push q 3) in
  while (Engine.Work_queue.stats q).Engine.Work_queue.push_waits = 0 do
    Domain.cpu_relax ()
  done;
  checkb "pop releases the blocked producer" true
    (Engine.Work_queue.pop q = Some 1);
  checkb "blocked push lands" true (Domain.join producer);
  let s2 = Engine.Work_queue.stats q in
  checki "blocked push counted once" 1 s2.Engine.Work_queue.push_waits;
  checkb "producer blocking time accumulates" true
    (s2.Engine.Work_queue.push_wait_s > 0.0);
  (* Symmetric consumer-side wait on an empty ring. *)
  checkb "drain 2" true (Engine.Work_queue.pop q = Some 2);
  checkb "drain 3" true (Engine.Work_queue.pop q = Some 3);
  let consumer = Domain.spawn (fun () -> Engine.Work_queue.pop q) in
  while (Engine.Work_queue.stats q).Engine.Work_queue.pop_waits = 0 do
    Domain.cpu_relax ()
  done;
  checkb "push releases the blocked consumer" true (Engine.Work_queue.push q 9);
  checkb "blocked pop sees the push" true (Domain.join consumer = Some 9);
  let s3 = Engine.Work_queue.stats q in
  checki "all pushes counted" 4 s3.Engine.Work_queue.pushes;
  checki "all pops counted" 4 s3.Engine.Work_queue.pops;
  checki "blocked pop counted once" 1 s3.Engine.Work_queue.pop_waits;
  checkb "consumer blocking time accumulates" true
    (s3.Engine.Work_queue.pop_wait_s > 0.0)

(* ------------------------------------------------------------------ *)
(* PROFILE: per-stage percentiles over one measured batch, and the
   protocol spelling of the same. *)

let serve_handle server ?(payload = []) line =
  let remaining = ref payload in
  let read_line () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      Some l
  in
  match Engine.Serve.handle_request server ~read_line line with
  | Some r -> r
  | None -> Alcotest.failf "no response to %S" line

let test_pool_profile () =
  let _, pool = build_pool ~workers:4 Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries =
    List.init 12 (fun i -> if i mod 2 = 0 then "/site/regions" else "/site")
  in
  (match Engine.Pool.profile pool queries with
   | Error e -> Alcotest.failf "profile: %s" (Core.Error.to_string e)
   | Ok p ->
     checki "every query measured" 12 p.Engine.Serve.profiled;
     let ordered (s : Engine.Serve.stage_percentiles) =
       0.0 <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99
     in
     checkb "queue-wait percentiles ordered" true
       (ordered p.Engine.Serve.queue_wait_us);
     checkb "execute percentiles ordered" true
       (ordered p.Engine.Serve.execute_us);
     checkb "reassemble percentiles ordered" true
       (ordered p.Engine.Serve.reassemble_us);
     checkb "execute time is measured" true
       (p.Engine.Serve.execute_us.Engine.Serve.p99 > 0.0));
  (* The protocol verb frames like BATCH (count, then payload lines) and
     answers in one line; a bad query is timed, not failed. *)
  let server = Engine.Pool.server pool in
  let r =
    serve_handle server
      ~payload:[ "/site/regions"; "/site"; "/site[" ]
      "PROFILE 3"
  in
  checkb "single-line reply" true (not (String.contains r '\n'));
  checkb "profile reply shape" true
    (String.starts_with ~prefix:"OK 3 queue_wait_us " r);
  match String.split_on_char ' ' r with
  | "OK" :: "3" :: rest ->
    let kvs = List.filter (fun tok -> String.contains tok '=') rest in
    checki "eleven stage fields" 11 (List.length kvs);
    List.iter
      (fun tok ->
        let i = String.index tok '=' in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        match float_of_string_opt v with
        | Some f ->
          checkb (tok ^ " is a finite stage time") true
            (Float.is_finite f && f >= 0.0)
        | None -> Alcotest.failf "unparseable field %S" tok)
      kvs
  | _ -> Alcotest.failf "unexpected PROFILE reply %S" r

(* ------------------------------------------------------------------ *)
(* Causal trace: a traced 4-worker pool exports a lint-clean Perfetto
   trace whose slices land on the right tracks and whose flows resolve. *)

let trace_events json =
  match Obs.Json.member "traceEvents" json with
  | Some (Obs.Json.List evs) -> evs
  | _ -> Alcotest.fail "trace without traceEvents"

let ev_str field ev =
  match Obs.Json.member field ev with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let ev_int field ev =
  match Obs.Json.member field ev with
  | Some (Obs.Json.Int n) -> Some n
  | Some (Obs.Json.Float f) -> Some (int_of_float f)
  | _ -> None

let count pred evs = List.length (List.filter pred evs)

let test_pool_trace () =
  let path_tree =
    Pathtree.Path_tree.of_string Datagen.Paper_example.document
  in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table
      Datagen.Paper_example.document
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  let estimator = Core.Estimator.create ~het kernel in
  let tr = Obs.Trace.create () in
  let pool = Engine.Pool.create ~workers:4 ~trace:tr estimator in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries =
    List.init 16 (fun i -> if i mod 2 = 0 then "/site/regions" else "/site")
  in
  checki "batch answered" 16
    (List.length (Engine.Pool.estimate_batch pool queries));
  (match Engine.Pool.feedback pool "/site/regions" ~actual:3 with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "feedback: %s" (Core.Error.to_string e));
  (match Engine.Pool.explain pool "/site/regions" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "explain: %s" (Core.Error.to_string e));
  let json = Obs.Trace.to_json tr in
  (match Obs.Trace.lint json with
   | [] -> ()
   | problems ->
     Alcotest.failf "pool trace lint: %s" (String.concat "; " problems));
  let evs = trace_events json in
  let named ph name ev =
    ev_str "ph" ev = Some ph && ev_str "name" ev = Some name
  in
  let executes = List.filter (named "X" "execute") evs in
  checkb "one execute slice per query" true (List.length executes >= 16);
  checkb "execute slices live on shard tracks" true
    (List.for_all
       (fun ev ->
         match ev_int "tid" ev with
         | Some tid -> tid >= 1 && tid <= 4
         | None -> false)
       executes);
  checkb "coordinator frames the batch" true
    (count (named "X" "batch_submit") evs >= 1
    && count (named "X" "batch_gather") evs >= 1);
  let flows_started = count (fun ev -> ev_str "ph" ev = Some "s") evs in
  checkb "one flow per query" true (flows_started >= 16);
  checki "every flow lands" flows_started
    (count (fun ev -> ev_str "ph" ev = Some "f") evs);
  checki "queue-wait spans balance"
    (count (fun ev -> ev_str "ph" ev = Some "b") evs)
    (count (fun ev -> ev_str "ph" ev = Some "e") evs);
  checkb "gc counters sampled" true
    (count (fun ev -> ev_str "ph" ev = Some "C") evs > 0);
  checki "drained feedback traced" 1 (count (named "X" "feedback") evs);
  checki "drained explain traced" 1 (count (named "X" "explain") evs);
  checki "coordinator + 4 shard name rows" 5
    (count
       (fun ev ->
         ev_str "ph" ev = Some "M" && ev_str "name" ev = Some "thread_name")
       evs)

(* ------------------------------------------------------------------ *)
(* Contention telemetry surfaces in the merged exposition and STATS. *)

(* A metrics exposition parses iff every non-comment line is
   "name{labels} value" with a finite value and names are sorted runs
   grouped by series (the deterministic-merge contract). *)
let lint_prometheus text =
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "torn metrics line: %S" line
        | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          (* NaN is legal exposition (empty drift window); a torn line is
             not parseable at all. *)
          (match float_of_string_opt v with
           | Some _ -> ()
           | None -> Alcotest.failf "unparseable value in %S" line)
      end)
    lines

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_pool_telemetry_metrics () =
  let _, pool = build_pool ~workers:2 Datagen.Paper_example.document in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  ignore
    (Engine.Pool.estimate_batch pool (List.init 8 (fun _ -> "/site/regions"))
      : (Engine.Serve.estimate_reply, Core.Error.t) result list);
  let text = Engine.Pool.metrics_text pool in
  lint_prometheus text;
  List.iter
    (fun needle -> checkb needle true (contains ~needle text))
    [ "xseed_engine_pool_queue_wait_us_count";
      "xseed_engine_pool_batch_chunk_count";
      "xseed_engine_pool_queue_pushes";
      "xseed_engine_pool_queue_max_occupancy";
      "xseed_engine_gc_minor_words{shard=\"0\"}";
      "xseed_engine_gc_minor_words{shard=\"1\"}";
      "xseed_engine_pool_busy_fraction{shard=\"0\"}";
      "xseed_engine_pool_busy_fraction{shard=\"1\"}" ];
  (* Scrape self-observability: the first scrape latches its own duration,
     and after fresh traffic the next scrape publishes it. Once published,
     a quiet re-scrape re-emits the latched values byte-for-byte (asserted
     wholesale by [test_pool_metrics_quiet_stress]). *)
  ignore
    (Engine.Pool.estimate pool "/site/regions"
      : (Engine.Serve.estimate_reply, Core.Error.t) result);
  let text2 = Engine.Pool.metrics_text pool in
  List.iter
    (fun needle -> checkb needle true (contains ~needle text2))
    [ "xseed_scrape_total 1"; "xseed_scrape_duration_seconds" ];
  (* STATS mirrors the queue's contention counters. *)
  match Engine.Pool.stats_json pool with
  | Obs.Json.Obj fields ->
    (match List.assoc_opt "pool" fields with
     | Some (Obs.Json.Obj pf) ->
       List.iter
         (fun k -> checkb ("pool stats has " ^ k) true (List.mem_assoc k pf))
         [ "queue_pushes"; "queue_pops"; "queue_push_waits";
           "queue_pop_waits"; "queue_push_wait_s"; "queue_pop_wait_s";
           "queue_max_occupancy" ];
       (match List.assoc "queue_pushes" pf with
        | Obs.Json.Int n -> checkb "batch traffic counted" true (n >= 8)
        | _ -> Alcotest.fail "queue_pushes not an int")
     | _ -> Alcotest.fail "stats without pool object")
  | _ -> Alcotest.fail "stats_json not an object"

(* ------------------------------------------------------------------ *)
(* Stress: 4 client domains x STRESS_OPS mixed operations, fixed seed. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s ->
    (match int_of_string_opt s with
     | Some n when n > 0 -> n
     | _ -> invalid_arg (name ^ " must be a positive integer"))
  | None -> default

let stress_ops () = env_int "STRESS_OPS" 800
let stress_workers () = env_int "STRESS_WORKERS" 4

let test_pool_stress () =
  let ops = stress_ops () in
  let clients = 4 in
  let doc = Datagen.Xmark.generate ~seed:11 ~items:30 () in
  let path_tree, pool = build_pool ~workers:(stress_workers ()) doc in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let server = Engine.Pool.server pool in
  let queries =
    Array.of_list
      (List.map Xpath.Ast.to_string
         (let rng = Datagen.Rng.create ~seed:5 in
          Datagen.Workload.all_simple_paths path_tree
          @ Datagen.Workload.branching path_tree ~rng ~count:20 ()))
  in
  let failures = Atomic.make 0 in
  let epoch_regressions = Atomic.make 0 in
  let client c =
    let rng = Datagen.Rng.create ~seed:(100 + c) in
    let last_epoch = ref 0 in
    for _ = 1 to ops do
      (* Epoch reads from client domains must be monotone non-decreasing. *)
      let e = Engine.Pool.epoch pool in
      if e < !last_epoch then Atomic.incr epoch_regressions;
      last_epoch := e;
      match Datagen.Rng.int rng 100 with
      | n when n < 70 ->
        let q = queries.(Datagen.Rng.int rng (Array.length queries)) in
        (match Engine.Pool.estimate pool q with
         | Ok r ->
           if not (Float.is_finite r.Engine.Serve.value && r.Engine.Serve.value >= 0.0)
           then Atomic.incr failures
         | Error _ -> Atomic.incr failures)
      | n when n < 80 ->
        let q = queries.(Datagen.Rng.int rng (Array.length queries)) in
        (match
           Engine.Pool.feedback pool q ~actual:(Datagen.Rng.int rng 50)
         with
         | Ok _ -> ()
         | Error _ -> Atomic.incr failures)
      | n when n < 90 -> ignore (Engine.Pool.stats_json pool : Obs.Json.t)
      | _ -> lint_prometheus (Engine.Pool.metrics_text pool)
    done
  in
  let domains = List.init clients (fun c -> Domain.spawn (fun () -> client c)) in
  List.iter Domain.join domains;
  checki "no failed operations" 0 (Atomic.get failures);
  checki "no epoch regressions" 0 (Atomic.get epoch_regressions);
  (* Post-run audits, quiesced. *)
  let merged = Engine.Pool.cache_counters pool in
  let per_shard = Engine.Pool.shard_cache_counters pool in
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 per_shard in
  checki "hits sum" merged.Engine.Lru_cache.hits
    (sum (fun c -> c.Engine.Lru_cache.hits));
  checki "misses sum" merged.Engine.Lru_cache.misses
    (sum (fun c -> c.Engine.Lru_cache.misses));
  checki "insertions sum" merged.Engine.Lru_cache.insertions
    (sum (fun c -> c.Engine.Lru_cache.insertions));
  checki "evictions sum" merged.Engine.Lru_cache.evictions
    (sum (fun c -> c.Engine.Lru_cache.evictions));
  checkb "some traffic was served" true
    (merged.Engine.Lru_cache.hits + merged.Engine.Lru_cache.misses > 0);
  (* Quiet pool: two scrapes must be byte-identical (no torn/duplicated
     series, idempotent republication). *)
  let m1 = Engine.Pool.metrics_text pool in
  let m2 = Engine.Pool.metrics_text pool in
  lint_prometheus m1;
  checks "quiet scrapes identical" m1 m2;
  (* Per-shard drift volumes sum into the DRIFT summary. As long as no
     window slot has expired (observations fit in slots x per_slot), the
     summed window volume must equal every estimate the shards served plus
     the feedback path's own notes — records from 4 worker rings and the
     coordinator reconciling exactly. *)
  (match Engine.Pool.drift pool with
   | None -> Alcotest.fail "stress pool has telemetry"
   | Some d ->
     let v =
       match Obs.Json.member "window_estimates" (Engine.Drift.to_json d) with
       | Some (Obs.Json.Int v) -> v
       | _ -> Alcotest.fail "DRIFT summary lacks window_estimates"
     in
     checki "drift summary = window volume" (Engine.Drift.window_estimates d) v;
     if Engine.Pool.feedback_seen pool <= 6 * 64 then
       checki "shard volumes sum to all served traffic"
         (merged.Engine.Lru_cache.hits + merged.Engine.Lru_cache.misses
         + Engine.Pool.feedback_seen pool)
         v);
  (* The protocol front door still answers coherently. *)
  (match server.Engine.Serve.stats_json () with
   | Obs.Json.Obj fields -> checkb "stats has pool" true (List.mem_assoc "pool" fields)
   | _ -> Alcotest.fail "stats_json not an object")

(* ------------------------------------------------------------------ *)
(* Close racing blocked producers/consumers. The wait counters tick under
   the queue lock before the domain sleeps, so spinning on them is a
   deterministic rendezvous with a domain that is provably blocked inside
   push/pop when close lands. *)

let test_queue_close_vs_blocked_push () =
  let q = Engine.Work_queue.create ~capacity:1 in
  checkb "fill" true (Engine.Work_queue.push q 1);
  let producer = Domain.spawn (fun () -> Engine.Work_queue.push q 2) in
  while (Engine.Work_queue.stats q).Engine.Work_queue.push_waits = 0 do
    Domain.cpu_relax ()
  done;
  (* The producer is asleep inside push; close must wake it and refuse. *)
  Engine.Work_queue.close q;
  checkb "blocked push returns false on close" false (Domain.join producer);
  checkb "pre-close item drains" true (Engine.Work_queue.pop q = Some 1);
  checkb "refused item was never enqueued" true
    (Engine.Work_queue.pop q = None);
  (* try_push answers `Closed without blocking. *)
  checkb "try_push sees closed" true (Engine.Work_queue.try_push q 3 = `Closed)

let test_queue_close_vs_blocked_pop () =
  let q = Engine.Work_queue.create ~capacity:1 in
  let consumer = Domain.spawn (fun () -> Engine.Work_queue.pop q) in
  while (Engine.Work_queue.stats q).Engine.Work_queue.pop_waits = 0 do
    Domain.cpu_relax ()
  done;
  (* The consumer is asleep inside pop on an empty ring; close wakes it
     into the drained-and-closed case. *)
  Engine.Work_queue.close q;
  checkb "blocked pop returns None on close" true (Domain.join consumer = None)

let test_queue_try_push () =
  let q = Engine.Work_queue.create ~capacity:2 in
  checkb "try_push 1" true (Engine.Work_queue.try_push q 1 = `Ok);
  checkb "try_push 2" true (Engine.Work_queue.try_push q 2 = `Ok);
  checkb "try_push full" true (Engine.Work_queue.try_push q 3 = `Full);
  let s = Engine.Work_queue.stats q in
  checki "refused push not counted" 2 s.Engine.Work_queue.pushes;
  checkb "pop makes room" true (Engine.Work_queue.pop q = Some 1);
  checkb "try_push after pop" true (Engine.Work_queue.try_push q 3 = `Ok)

(* ------------------------------------------------------------------ *)
(* Failure handling: deadlines, shedding, supervision, quarantine. *)

let paper_estimator () =
  let doc = Datagen.Paper_example.document in
  let path_tree = Pathtree.Path_tree.of_string doc in
  let kernel =
    Core.Builder.of_string ~table:path_tree.Pathtree.Path_tree.table doc
  in
  let het, _ = Core.Het_builder.build ~kernel ~path_tree () in
  Core.Estimator.create ~het kernel

(* A negative deadline is already exceeded at dequeue, so every request is
   refused deterministically — no sleeps, no clock races. *)
let test_pool_deadline () =
  let pool =
    Engine.Pool.create ~workers:2 ~deadline_s:(-1.0) (paper_estimator ())
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  let queries = [ "/site/regions"; "/site"; "/site/people" ] in
  List.iter
    (fun reply ->
      match reply with
      | Ok _ -> Alcotest.fail "expired request was served"
      | Error e ->
        checkb "ERR timeout" true (Core.Error.kind e = Core.Error.Timeout);
        checki "timeout exits 75" 75 (Core.Error.exit_code e))
    (Engine.Pool.estimate_batch pool queries);
  checki "timeout_total counts refusals" 3 (Engine.Pool.timeout_total pool);
  (* The refusals are visible in PROFILE and in the flight records. *)
  (match Engine.Pool.profile pool queries with
   | Ok p ->
     checki "profile reports timeouts" 3 p.Engine.Serve.timed_out;
     checki "profile reports no sheds" 0 p.Engine.Serve.shed
   | Error e -> Alcotest.failf "profile: %s" (Core.Error.to_string e));
  checkb "timeouts leave flight records" true
    (List.exists
       (fun (r : Engine.Flight_recorder.record) ->
         r.Engine.Flight_recorder.cache = Engine.Flight_recorder.Timed_out)
       (Engine.Pool.recent pool));
  (* Failure counters surface in STATS. *)
  match Engine.Pool.stats_json pool with
  | Obs.Json.Obj fields ->
    (match List.assoc "pool" fields with
     | Obs.Json.Obj pf ->
       checkb "stats has timeout_total" true
         (List.assoc "timeout_total" pf = Obs.Json.Int 6)
       (* 3 from the batch + 3 from the profile run *)
     | _ -> Alcotest.fail "pool stats not an object")
  | _ -> Alcotest.fail "stats_json not an object"

(* A chaos gate that blocks the (single) worker inside a designated query
   lets the test hold the pool provably busy while it overflows the
   admission queue — the shed decisions become deterministic. *)
type gate = {
  g_lock : Mutex.t;
  g_cond : Condition.t;
  mutable g_entered : bool;
  mutable g_released : bool;
}

let gate () =
  { g_lock = Mutex.create (); g_cond = Condition.create ();
    g_entered = false; g_released = false }

let gate_hook g = function
  | "//sleepy" ->
    Mutex.lock g.g_lock;
    g.g_entered <- true;
    Condition.broadcast g.g_cond;
    while not g.g_released do Condition.wait g.g_cond g.g_lock done;
    Mutex.unlock g.g_lock;
    false (* then serve normally *)
  | _ -> false

let gate_await_entered g =
  Mutex.lock g.g_lock;
  while not g.g_entered do Condition.wait g.g_cond g.g_lock done;
  Mutex.unlock g.g_lock

let gate_release g =
  Mutex.lock g.g_lock;
  g.g_released <- true;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_lock

let test_pool_shed_newest () =
  let g = gate () in
  let pool =
    Engine.Pool.create ~workers:1 ~queue_capacity:1
      ~shed_policy:`Shed_newest ~chaos:(gate_hook g) (paper_estimator ())
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  (* Occupy the only worker inside the gate... *)
  let sleeper = Domain.spawn (fun () -> Engine.Pool.estimate pool "//sleepy") in
  gate_await_entered g;
  (* ...then overflow the capacity-1 queue: slot 0 is admitted, slots 1-2
     must be shed (newest first) without blocking. *)
  let batcher =
    Domain.spawn (fun () ->
        Engine.Pool.estimate_batch pool [ "/site"; "/site"; "/site" ])
  in
  while Engine.Pool.shed_total pool < 2 do Domain.cpu_relax () done;
  checki "exactly two sheds" 2 (Engine.Pool.shed_total pool);
  gate_release g;
  (match Domain.join sleeper with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "sleepy: %s" (Core.Error.to_string e));
  (match Domain.join batcher with
   | [ first; second; third ] ->
     (match first with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "admitted slot: %s" (Core.Error.to_string e));
     List.iter
       (fun reply ->
         match reply with
         | Ok _ -> Alcotest.fail "shed slot was served"
         | Error e ->
           checkb "ERR overloaded" true
             (Core.Error.kind e = Core.Error.Overloaded);
           checki "overloaded exits 75" 75 (Core.Error.exit_code e);
           (* The shed diagnostic names the live queue capacity in the
              unified limit= form. *)
           checkb "names limit=1" true
             (let msg = Core.Error.message e in
              let needle = "limit=1" in
              let nl = String.length needle and n = String.length msg in
              let rec scan i =
                i + nl <= n && (String.sub msg i nl = needle || scan (i + 1))
              in
              scan 0))
       [ second; third ]
   | replies -> Alcotest.failf "unexpected batch size %d" (List.length replies));
  checkb "sheds leave flight records" true
    (List.exists
       (fun (r : Engine.Flight_recorder.record) ->
         r.Engine.Flight_recorder.cache = Engine.Flight_recorder.Shed)
       (Engine.Pool.recent pool))

(* One injected worker death: the in-flight slot answers ERR internal (the
   batch never hangs), the worker restarts in place, and the pool keeps
   serving. A second death of the same query quarantines it. *)
let test_pool_supervision () =
  let kills = Atomic.make 0 in
  let chaos q =
    if q = "//kill" then begin
      Atomic.incr kills;
      true
    end
    else false
  in
  let pool = Engine.Pool.create ~workers:1 ~chaos (paper_estimator ()) in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  (* First crash: answered, restarted, not yet quarantined. *)
  (match Engine.Pool.estimate pool "//kill" with
   | Ok _ -> Alcotest.fail "killed query was served"
   | Error e ->
     checkb "ERR internal" true (Core.Error.kind e = Core.Error.Internal);
     checkb "diagnostic names the crash" true
       (let msg = Core.Error.message e in
        let has needle =
          let nl = String.length needle and ml = String.length msg in
          let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
          go 0
        in
        has "died" && has "restarted"));
  checki "one restart" 1 (Engine.Pool.worker_restarts pool);
  checki "not yet quarantined" 0 (Engine.Pool.quarantined_count pool);
  (* The restarted worker still serves. *)
  (match Engine.Pool.estimate pool "/site/regions" with
   | Ok r -> checkb "finite" true (Float.is_finite r.Engine.Serve.value)
   | Error e -> Alcotest.failf "post-restart: %s" (Core.Error.to_string e));
  (* Second crash of the same query: quarantined. *)
  (match Engine.Pool.estimate pool "//kill" with
   | Ok _ -> Alcotest.fail "killed query was served"
   | Error e ->
     checkb "second crash is internal" true
       (Core.Error.kind e = Core.Error.Internal));
  checki "two restarts" 2 (Engine.Pool.worker_restarts pool);
  checki "quarantined after two kills" 1 (Engine.Pool.quarantined_count pool);
  (* Third submission is refused at dequeue without executing: the chaos
     hook never fires again. *)
  (match Engine.Pool.estimate pool "//kill" with
   | Ok _ -> Alcotest.fail "quarantined query was served"
   | Error e ->
     checkb "quarantine is internal" true
       (Core.Error.kind e = Core.Error.Internal));
  checki "no third kill" 2 (Atomic.get kills);
  checki "no third restart" 2 (Engine.Pool.worker_restarts pool);
  (* Untouched queries keep working around the quarantine. *)
  match Engine.Pool.estimate pool "/site" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-quarantine: %s" (Core.Error.to_string e)

let () =
  Alcotest.run "pool"
    [ ( "work-queue",
        [ Alcotest.test_case "fifo ring" `Quick test_queue_fifo;
          Alcotest.test_case "close drains" `Quick test_queue_close_drains;
          Alcotest.test_case "concurrent producers" `Quick test_queue_concurrent;
          Alcotest.test_case "contention stats" `Quick test_queue_stats;
          Alcotest.test_case "try_push never blocks" `Quick test_queue_try_push;
          Alcotest.test_case "close vs blocked push" `Quick
            test_queue_close_vs_blocked_push;
          Alcotest.test_case "close vs blocked pop" `Quick
            test_queue_close_vs_blocked_pop
        ] );
      ( "drift",
        [ Alcotest.test_case "shard accounting" `Quick test_drift_shards_sum ] );
      ( "pool",
        [ Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "invalidate bumps epoch" `Quick
            test_pool_invalidate_bumps_epoch;
          Alcotest.test_case "batch order" `Quick test_pool_batch_order;
          Alcotest.test_case "profile stages" `Quick test_pool_profile;
          Alcotest.test_case "causal trace" `Quick test_pool_trace;
          Alcotest.test_case "deadline refusals" `Quick test_pool_deadline;
          Alcotest.test_case "shed-newest overload" `Quick
            test_pool_shed_newest;
          Alcotest.test_case "supervision and quarantine" `Quick
            test_pool_supervision;
          Alcotest.test_case "telemetry metrics" `Quick
            test_pool_telemetry_metrics ] );
      ("stress", [ Alcotest.test_case "4-domain mixed ops" `Slow test_pool_stress ])
    ]
