(* Obs.Trace: interning, ring-wrap semantics, the bounded-allocation record
   path, the Perfetto JSON exporter (golden shape + round-trip through the
   linter) and the linter's negative cases. *)

let mem name j = Obs.Json.member name j

let events json =
  match mem "traceEvents" json with
  | Some (Obs.Json.List evs) -> evs
  | _ -> Alcotest.fail "traceEvents array missing"

let str_field name j =
  match mem name j with Some (Obs.Json.String s) -> Some s | _ -> None

let num_field name j =
  match mem name j with
  | Some (Obs.Json.Float f) -> Some f
  | Some (Obs.Json.Int i) -> Some (float_of_int i)
  | _ -> None

let ph j = Option.value ~default:"?" (str_field "ph" j)

(* ------------------------------------------------------------------ *)
(* Interning *)

let test_intern () =
  let tr = Obs.Trace.create () in
  let a = Obs.Trace.intern tr "alpha" in
  let b = Obs.Trace.intern tr "beta" in
  Alcotest.(check bool) "distinct names, distinct ids" true (a <> b);
  Alcotest.(check int) "same name, same id" a (Obs.Trace.intern tr "alpha");
  (* Interning survives table growth. *)
  for i = 0 to 99 do
    ignore (Obs.Trace.intern tr (Printf.sprintf "n%d" i) : int)
  done;
  Alcotest.(check int) "id stable across growth" a
    (Obs.Trace.intern tr "alpha")

(* ------------------------------------------------------------------ *)
(* Ring wrap: the buffer keeps the newest [capacity] events. *)

let test_ring_wrap () =
  let tr = Obs.Trace.create ~capacity:8 () in
  let buf = Obs.Trace.register tr ~tid:1 ~name:"t" in
  let n = Obs.Trace.intern tr "ev" in
  for i = 0 to 19 do
    Obs.Trace.complete buf ~name:n ~ts:(float_of_int i *. 1e-3) ~dur:1e-4
  done;
  Alcotest.(check int) "total counts lifetime events" 20
    (Obs.Trace.total buf);
  let evs = events (Obs.Trace.to_json tr) in
  let slices = List.filter (fun e -> ph e = "X") evs in
  Alcotest.(check int) "ring keeps newest capacity slices" 8
    (List.length slices);
  (* The survivors are the last 8 records: ts 12ms .. 19ms. *)
  let min_ts =
    List.fold_left
      (fun acc e ->
        match num_field "ts" e with Some t -> Float.min acc t | None -> acc)
      infinity slices
  in
  Alcotest.(check bool) "oldest surviving slice is record 12" true
    (Float.abs (min_ts -. 12_000.0) < 1.0)

(* ------------------------------------------------------------------ *)
(* Record-path allocation: a ring write stores scalars into preallocated
   arrays. Without flambda the float arguments themselves may box, so the
   budget is a few words per event — not the ~dozens a record/closure/list
   based design would cost. *)

let test_record_path_allocation () =
  let tr = Obs.Trace.create ~capacity:1024 () in
  let buf = Obs.Trace.register tr ~tid:1 ~name:"t" in
  let n = Obs.Trace.intern tr "ev" in
  let rounds = 1000 in
  (* Warm up so the first-call paths (closure setup, etc.) are excluded. *)
  for _ = 1 to 10 do
    Obs.Trace.complete buf ~name:n ~ts:0.0 ~dur:0.0
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    Obs.Trace.complete buf ~name:n ~ts:1.0 ~dur:0.5
  done;
  let per_event = (Gc.minor_words () -. w0) /. float_of_int rounds in
  Alcotest.(check bool)
    (Printf.sprintf "allocation per event bounded (%.1f words)" per_event)
    true (per_event <= 16.0)

(* ------------------------------------------------------------------ *)
(* Exporter: golden structural shape + round-trip through the linter. *)

let rich_trace () =
  let tr = Obs.Trace.create () in
  let a = Obs.Trace.register tr ~tid:0 ~name:"coordinator" in
  let b = Obs.Trace.register tr ~tid:1 ~name:"shard-0" in
  let n_sub = Obs.Trace.intern tr "submit" in
  let n_exec = Obs.Trace.intern tr "execute" in
  let n_flow = Obs.Trace.intern tr "query" in
  let n_wait = Obs.Trace.intern tr "queue_wait" in
  let n_gc = Obs.Trace.intern tr "gc.minor_words" in
  let n_mark = Obs.Trace.intern tr "mark" in
  (* Coordinator: a submit slice wrapping a flow start + async begin. *)
  Obs.Trace.flow_start a ~name:n_flow ~ts:1e-3 ~id:7;
  Obs.Trace.async_begin a ~name:n_wait ~ts:1e-3 ~id:7;
  Obs.Trace.complete a ~name:n_sub ~ts:5e-4 ~dur:1e-3;
  Obs.Trace.begin_span a ~name:n_sub ~ts:3e-3;
  Obs.Trace.end_span a ~name:n_sub ~ts:4e-3;
  Obs.Trace.instant a ~name:n_mark ~ts:5e-3;
  (* Shard: ends the async span, runs the execute slice, steps the flow. *)
  Obs.Trace.async_end b ~name:n_wait ~ts:2e-3 ~id:7;
  Obs.Trace.complete_seq b ~name:n_exec ~ts:2e-3 ~dur:1e-3 ~seq:7;
  Obs.Trace.flow_step b ~name:n_flow ~ts:2.5e-3 ~id:7;
  Obs.Trace.counter b ~name:n_gc ~ts:3e-3 ~value:42.0;
  (* Coordinator gathers: the flow lands. *)
  Obs.Trace.flow_end a ~name:n_flow ~ts:6e-3 ~id:7;
  tr

let test_export_shape () =
  let json = Obs.Trace.to_json (rich_trace ()) in
  (match mem "displayTimeUnit" json with
   | Some (Obs.Json.String "ms") -> ()
   | _ -> Alcotest.fail "displayTimeUnit ms missing");
  let evs = events json in
  let phase p = List.filter (fun e -> ph e = p) evs in
  Alcotest.(check int) "two thread_name + one process_name records" 3
    (List.length (phase "M"));
  Alcotest.(check int) "complete slices" 2 (List.length (phase "X"));
  Alcotest.(check int) "begin/end pair" 2
    (List.length (phase "B") + List.length (phase "E"));
  Alcotest.(check int) "flow s/t/f" 3
    (List.length (phase "s") + List.length (phase "t")
    + List.length (phase "f"));
  Alcotest.(check int) "async b/e" 2
    (List.length (phase "b") + List.length (phase "e"));
  Alcotest.(check int) "counter sample" 1 (List.length (phase "C"));
  Alcotest.(check int) "instant" 1 (List.length (phase "i"));
  (* The execute slice carries its submission seq as an argument. *)
  let seq_args =
    List.filter_map
      (fun e ->
        match mem "args" e with
        | Some args -> num_field "seq" args
        | None -> None)
      (phase "X")
  in
  Alcotest.(check (list (float 1e-9))) "execute slice links seq" [ 7.0 ]
    seq_args;
  (* Per-track timestamps are exported in non-decreasing order even though
     X slices are recorded at their end instant. *)
  let tracks = Hashtbl.create 4 in
  List.iter
    (fun e ->
      if ph e <> "M" then
        match (num_field "tid" e, num_field "ts" e) with
        | Some tid, Some ts ->
          let last =
            Option.value ~default:neg_infinity (Hashtbl.find_opt tracks tid)
          in
          Alcotest.(check bool) "ts non-decreasing per track" true (ts >= last);
          Hashtbl.replace tracks tid ts
        | _ -> Alcotest.fail "event missing tid/ts")
    evs

let test_export_roundtrip_lints () =
  let tr = rich_trace () in
  let reparsed =
    Obs.Json.of_string (Obs.Json.to_string (Obs.Trace.to_json tr))
  in
  Alcotest.(check (list string)) "round-tripped trace lints clean" []
    (Obs.Trace.lint reparsed)

let test_write_lints () =
  let path = Filename.temp_file "xseed_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.write (rich_trace ()) path;
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check bool) "newline-terminated" true
    (String.length contents > 0 && contents.[String.length contents - 1] = '\n');
  Alcotest.(check (list string)) "written file lints clean" []
    (Obs.Trace.lint (Obs.Json.of_string contents))

(* ------------------------------------------------------------------ *)
(* Linter negatives: each structural rule actually fires. *)

let base_event ?(ph = "i") ?(ts = 1.0) ?(tid = 1) ?extra name =
  Obs.Json.Obj
    ([ ("ph", Obs.Json.String ph);
       ("name", Obs.Json.String name);
       ("pid", Obs.Json.Int 1);
       ("tid", Obs.Json.Int tid);
       ("ts", Obs.Json.Float ts);
       ("s", Obs.Json.String "t") ]
    @ Option.value ~default:[] extra)

let wrap evs = Obs.Json.Obj [ ("traceEvents", Obs.Json.List evs) ]

let check_dirty label json =
  Alcotest.(check bool) label true (Obs.Trace.lint json <> [])

let test_lint_negatives () =
  Alcotest.(check (list string)) "empty trace is clean" []
    (Obs.Trace.lint (wrap []));
  check_dirty "missing traceEvents" (Obs.Json.Obj []);
  check_dirty "decreasing ts on one track"
    (wrap [ base_event ~ts:2.0 "a"; base_event ~ts:1.0 "b" ]);
  check_dirty "X without dur" (wrap [ base_event ~ph:"X" "a" ]);
  check_dirty "negative dur"
    (wrap
       [ base_event ~ph:"X" ~extra:[ ("dur", Obs.Json.Float (-1.0)) ] "a" ]);
  check_dirty "dangling E" (wrap [ base_event ~ph:"E" "a" ]);
  check_dirty "unclosed B" (wrap [ base_event ~ph:"B" "a" ]);
  check_dirty "mismatched B/E names"
    (wrap [ base_event ~ph:"B" "a"; base_event ~ph:"E" ~ts:2.0 "b" ]);
  let flow phase ts id =
    base_event ~ph:phase ~ts
      ~extra:[ ("id", Obs.Json.Int id); ("cat", Obs.Json.String "flow") ]
      "q"
  in
  check_dirty "flow step without start" (wrap [ flow "t" 1.0 3 ]);
  check_dirty "flow start without end" (wrap [ flow "s" 1.0 3 ]);
  Alcotest.(check (list string)) "complete flow is clean" []
    (Obs.Trace.lint (wrap [ flow "s" 1.0 3; flow "t" 2.0 3; flow "f" 3.0 3 ]));
  let async phase ts id =
    base_event ~ph:phase ~ts
      ~extra:[ ("id", Obs.Json.Int id); ("cat", Obs.Json.String "async") ]
      "w"
  in
  check_dirty "async begin without end" (wrap [ async "b" 1.0 9 ]);
  check_dirty "async end without begin" (wrap [ async "e" 1.0 9 ]);
  Alcotest.(check (list string)) "balanced async is clean" []
    (Obs.Trace.lint (wrap [ async "b" 1.0 9; async "e" 2.0 9 ]))

(* ------------------------------------------------------------------ *)
(* Multi-domain recording: one buffer per domain, exported merged. *)

let test_multi_domain_buffers () =
  let tr = Obs.Trace.create () in
  let per_domain = 500 in
  let domains =
    Array.init 4 (fun i ->
        let buf =
          Obs.Trace.register tr ~tid:(i + 1)
            ~name:(Printf.sprintf "worker-%d" i)
        in
        Domain.spawn (fun () ->
            let n = Obs.Trace.intern tr (Printf.sprintf "op-%d" i) in
            for k = 1 to per_domain do
              Obs.Trace.complete buf ~name:n
                ~ts:(float_of_int k *. 1e-6)
                ~dur:1e-7
            done))
  in
  Array.iter Domain.join domains;
  let json = Obs.Trace.to_json tr in
  let slices = List.filter (fun e -> ph e = "X") (events json) in
  Alcotest.(check int) "all domains' events exported" (4 * per_domain)
    (List.length slices);
  Alcotest.(check (list string)) "merged trace lints clean" []
    (Obs.Trace.lint (Obs.Json.of_string (Obs.Json.to_string json)))

let () =
  Alcotest.run "trace"
    [
      ("intern", [ Alcotest.test_case "intern" `Quick test_intern ]);
      ( "ring",
        [
          Alcotest.test_case "wrap keeps newest" `Quick test_ring_wrap;
          Alcotest.test_case "record path allocation" `Quick
            test_record_path_allocation;
        ] );
      ( "export",
        [
          Alcotest.test_case "shape" `Quick test_export_shape;
          Alcotest.test_case "round-trip lints" `Quick
            test_export_roundtrip_lints;
          Alcotest.test_case "write lints" `Quick test_write_lints;
        ] );
      ("lint", [ Alcotest.test_case "negatives" `Quick test_lint_negatives ]);
      ( "domains",
        [
          Alcotest.test_case "parallel buffers" `Quick
            test_multi_domain_buffers;
        ] );
    ]
