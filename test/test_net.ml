(* The TCP transport: frame codec invariants, the HELLO handshake, and a
   live loopback server driven through Net.Client — including the two
   accept-time refusals (connection cap, idle timeout) whose ERR payloads
   must name the active limit. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains ~needle hay =
  let nl = String.length needle and n = String.length hay in
  let rec scan i = i + nl <= n && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Frame codec (pure) *)

let decode ?max_payload s =
  Net.Frame.decode ?max_payload (Bytes.of_string s) ~off:0 ~len:(String.length s)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let encoded = Net.Frame.encode_string payload in
      checki "length header + payload"
        (Net.Frame.header_bytes + String.length payload)
        (String.length encoded);
      match decode encoded with
      | Net.Frame.Frame { payload = got; consumed } ->
        checks "payload survives" payload got;
        checki "everything consumed" (String.length encoded) consumed
      | _ -> Alcotest.failf "round trip failed for %S" payload)
    [ ""; "PING"; "BATCH 2\n//a\n//b"; String.make 4096 'x'; "caf\xc3\xa9 \x00" ]

let test_frame_streaming () =
  (* Two frames back to back decode one at a time; a split anywhere inside
     the first is Need_more, never an error. *)
  let a = Net.Frame.encode_string "first" in
  let b = Net.Frame.encode_string "second payload" in
  let stream = a ^ b in
  (match decode stream with
   | Net.Frame.Frame { payload; consumed } ->
     checks "first frame" "first" payload;
     checki "consumed only the first" (String.length a) consumed
   | _ -> Alcotest.fail "first frame did not decode");
  for cut = 0 to String.length a - 1 do
    match decode (String.sub stream 0 cut) with
    | Net.Frame.Need_more -> ()
    | _ -> Alcotest.failf "cut at %d was not Need_more" cut
  done

let test_frame_limits () =
  (* The length field is attacker-controlled: over the cap it must refuse
     before any payload is read. *)
  let encoded = Net.Frame.encode_string (String.make 100 'x') in
  (match decode ~max_payload:99 encoded with
   | Net.Frame.Too_large n -> checki "claims 100" 100 n
   | _ -> Alcotest.fail "oversized frame accepted");
  (* A header alone claiming 2^31-ish bytes refuses without the payload. *)
  let header = String.sub (Net.Frame.encode_string "") 0 4 in
  let huge = "\x7f\xff\xff\xff" ^ String.sub header 0 0 in
  (match decode ("\x7f\xff\xff\xff" ^ "\x00\x00\x00\x00") with
   | Net.Frame.Too_large _ -> ()
   | _ -> Alcotest.fail "huge header accepted");
  ignore huge

let test_frame_crc () =
  let encoded = Bytes.of_string (Net.Frame.encode_string "payload") in
  (* Flip one payload bit: the frame is fully present but fails its CRC. *)
  let i = Net.Frame.header_bytes + 2 in
  Bytes.set encoded i (Char.chr (Char.code (Bytes.get encoded i) lxor 1));
  match decode (Bytes.to_string encoded) with
  | Net.Frame.Crc_mismatch -> ()
  | _ -> Alcotest.fail "corrupt payload accepted"

let test_hello () =
  (match Net.Frame.parse_hello Net.Frame.hello with
   | Ok p -> checki "negotiated protocol" Engine.Serve.protocol_version p
   | Error e -> Alcotest.failf "own hello refused: %s" e);
  (match Net.Frame.parse_hello "HELLO xseed 999" with
   | Ok _ -> Alcotest.fail "future protocol accepted"
   | Error e -> checkb "names both revisions" true (contains ~needle:"999" e));
  List.iter
    (fun bad ->
      match Net.Frame.parse_hello bad with
      | Ok _ -> Alcotest.failf "%S accepted" bad
      | Error e -> checkb "ERR line" true (contains ~needle:"ERR" e))
    [ ""; "HELLO"; "HELLO other 1"; "ESTIMATE //a" ]

(* ------------------------------------------------------------------ *)
(* Live loopback server *)

let paper_server () =
  let syn = Core.Synopsis.build Datagen.Paper_example.document in
  let estimator =
    Core.Estimator.create
      ~card_threshold:(Core.Synopsis.card_threshold syn)
      ?het:(Core.Synopsis.het syn)
      (Core.Synopsis.kernel syn)
  in
  Engine.server (Engine.create estimator)

(* Start a loopback server on an ephemeral port, run [f port], always stop
   and join the serving domain. *)
let with_server ?(config = Net.Server.default_config) f =
  let server = paper_server () in
  let srv =
    match Net.Server.create { config with Net.Server.port = 0 } with
    | Ok s -> s
    | Error e -> Alcotest.failf "listen: %s" (Core.Error.to_string e)
  in
  let domain =
    Domain.spawn (fun () ->
        Net.Server.run srv
          ~make_session:(fun () -> (server, fun _ _ -> None))
          ())
  in
  Fun.protect
    ~finally:(fun () ->
      Net.Server.stop srv;
      Domain.join domain)
    (fun () -> f srv (Net.Server.port srv))

let connect_ok port =
  match Net.Client.connect ~port () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Core.Error.to_string e)

let request_ok c payload =
  match Net.Client.request c payload with
  | Ok r -> r
  | Error e -> Alcotest.failf "request %S: %s" payload (Core.Error.to_string e)

let test_live_roundtrip () =
  with_server @@ fun srv port ->
  let c = connect_ok port in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  checks "handshake greeting" Net.Frame.hello_ok (Net.Client.greeting c);
  checks "PING" "OK pong" (request_ok c "PING");
  checks "VERSION"
    (Printf.sprintf "OK xseed %s protocol %d" Engine.Serve.version
       Engine.Serve.protocol_version)
    (request_ok c "VERSION");
  (* One estimate, then the same spelling again must hit the cache — the
     TCP layer is in front of the same engine the stdin transport serves. *)
  checkb "estimate miss" true
    (contains ~needle:"miss" (request_ok c "ESTIMATE /A/B"));
  checkb "estimate hit" true
    (contains ~needle:"hit" (request_ok c "ESTIMATE /A/B"));
  (* A BATCH travels with its payload lines in one frame and answers all
     slots in one frame. *)
  (match String.split_on_char '\n' (request_ok c "BATCH 2\n/A/B\n//C") with
   | header :: replies ->
     checks "batch header" "OK 2" header;
     checki "both slots answered" 2 (List.length replies)
   | [] -> Alcotest.fail "empty batch reply");
  (* Multi-line responses survive framing. *)
  checkb "METRICS is multi-line" true
    (contains ~needle:"\n" (request_ok c "METRICS"));
  (* Protocol-level garbage is the serve layer's one-line ERR; the
     connection stays usable. *)
  checkb "unknown verb is ERR" true
    (contains ~needle:"ERR malformed-query" (request_ok c "NONSENSE"));
  checkb "trailing junk after request" true
    (contains ~needle:"one request per frame" (request_ok c "PING\ngarbage"));
  checks "still serving" "OK pong" (request_ok c "PING");
  checki "accepted one connection" 1 (Net.Server.connections_accepted srv)

let test_connection_cap () =
  let config =
    { Net.Server.default_config with Net.Server.max_connections = 1 }
  in
  with_server ~config @@ fun srv port ->
  let c1 = connect_ok port in
  Fun.protect ~finally:(fun () -> Net.Client.close c1) @@ fun () ->
  (* The second connection is refused at the door with one ERR frame
     naming the cap, before any handshake. *)
  (match Net.Client.connect ~port () with
   | Ok c2 ->
     Net.Client.close c2;
     Alcotest.fail "second connection accepted over the cap"
   | Error e ->
     checkb "refusal is overloaded and names the limit" true
       (contains ~needle:"ERR overloaded" (Core.Error.message e)
       && contains ~needle:"limit=1" (Core.Error.message e)));
  checki "one refusal counted" 1 (Net.Server.connections_refused srv);
  checks "first connection unaffected" "OK pong" (request_ok c1 "PING")

let test_idle_timeout () =
  let config =
    { Net.Server.default_config with Net.Server.idle_timeout_s = Some 0.15 }
  in
  with_server ~config @@ fun _srv port ->
  let c = connect_ok port in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  checks "alive before the deadline" "OK pong" (request_ok c "PING");
  Unix.sleepf 0.5;
  (* The server has sent ERR timeout and closed; the queued frame is the
     next thing the client reads. *)
  (match Net.Client.request c "PING" with
   | Ok reply ->
     checkb "timeout names the limit" true
       (contains ~needle:"ERR timeout" reply
       && contains ~needle:"limit=150" reply)
   | Error _ -> () (* the close can also win the race — equally correct *));
  match Net.Client.request c "PING" with
  | Ok reply -> Alcotest.failf "zombie connection answered %S" reply
  | Error _ -> ()

let test_framing_violations_close () =
  with_server @@ fun _srv port ->
  (* Raw socket, no client: send a valid HELLO then a corrupt frame; the
     server must answer one ERR frame and close — never hang, never leak
     the violation into the next request. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let send s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  let recv_all () =
    let buf = Bytes.create 65536 in
    let total = ref 0 in
    (try
       let rec loop () =
         let n = Unix.read fd buf !total (Bytes.length buf - !total) in
         if n > 0 then begin
           total := !total + n;
           loop ()
         end
       in
       loop ()
     with Unix.Unix_error _ -> ());
    Bytes.sub_string buf 0 !total
  in
  send (Net.Frame.encode_string Net.Frame.hello);
  let corrupt = Bytes.of_string (Net.Frame.encode_string "PING") in
  Bytes.set corrupt (Net.Frame.header_bytes) 'Q';
  send (Bytes.to_string corrupt);
  let replies = recv_all () in
  (* EOF from the server proves the close; the ERR frame precedes it. *)
  checkb "CRC violation answered then closed" true
    (contains ~needle:"CRC-32 mismatch" replies)

let () =
  Alcotest.run "net"
    [ ( "frame",
        [ Alcotest.test_case "round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "streaming / partial reads" `Quick
            test_frame_streaming;
          Alcotest.test_case "length cap" `Quick test_frame_limits;
          Alcotest.test_case "crc" `Quick test_frame_crc;
          Alcotest.test_case "hello handshake" `Quick test_hello ] );
      ( "server",
        [ Alcotest.test_case "live round trip" `Quick test_live_roundtrip;
          Alcotest.test_case "connection cap" `Quick test_connection_cap;
          Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
          Alcotest.test_case "framing violations close" `Quick
            test_framing_violations_close ] )
    ]
