(* Observability layer: counter/histogram/span semantics, sink behavior,
   JSON round-trips, and the per-query explain report on the paper's
   Figure 2 example document. *)

let json = Alcotest.testable (Fmt.of_to_string Obs.Json.to_string) Obs.Json.equal

(* ------------------------------------------------------------------ *)
(* Counters and histograms *)

let test_counters () =
  let obs = Obs.create () in
  let c = Obs.counter obs "x" in
  Alcotest.(check int) "fresh counter" 0 (Obs.value c);
  Obs.incr c;
  Obs.add c 5;
  Alcotest.(check int) "incr + add" 6 (Obs.value c);
  Obs.set_max c 3;
  Alcotest.(check int) "set_max ignores smaller" 6 (Obs.value c);
  Obs.set_max c 10;
  Alcotest.(check int) "set_max raises" 10 (Obs.value c);
  let c' = Obs.counter obs "x" in
  Obs.incr c';
  Alcotest.(check int) "same name, same counter" 11 (Obs.value c);
  Obs.reset obs;
  Alcotest.(check int) "reset zeroes" 0 (Obs.value c)

let test_optional_helpers () =
  (* Without a context these are no-ops and must not raise. *)
  Obs.add_to "a" 1;
  Obs.max_to "b" 2;
  Obs.observe "c" 3.0;
  let obs = Obs.create () in
  Obs.add_to ~obs "a" 4;
  Obs.max_to ~obs "b" 7;
  Obs.observe ~obs "c" 2.5;
  Alcotest.(check int) "add_to" 4 (Obs.value (Obs.counter obs "a"));
  Alcotest.(check int) "max_to" 7 (Obs.value (Obs.counter obs "b"));
  Alcotest.(check int) "observe count" 1 (Obs.hcount (Obs.histogram obs "c"))

let test_histogram () =
  let obs = Obs.create () in
  let h = Obs.histogram obs "lat" in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Obs.hpercentile h 0.5));
  List.iter (Obs.hobserve h) [ 1.0; 2.0; 4.0; 8.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Obs.hcount h);
  Alcotest.(check (float 1e-9)) "sum" 115.0 (Obs.hsum h);
  Alcotest.(check (float 1e-9)) "mean" 23.0 (Obs.hmean h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Obs.hmax h);
  let p50 = Obs.hpercentile h 0.5 in
  let p99 = Obs.hpercentile h 0.99 in
  Alcotest.(check bool) "p50 in sample range" true (p50 >= 1.0 && p50 <= 100.0);
  Alcotest.(check bool) "percentiles monotone" true (p50 <= p99);
  Alcotest.(check bool) "p99 clamped to max" true (p99 <= 100.0 +. 1e-9)

let test_gauges () =
  let obs = Obs.create () in
  let g = Obs.gauge obs "occupancy" in
  Alcotest.(check (float 0.0)) "fresh gauge" 0.0 (Obs.gvalue g);
  Obs.gset g 7.5;
  Alcotest.(check (float 0.0)) "gset" 7.5 (Obs.gvalue g);
  Obs.gset g 2.0;
  Alcotest.(check (float 0.0)) "gauges go down" 2.0 (Obs.gvalue g);
  Obs.set_to "no-context" 1.0;
  Obs.set_to ~obs "occupancy" 9.0;
  Alcotest.(check (float 0.0)) "set_to hits the same gauge" 9.0 (Obs.gvalue g);
  Obs.reset obs;
  Alcotest.(check (float 0.0)) "reset zeroes gauges" 0.0 (Obs.gvalue g)

let test_labels () =
  let obs = Obs.create () in
  let a = Obs.counter_with obs "req" [ ("ds", "dblp"); ("kind", "sp") ] in
  (* Label order must not matter: same series, same handle state. *)
  let a' = Obs.counter_with obs "req" [ ("kind", "sp"); ("ds", "dblp") ] in
  let b = Obs.counter_with obs "req" [ ("ds", "xmark"); ("kind", "sp") ] in
  Obs.add a 3;
  Obs.incr a';
  Obs.incr b;
  Alcotest.(check int) "order-insensitive identity" 4 (Obs.value a);
  Alcotest.(check int) "distinct labels, distinct series" 1 (Obs.value b);
  (* Unlabeled and labeled spellings of one family coexist. *)
  Obs.incr (Obs.counter obs "req");
  let snap = Obs.snapshot obs in
  Alcotest.(check (option json)) "labeled snapshot key"
    (Some (Obs.Json.Int 4))
    (Obs.Json.member "req{ds=\"dblp\",kind=\"sp\"}" snap);
  Alcotest.(check (option json)) "unlabeled snapshot key"
    (Some (Obs.Json.Int 1))
    (Obs.Json.member "req" snap);
  (* A name can hold only one metric kind. *)
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Obs.gauge: req is a counter") (fun () ->
      ignore (Obs.gauge obs "req"))

let test_window () =
  Alcotest.check_raises "slots >= 1"
    (Invalid_argument "Obs.Window.create: slots 0 < 1") (fun () ->
      ignore (Obs.Window.create ~slots:0 ()));
  let w = Obs.Window.create ~slots:2 ~per_slot:3 () in
  Alcotest.(check bool) "empty percentile nan" true
    (Float.is_nan (Obs.Window.percentile w 0.5));
  (* Fill slot 0 with large values, then roll past them with small ones:
     the window must forget the old slot entirely. *)
  List.iter (Obs.Window.observe w) [ 100.0; 100.0; 100.0 ];
  Alcotest.(check (float 1e-9)) "max before expiry" 100.0 (Obs.Window.max w);
  List.iter (Obs.Window.observe w) [ 2.0; 2.0; 2.0; 2.0 ];
  (* 4th small observation rotated back onto the 100s' slot. *)
  Alcotest.(check int) "window count after expiry" 4 (Obs.Window.count w);
  Alcotest.(check int) "lifetime total" 7 (Obs.Window.total w);
  Alcotest.(check (float 1e-9)) "expired max gone" 2.0 (Obs.Window.max w);
  Alcotest.(check (float 1e-9)) "mean over live slots" 2.0 (Obs.Window.mean w);
  Alcotest.(check bool) "p90 within live range" true
    (Obs.Window.percentile w 0.9 <= 2.0 +. 1e-9);
  Obs.Window.rotate w;
  Obs.Window.rotate w;
  Alcotest.(check int) "explicit rotation empties" 0 (Obs.Window.count w);
  Alcotest.(check bool) "empty again" true (Float.is_nan (Obs.Window.mean w))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

(* Shared lint: structural validity of a text-format 0.0.4 payload. *)
let valid_metric_name name =
  name <> ""
  && (match name.[0] with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
      | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let count_occurrences ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

let prometheus_lint text =
  let lines =
    List.filter (( <> ) "") (String.split_on_char '\n' text)
  in
  let seen_samples = Hashtbl.create 64 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: kw :: name :: _rest when kw = "HELP" || kw = "TYPE" ->
          if not (valid_metric_name name) then
            Alcotest.failf "bad metric name in %S" line;
          if kw = "TYPE" then Hashtbl.replace typed name ()
        | _ -> Alcotest.failf "malformed comment line %S" line
      end
      else begin
        (* <name>[{labels}] <value> *)
        let sample =
          match String.index_opt line ' ' with
          | None -> Alcotest.failf "sample without value %S" line
          | Some i -> String.sub line 0 i
        in
        let name =
          match String.index_opt sample '{' with
          | None -> sample
          | Some i ->
            if sample.[String.length sample - 1] <> '}' then
              Alcotest.failf "unterminated label set %S" line;
            String.sub sample 0 i
        in
        if not (valid_metric_name name) then
          Alcotest.failf "bad sample name %S" line;
        if Hashtbl.mem seen_samples sample then
          Alcotest.failf "duplicate sample %S" sample;
        Hashtbl.add seen_samples sample ();
        (* Every sample's family must have a TYPE line; histogram series
           carry their family name minus the _bucket/_sum/_count suffix. *)
        let strip suffix n =
          if Filename.check_suffix n suffix then
            Filename.chop_suffix n suffix
          else n
        in
        let family =
          strip "_bucket" (strip "_sum" (strip "_count" name))
        in
        if not (Hashtbl.mem typed name || Hashtbl.mem typed family) then
          Alcotest.failf "sample %S has no TYPE line" name
      end)
    lines;
  Alcotest.(check bool) "payload nonempty" true (lines <> [])

let test_prometheus_render () =
  let obs = Obs.create () in
  Obs.add (Obs.counter obs "engine.cache.hits") 12;
  Obs.incr (Obs.counter_with obs "req" [ ("ds", "dblp") ]);
  Obs.incr (Obs.counter_with obs "req" [ ("ds", "x\"m\\ark\n") ]);
  Obs.gset (Obs.gauge obs "drift.p90") Float.nan;
  Obs.gset (Obs.gauge obs "cache.size") 3.0;
  List.iter (Obs.hobserve (Obs.histogram obs "lat.us")) [ 0.5; 3.0; 700.0 ];
  let text = Obs.prometheus ~prefix:"xseed_" obs in
  prometheus_lint text;
  let has s = contains ~needle:s text in
  Alcotest.(check bool) "dotted name sanitized+prefixed" true
    (has "xseed_engine_cache_hits 12");
  Alcotest.(check bool) "HELP keeps the dotted name" true
    (has "# HELP xseed_engine_cache_hits engine.cache.hits");
  Alcotest.(check bool) "counter TYPE" true
    (has "# TYPE xseed_engine_cache_hits counter");
  Alcotest.(check bool) "gauge TYPE" true (has "# TYPE xseed_cache_size gauge");
  Alcotest.(check bool) "nan gauge spelling" true (has "xseed_drift_p90 NaN");
  Alcotest.(check bool) "labeled sample" true
    (has "xseed_req{ds=\"dblp\"} 1");
  Alcotest.(check bool) "label value escaped" true
    (has "xseed_req{ds=\"x\\\"m\\\\ark\\n\"} 1");
  Alcotest.(check bool) "histogram TYPE" true
    (has "# TYPE xseed_lat_us histogram");
  Alcotest.(check bool) "cumulative le=1 bucket" true
    (has "xseed_lat_us_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "+Inf bucket closes" true
    (has "xseed_lat_us_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count" true (has "xseed_lat_us_count 3");
  (* One HELP/TYPE pair per family even with several series. *)
  Alcotest.(check int) "one TYPE line for the req family" 1
    (count_occurrences ~needle:"# TYPE xseed_req counter" text)

(* Property: whatever lands in a registry, the snapshot re-parses — the
   null-for-non-finite convention keeps the emitted text valid JSON. *)
let prop_snapshot_reparses =
  QCheck.Test.make ~count:200 ~name:"snapshot always re-parses"
    QCheck.(
      small_list
        (triple (oneofl [ "m.a"; "b"; "c{d}"; "weird name!" ])
           (oneofl [ `C; `G; `H ])
           (oneofl [ 0.0; 1.5; -3.0; Float.nan; Float.infinity; 1e308 ])))
    (fun ops ->
      let obs = Obs.create () in
      List.iter
        (fun (name, kind, v) ->
          (* Avoid kind clashes: one namespace per kind. *)
          match kind with
          | `C -> Obs.add_to ~obs ("c." ^ name) (int_of_float (Float.min 1e6 (Float.abs v)))
          | `G -> Obs.set_to ~obs ("g." ^ name) v
          | `H -> Obs.observe ~obs ("h." ^ name) v)
        ops;
      let snap = Obs.snapshot obs in
      Obs.Json.equal snap (Obs.Json.of_string (Obs.Json.to_string snap)))

(* ------------------------------------------------------------------ *)
(* Spans and sinks *)

let test_monotonic_clock () =
  (* now_mono never goes backwards, and span durations measured with it are
     non-negative even if the wall clock were stepped mid-span. *)
  let a = Obs.now_mono () in
  let b = Obs.now_mono () in
  Alcotest.(check bool) "now_mono monotone" true (b >= a);
  Alcotest.(check bool) "now_mono positive" true (a > 0.0);
  let obs = Obs.create () in
  ignore (Obs.span ~obs "stage" (fun () -> Sys.opaque_identity 1) : int);
  Alcotest.(check bool) "wall clock still available" true (Obs.now () > 0.0)

let test_sink_multi_domain () =
  (* Four domains run nested spans against one Jsonl-sink context at once:
     the span depth is an atomic, so this must neither crash nor wedge, and
     every span must emit its begin/end pair. *)
  let path = Filename.temp_file "obs_domains" ".jsonl" in
  let obs = Obs.create ~sink:(Obs.jsonl_file path) () in
  let spans_per_domain = 50 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to spans_per_domain do
              ignore
                (Obs.span ~obs "outer" (fun () ->
                     Obs.span ~obs "inner" (fun () -> Sys.opaque_identity 1))
                  : int)
            done))
  in
  Array.iter Domain.join domains;
  Obs.close obs;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove path;
  let count event =
    List.length
      (List.filter
         (fun l ->
           match Obs.Json.member "event" (Obs.Json.of_string l) with
           | Some (Obs.Json.String e) -> e = event
           | _ -> false)
         lines)
  in
  let expected = 4 * spans_per_domain * 2 in
  Alcotest.(check int) "every span begin recorded" expected
    (count "span_begin");
  Alcotest.(check int) "every span end recorded" expected (count "span_end")

let test_span_noop () =
  let obs = Obs.create () in
  (* Noop sink: the body runs, the result flows through, no timing. *)
  let r = Obs.span ~obs "stage" (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check int) "no histogram under Noop" 0
    (Obs.hcount (Obs.histogram obs "stage.ms"));
  (* No context at all. *)
  Alcotest.(check int) "no obs" 7 (Obs.span "s" (fun () -> 7))

let test_span_timed () =
  let path = Filename.temp_file "obs_span" ".jsonl" in
  let obs = Obs.create ~sink:(Obs.jsonl_file path) () in
  let r = Obs.span ~obs "stage" (fun () -> Obs.span ~obs "inner" (fun () -> 1)) in
  Alcotest.(check int) "result" 1 r;
  Alcotest.(check int) "outer span timed" 1
    (Obs.hcount (Obs.histogram obs "stage.ms"));
  Alcotest.(check int) "inner span timed" 1
    (Obs.hcount (Obs.histogram obs "inner.ms"));
  (* An exception still produces the end event and propagates. *)
  (try Obs.span ~obs "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.close obs;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove path;
  let events =
    List.map
      (fun l ->
        match Obs.Json.member "event" (Obs.Json.of_string l) with
        | Some (Obs.Json.String e) -> e
        | _ -> Alcotest.fail ("line without event: " ^ l))
      lines
  in
  Alcotest.(check (list string)) "event sequence"
    [ "span_begin"; "span_begin"; "span_end"; "span_end"; "span_begin";
      "span_end" ]
    events

let test_jsonl_snapshot_roundtrip () =
  let path = Filename.temp_file "obs_snap" ".jsonl" in
  let obs = Obs.create ~sink:(Obs.jsonl_file path) () in
  Obs.add_to ~obs "k" 3;
  Obs.observe ~obs "h" 2.0;
  Obs.event ~obs "hello" ~fields:[ ("n", Obs.Json.Int 1) ];
  Obs.emit_snapshot obs;
  Obs.close obs;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove path;
  (* Every line parses back; the snapshot carries the counter. *)
  let parsed = List.map Obs.Json.of_string lines in
  Alcotest.(check int) "two lines" 2 (List.length parsed);
  let snap = List.nth parsed 1 in
  Alcotest.(check (option json)) "snapshot event name"
    (Some (Obs.Json.String "snapshot"))
    (Obs.Json.member "event" snap);
  Alcotest.(check (option json)) "counter in snapshot" (Some (Obs.Json.Int 3))
    (Obs.Json.member "k" snap)

(* ------------------------------------------------------------------ *)
(* JSON encode/parse *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [ ("s", Obs.Json.String "a\"b\\c\n\t\x01é");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 0.1);
        ("big", Obs.Json.Float 1.7976931348623157e308);
        ("t", Obs.Json.Bool true);
        ("z", Obs.Json.Null);
        ( "l",
          Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ] ) ]
  in
  Alcotest.check json "round-trip" v (Obs.Json.of_string (Obs.Json.to_string v));
  (* Non-finite floats have no JSON spelling and become null. *)
  Alcotest.check json "nan -> null" Obs.Json.Null
    (Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float Float.nan)));
  Alcotest.(check bool) "object equality is order-insensitive" true
    (Obs.Json.equal
       (Obs.Json.Obj [ ("a", Obs.Json.Int 1); ("b", Obs.Json.Int 2) ])
       (Obs.Json.Obj [ ("b", Obs.Json.Int 2); ("a", Obs.Json.Int 1) ]));
  Alcotest.check_raises "malformed input rejected"
    (Invalid_argument "Json.of_string: trailing input at 2") (fun () ->
      ignore (Obs.Json.of_string "{}x"))

(* ------------------------------------------------------------------ *)
(* Pipeline integration: counters flow out of a real build + estimate *)

let test_pipeline_counters () =
  let obs = Obs.create () in
  let syn = Core.Synopsis.build ~obs Datagen.Paper_example.document in
  let doc_stats = Xml.Doc_stats.of_string Datagen.Paper_example.document in
  Alcotest.(check int) "sax counted every element" doc_stats.node_count
    (Obs.value (Obs.counter obs "sax.elements"));
  Alcotest.(check int) "builder vertices match kernel"
    (Core.Kernel.vertex_count (Core.Synopsis.kernel syn))
    (Obs.value (Obs.counter obs "builder.vertices"));
  let est = Core.Synopsis.estimator syn in
  let before = Obs.value (Obs.counter obs "matcher.match_steps") in
  ignore (Core.Estimator.estimate_string est "/a/c/s" : float);
  Alcotest.(check bool) "estimate published matcher steps" true
    (Obs.value (Obs.counter obs "matcher.match_steps") > before);
  Alcotest.(check bool) "traveler emitted nodes" true
    (Obs.value (Obs.counter obs "traveler.opened") > 0)

(* ------------------------------------------------------------------ *)
(* Explain reports on the paper's Figure 2 example *)

let explain_estimator () =
  Core.Synopsis.estimator (Core.Synopsis.build Datagen.Paper_example.document)

let test_explain_simple_path () =
  let r = Core.Explain.run_string (explain_estimator ()) "/a/c/s" in
  (* /a/c/s selects the five level-0 s nodes; the HET simple-path entries
     make this exact. *)
  Alcotest.(check (float 1e-6)) "estimate" 5.0 r.estimate;
  Alcotest.(check bool) "EPT emitted nodes" true (r.traveler.opened > 0);
  Alcotest.(check bool) "EPT saw recursion" true
    (r.traveler.max_recursion_level >= 1);
  Alcotest.(check bool) "matcher frontier peak" true (r.matcher.frontier_peak > 0);
  Alcotest.(check bool) "matcher did work" true (r.matcher.match_steps > 0);
  (match r.het_usage with
   | None -> Alcotest.fail "expected HET usage in report"
   | Some u ->
     Alcotest.(check bool) "HET simple lookups" true (u.simple_lookups > 0);
     Alcotest.(check bool) "hits bounded by lookups" true
       (u.simple_hits <= u.simple_lookups));
  Alcotest.(check bool) "assumption trail nonempty" true (r.assumptions <> []);
  Alcotest.(check bool) "stage timings sum sanely" true
    (r.total_seconds >= 0.0 && r.ept_seconds >= 0.0 && r.match_seconds >= 0.0)

let test_explain_branching () =
  let r = Core.Explain.run_string (explain_estimator ()) "//s[p]/t" in
  Alcotest.(check bool) "branching query estimated" true (r.estimate >= 0.0);
  (* The predicate either hit a HET branching pattern or fell back to the
     independence approximation — the report must say which. *)
  Alcotest.(check bool) "predicate accounted for" true
    (r.matcher.het_joint_overrides + r.matcher.het_single_overrides
       + r.matcher.independence_preds
    > 0)

let test_explain_json () =
  let r = Core.Explain.run_string (explain_estimator ()) "/a/c/s/s/t" in
  let j = Core.Explain.to_json r in
  (* The JSON rendering round-trips and exposes the headline fields. *)
  let j' = Obs.Json.of_string (Obs.Json.to_string j) in
  Alcotest.check json "json round-trip" j j';
  Alcotest.(check (option json)) "query field"
    (Some (Obs.Json.String "/a/c/s/s/t"))
    (Obs.Json.member "query" j);
  (match Obs.Json.member "ept" j with
   | Some (Obs.Json.Obj _ as ept) ->
     Alcotest.(check bool) "pruned field present" true
       (Obs.Json.member "pruned" ept <> None)
   | _ -> Alcotest.fail "ept object missing")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "optional helpers" `Quick test_optional_helpers;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "window" `Quick test_window;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "render + lint" `Quick test_prometheus_render;
          QCheck_alcotest.to_alcotest prop_snapshot_reparses;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
          Alcotest.test_case "span noop" `Quick test_span_noop;
          Alcotest.test_case "span timed" `Quick test_span_timed;
          Alcotest.test_case "multi-domain sink" `Quick test_sink_multi_domain;
          Alcotest.test_case "jsonl snapshot" `Quick test_jsonl_snapshot_roundtrip;
        ] );
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "pipeline",
        [
          Alcotest.test_case "counters flow" `Quick test_pipeline_counters;
          Alcotest.test_case "explain simple path" `Quick test_explain_simple_path;
          Alcotest.test_case "explain branching" `Quick test_explain_branching;
          Alcotest.test_case "explain json" `Quick test_explain_json;
        ] );
    ]
