(* Observability layer: counter/histogram/span semantics, sink behavior,
   JSON round-trips, and the per-query explain report on the paper's
   Figure 2 example document. *)

let json = Alcotest.testable (Fmt.of_to_string Obs.Json.to_string) Obs.Json.equal

(* ------------------------------------------------------------------ *)
(* Counters and histograms *)

let test_counters () =
  let obs = Obs.create () in
  let c = Obs.counter obs "x" in
  Alcotest.(check int) "fresh counter" 0 (Obs.value c);
  Obs.incr c;
  Obs.add c 5;
  Alcotest.(check int) "incr + add" 6 (Obs.value c);
  Obs.set_max c 3;
  Alcotest.(check int) "set_max ignores smaller" 6 (Obs.value c);
  Obs.set_max c 10;
  Alcotest.(check int) "set_max raises" 10 (Obs.value c);
  let c' = Obs.counter obs "x" in
  Obs.incr c';
  Alcotest.(check int) "same name, same counter" 11 (Obs.value c);
  Obs.reset obs;
  Alcotest.(check int) "reset zeroes" 0 (Obs.value c)

let test_optional_helpers () =
  (* Without a context these are no-ops and must not raise. *)
  Obs.add_to "a" 1;
  Obs.max_to "b" 2;
  Obs.observe "c" 3.0;
  let obs = Obs.create () in
  Obs.add_to ~obs "a" 4;
  Obs.max_to ~obs "b" 7;
  Obs.observe ~obs "c" 2.5;
  Alcotest.(check int) "add_to" 4 (Obs.value (Obs.counter obs "a"));
  Alcotest.(check int) "max_to" 7 (Obs.value (Obs.counter obs "b"));
  Alcotest.(check int) "observe count" 1 (Obs.hcount (Obs.histogram obs "c"))

let test_histogram () =
  let obs = Obs.create () in
  let h = Obs.histogram obs "lat" in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Obs.hpercentile h 0.5));
  List.iter (Obs.hobserve h) [ 1.0; 2.0; 4.0; 8.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Obs.hcount h);
  Alcotest.(check (float 1e-9)) "sum" 115.0 (Obs.hsum h);
  Alcotest.(check (float 1e-9)) "mean" 23.0 (Obs.hmean h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Obs.hmax h);
  let p50 = Obs.hpercentile h 0.5 in
  let p99 = Obs.hpercentile h 0.99 in
  Alcotest.(check bool) "p50 in sample range" true (p50 >= 1.0 && p50 <= 100.0);
  Alcotest.(check bool) "percentiles monotone" true (p50 <= p99);
  Alcotest.(check bool) "p99 clamped to max" true (p99 <= 100.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Spans and sinks *)

let test_span_noop () =
  let obs = Obs.create () in
  (* Noop sink: the body runs, the result flows through, no timing. *)
  let r = Obs.span ~obs "stage" (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check int) "no histogram under Noop" 0
    (Obs.hcount (Obs.histogram obs "stage.ms"));
  (* No context at all. *)
  Alcotest.(check int) "no obs" 7 (Obs.span "s" (fun () -> 7))

let test_span_timed () =
  let path = Filename.temp_file "obs_span" ".jsonl" in
  let obs = Obs.create ~sink:(Obs.jsonl_file path) () in
  let r = Obs.span ~obs "stage" (fun () -> Obs.span ~obs "inner" (fun () -> 1)) in
  Alcotest.(check int) "result" 1 r;
  Alcotest.(check int) "outer span timed" 1
    (Obs.hcount (Obs.histogram obs "stage.ms"));
  Alcotest.(check int) "inner span timed" 1
    (Obs.hcount (Obs.histogram obs "inner.ms"));
  (* An exception still produces the end event and propagates. *)
  (try Obs.span ~obs "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.close obs;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove path;
  let events =
    List.map
      (fun l ->
        match Obs.Json.member "event" (Obs.Json.of_string l) with
        | Some (Obs.Json.String e) -> e
        | _ -> Alcotest.fail ("line without event: " ^ l))
      lines
  in
  Alcotest.(check (list string)) "event sequence"
    [ "span_begin"; "span_begin"; "span_end"; "span_end"; "span_begin";
      "span_end" ]
    events

let test_jsonl_snapshot_roundtrip () =
  let path = Filename.temp_file "obs_snap" ".jsonl" in
  let obs = Obs.create ~sink:(Obs.jsonl_file path) () in
  Obs.add_to ~obs "k" 3;
  Obs.observe ~obs "h" 2.0;
  Obs.event ~obs "hello" ~fields:[ ("n", Obs.Json.Int 1) ];
  Obs.emit_snapshot obs;
  Obs.close obs;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove path;
  (* Every line parses back; the snapshot carries the counter. *)
  let parsed = List.map Obs.Json.of_string lines in
  Alcotest.(check int) "two lines" 2 (List.length parsed);
  let snap = List.nth parsed 1 in
  Alcotest.(check (option json)) "snapshot event name"
    (Some (Obs.Json.String "snapshot"))
    (Obs.Json.member "event" snap);
  Alcotest.(check (option json)) "counter in snapshot" (Some (Obs.Json.Int 3))
    (Obs.Json.member "k" snap)

(* ------------------------------------------------------------------ *)
(* JSON encode/parse *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [ ("s", Obs.Json.String "a\"b\\c\n\t\x01é");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 0.1);
        ("big", Obs.Json.Float 1.7976931348623157e308);
        ("t", Obs.Json.Bool true);
        ("z", Obs.Json.Null);
        ( "l",
          Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ] ) ]
  in
  Alcotest.check json "round-trip" v (Obs.Json.of_string (Obs.Json.to_string v));
  (* Non-finite floats have no JSON spelling and become null. *)
  Alcotest.check json "nan -> null" Obs.Json.Null
    (Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float Float.nan)));
  Alcotest.(check bool) "object equality is order-insensitive" true
    (Obs.Json.equal
       (Obs.Json.Obj [ ("a", Obs.Json.Int 1); ("b", Obs.Json.Int 2) ])
       (Obs.Json.Obj [ ("b", Obs.Json.Int 2); ("a", Obs.Json.Int 1) ]));
  Alcotest.check_raises "malformed input rejected"
    (Invalid_argument "Json.of_string: trailing input at 2") (fun () ->
      ignore (Obs.Json.of_string "{}x"))

(* ------------------------------------------------------------------ *)
(* Pipeline integration: counters flow out of a real build + estimate *)

let test_pipeline_counters () =
  let obs = Obs.create () in
  let syn = Core.Synopsis.build ~obs Datagen.Paper_example.document in
  let doc_stats = Xml.Doc_stats.of_string Datagen.Paper_example.document in
  Alcotest.(check int) "sax counted every element" doc_stats.node_count
    (Obs.value (Obs.counter obs "sax.elements"));
  Alcotest.(check int) "builder vertices match kernel"
    (Core.Kernel.vertex_count (Core.Synopsis.kernel syn))
    (Obs.value (Obs.counter obs "builder.vertices"));
  let est = Core.Synopsis.estimator syn in
  let before = Obs.value (Obs.counter obs "matcher.match_steps") in
  ignore (Core.Estimator.estimate_string est "/a/c/s" : float);
  Alcotest.(check bool) "estimate published matcher steps" true
    (Obs.value (Obs.counter obs "matcher.match_steps") > before);
  Alcotest.(check bool) "traveler emitted nodes" true
    (Obs.value (Obs.counter obs "traveler.opened") > 0)

(* ------------------------------------------------------------------ *)
(* Explain reports on the paper's Figure 2 example *)

let explain_estimator () =
  Core.Synopsis.estimator (Core.Synopsis.build Datagen.Paper_example.document)

let test_explain_simple_path () =
  let r = Core.Explain.run_string (explain_estimator ()) "/a/c/s" in
  (* /a/c/s selects the five level-0 s nodes; the HET simple-path entries
     make this exact. *)
  Alcotest.(check (float 1e-6)) "estimate" 5.0 r.estimate;
  Alcotest.(check bool) "EPT emitted nodes" true (r.traveler.opened > 0);
  Alcotest.(check bool) "EPT saw recursion" true
    (r.traveler.max_recursion_level >= 1);
  Alcotest.(check bool) "matcher frontier peak" true (r.matcher.frontier_peak > 0);
  Alcotest.(check bool) "matcher did work" true (r.matcher.match_steps > 0);
  (match r.het_usage with
   | None -> Alcotest.fail "expected HET usage in report"
   | Some u ->
     Alcotest.(check bool) "HET simple lookups" true (u.simple_lookups > 0);
     Alcotest.(check bool) "hits bounded by lookups" true
       (u.simple_hits <= u.simple_lookups));
  Alcotest.(check bool) "assumption trail nonempty" true (r.assumptions <> []);
  Alcotest.(check bool) "stage timings sum sanely" true
    (r.total_seconds >= 0.0 && r.ept_seconds >= 0.0 && r.match_seconds >= 0.0)

let test_explain_branching () =
  let r = Core.Explain.run_string (explain_estimator ()) "//s[p]/t" in
  Alcotest.(check bool) "branching query estimated" true (r.estimate >= 0.0);
  (* The predicate either hit a HET branching pattern or fell back to the
     independence approximation — the report must say which. *)
  Alcotest.(check bool) "predicate accounted for" true
    (r.matcher.het_joint_overrides + r.matcher.het_single_overrides
       + r.matcher.independence_preds
    > 0)

let test_explain_json () =
  let r = Core.Explain.run_string (explain_estimator ()) "/a/c/s/s/t" in
  let j = Core.Explain.to_json r in
  (* The JSON rendering round-trips and exposes the headline fields. *)
  let j' = Obs.Json.of_string (Obs.Json.to_string j) in
  Alcotest.check json "json round-trip" j j';
  Alcotest.(check (option json)) "query field"
    (Some (Obs.Json.String "/a/c/s/s/t"))
    (Obs.Json.member "query" j);
  (match Obs.Json.member "ept" j with
   | Some (Obs.Json.Obj _ as ept) ->
     Alcotest.(check bool) "pruned field present" true
       (Obs.Json.member "pruned" ept <> None)
   | _ -> Alcotest.fail "ept object missing")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "optional helpers" `Quick test_optional_helpers;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "span noop" `Quick test_span_noop;
          Alcotest.test_case "span timed" `Quick test_span_timed;
          Alcotest.test_case "jsonl snapshot" `Quick test_jsonl_snapshot_roundtrip;
        ] );
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "pipeline",
        [
          Alcotest.test_case "counters flow" `Quick test_pipeline_counters;
          Alcotest.test_case "explain simple path" `Quick test_explain_simple_path;
          Alcotest.test_case "explain branching" `Quick test_explain_branching;
          Alcotest.test_case "explain json" `Quick test_explain_json;
        ] );
    ]
